"""Causal trace analytics: span reconstruction, blame reports, diffing.

The two load-bearing guarantees (ISSUE 10 acceptance criteria):

1. **Exact decomposition** — for every delivered packet, the span's wait
   components sum *exactly* to its end-to-end latency, property-tested on
   both cycle-accurate simulators under fuzzed shapes, buffers and fault
   models.
2. **Byte identity** — blame reports rendered from reference and
   vectorized ``mode="exact"`` traces of the same RunSpec are
   byte-identical, as are in-memory and JSONL-file analyses of one run.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.config import PhastlaneConfig
from repro.electrical.config import ElectricalConfig
from repro.fabric import IdealConfig, make_network
from repro.faults import FaultConfig
from repro.harness.exec import Executor, RunSpec, SyntheticWorkload
from repro.harness.htmlreport import render_campaign_html
from repro.harness.runner import run
from repro.obs import (
    CollectingTracer,
    ObsConfig,
    PacketEvent,
    analyze_events,
    analyze_trace_file,
    diff_reports,
    reconstruct_spans,
    registry_from_blame,
    render_diff_markdown,
    render_markdown,
)
from repro.obs.analysis import read_trace_file
from repro.sim.engine import SimulationEngine
from repro.topology import topology_of
from repro.traffic.injection import BernoulliInjector
from repro.traffic.patterns import pattern_by_name
from repro.traffic.trace import (
    SyntheticSource,
    Trace,
    TraceEvent,
    TraceSource,
)
from repro.util.geometry import MeshGeometry
from repro.vectorized import VectorizedConfig, as_phastlane

SLOW = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

mesh_shapes = st.sampled_from([(2, 2), (4, 4), (4, 2), (3, 5)])
fault_models = st.sampled_from(
    [
        None,
        FaultConfig(seed=2, link_flip_prob=0.05, retry_limit=5),
        FaultConfig(seed=4, corrupt_prob=0.08, retry_limit=5),
        FaultConfig(seed=5, nic_stall_prob=0.05, nic_stall_cycles=4),
    ]
)


def burst_trace(mesh: MeshGeometry, seed: int, packets: int) -> Trace:
    """Deterministic all-at-once burst: maximal transient contention."""
    events = []
    n = mesh.num_nodes
    for index in range(packets):
        src = (seed + index) % n
        dst = (seed + 3 * index + 1) % n
        if src != dst:
            events.append(TraceEvent(0, src, dst))
    return Trace("burst", n, events=events)


def traced_run(config, source, cycles, faults=None, drain=False):
    """Drive a network with a collecting tracer attached; return events."""
    network = make_network(config, source, faults=faults)
    tracer = CollectingTracer()
    network.add_tracer(tracer)
    engine = SimulationEngine()
    engine.register(network)
    engine.run(cycles)
    if drain:
        assert engine.run_until(lambda: network.idle(engine.cycle), 100_000)
    return tracer.events, network


def assert_exact_sum(spans):
    """The tentpole law: components partition each delivered latency."""
    delivered = [span for span in spans if span.delivered]
    assert delivered, "law is vacuous without deliveries"
    for span in delivered:
        components = span.components()
        assert sum(components.values()) == span.latency, (
            f"packet {span.packet} ({span.origin}->{span.destination}): "
            f"components {components} sum to {sum(components.values())}, "
            f"latency is {span.latency}; timeline {span.timeline}"
        )
    return delivered


class TestExactSumLaw:
    @SLOW
    @given(
        mesh_shapes,
        st.sampled_from([1, 4]),
        st.sampled_from([2, 10, None]),
        fault_models,
        st.integers(0, 1000),
    )
    def test_phastlane_components_sum_to_latency(
        self, shape, max_hops, buffers, faults, seed
    ):
        mesh = MeshGeometry(*shape)
        trace = burst_trace(mesh, seed, packets=3 * mesh.num_nodes)
        config = PhastlaneConfig(
            mesh=mesh, max_hops_per_cycle=max_hops, buffer_entries=buffers
        )
        events, _ = traced_run(
            config, TraceSource(trace), trace.last_cycle + 1, faults=faults,
            drain=faults is None,
        )
        assert_exact_sum(reconstruct_spans(events, link_delay=0))

    @SLOW
    @given(
        st.sampled_from([(2, 2), (4, 4)]),
        st.sampled_from(["uniform", "hotspot"]),
        st.integers(0, 1000),
    )
    def test_electrical_components_sum_to_latency(self, shape, pattern, seed):
        config = ElectricalConfig(mesh=MeshGeometry(*shape))
        source = SyntheticSource(
            pattern_by_name(pattern, topology_of(config)),
            lambda: BernoulliInjector(0.15),
            seed=seed,
            stop_cycle=150,
        )
        events, _ = traced_run(config, source, 150)
        spans = reconstruct_spans(
            events, link_delay=config.router_delay_cycles
        )
        delivered = assert_exact_sum(spans)
        # The electrical pipeline really does pay per-hop transit.
        assert any(sum(s.transit.values()) > 0 for s in delivered)

    def test_electrical_faulted_run_still_sums(self):
        config = ElectricalConfig(mesh=MeshGeometry(4, 4))
        source = SyntheticSource(
            pattern_by_name("uniform", topology_of(config)),
            lambda: BernoulliInjector(0.2),
            seed=9,
            stop_cycle=300,
        )
        events, network = traced_run(
            config, source, 300,
            faults=FaultConfig(seed=3, link_flip_prob=0.05, retry_limit=5),
        )
        assert network.stats.faults_injected > 0
        assert_exact_sum(
            reconstruct_spans(events, link_delay=config.router_delay_cycles)
        )

    def test_ideal_backend_is_pure_transit(self):
        config = IdealConfig()
        source = SyntheticSource(
            pattern_by_name("uniform", topology_of(config)),
            lambda: BernoulliInjector(0.2),
            seed=5,
            stop_cycle=100,
        )
        events, _ = traced_run(config, source, 120)
        delivered = assert_exact_sum(reconstruct_spans(events))
        # The analytic fabric has no queueing: every delivered cycle is
        # flight time on the origin->destination link.
        for span in delivered:
            assert span.components()["link_transit"] == span.latency

    def test_multicast_spans_end_at_their_last_tap(self):
        # A broadcast splits into per-segment multicast packets; each
        # span covers one segment's taps and still decomposes exactly.
        mesh = MeshGeometry(4, 4)
        trace = Trace("b", mesh.num_nodes, events=[TraceEvent(0, 5, None)])
        events, _ = traced_run(
            PhastlaneConfig(mesh=mesh), TraceSource(trace),
            trace.last_cycle + 1, drain=True,
        )
        spans = reconstruct_spans(events)
        assert all(span.multicast for span in spans)
        assert sum(span.deliveries for span in spans) == mesh.num_nodes - 1
        assert_exact_sum(spans)


class TestSpanWalker:
    """Hand-built event streams pin the attribution rules themselves."""

    def test_source_queue_then_contention_then_zero_transit(self):
        events = [
            PacketEvent("generated", 0, 5, 7, {"dst": 9}),
            PacketEvent("injected", 3, 5, 7),
            PacketEvent("hop", 10, 6, 7),
            PacketEvent("hop", 10, 9, 7),
            PacketEvent("delivered", 10, 9, 7),
        ]
        (span,) = reconstruct_spans(events, link_delay=0)
        assert span.source_queue == 3
        assert dict(span.contention) == {5: 7}
        assert sum(span.transit.values()) == 0
        assert span.latency == 10

    def test_link_delay_splits_arrival_gaps(self):
        events = [
            PacketEvent("generated", 0, 0, 1),
            PacketEvent("injected", 0, 0, 1),
            PacketEvent("buffered", 5, 1, 1),  # 3 transit + 2 waiting at 0
            PacketEvent("hop", 12, 2, 1),      # 3 transit + 4 queued at 1
            PacketEvent("delivered", 12, 2, 1),
        ]
        (span,) = reconstruct_spans(events, link_delay=3)
        assert dict(span.transit) == {(0, 1): 3, (1, 2): 3}
        assert dict(span.contention) == {0: 2, 1: 4}
        assert sum(span.components().values()) == span.latency == 12

    def test_drop_blames_the_dropping_router(self):
        events = [
            PacketEvent("generated", 0, 0, 2),
            PacketEvent("injected", 0, 0, 2),
            PacketEvent("hop", 1, 4, 2),
            PacketEvent("blocked", 1, 4, 2),
            PacketEvent("dropped", 1, 4, 2),
            PacketEvent("retransmitted", 9, 0, 2, {"attempts": 1}),
            PacketEvent("hop", 9, 4, 2),
            PacketEvent("hop", 9, 8, 2),
            PacketEvent("delivered", 9, 8, 2),
        ]
        (span,) = reconstruct_spans(events)
        # The 8-cycle drop-signal + backoff wait lands on router 4 (the
        # dropper), not on the retransmitter.
        assert dict(span.backoff) == {4: 8}
        assert span.drops == 1 and span.retransmits == 1 and span.blocked == 1
        assert sum(span.components().values()) == span.latency == 9

    def test_monitor_events_are_ignored(self):
        events = [
            PacketEvent("fault_injected", 0, 0, -1, {"fault": "nic_stall"}),
            PacketEvent("generated", 0, 1, 3),
            PacketEvent("health_warn", 2, 0, 3, {"check": "progress"}),
            PacketEvent("injected", 4, 1, 3),
            PacketEvent("delivered", 4, 1, 3),
        ]
        spans = reconstruct_spans(events)
        assert len(spans) == 1
        assert spans[0].source_queue == 4

    def test_packets_renumbered_by_first_appearance(self):
        events = [
            PacketEvent("generated", 0, 0, 900),
            PacketEvent("generated", 1, 1, 350),
            PacketEvent("injected", 2, 0, 900),
        ]
        spans = reconstruct_spans(events)
        assert [(s.packet, s.origin) for s in spans] == [(0, 0), (1, 1)]


class TestByteIdentity:
    def _blame(self, config, seed=11, cycles=150):
        source = SyntheticSource(
            pattern_by_name("uniform", topology_of(config)),
            lambda: BernoulliInjector(0.2),
            seed=seed,
            stop_cycle=cycles,
        )
        events, _ = traced_run(config, source, cycles)
        return analyze_events(events, link_delay=0, top=5)

    def test_reference_and_vectorized_exact_reports_identical(self):
        vec_config = VectorizedConfig(mode="exact")
        ref = self._blame(as_phastlane(vec_config))
        vec = self._blame(vec_config)
        assert ref.delivered > 0
        assert ref.to_json() == vec.to_json()

    def test_in_memory_and_file_analyses_identical(self, tmp_path):
        path = tmp_path / "t.jsonl"
        spec = RunSpec(
            PhastlaneConfig(mesh=MeshGeometry(4, 4)),
            SyntheticWorkload("hotspot", 0.2),
            cycles=200,
            seed=3,
            obs=ObsConfig(trace_path=str(path)),
        )
        run(spec)
        from_file = analyze_trace_file(path)
        events, meta = read_trace_file(path)
        in_memory = analyze_events(events, link_delay=0, top=5)
        assert from_file.to_json() == in_memory.to_json()
        # The header carries run identity into the report meta.
        assert from_file.meta["spec"] == spec.digest()
        assert from_file.meta["label"] == spec.config.label
        assert from_file.meta["link_delay"] == 0

    def test_electrical_header_supplies_link_delay(self, tmp_path):
        path = tmp_path / "t.jsonl"
        config = ElectricalConfig(mesh=MeshGeometry(4, 4))
        run(
            RunSpec(
                config,
                SyntheticWorkload("uniform", 0.1),
                cycles=200,
                seed=2,
                obs=ObsConfig(trace_path=str(path)),
            )
        )
        report = analyze_trace_file(path)
        assert report.meta["link_delay"] == config.router_delay_cycles
        assert report.components["link_transit"] > 0


class TestTraceFileValidation:
    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"schema": "repro-trace/v99", "kinds": []}\n')
        with pytest.raises(ValueError, match="unsupported trace schema"):
            read_trace_file(path)

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "teleported", "cycle": 0, "node": 0, "uid": 0}\n')
        with pytest.raises(ValueError, match="unknown event kind"):
            read_trace_file(path)

    def test_non_json_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not JSONL"):
            read_trace_file(path)

    def test_headerless_trace_still_parses(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"kind": "generated", "cycle": 0, "node": 0, "uid": 1, "dst": 3}\n'
            '{"kind": "injected", "cycle": 1, "node": 0, "uid": 1}\n'
            '{"kind": "delivered", "cycle": 4, "node": 3, "uid": 1}\n'
        )
        report = analyze_trace_file(path)
        assert report.delivered == 1
        assert report.meta == {}


class TestDiff:
    def _report(self, rate, tmp_path, name):
        path = tmp_path / name
        spec = RunSpec(
            PhastlaneConfig(mesh=MeshGeometry(4, 4)),
            SyntheticWorkload("hotspot", rate),
            cycles=200,
            seed=3,
            obs=ObsConfig(trace_path=str(path)),
        )
        run(spec)
        return analyze_trace_file(path), spec

    def test_diff_keys_runs_by_digest_and_signs_deltas(self, tmp_path):
        light, light_spec = self._report(0.05, tmp_path, "a.jsonl")
        heavy, heavy_spec = self._report(0.3, tmp_path, "b.jsonl")
        diff = diff_reports(light, heavy)
        assert diff["a"]["spec"] == light_spec.digest()
        assert diff["b"]["spec"] == heavy_spec.digest()
        assert diff["total_latency"]["delta"] > 0  # heavier load is worse
        assert set(diff["components"]) == {
            "source_queue",
            "router_contention",
            "link_transit",
            "retransmit_backoff",
        }
        rendered = render_diff_markdown(diff)
        assert "Blame diff" in rendered
        assert light_spec.digest()[:12] in rendered

    def test_self_diff_is_all_zero(self, tmp_path):
        report, _ = self._report(0.2, tmp_path, "a.jsonl")
        diff = diff_reports(report, report)
        assert diff["total_latency"]["delta"] == 0
        assert all(e["delta"] == 0 for e in diff["components"].values())
        assert all(e["delta"] == 0 for e in diff["routers"].values())


class TestRenderers:
    def _report(self):
        config = PhastlaneConfig(mesh=MeshGeometry(4, 4))
        source = SyntheticSource(
            pattern_by_name("hotspot", topology_of(config)),
            lambda: BernoulliInjector(0.25),
            seed=7,
            stop_cycle=200,
        )
        events, _ = traced_run(config, source, 200)
        return analyze_events(events, top=3, meta={"label": "Optical4"})

    def test_markdown_sections(self):
        report = self._report()
        text = render_markdown(report, blame="routers")
        assert "# Latency blame report: Optical4" in text
        assert "## Where the delivered cycles went" in text
        assert "## Top blamed routers" in text
        assert "## Tail latency" in text
        assert "p999" in text
        assert "## Slowest 3 packets" in text

    def test_blame_table_variants(self):
        report = self._report()
        assert "## Top blamed links" in render_markdown(report, blame="links")
        assert "## Blame by cause" in render_markdown(report, blame="causes")

    def test_registry_from_blame_series(self):
        report = self._report()
        registry = registry_from_blame(report, final_cycle=200)
        series = set(registry.series)
        assert {
            "blame.component_cycles",
            "blame.router_cycles",
            "blame.tail_latency",
            "blame.delivered",
        } <= series
        components = [
            s for s in registry.samples if s.series == "blame.component_cycles"
        ]
        assert sum(s.value for s in components) == report.total_latency


class TestCli:
    def _trace(self, tmp_path, rate=0.25, name="t.jsonl"):
        path = tmp_path / name
        run(
            RunSpec(
                PhastlaneConfig(mesh=MeshGeometry(4, 4)),
                SyntheticWorkload("hotspot", rate),
                cycles=200,
                seed=3,
                obs=ObsConfig(trace_path=str(path)),
            )
        )
        return path

    def test_markdown_report(self, tmp_path, capsys):
        path = self._trace(tmp_path)
        assert main(["analyze", str(path), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "# Latency blame report" in out
        assert "router_contention" in out

    def test_json_report_and_out_file(self, tmp_path, capsys):
        path = self._trace(tmp_path)
        out_path = tmp_path / "blame.json"
        code = main(
            ["analyze", str(path), "--format", "json", "--out", str(out_path)]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-blame/v1"
        assert json.loads(out_path.read_text()) == payload

    def test_diff_mode(self, tmp_path, capsys):
        a = self._trace(tmp_path, rate=0.05, name="a.jsonl")
        b = self._trace(tmp_path, rate=0.3, name="b.jsonl")
        assert main(["analyze", "--diff", str(a), str(b)]) == 0
        assert "Blame diff" in capsys.readouterr().out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "nope.jsonl")]) == 2
        assert "repro:" in capsys.readouterr().err

    def test_no_input_exits_two(self, capsys):
        assert main(["analyze"]) == 2
        assert "need a trace" in capsys.readouterr().err

    def test_trace_plus_diff_exits_two(self, tmp_path, capsys):
        path = self._trace(tmp_path)
        assert main(
            ["analyze", str(path), "--diff", str(path), str(path)]
        ) == 2
        assert "not both" in capsys.readouterr().err


class TestHtmlBlameSection:
    def test_traced_campaign_gains_blame_section(self, tmp_path):
        specs = [
            RunSpec(
                PhastlaneConfig(mesh=MeshGeometry(4, 4)),
                SyntheticWorkload("hotspot", 0.25),
                cycles=200,
                seed=3,
            )
        ]
        executor = Executor(
            workers=1,
            cache=None,
            obs=ObsConfig(trace_path=str(tmp_path / "trace.jsonl")),
        )
        executor.map(specs)
        html = render_campaign_html(executor.events)
        assert "Latency blame" in html
        assert "tail latency (cycles)" in html

    def test_untraced_campaign_has_no_blame_section(self):
        specs = [
            RunSpec(
                PhastlaneConfig(mesh=MeshGeometry(2, 2)),
                SyntheticWorkload("uniform", 0.1),
                cycles=50,
                seed=1,
            )
        ]
        executor = Executor(workers=1, cache=None)
        executor.map(specs)
        assert "Latency blame" not in render_campaign_html(executor.events)
