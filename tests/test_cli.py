"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestTablesAndFigures:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 4" in out

    @pytest.mark.parametrize("name", ["fig04", "fig05", "fig06", "fig07", "fig08"])
    def test_analytic_figures(self, name, capsys):
        assert main(["figure", name]) == 0
        assert capsys.readouterr().out.strip()

    def test_fig06_content(self, capsys):
        main(["figure", "fig06"])
        out = capsys.readouterr().out
        assert "max hops per 4 GHz cycle" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestSweep:
    def test_small_sweep(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--config",
                    "Optical4",
                    "--pattern",
                    "uniform",
                    "--rates",
                    "0.05",
                    "--cycles",
                    "200",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Optical4 / uniform" in out

    def test_unknown_config_errors(self, capsys):
        assert main(["sweep", "--config", "Optical99", "--rates", "0.05"]) == 2

    def test_sweep_with_workers_cache_and_report(self, tmp_path, capsys):
        report = tmp_path / "sweep.json"
        manifest = tmp_path / "manifest.json"
        argv = [
            "sweep",
            "--config", "Optical4",
            "--pattern", "uniform",
            "--rates", "0.05,0.1",
            "--cycles", "150",
            "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--report", str(report),
            "--manifest", str(manifest),
        ]
        assert main(argv) == 0
        first = report.read_bytes()
        loaded = json.loads(first)
        assert loaded["kind"] == "sweep"
        assert len(loaded["points"]) == 2
        first_manifest = json.loads(manifest.read_text())
        assert first_manifest["runs"] == 2
        assert first_manifest["cache_hits"] == 0
        err = capsys.readouterr().err
        assert "[2/2]" in err and "campaign: 2 runs" in err

        # Second invocation: all cache hits, byte-identical report.
        assert main(argv) == 0
        assert report.read_bytes() == first
        assert json.loads(manifest.read_text())["cache_hits"] == 2

    def test_sweep_no_cache_skips_cache_dir(self, tmp_path):
        cache_dir = tmp_path / "cache"
        argv = [
            "sweep",
            "--rates", "0.05",
            "--cycles", "100",
            "--no-cache",
            "--cache-dir", str(cache_dir),
        ]
        assert main(argv) == 0
        assert not cache_dir.exists()


class TestTraceWorkflow:
    def test_generate_info_run_round_trip(self, tmp_path, capsys):
        path = tmp_path / "fft.trace"
        assert (
            main(
                ["trace", "generate", "fft", "--out", str(path), "--cycles", "150"]
            )
            == 0
        )
        assert path.exists()

        assert main(["trace", "info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "offered load" in out

        assert main(["run", "--config", "Optical4", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Optical4 on fft" in out
        assert "delivery_ratio" in out and "1.000" in out

    def test_run_unknown_config_errors(self, tmp_path):
        path = tmp_path / "t.trace"
        main(["trace", "generate", "lu", "--out", str(path), "--cycles", "50"])
        assert main(["run", "--config", "Nope", "--trace", str(path)]) == 2

    def test_run_profile_prints_component_shares(self, tmp_path, capsys):
        path = tmp_path / "fft.trace"
        main(["trace", "generate", "fft", "--out", str(path), "--cycles", "100"])
        capsys.readouterr()
        args = ["run", "--config", "Optical4", "--trace", str(path), "--profile"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "engine profile" in out
        assert "PhastlaneNetwork" in out
        assert "share" in out

    def test_spatial_metrics_requires_interval(self, tmp_path):
        path = tmp_path / "t.trace"
        main(["trace", "generate", "lu", "--out", str(path), "--cycles", "50"])
        with pytest.raises(SystemExit, match="invalid observability config"):
            main(["run", "--config", "Optical4", "--trace", str(path),
                  "--spatial-metrics"])


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestFaultFlags:
    def test_dead_ports_accept_letters_and_digits(self):
        from repro.cli import _dead_ports

        assert _dead_ports("5:E,10:n, 3:2") == ((5, 1), (10, 0), (3, 2))

    @pytest.mark.parametrize("text", ["bogus", "5:X", "x:E", "5"])
    def test_dead_ports_reject_malformed(self, text):
        import argparse

        from repro.cli import _dead_ports

        with pytest.raises(argparse.ArgumentTypeError):
            _dead_ports(text)

    def test_sweep_accepts_fault_flags(self, tmp_path, capsys):
        report = tmp_path / "sweep.json"
        argv = [
            "sweep",
            "--rates", "0.05",
            "--cycles", "150",
            "--no-cache",
            "--fault-seed", "3",
            "--link-flip-prob", "0.02",
            "--dead-ports", "5:E",
            "--report", str(report),
        ]
        assert main(argv) == 0
        payload = json.loads(report.read_text())
        assert payload["faults"]["link_flip_prob"] == 0.02
        assert payload["faults"]["dead_ports"] == [[5, 1]]

    def test_fault_sweep_prints_curve_and_report(self, tmp_path, capsys):
        report = tmp_path / "curve.json"
        argv = [
            "fault-sweep",
            "--rate", "0.05",
            "--fault-rates", "0.0,0.05",
            "--cycles", "150",
            "--no-cache",
            "--report", str(report),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "degradation" in out
        payload = json.loads(report.read_text())
        assert payload["kind"] == "fault-sweep"
        assert [p["fault_rate"] for p in payload["points"]] == [0.0, 0.05]
        assert payload["points"][1]["faults_injected"] > 0

    def test_burst_model_maps_flip_prob(self):
        from repro.cli import _faults_from_args, build_parser

        args = build_parser().parse_args(
            ["sweep", "--fault-model", "burst", "--link-flip-prob", "0.1"]
        )
        faults = _faults_from_args(args)
        assert faults is not None
        assert faults.burst_enter_prob == 0.1
        assert faults.link_flip_prob == 0.0

    def test_invalid_fault_config_exits(self):
        from repro.cli import _faults_from_args, build_parser

        args = build_parser().parse_args(["sweep", "--link-flip-prob", "2.0"])
        with pytest.raises(SystemExit):
            _faults_from_args(args)
