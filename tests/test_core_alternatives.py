"""Tests for the design alternatives (footnote 3 + future-work features):
round-robin network arbitration, oldest-first buffer arbitration, shared
buffer pools and deflection instead of dropping."""

import pytest

from repro.core import PhastlaneConfig, PhastlaneNetwork
from repro.core.router import LOCAL_QUEUE, PhastlaneRouter
from repro.core.routing import build_plan
from repro.core.packet import OpticalPacket
from repro.traffic.injection import BernoulliInjector
from repro.traffic.patterns import pattern_by_name
from repro.traffic.trace import SyntheticSource, Trace, TraceEvent, TraceSource
from repro.util.geometry import MeshGeometry

from helpers import drain

MESH = MeshGeometry(8, 8)


def run_synthetic_with(config, rate=0.3, cycles=400, pattern="transpose", seed=5):
    source = SyntheticSource(
        pattern_by_name(pattern, MESH),
        lambda: BernoulliInjector(rate),
        seed=seed,
        stop_cycle=cycles,
    )
    network = PhastlaneNetwork(config, source)
    drain(network, cycles, 100_000)
    return network


class TestConfigValidation:
    def test_unknown_options_rejected(self):
        with pytest.raises(ValueError):
            PhastlaneConfig(network_arbitration="priority-lottery")
        with pytest.raises(ValueError):
            PhastlaneConfig(buffer_arbitration="lifo")
        with pytest.raises(ValueError):
            PhastlaneConfig(contention_policy="explode")

    def test_defaults_are_paper_choices(self):
        config = PhastlaneConfig()
        assert config.network_arbitration == "fixed"
        assert config.buffer_arbitration == "rotating"
        assert config.contention_policy == "drop"
        assert config.buffer_sharing is False


class TestRoundRobinArbitration:
    """Paper footnote 3: round-robin gives no performance advantage."""

    def test_everything_still_delivered(self):
        config = PhastlaneConfig(mesh=MESH, network_arbitration="round_robin")
        network = run_synthetic_with(config)
        assert network.stats.delivery_ratio == 1.0

    def test_performance_close_to_fixed_priority(self):
        fixed = run_synthetic_with(PhastlaneConfig(mesh=MESH))
        rr = run_synthetic_with(
            PhastlaneConfig(mesh=MESH, network_arbitration="round_robin")
        )
        ratio = rr.stats.mean_latency / fixed.stats.mean_latency
        assert 0.7 < ratio < 1.3

    def test_rotating_pointer_state_created(self):
        config = PhastlaneConfig(mesh=MESH, network_arbitration="round_robin")
        network = run_synthetic_with(config, rate=0.4)
        assert network._rr_pointers  # contention occurred and rotated


class TestOldestFirstBufferArbitration:
    def test_everything_still_delivered(self):
        config = PhastlaneConfig(mesh=MESH, buffer_arbitration="oldest_first")
        network = run_synthetic_with(config)
        assert network.stats.delivery_ratio == 1.0

    def test_oldest_head_selected_first(self):
        config = PhastlaneConfig(mesh=MESH, buffer_arbitration="oldest_first")
        router = PhastlaneRouter(9, config)
        old = OpticalPacket(
            origin=9, plan=build_plan(MESH, 9, 11, 4), generated_cycle=0
        )
        new = OpticalPacket(
            origin=9, plan=build_plan(MESH, 9, 12, 4), generated_cycle=50
        )
        router.enqueue(LOCAL_QUEUE, new)
        router.enqueue(0, old)  # NORTH queue, same desired output (EAST)
        selected = router.select_transmissions(100)
        assert selected[0][1] is old

    def test_tail_latency_no_worse(self):
        rotating = run_synthetic_with(PhastlaneConfig(mesh=MESH), rate=0.4)
        oldest = run_synthetic_with(
            PhastlaneConfig(mesh=MESH, buffer_arbitration="oldest_first"), rate=0.4
        )
        assert (
            oldest.stats.latency.histogram.percentile(99)
            <= rotating.stats.latency.histogram.percentile(99) * 1.4
        )


class TestSharedBuffers:
    def test_shared_pool_never_worse_in_transient_hotspot(self):
        # One overloaded input port: a shared pool (with per-port escape
        # reservations, see PhastlaneRouter.has_space) can borrow slack
        # from idle ports; it must never drop *more* than private queues
        # in a transient convergence.
        private = PhastlaneConfig(mesh=MESH, buffer_entries=1)
        shared = PhastlaneConfig(mesh=MESH, buffer_entries=1, buffer_sharing=True)
        events = [
            TraceEvent(0, 18, 34),
            TraceEvent(0, 17, 26),
            TraceEvent(0, 16, 26),
        ]
        trace = Trace("t", 64, events=events)

        net_private = PhastlaneNetwork(private, TraceSource(trace))
        drain(net_private, 1)
        net_shared = PhastlaneNetwork(shared, TraceSource(trace))
        drain(net_shared, 1)

        assert net_private.stats.packets_dropped >= 1
        assert (
            net_shared.stats.packets_dropped
            <= net_private.stats.packets_dropped
        )
        assert net_shared.stats.delivery_ratio == 1.0

    def test_shared_pool_allows_overgrowth_with_reserved_escapes(self):
        # Pool = 5 x 2 = 10 slots.  One queue may grow past its private
        # capacity (2) but must stop while one escape slot remains reserved
        # for each of the four empty queues — the reservation that prevents
        # the drop/retransmit livelock of naive full sharing.
        config = PhastlaneConfig(mesh=MESH, buffer_entries=2, buffer_sharing=True)
        router = PhastlaneRouter(0, config)
        grown = 0
        while router.has_space(LOCAL_QUEUE):
            router.enqueue(LOCAL_QUEUE, _packet_from(0, 3 + (grown % 2)))
            grown += 1
        assert grown == 6  # 10 slots - 4 reserved escapes
        # Every empty queue can still accept exactly its escape slot.
        for queue_id in range(4):
            assert router.has_space(queue_id)

    def test_delivery_preserved_under_load(self):
        config = PhastlaneConfig(mesh=MESH, buffer_sharing=True)
        network = run_synthetic_with(config, rate=0.4)
        assert network.stats.delivery_ratio == 1.0


class TestDeflection:
    def scenario(self, policy):
        config = PhastlaneConfig(
            mesh=MESH, buffer_entries=1, contention_policy=policy
        )
        events = [
            TraceEvent(0, 18, 34),
            TraceEvent(0, 17, 26),
            TraceEvent(0, 16, 26),
        ]
        trace = Trace("t", 64, events=events)
        network = PhastlaneNetwork(config, TraceSource(trace))
        drain(network, 1)
        return network

    def test_deflection_avoids_the_drop(self):
        dropping = self.scenario("drop")
        deflecting = self.scenario("deflect")
        assert dropping.stats.packets_dropped >= 1
        assert deflecting.stats.packets_dropped == 0
        assert deflecting.deflections >= 1

    def test_deflected_packet_still_delivered(self):
        network = self.scenario("deflect")
        assert network.stats.delivery_ratio == 1.0

    def test_deflection_under_sustained_load(self):
        """Ablation finding: under sustained near-saturation load,
        deflections consume extra bandwidth and re-enter congested regions,
        so drops do NOT decrease — supporting the paper's choice of the
        drop network over hot-potato escape."""
        drop_net = run_synthetic_with(
            PhastlaneConfig(mesh=MESH, buffer_entries=2), rate=0.45
        )
        deflect_net = run_synthetic_with(
            PhastlaneConfig(
                mesh=MESH, buffer_entries=2, contention_policy="deflect"
            ),
            rate=0.45,
        )
        assert deflect_net.deflections > 0
        assert deflect_net.stats.delivery_ratio == 1.0
        assert (
            deflect_net.stats.packets_dropped
            >= 0.5 * drop_net.stats.packets_dropped
        )

    def test_multicast_never_deflected(self):
        config = PhastlaneConfig(
            mesh=MESH, buffer_entries=1, contention_policy="deflect"
        )
        trace = Trace("b", 64, events=[TraceEvent(c, 27, None) for c in range(0, 60, 2)])
        network = PhastlaneNetwork(config, TraceSource(trace))
        drain(network, 60, 100_000)
        # Broadcast storms may drop (multicasts are excluded from
        # deflection), but every destination is eventually covered.
        assert network.stats.delivery_ratio == 1.0


def _packet_from(src: int, dst: int) -> OpticalPacket:
    return OpticalPacket(origin=src, plan=build_plan(MESH, src, dst, 4), generated_cycle=0)
