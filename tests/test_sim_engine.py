"""Tests for the two-phase cycle engine."""

import pytest

from repro.sim.engine import SimulationEngine


class Counter:
    """A Clocked component counting step/commit invocations."""

    def __init__(self):
        self.steps: list[int] = []
        self.commits: list[int] = []

    def step(self, cycle: int) -> None:
        self.steps.append(cycle)

    def commit(self, cycle: int) -> None:
        self.commits.append(cycle)


class TwoPhaseProbe:
    """Records whether all steps happen before any commit within a cycle."""

    order: list[str] = []

    def step(self, cycle: int) -> None:
        TwoPhaseProbe.order.append("step")

    def commit(self, cycle: int) -> None:
        TwoPhaseProbe.order.append("commit")


class TestEngine:
    def test_tick_advances_cycle(self):
        engine = SimulationEngine()
        engine.tick()
        assert engine.cycle == 1

    def test_components_see_monotonic_cycles(self):
        engine = SimulationEngine()
        counter = Counter()
        engine.register(counter)
        engine.run(5)
        assert counter.steps == [0, 1, 2, 3, 4]
        assert counter.commits == [0, 1, 2, 3, 4]

    def test_all_steps_before_all_commits(self):
        TwoPhaseProbe.order = []
        engine = SimulationEngine()
        engine.register(TwoPhaseProbe())
        engine.register(TwoPhaseProbe())
        engine.tick()
        assert TwoPhaseProbe.order == ["step", "step", "commit", "commit"]

    def test_rejects_non_clocked_component(self):
        engine = SimulationEngine()
        with pytest.raises(TypeError):
            engine.register(object())

    def test_run_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulationEngine().run(-1)

    def test_run_until_stops_at_predicate(self):
        engine = SimulationEngine()
        assert engine.run_until(lambda: engine.cycle >= 3, max_cycles=10)
        assert engine.cycle == 3

    def test_run_until_timeout_returns_false(self):
        engine = SimulationEngine()
        assert not engine.run_until(lambda: False, max_cycles=5)
        assert engine.cycle == 5

    def test_run_until_presatisfied_costs_nothing(self):
        engine = SimulationEngine()
        assert engine.run_until(lambda: True, max_cycles=10)
        assert engine.cycle == 0

    def test_watcher_called_after_each_cycle(self):
        engine = SimulationEngine()
        seen = []
        engine.add_watcher(seen.append)
        engine.run(3)
        assert seen == [0, 1, 2]
