"""Tests for the per-figure experiment modules (fast analytic figures, plus
miniature versions of the simulation campaigns)."""

import pytest

from repro.harness.experiments import (
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    tables,
)
from repro.harness.experiments.configs import optical_configs, standard_configs
from repro.harness.experiments.splash2_runs import compute_matrix


class TestAnalyticFigures:
    def test_fig04_renders(self):
        data = fig04.compute()
        text = fig04.render(data)
        assert "transmit/optimistic" in text
        assert "Canonical 16 nm endpoints" in text

    def test_fig05_renders_all_rows(self):
        data = fig05.compute()
        assert len(data.delays) == 9
        text = fig05.render(data)
        assert "PP (ps)" in text and "pessimistic" in text

    def test_fig06_matches_paper(self):
        data = fig06.compute()
        assert data.wdm_independent
        for scenario, expected in fig06.EXPECTED_HOPS.items():
            assert set(data.hops[scenario].values()) == {expected}
        assert "paper" in fig06.render(data)

    def test_fig07_anchor_table(self):
        data = fig07.compute()
        for (wdm, hops, eta), paper_w in fig07.PAPER_ANCHORS.items():
            assert data.at(wdm, hops, eta).peak_power_w == pytest.approx(
                paper_w, rel=0.05
            )
        assert "peak optical power" in fig07.render(data)

    def test_fig07_missing_point_rejected(self):
        data = fig07.compute()
        with pytest.raises(KeyError):
            data.at(99, 1, 0.98)

    def test_fig08_sweet_spot(self):
        data = fig08.compute()
        assert data.sweet_spot == 64
        assert "sweet spot: 64" in fig08.render(data)


class TestTables:
    def test_all_four_tables_render(self):
        text = tables.render_all()
        for title in ("Table 1", "Table 2", "Table 3", "Table 4"):
            assert title in text

    def test_table_contents(self):
        assert tables.table2()["number_of_vcs_per_port"] == 10
        assert tables.table3()["fmm"] == "512 K particles"
        assert tables.table4()["block_size"] == "32B L1, 64B L2"

    def test_default_config_matches_table1(self):
        assert tables.phastlane_matches_table1()


class TestConfigSets:
    def test_standard_configs_cover_section5(self):
        labels = set(standard_configs())
        assert labels == {
            "Electrical3",
            "Electrical2",
            "Optical4",
            "Optical5",
            "Optical8",
            "Optical4B32",
            "Optical4B64",
            "Optical4IB",
        }

    def test_optical_variants(self):
        configs = optical_configs()
        assert configs["Optical4B64"].buffer_entries == 64
        assert configs["Optical4IB"].buffer_entries is None
        assert configs["Optical8"].max_hops_per_cycle == 8


class TestMiniatureCampaigns:
    """Scaled-down versions of the Fig 9-11 simulation campaigns."""

    def test_fig09_miniature(self):
        data = fig09.compute(
            patterns=("transpose",),
            labels=("Optical4", "Electrical3"),
            rates=(0.05,),
            cycles=400,
        )
        optical = data.curves["transpose"]["Optical4"][0]
        electrical = data.curves["transpose"]["Electrical3"][0]
        assert optical.mean_latency < electrical.mean_latency
        assert "Figure 9" in fig09.render(data)

    def test_fig10_fig11_share_matrix(self):
        matrix = compute_matrix(
            benchmarks=("radix",),
            labels=("Electrical3", "Optical4"),
            duration_cycles=400,
        )
        speedups = fig10.from_matrix(matrix)
        power = fig11.from_matrix(matrix)
        assert speedups.speedups["radix"]["Electrical3"] == 1.0
        assert speedups.speedups["radix"]["Optical4"] > 1.5
        assert power.savings_vs_baseline("radix", "Optical4") > 0.5
        assert "geomean" in fig10.render(speedups)
        assert "mean saving" in fig11.render(power)

    def test_matrix_cached(self):
        first = compute_matrix(
            benchmarks=("radix",),
            labels=("Electrical3", "Optical4"),
            duration_cycles=400,
        )
        second = compute_matrix(
            benchmarks=("radix",),
            labels=("Electrical3", "Optical4"),
            duration_cycles=400,
        )
        assert first is second
