"""Tests for the electrical NIC."""

import pytest

from repro.electrical.config import ElectricalConfig
from repro.electrical.nic import VCTM_SETUP_CYCLES, ElectricalNic
from repro.electrical.vctm import VirtualCircuitTreeCache
from repro.sim.stats import NetworkStats
from repro.traffic.coherence import MessageKind
from repro.traffic.trace import TraceEvent
from repro.util.geometry import MeshGeometry


def make_nic(node=5, **overrides):
    config = ElectricalConfig(mesh=MeshGeometry(8, 8), **overrides)
    stats = NetworkStats()
    return ElectricalNic(node, config, stats, VirtualCircuitTreeCache()), stats


class TestGeneration:
    def test_unicast_becomes_single_flit(self):
        nic, stats = make_nic()
        nic.generate([TraceEvent(0, 5, 9)], 0)
        assert nic.occupancy == 1
        assert stats.packets_generated == 1

    def test_broadcast_is_one_flit_many_destinations(self):
        nic, stats = make_nic()
        nic.generate([TraceEvent(0, 5, None, MessageKind.MISS_REQUEST)], 0)
        flit = nic.next_injectable(VCTM_SETUP_CYCLES)
        assert flit is not None
        assert len(flit.destinations) == 63
        assert stats.packets_generated == 63  # one per expected delivery
        assert stats.multicast_packets == 1

    def test_wrong_node_rejected(self):
        nic, _ = make_nic(node=5)
        with pytest.raises(ValueError):
            nic.generate([TraceEvent(0, 4, 9)], 0)


class TestVctmSetupDelay:
    def test_cold_tree_delays_injection(self):
        nic, _ = make_nic()
        nic.generate([TraceEvent(0, 5, None)], 0)
        assert nic.next_injectable(0) is None
        assert nic.next_injectable(VCTM_SETUP_CYCLES) is not None

    def test_warm_tree_injects_immediately(self):
        nic, _ = make_nic()
        nic.generate([TraceEvent(0, 5, None)], 0)
        nic.consume_head(VCTM_SETUP_CYCLES)
        nic.generate([TraceEvent(20, 5, None)], 20)
        assert nic.next_injectable(20) is not None

    def test_unicast_never_delayed(self):
        nic, _ = make_nic()
        nic.generate([TraceEvent(0, 5, 9)], 0)
        assert nic.next_injectable(0) is not None


class TestBufferLimits:
    def test_finite_buffer_overflow_queues(self):
        nic, _ = make_nic(nic_buffer_entries=3)
        nic.generate([TraceEvent(0, 5, 9) for _ in range(7)], 0)
        assert nic.occupancy == 3
        assert nic.backlog == 7

    def test_refill_after_consume(self):
        nic, _ = make_nic(nic_buffer_entries=2)
        nic.generate([TraceEvent(0, 5, 9) for _ in range(4)], 0)
        nic.consume_head(0)
        assert nic.occupancy == 2  # backfilled from the generation queue
        assert nic.backlog == 3

    def test_consume_empty_rejected(self):
        nic, _ = make_nic()
        with pytest.raises(RuntimeError):
            nic.consume_head(0)

    def test_consume_records_injection(self):
        nic, stats = make_nic()
        nic.generate([TraceEvent(3, 5, 9)], 3)
        flit = nic.consume_head(7)
        assert flit.injected_cycle == 7
        assert stats.packets_injected == 1

    def test_idle_transitions(self):
        nic, _ = make_nic()
        assert nic.idle()
        nic.generate([TraceEvent(0, 5, 9)], 0)
        assert not nic.idle()
        nic.consume_head(0)
        assert nic.idle()
