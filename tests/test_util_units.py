"""Tests for unit conversions."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.units import MM, PJ, PS, UM, cycle_time_ps, from_db, to_db


class TestDecibels:
    def test_known_values(self):
        assert to_db(10.0) == pytest.approx(10.0)
        assert to_db(1.0) == pytest.approx(0.0)
        assert from_db(3.0103) == pytest.approx(2.0, rel=1e-4)

    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_round_trip(self, ratio):
        assert from_db(to_db(ratio)) == pytest.approx(ratio, rel=1e-9)

    def test_non_positive_ratio_rejected(self):
        with pytest.raises(ValueError):
            to_db(0.0)
        with pytest.raises(ValueError):
            to_db(-1.0)


class TestCycleTime:
    def test_4ghz_is_250ps(self):
        assert cycle_time_ps(4.0) == pytest.approx(250.0)

    def test_1ghz_is_1ns(self):
        assert cycle_time_ps(1.0) == pytest.approx(1000.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            cycle_time_ps(0.0)


class TestUnitMultipliers:
    def test_micrometre_in_millimetres(self):
        assert 1000 * UM == pytest.approx(1 * MM)

    def test_base_units_are_one(self):
        assert PS == 1.0 and MM == 1.0 and PJ == 1.0

    def test_db_of_square_is_double(self):
        assert to_db(4.0) == pytest.approx(2 * to_db(2.0))
        assert math.isclose(to_db(100.0), 20.0)
