"""Tests for deterministic RNG streams."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42, "x")
        b = DeterministicRng(42, "x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_streams_diverge(self):
        a = DeterministicRng(42, "x")
        b = DeterministicRng(42, "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_diverge(self):
        a = DeterministicRng(1, "x")
        b = DeterministicRng(2, "x")
        assert a.random() != b.random()

    def test_fork_is_deterministic(self):
        a = DeterministicRng(7, "root").fork("child")
        b = DeterministicRng(7, "root").fork("child")
        assert a.random() == b.random()

    def test_fork_differs_from_parent(self):
        parent = DeterministicRng(7, "root")
        child = parent.fork("child")
        assert parent.random() != child.random()


class TestDistributions:
    def test_bernoulli_extremes(self):
        rng = DeterministicRng(1)
        assert not any(rng.bernoulli(0.0) for _ in range(100))
        assert all(rng.bernoulli(1.0) for _ in range(100))

    def test_bernoulli_rate(self):
        rng = DeterministicRng(1, "rate")
        hits = sum(rng.bernoulli(0.3) for _ in range(20_000))
        assert 0.27 < hits / 20_000 < 0.33

    def test_bernoulli_rejects_out_of_range(self):
        rng = DeterministicRng(1)
        with pytest.raises(ValueError):
            rng.bernoulli(1.5)

    def test_geometric_mean(self):
        rng = DeterministicRng(3, "geo")
        samples = [rng.geometric(0.25) for _ in range(5_000)]
        mean = sum(samples) / len(samples)
        assert 2.6 < mean < 3.4  # E = (1-p)/p = 3

    def test_geometric_rejects_zero(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).geometric(0.0)

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    def test_reproducible_for_any_label(self, seed, stream):
        assert (
            DeterministicRng(seed, stream).random()
            == DeterministicRng(seed, stream).random()
        )
