"""Pytest configuration for the Phastlane reproduction test suite.

Shared helpers live in :mod:`helpers` (added to ``pythonpath`` via
``pyproject.toml``); hypothesis settings are per-test where needed.
"""
