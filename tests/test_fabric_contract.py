"""Cross-backend contract suite for the fabric layer.

Every backend in the registry — optical, electrical, ideal, and any
future addition — must honour the same lifecycle: build from a config,
drain a finite trace, report idle correctly, keep honest stats
counters, and emit TraceHub lifecycle events in causal order.  The
tests parametrize over ``registered_backends()`` so a newly registered
backend is covered automatically, and over every registered topology
each backend supports (cycle-accurate pipelines run on grid topologies;
the analytic ideal backend also covers the concentrated mesh).
"""

from dataclasses import replace

import pytest

from repro.core.config import PhastlaneConfig
from repro.electrical.config import ElectricalConfig
from repro.fabric import (
    FabricError,
    IdealConfig,
    NetworkBackend,
    make_network,
    registered_backends,
)
from repro.faults import FaultConfig
from repro.harness.exec import RunSpec, SyntheticWorkload, TraceFileWorkload
from repro.harness.report import stats_to_dict
from repro.harness.runner import run
from repro.obs.tracers import CollectingTracer
from repro.sim.engine import SimulationEngine
from repro.traffic.trace import Trace, TraceEvent, TraceSource
from repro.util.geometry import MeshGeometry
from repro.vectorized import VectorizedConfig

MESH = MeshGeometry(4, 4)

#: One small-mesh config per registered backend kind.
CONFIGS = {
    "phastlane": PhastlaneConfig(mesh=MESH, max_hops_per_cycle=4),
    "electrical": ElectricalConfig(mesh=MESH),
    "ideal": IdealConfig(mesh=MESH),
    "vectorized": VectorizedConfig(mesh=MESH),
}

#: The registered topologies each backend kind must honour the contract
#: on.  Cycle-accurate pipelines need a grid (mesh or torus); the analytic
#: ideal backend also accepts the concentrated mesh.
TOPOLOGY_SUPPORT = {
    "phastlane": ("mesh", "torus"),
    "electrical": ("mesh", "torus"),
    "ideal": ("mesh", "torus", "cmesh"),
    "vectorized": ("mesh", "torus"),
}


def all_kinds():
    return sorted(registered_backends())


def _config_on(kind, topology):
    base = CONFIGS[kind]
    return base if topology == "mesh" else replace(base, topology=topology)


@pytest.fixture(
    params=[
        (kind, topology)
        for kind in sorted(CONFIGS)
        for topology in TOPOLOGY_SUPPORT[kind]
    ],
    ids=lambda param: f"{param[0]}-{param[1]}",
)
def config(request):
    kind, topology = request.param
    return _config_on(kind, topology)


def small_trace():
    return Trace(
        "contract",
        MESH.num_nodes,
        events=[TraceEvent(cycle, cycle % 16, (cycle + 5) % 16) for cycle in range(20)],
    )


def drain(network, max_cycles=5000):
    engine = SimulationEngine()
    engine.register(network)
    drained = engine.run_until(lambda: network.idle(engine.cycle), max_cycles)
    return engine, drained


def test_every_builtin_kind_is_registered():
    assert set(all_kinds()) >= {"phastlane", "electrical", "ideal"}
    assert set(CONFIGS) == set(all_kinds()), (
        "a backend was registered without a contract-suite config; "
        "add one to CONFIGS above"
    )


def test_contract_covers_at_least_three_registered_topologies():
    from repro.topology import registered_topologies

    covered = {t for topologies in TOPOLOGY_SUPPORT.values() for t in topologies}
    assert covered <= set(registered_topologies())
    assert len(covered) >= 3, (
        "the contract suite must exercise at least three registered "
        "topologies"
    )


@pytest.mark.parametrize("kind", ["phastlane", "electrical", "vectorized"])
def test_cycle_accurate_backends_refuse_non_grid_topologies(kind):
    """A pipeline that cannot model a topology must refuse at build time."""
    with pytest.raises(FabricError, match="grid topology"):
        make_network(_config_on(kind, "cmesh"))


def test_backend_satisfies_protocol(config):
    network = make_network(config)
    assert isinstance(network, NetworkBackend)
    assert network.config is config
    assert network.mesh is MESH


def test_drains_small_trace(config, tmp_path):
    path = tmp_path / "contract.trace"
    small_trace().save(path)
    result = run(RunSpec(config, TraceFileWorkload(str(path))))
    assert result.drained
    assert result.stats.packets_generated == 20
    assert result.stats.packets_delivered == 20
    assert result.mean_latency >= 1.0


def test_idle_semantics(config, tmp_path):
    path = tmp_path / "contract.trace"
    small_trace().save(path)
    network = make_network(config)
    network.source = TraceSource(Trace.load(path))

    assert not network.idle(0)  # work still pending at cycle 0
    engine, drained = drain(network)
    assert drained
    assert network.idle(engine.cycle)  # drained networks report idle


def test_stats_counters_consistent(config, tmp_path):
    path = tmp_path / "contract.trace"
    small_trace().save(path)
    result = run(RunSpec(config, TraceFileWorkload(str(path))))
    stats = result.stats
    assert stats.packets_delivered <= stats.packets_generated
    assert stats.final_cycle > 0
    assert stats.hops_traversed > 0
    payload = stats_to_dict(stats)
    assert payload["delivery_ratio"] == 1.0


def test_trace_hub_lifecycle_order(config):
    network = make_network(config)
    recorder = CollectingTracer()
    network.add_tracer(recorder)
    network.source = TraceSource(small_trace())
    _, drained = drain(network)
    assert drained

    assert recorder.events, "backend emitted no trace events"
    assert recorder.by_kind("generated")
    assert recorder.by_kind("injected")
    assert recorder.by_kind("delivered")
    by_uid = {}
    for event in recorder.events:
        by_uid.setdefault(event.uid, []).append(event)
    for uid, history in by_uid.items():
        names = [event.kind for event in history]
        # Causal order: a packet is generated, then injected, then
        # delivered; blocked/buffered events may interleave in between.
        assert names[0] == "generated", (uid, names)
        if "injected" in names:
            assert names.index("injected") > names.index("generated")
        if "delivered" in names:
            assert names[-1] == "delivered", (uid, names)
        cycles = [event.cycle for event in history]
        assert cycles == sorted(cycles), (uid, names, cycles)


def test_two_runs_are_bit_identical(config):
    spec = RunSpec(config, SyntheticWorkload("uniform", 0.1), cycles=150, seed=11)
    first = run(spec)
    second = run(spec)
    assert stats_to_dict(first.stats) == stats_to_dict(second.stats)
    assert first == second


#: A fault model every degradation-capable backend must survive: one dead
#: port plus transient flips, with a tight retry budget so permanent
#: faults convert to accounted losses instead of livelock.
CONTRACT_FAULTS = FaultConfig(
    seed=3, dead_port_count=1, link_flip_prob=0.05, retry_limit=4
)


def test_faulted_run_drains_or_refuses(config):
    """A backend either degrades gracefully under faults (drains, conserves
    packets) or refuses the fault schedule with FabricError at build time —
    it must never accept faults and then hang or miscount."""
    try:
        network = make_network(config, faults=CONTRACT_FAULTS)
    except FabricError:
        return  # an honest refusal satisfies the contract
    network.source = TraceSource(small_trace())
    _, drained = drain(network)
    assert drained, "faulted backends must still drain (graceful degradation)"
    stats = network.stats
    assert stats.packets_generated == 20
    assert stats.packets_delivered + stats.packets_lost == stats.packets_generated


def test_fault_events_interleave_causally(config):
    """Fault lifecycle events join the per-packet causal order: injection
    still precedes them, cycles stay monotonic, and a packet that ends in
    fault_dropped is never also delivered."""
    try:
        network = make_network(config, faults=CONTRACT_FAULTS)
    except FabricError:
        return
    recorder = CollectingTracer()
    network.add_tracer(recorder)
    network.source = TraceSource(small_trace())
    _, drained = drain(network)
    assert drained
    assert recorder.by_kind("fault_injected"), "faults fired but never traced"

    by_uid = {}
    for event in recorder.events:
        if event.uid >= 0:  # uid -1 carries node-level events (NIC stalls)
            by_uid.setdefault(event.uid, []).append(event)
    for uid, history in by_uid.items():
        names = [event.kind for event in history]
        cycles = [event.cycle for event in history]
        assert cycles == sorted(cycles), (uid, names, cycles)
        for kind in ("fault_injected", "fault_masked", "fault_dropped"):
            if kind in names:
                assert names.index(kind) > names.index("injected"), (uid, names)
        if "fault_dropped" in names:
            assert "delivered" not in names[names.index("fault_dropped"):], (
                uid,
                names,
            )
