"""Tests for the parallel campaign executor, run-spec API and result cache."""

import json

import pytest

from repro.core.config import PhastlaneConfig
from repro.electrical.config import ElectricalConfig
from repro.fabric import FabricError
from repro.harness.exec import (
    CALIBRATION_STAMP,
    Executor,
    ResultCache,
    RunSpec,
    Splash2Workload,
    SyntheticWorkload,
    TraceFileWorkload,
    config_from_dict,
    config_to_dict,
    workload_from_dict,
)
from repro.harness.report import (
    manifest_to_dict,
    point_to_dict,
    result_to_dict,
    write_report,
)
from repro.harness.runner import run
from repro.harness.sweeps import latency_vs_injection
from repro.traffic.splash2 import generate_splash2_trace
from repro.traffic.trace import Trace, TraceEvent
from repro.util.geometry import MeshGeometry

MESH = MeshGeometry(4, 4)
OPTICAL = PhastlaneConfig(mesh=MESH, max_hops_per_cycle=4)
ELECTRICAL = ElectricalConfig(mesh=MESH)


def small_specs(rates=(0.05, 0.1, 0.2), cycles=150):
    return [
        RunSpec(config, SyntheticWorkload("uniform", rate), cycles=cycles)
        for config in (OPTICAL, ELECTRICAL)
        for rate in rates
    ]


class TestLabels:
    def test_label_property_on_both_configs(self):
        assert OPTICAL.label == "Optical4"
        assert ELECTRICAL.label == "Electrical3"
        assert ElectricalConfig(mesh=MESH, router_delay_cycles=2).label == (
            "Electrical2"
        )


class TestSpecSerialisation:
    @pytest.mark.parametrize("config", [OPTICAL, ELECTRICAL])
    def test_config_round_trip(self, config):
        restored = config_from_dict(config_to_dict(config))
        assert restored == config

    def test_unknown_config_kind_rejected(self):
        with pytest.raises(FabricError):
            config_from_dict({"kind": "quantum", "mesh": [4, 4]})
        with pytest.raises(FabricError):
            config_to_dict(object())

    @pytest.mark.parametrize(
        "workload",
        [SyntheticWorkload("transpose", 0.25), Splash2Workload("radix")],
    )
    def test_workload_round_trip(self, workload):
        assert workload_from_dict(workload.to_dict()) == workload

    def test_unknown_workload_kind_rejected(self):
        with pytest.raises(ValueError):
            workload_from_dict({"kind": "quantum"})

    def test_spec_round_trip(self):
        spec = RunSpec(
            OPTICAL,
            SyntheticWorkload("transpose", 0.1),
            cycles=300,
            warmup=50,
            seed=7,
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_trace_file_workload_digests_content(self, tmp_path):
        path = tmp_path / "t.trace"
        trace = Trace("t", 16, events=[TraceEvent(0, 0, 5)])
        trace.save(path)
        spec = RunSpec(OPTICAL, TraceFileWorkload(str(path)))
        before = spec.digest()
        trace.append(TraceEvent(3, 1, 2))
        trace.save(path)
        assert spec.digest() != before  # editing the file invalidates the digest

    def test_digest_stable_and_sensitive(self):
        spec = RunSpec(OPTICAL, SyntheticWorkload("uniform", 0.1), cycles=200)
        assert spec.digest() == spec.digest()
        assert len(spec.digest()) == 64
        for other in (
            RunSpec(OPTICAL, SyntheticWorkload("uniform", 0.2), cycles=200),
            RunSpec(OPTICAL, SyntheticWorkload("uniform", 0.1), cycles=201),
            RunSpec(OPTICAL, SyntheticWorkload("uniform", 0.1), cycles=200, seed=2),
            RunSpec(ELECTRICAL, SyntheticWorkload("uniform", 0.1), cycles=200),
        ):
            assert other.digest() != spec.digest()

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            RunSpec(OPTICAL, SyntheticWorkload("uniform", 0.1), cycles=0)


class TestRun:
    def test_synthetic_run_is_deterministic(self):
        spec = RunSpec(OPTICAL, SyntheticWorkload("transpose", 0.1), cycles=200)
        first = run(spec)
        second = run(spec)
        assert first == second  # wall time is excluded from equality
        assert first.workload == "transpose@0.1"

    def test_wall_time_and_packet_rate_recorded(self):
        result = run(RunSpec(OPTICAL, SyntheticWorkload("uniform", 0.1), cycles=200))
        assert result.wall_time_s > 0
        assert result.packets_per_second > 0

    def test_splash2_workload(self):
        result = run(RunSpec(OPTICAL, Splash2Workload("radix"), cycles=120))
        assert result.workload == "radix"
        assert result.drained

    def test_trace_file_workload_runs(self, tmp_path):
        path = tmp_path / "fft.trace"
        trace = generate_splash2_trace("fft", mesh=MESH, duration_cycles=100)
        trace.save(path)
        result = run(RunSpec(OPTICAL, TraceFileWorkload(str(path))))
        assert result.workload == trace.name
        assert result.stats.packets_delivered > 0
        assert result.drained

    def test_unknown_workload_type_rejected(self):
        spec = RunSpec(OPTICAL, SyntheticWorkload("uniform", 0.1))
        object.__setattr__(spec, "workload", "not a workload")
        with pytest.raises(TypeError):
            run(spec)


class TestExecutorDeterminism:
    def test_parallel_equals_serial(self):
        specs = small_specs()
        serial = Executor(workers=1).map(specs)
        parallel = Executor(workers=4).map(specs)
        assert serial == parallel

    def test_sweep_points_identical_across_worker_counts(self):
        serial = latency_vs_injection(
            OPTICAL, "transpose", (0.05, 0.2), cycles=150, executor=Executor()
        )
        parallel = latency_vs_injection(
            OPTICAL, "transpose", (0.05, 0.2), cycles=150,
            executor=Executor(workers=4),
        )
        assert serial == parallel

    def test_order_preserved(self):
        specs = small_specs()
        results = Executor(workers=3).map(specs)
        assert [r.label for r in results] == [s.label for s in specs]
        assert [r.workload for r in results] == [s.workload_name for s in specs]

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            Executor(workers=0)


class TestResultCache:
    def test_second_campaign_is_all_hits_and_byte_identical(self, tmp_path):
        specs = small_specs(rates=(0.05, 0.1), cycles=120)
        cache = ResultCache(tmp_path / "cache")

        first = Executor(workers=2, cache=cache)
        results_a = first.map(specs)
        assert first.cache_hits == 0

        second = Executor(workers=1, cache=cache)
        results_b = second.map(specs)
        assert second.cache_hits == len(specs)
        assert results_a == results_b

        payload_a = {"results": [result_to_dict(r) for r in results_a]}
        payload_b = {"results": [result_to_dict(r) for r in results_b]}
        path_a = write_report(tmp_path / "a.json", payload_a)
        path_b = write_report(tmp_path / "b.json", payload_b)
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_manifest_counts_cache_hits(self, tmp_path):
        specs = small_specs(rates=(0.05,), cycles=100)
        cache = ResultCache(tmp_path)
        Executor(cache=cache).map(specs)
        executor = Executor(cache=cache)
        executor.map(specs)
        manifest = manifest_to_dict(executor.events)
        assert manifest["runs"] == len(specs)
        assert manifest["cache_hits"] == len(specs)
        assert [entry["index"] for entry in manifest["entries"]] == [0, 1]
        assert manifest["entries"][0]["digest"] == specs[0].digest()

    def test_calibration_stamp_invalidates(self, tmp_path):
        spec = small_specs(rates=(0.05,), cycles=100)[0]
        cache = ResultCache(tmp_path, calibration=CALIBRATION_STAMP)
        Executor(cache=cache).map([spec])
        recalibrated = Executor(
            cache=ResultCache(tmp_path, calibration="recalibrated")
        )
        recalibrated.map([spec])
        assert recalibrated.cache_hits == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = small_specs(rates=(0.05,), cycles=100)[0]
        cache = ResultCache(tmp_path)
        Executor(cache=cache).map([spec])
        cache.path_for(spec).write_text("{not json")
        executor = Executor(cache=cache)
        executor.map([spec])
        assert executor.cache_hits == 0
        # ... and the entry was rewritten intact.
        assert json.loads(cache.path_for(spec).read_text())["digest"] == spec.digest()

    def test_no_cache_executor_never_touches_disk(self, tmp_path):
        executor = Executor(workers=1, cache=None)
        executor.map(small_specs(rates=(0.05,), cycles=100))
        assert list(tmp_path.iterdir()) == []


class TestProgress:
    def test_callback_sees_every_run(self):
        seen = []
        specs = small_specs(rates=(0.05, 0.1), cycles=100)
        Executor(progress=seen.append).map(specs)
        assert len(seen) == len(specs)
        assert sorted(event.index for event in seen) == list(range(len(specs)))
        assert all(event.total == len(specs) for event in seen)
        assert not any(event.cache_hit for event in seen)

    def test_events_accumulate_across_maps(self):
        executor = Executor()
        specs = small_specs(rates=(0.05,), cycles=100)
        executor.map(specs)
        executor.map(specs)
        assert len(executor.events) == 2 * len(specs)


class TestCampaignWiring:
    def test_compute_matrix_through_executor_and_cache(self, tmp_path):
        from repro.harness.experiments.splash2_runs import compute_matrix

        kwargs = dict(
            benchmarks=("radix",), labels=("Optical4",), duration_cycles=300
        )
        first = Executor(cache=ResultCache(tmp_path))
        matrix = compute_matrix(executor=first, **kwargs)
        assert ("radix", "Optical4") in matrix.results
        assert first.cache_hits == 0

        second = Executor(cache=ResultCache(tmp_path))
        rerun = compute_matrix(executor=second, **kwargs)
        assert second.cache_hits == 1
        assert rerun.results == matrix.results


class TestSweepReport:
    def test_point_payload_marks_saturation_as_null(self):
        points = latency_vs_injection(
            ELECTRICAL, "transpose", (0.05, 0.95), cycles=400
        )
        payloads = [point_to_dict(p) for p in points]
        assert payloads[0]["mean_latency"] is not None
        assert payloads[-1]["mean_latency"] is None
