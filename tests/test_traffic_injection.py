"""Tests for the injection processes."""

import pytest

from repro.sim.rng import DeterministicRng
from repro.traffic.injection import BernoulliInjector, BurstyInjector, PhasedInjector


def measure_rate(injector, cycles=20_000, label="inj"):
    rng = DeterministicRng(5, label)
    return sum(injector.should_inject(c, rng) for c in range(cycles)) / cycles


class TestBernoulli:
    def test_mean_rate_property(self):
        assert BernoulliInjector(0.25).mean_rate == 0.25

    def test_empirical_rate(self):
        assert measure_rate(BernoulliInjector(0.2)) == pytest.approx(0.2, abs=0.02)

    def test_extremes(self):
        assert measure_rate(BernoulliInjector(0.0), 500) == 0.0
        assert measure_rate(BernoulliInjector(1.0), 500) == 1.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            BernoulliInjector(1.1)
        with pytest.raises(ValueError):
            BernoulliInjector(-0.1)


class TestBursty:
    def test_mean_rate_formula(self):
        injector = BurstyInjector(burst_rate=0.6, burst_length=30, gap_length=70)
        assert injector.mean_rate == pytest.approx(0.6 * 0.3)

    def test_empirical_rate_matches_mean(self):
        injector = BurstyInjector(burst_rate=0.5, burst_length=40, gap_length=60)
        assert measure_rate(injector, 60_000) == pytest.approx(
            injector.mean_rate, rel=0.15
        )

    def test_burstiness_visible(self):
        """Injections cluster: variance of per-window counts beats Bernoulli."""
        injector = BurstyInjector(burst_rate=0.9, burst_length=50, gap_length=150)
        rng = DeterministicRng(5, "burst")
        window, counts, current = 50, [], 0
        for cycle in range(20_000):
            current += injector.should_inject(cycle, rng)
            if cycle % window == window - 1:
                counts.append(current)
                current = 0
        mean = sum(counts) / len(counts)
        variance = sum((c - mean) ** 2 for c in counts) / len(counts)
        assert variance > 2 * mean  # Poisson-ish traffic would have var ~ mean

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BurstyInjector(0.0, 10, 10)
        with pytest.raises(ValueError):
            BurstyInjector(0.5, 0, 10)
        with pytest.raises(ValueError):
            BurstyInjector(0.5, 10, -1)


class TestPhased:
    def test_mean_rate(self):
        injector = PhasedInjector(burst_rate=0.5, burst_length=20, gap_length=80)
        assert injector.mean_rate == pytest.approx(0.1)
        assert injector.period == 100

    def test_gap_cycles_are_silent(self):
        injector = PhasedInjector(burst_rate=1.0, burst_length=10, gap_length=90)
        rng = DeterministicRng(5, "phase")
        for cycle in range(300):
            in_burst = (cycle % 100) < 10
            fired = injector.should_inject(cycle, rng)
            if not in_burst:
                assert not fired

    def test_burst_at_rate_one_always_fires(self):
        injector = PhasedInjector(burst_rate=1.0, burst_length=10, gap_length=90)
        rng = DeterministicRng(5, "full")
        assert all(injector.should_inject(c, rng) for c in range(10))

    def test_synchronized_across_instances(self):
        """Two nodes with independent RNGs still share the burst schedule."""
        a = PhasedInjector(1.0, 15, 85)
        b = PhasedInjector(1.0, 15, 85)
        ra, rb = DeterministicRng(1, "a"), DeterministicRng(2, "b")
        for cycle in range(200):
            assert a.should_inject(cycle, ra) == b.should_inject(cycle, rb)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            PhasedInjector(0.0, 10, 10)
        with pytest.raises(ValueError):
            PhasedInjector(0.5, 0, 10)
