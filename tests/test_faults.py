"""Fault-injection layer: config contract, schedule determinism, degradation.

Covers the three guarantees the fault subsystem makes:

* **Identity** — a fault config is part of run-spec identity (digests and
  cache keys change with it), while a *disabled* config is normalised away
  so fault-free serialisation is byte-identical to a tree without faults.
* **Determinism** — schedules are pure functions of the fault seed and the
  coordinates queried, independent of traffic and of query order, so the
  same faulted spec is bit-identical run-to-run and serial-vs-parallel.
* **Graceful degradation** — both simulators drain under permanent and
  transient faults, and every generated packet is either delivered or
  accounted as lost (conservation; see also test_properties.py).
"""

import pytest

from repro.core.config import PhastlaneConfig
from repro.electrical.config import ElectricalConfig
from repro.fabric import FabricError, IdealConfig, make_network
from repro.faults import FaultConfig, FaultSchedule
from repro.harness.exec import Executor, RunSpec, SyntheticWorkload, TraceFileWorkload
from repro.harness.report import (
    result_from_dict,
    result_to_dict,
    stats_from_dict,
    stats_to_dict,
)
from repro.harness.runner import run
from repro.harness.sweeps import fault_sweep_specs, throughput_vs_fault_rate
from repro.obs import ObsConfig
from repro.obs.tracers import CollectingTracer
from repro.sim.engine import SimulationEngine
from repro.traffic.trace import Trace, TraceEvent, TraceSource
from repro.util.geometry import MeshGeometry

MESH = MeshGeometry(4, 4)
OPT = PhastlaneConfig(mesh=MESH, max_hops_per_cycle=4)
ELE = ElectricalConfig(mesh=MESH)


class TestFaultConfig:
    def test_defaults_are_disabled(self):
        assert not FaultConfig().enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dead_ports": ((5, 1),)},
            {"dead_port_count": 1},
            {"link_flip_prob": 0.01},
            {"burst_enter_prob": 0.01},
            {"corrupt_prob": 0.01},
            {"nic_stall_prob": 0.01},
        ],
    )
    def test_any_model_enables(self, kwargs):
        assert FaultConfig(**kwargs).enabled

    def test_dead_ports_sorted_and_deduped(self):
        config = FaultConfig(dead_ports=((9, 2), (5, 1), (9, 2)))
        assert config.dead_ports == ((5, 1), (9, 2))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"seed": -1},
            {"dead_ports": ((5, 4),)},
            {"dead_ports": ((-1, 0),)},
            {"dead_port_count": -2},
            {"link_flip_prob": 1.5},
            {"corrupt_prob": -0.1},
            {"burst_enter_prob": 0.1, "burst_exit_prob": 0.0},
            {"nic_stall_prob": 0.1, "nic_stall_cycles": 0},
            {"retry_limit": 0},
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs)

    def test_round_trips_through_dict(self):
        config = FaultConfig(
            seed=7,
            dead_ports=((5, 1), (10, 0)),
            link_flip_prob=0.01,
            burst_enter_prob=0.001,
            nic_stall_prob=0.002,
            retry_limit=4,
        )
        assert FaultConfig.from_dict(config.to_dict()) == config


class TestFaultSchedule:
    def test_query_order_does_not_matter(self):
        """Forward and reverse scans of the same schedule agree exactly
        (the traffic-independence invariant: retries re-query later
        cycles before earlier links are ever touched)."""
        config = FaultConfig(
            seed=3, link_flip_prob=0.05, burst_enter_prob=0.02, nic_stall_prob=0.01
        )
        queries = [
            (node, port, cycle)
            for node in (0, 5, 15)
            for port in range(4)
            for cycle in range(0, 120, 7)
        ]
        forward = FaultSchedule(config, MESH)
        backward = FaultSchedule(config, MESH)
        want = [forward.crossing_fault(*q) for q in queries]
        got = [backward.crossing_fault(*q) for q in reversed(queries)]
        assert want == list(reversed(got))
        stalls = [(node, cycle) for node in range(16) for cycle in range(0, 80, 11)]
        want_stalls = [forward.nic_stalled(*q) for q in stalls]
        got_stalls = [backward.nic_stalled(*q) for q in reversed(stalls)]
        assert want_stalls == list(reversed(got_stalls))

    def test_seed_changes_schedule(self):
        base = FaultConfig(seed=1, link_flip_prob=0.05)
        other = FaultConfig(seed=2, link_flip_prob=0.05)
        queries = [(n, p, c) for n in range(16) for p in range(4) for c in range(40)]
        a = [FaultSchedule(base, MESH).crossing_fault(*q) for q in queries]
        b = [FaultSchedule(other, MESH).crossing_fault(*q) for q in queries]
        assert a != b

    def test_dead_port_count_samples_deterministically(self):
        config = FaultConfig(seed=9, dead_port_count=3)
        first = FaultSchedule(config, MESH).dead_ports
        second = FaultSchedule(config, MESH).dead_ports
        from repro.util.geometry import Direction

        assert first == second
        assert len(first) == 3
        for node, port in first:
            assert MESH.neighbor(node, Direction(port)) is not None

    def test_dead_port_shadows_transients(self):
        config = FaultConfig(dead_ports=((5, 1),), link_flip_prob=1.0)
        schedule = FaultSchedule(config, MESH)
        assert schedule.crossing_fault(5, 1, 0) == "dead_port"
        assert schedule.crossing_fault(5, 2, 0) == "link"

    def test_rejects_dead_port_outside_mesh(self):
        with pytest.raises(ValueError):
            FaultSchedule(FaultConfig(dead_ports=((99, 1),)), MESH)


class TestSpecIdentity:
    def test_disabled_config_normalised_away(self):
        plain = RunSpec(OPT, SyntheticWorkload("uniform", 0.1), cycles=200)
        disabled = RunSpec(
            OPT, SyntheticWorkload("uniform", 0.1), cycles=200, faults=FaultConfig()
        )
        assert disabled.faults is None
        assert disabled == plain
        assert disabled.digest() == plain.digest()
        assert "faults" not in disabled.to_dict()

    def test_enabled_config_changes_digest(self):
        plain = RunSpec(OPT, SyntheticWorkload("uniform", 0.1), cycles=200)
        faulted = RunSpec(
            OPT,
            SyntheticWorkload("uniform", 0.1),
            cycles=200,
            faults=FaultConfig(link_flip_prob=0.01),
        )
        reseeded = RunSpec(
            OPT,
            SyntheticWorkload("uniform", 0.1),
            cycles=200,
            faults=FaultConfig(seed=1, link_flip_prob=0.01),
        )
        digests = {plain.digest(), faulted.digest(), reseeded.digest()}
        assert len(digests) == 3

    def test_faulted_spec_round_trips(self):
        spec = RunSpec(
            ELE,
            SyntheticWorkload("transpose", 0.05),
            cycles=300,
            faults=FaultConfig(seed=2, dead_ports=((5, 1),), link_flip_prob=0.02),
        )
        restored = RunSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.digest() == spec.digest()


def burst_trace(packets=48, broadcasts=2):
    events = [
        TraceEvent(index % 5, (3 * index) % 16, (5 * index + 1) % 16)
        for index in range(packets)
        if (3 * index) % 16 != (5 * index + 1) % 16
    ]
    events += [TraceEvent(1, index, None) for index in range(broadcasts)]
    events.sort(key=lambda event: event.cycle)
    return Trace("faulty-burst", 16, events=events)


def drain(network, max_cycles=20_000):
    engine = SimulationEngine()
    engine.register(network)
    drained = engine.run_until(lambda: network.idle(engine.cycle), max_cycles)
    return engine, drained


class TestGracefulDegradation:
    @pytest.mark.parametrize("config", [OPT, ELE], ids=["optical", "electrical"])
    def test_dead_port_run_drains_and_conserves(self, config):
        # Node 5's East port is on the only XY route from 4 to 7, so the
        # extra 4->7 packets are guaranteed to hit the dead link.
        faults = FaultConfig(dead_ports=((5, 1),), retry_limit=4)
        trace = burst_trace()
        events = trace.events + [TraceEvent(cycle, 4, 7) for cycle in range(8)]
        events.sort(key=lambda event: event.cycle)
        trace = Trace("dead-link", 16, events=events)
        network = make_network(config, TraceSource(trace), faults=faults)
        _, drained = drain(network)
        assert drained, "dead ports must not livelock the drain"
        stats = network.stats
        assert stats.packets_lost > 0, "a dead port on the burst path loses packets"
        assert stats.packets_generated == stats.packets_delivered + stats.packets_lost
        assert stats.fault_kinds["dead_port"] == stats.faults_injected

    @pytest.mark.parametrize("config", [OPT, ELE], ids=["optical", "electrical"])
    def test_transient_faults_are_mostly_masked(self, config):
        faults = FaultConfig(seed=4, link_flip_prob=0.05)
        trace = burst_trace()
        network = make_network(config, TraceSource(trace), faults=faults)
        _, drained = drain(network)
        assert drained
        stats = network.stats
        assert stats.faults_injected > 0
        assert stats.faults_masked > 0, "retries must recover transient losses"
        assert stats.delivered_despite_faults > 0
        assert stats.packets_generated == stats.packets_delivered + stats.packets_lost

    def test_ideal_backend_refuses_faults(self):
        with pytest.raises(FabricError, match="ideal"):
            make_network(
                IdealConfig(mesh=MESH), faults=FaultConfig(link_flip_prob=0.01)
            )

    def test_nic_stall_defers_but_conserves(self):
        faults = FaultConfig(seed=6, nic_stall_prob=0.05, nic_stall_cycles=5)
        spec = RunSpec(
            OPT, SyntheticWorkload("uniform", 0.1), cycles=400, faults=faults
        )
        result = run(spec)
        stats = result.stats
        assert stats.fault_kinds["nic_stall"] > 0
        assert stats.packets_lost == 0, "stalls delay injection, never lose packets"
        assert stats.packets_injected <= stats.packets_generated


class TestDeterminismUnderParallelism:
    SPEC = RunSpec(
        OPT,
        SyntheticWorkload("uniform", 0.1),
        cycles=300,
        seed=11,
        faults=FaultConfig(seed=5, link_flip_prob=0.02, dead_ports=((6, 1),)),
    )

    def test_serial_and_pool_runs_are_bit_identical(self):
        serial = run(self.SPEC)
        pooled = Executor(workers=2).map([self.SPEC, self.SPEC])
        for result in pooled:
            assert result == serial
            assert result_to_dict(result) == result_to_dict(serial)

    def test_fault_seed_changes_the_report(self):
        reseeded = RunSpec(
            OPT,
            SyntheticWorkload("uniform", 0.1),
            cycles=300,
            seed=11,
            faults=FaultConfig(seed=6, link_flip_prob=0.02, dead_ports=((6, 1),)),
        )
        assert reseeded.digest() != self.SPEC.digest()
        assert result_to_dict(run(reseeded)) != result_to_dict(run(self.SPEC))

    def test_cache_round_trip_is_lossless(self, tmp_path):
        from repro.harness.exec import ResultCache

        cache = ResultCache(tmp_path / "cache")
        fresh = Executor(cache=cache).map([self.SPEC])[0]
        cached = Executor(cache=cache).map([self.SPEC])[0]
        assert cached == fresh
        assert result_to_dict(cached) == result_to_dict(fresh)


class TestObservabilityPlumbing:
    def test_stats_payload_omits_faults_when_clean(self):
        result = run(RunSpec(OPT, SyntheticWorkload("uniform", 0.05), cycles=200))
        payload = stats_to_dict(result.stats)
        assert "faults" not in payload
        assert stats_to_dict(stats_from_dict(payload)) == payload

    def test_stats_payload_round_trips_fault_counters(self):
        result = run(
            RunSpec(
                OPT,
                SyntheticWorkload("uniform", 0.1),
                cycles=300,
                faults=FaultConfig(seed=4, link_flip_prob=0.05),
            )
        )
        payload = stats_to_dict(result.stats)
        assert payload["faults"]["injected"] > 0
        assert stats_to_dict(stats_from_dict(payload)) == payload
        assert result_from_dict(result_to_dict(result)) == result

    def test_windows_carry_fault_columns(self):
        spec = RunSpec(
            OPT,
            SyntheticWorkload("uniform", 0.1),
            cycles=300,
            faults=FaultConfig(seed=4, link_flip_prob=0.05),
            obs=ObsConfig(metrics_interval=50),
        )
        result = run(spec)
        series = result.timeseries
        assert series is not None
        assert sum(series.column("faulted")) == result.stats.faults_injected
        assert sum(series.column("lost")) == result.stats.packets_lost

    def test_fault_events_reach_tracers(self):
        faults = FaultConfig(seed=4, link_flip_prob=0.05, retry_limit=2)
        trace = burst_trace()
        network = make_network(OPT, TraceSource(trace), faults=faults)
        recorder = CollectingTracer()
        network.add_tracer(recorder)
        _, drained = drain(network)
        assert drained
        injected = recorder.by_kind("fault_injected")
        assert injected, "link flips must surface as fault_injected events"
        assert all(event.extra["fault"] == "link" for event in injected)
        masked = recorder.by_kind("fault_masked")
        assert len(masked) == network.stats.faults_masked


class TestDegradationSweep:
    def test_zero_rate_point_matches_fault_free_digest(self):
        specs = fault_sweep_specs(OPT, "uniform", 0.05, [0.0, 0.1], cycles=200)
        plain = RunSpec(OPT, SyntheticWorkload("uniform", 0.05), cycles=200)
        assert specs[0].digest() == plain.digest()
        assert specs[1].digest() != plain.digest()

    def test_curve_degrades_monotonically_in_faults(self):
        points = throughput_vs_fault_rate(
            OPT, "uniform", 0.05, [0.0, 0.02, 0.2], cycles=300
        )
        injected = [point.faults_injected for point in points]
        assert injected == sorted(injected)
        assert injected[0] == 0 and injected[-1] > 0
        assert points[0].delivery_ratio >= points[-1].delivery_ratio


@pytest.mark.slow
class TestFaultStress:
    """Heavy-fault endurance runs (excluded from tier-1; CI coverage job
    re-includes them with ``-m ""``)."""

    BIG = MeshGeometry(8, 8)

    @pytest.mark.parametrize(
        "config",
        [
            PhastlaneConfig(mesh=BIG, max_hops_per_cycle=4),
            ElectricalConfig(mesh=BIG),
        ],
        ids=["optical", "electrical"],
    )
    def test_large_mesh_survives_heavy_faults(self, config):
        faults = FaultConfig(
            seed=13,
            dead_port_count=4,
            link_flip_prob=0.08,
            nic_stall_prob=0.01,
            retry_limit=5,
        )
        events = [
            TraceEvent(index % 40, (7 * index) % 64, (11 * index + 3) % 64)
            for index in range(400)
            if (7 * index) % 64 != (11 * index + 3) % 64
        ]
        trace = Trace("stress", 64, events=sorted(events, key=lambda e: e.cycle))
        network = make_network(config, TraceSource(trace), faults=faults)
        _, drained = drain(network, max_cycles=200_000)
        assert drained
        stats = network.stats
        assert stats.faults_injected > 0
        assert stats.packets_generated == stats.packets_delivered + stats.packets_lost
