"""Shared helpers for simulation tests."""

from __future__ import annotations

from repro.sim.engine import SimulationEngine


def drain(network, inject_cycles: int, max_extra: int = 20_000) -> SimulationEngine:
    """Run a network for ``inject_cycles`` then until idle; assert drainage."""
    engine = SimulationEngine()
    engine.register(network)
    engine.run(inject_cycles)
    assert engine.run_until(
        lambda: network.idle(engine.cycle), max_extra
    ), "network failed to drain"
    return engine
