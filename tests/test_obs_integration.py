"""End-to-end observability tests: the no-perturbation invariant and the
harness/CLI plumbing (cache bypass, per-run trace paths, report payloads)."""

import json

import pytest

from repro.cli import main
from repro.core.config import PhastlaneConfig
from repro.electrical.config import ElectricalConfig
from repro.harness.exec import Executor, ResultCache, RunSpec, SyntheticWorkload
from repro.harness.report import result_from_dict, result_to_dict
from repro.harness.runner import run
from repro.obs import ObsConfig
from repro.util.geometry import MeshGeometry

MESH = MeshGeometry(4, 4)
OPTICAL = PhastlaneConfig(mesh=MESH, max_hops_per_cycle=4)
ELECTRICAL = ElectricalConfig(mesh=MESH)


def spec(config=OPTICAL, obs=None, rate=0.15):
    return RunSpec(
        config, SyntheticWorkload("hotspot", rate), cycles=300, seed=7, obs=obs
    )


class TestNoPerturbation:
    """Observability must never change what the simulator computes."""

    @pytest.mark.parametrize("config", [OPTICAL, ELECTRICAL])
    def test_traced_run_matches_untraced(self, tmp_path, config):
        obs = ObsConfig(
            trace_path=str(tmp_path / "trace.json"),
            metrics_interval=100,
            profile=True,
        )
        plain = run(spec(config))
        observed = run(spec(config, obs=obs))
        # RunResult equality covers the full stats ledger (histogram and
        # energy counters included); observability fields are excluded.
        assert observed == plain
        assert observed.stats == plain.stats

    def test_sampled_trace_still_does_not_perturb(self, tmp_path):
        obs = ObsConfig(
            trace_path=str(tmp_path / "trace.jsonl"), trace_sample=0.25
        )
        assert run(spec(obs=obs)) == run(spec())

    def test_obs_excluded_from_spec_identity(self, tmp_path):
        with_obs = spec(obs=ObsConfig(profile=True))
        without = spec()
        assert with_obs == without
        assert with_obs.digest() == without.digest()
        assert "obs" not in with_obs.to_dict()

    @pytest.mark.parametrize("config", [OPTICAL, ELECTRICAL])
    def test_health_watchdogs_do_not_perturb(self, config):
        plain = run(spec(config))
        watched = run(spec(config, obs=ObsConfig(health=True)))
        assert watched == plain
        # Bit-identical ledger, not just headline equality: NetworkStats
        # equality covers the latency histogram and energy counters.
        assert watched.stats == plain.stats
        assert watched.health is not None and watched.health.ok

    def test_disabled_health_report_is_byte_identical(self):
        plain = json.dumps(result_to_dict(run(spec())), sort_keys=True)
        watched = result_to_dict(run(spec(obs=ObsConfig(health=True))))
        assert "health" in watched
        watched.pop("health")
        # Stripped of its one additive key, a health-enabled run's report
        # serialises to the exact bytes of an uninstrumented run's.
        assert json.dumps(watched, sort_keys=True) == plain


class TestArtifacts:
    def test_chrome_trace_is_valid_and_populated(self, tmp_path):
        path = tmp_path / "trace.json"
        run(spec(obs=ObsConfig(trace_path=str(path))))
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        kinds = {event["name"] for event in events if event["ph"] == "i"}
        assert {"generated", "injected", "delivered"} <= kinds
        assert all(event["ph"] in ("i", "M") for event in events)

    def test_chrome_trace_round_trips_with_full_schema(self, tmp_path):
        from repro.obs import EVENT_KINDS

        path = tmp_path / "trace.json"
        result = run(spec(obs=ObsConfig(trace_path=str(path))))
        payload = json.loads(path.read_text())  # must be one valid document
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        events = payload["traceEvents"]
        # The process-name metadata record leads, then instants only.
        assert events[0]["ph"] == "M"
        assert all(event["ph"] == "i" for event in events[1:])
        instants = events[1:]
        assert instants, "a traced run must produce events"
        for event in instants:
            assert set(event) >= {"name", "cat", "ph", "s", "ts", "pid", "tid"}
            assert event["cat"] == "packet"
            assert event["s"] == "t"
            assert 0 <= event["ts"] <= result.cycles
            assert 0 <= event["tid"] < MESH.num_nodes
            assert "uid" in event["args"]
        assert {event["name"] for event in instants} <= set(EVENT_KINDS)
        # Lifecycle ordering survives the export: each packet's generated
        # event precedes its delivered events in file order.
        first_seen = {}
        for position, event in enumerate(instants):
            first_seen.setdefault((event["name"], event["args"]["uid"]), position)
        for (name, uid), position in first_seen.items():
            if name == "delivered":
                assert first_seen[("generated", uid)] < position

    def test_timeseries_lands_in_report_and_round_trips(self, tmp_path):
        obs = ObsConfig(metrics_interval=100)
        result = run(spec(obs=obs))
        series = result.timeseries
        assert series is not None and series.interval == 100
        assert [w.start for w in series.windows] == [0, 100, 200]
        # Window counters reconcile with the final ledger.
        assert sum(series.column("generated")) == result.stats.packets_generated
        assert sum(series.column("dropped")) == result.stats.packets_dropped
        payload = result_to_dict(result)
        assert result_from_dict(payload) == result
        assert result_from_dict(payload).timeseries == series

    def test_disabled_run_report_has_no_timeseries_key(self):
        payload = result_to_dict(run(spec()))
        assert "timeseries" not in payload

    def test_profile_summary_attributes_engine_time(self):
        result = run(spec(obs=ObsConfig(profile=True)))
        assert result.profile is not None
        assert result.profile["cycles"] == 300
        assert "PhastlaneNetwork" in result.profile["components"]
        assert result.profile["total_s"] > 0


class TestSpatialTelemetry:
    def test_spatial_run_does_not_perturb(self):
        obs = ObsConfig(metrics_interval=100, spatial=True)
        assert run(spec(obs=obs)) == run(spec())

    def test_spatial_series_lands_in_report_and_round_trips(self):
        obs = ObsConfig(metrics_interval=100, spatial=True)
        result = run(spec(obs=obs))
        series = result.timeseries
        assert series is not None and series.spatial is not None
        spatial = series.spatial
        assert (spatial.width, spatial.height) == (MESH.width, MESH.height)
        # One dense per-node slice per window, for every series.
        for rows in (spatial.occupancy, spatial.drops, spatial.deliveries):
            assert len(rows) == len(series.windows)
            assert all(len(row) == MESH.num_nodes for row in rows)
        # Per-node attribution reconciles with the windowed aggregates.
        for window, drops, deliveries in zip(
            series.windows, spatial.drops, spatial.deliveries
        ):
            assert sum(drops) == window.dropped
            assert sum(deliveries) == window.delivered
        payload = result_to_dict(result)
        assert "spatial" in payload["timeseries"]
        assert result_from_dict(payload).timeseries == series

    def test_hotspot_concentrates_occupancy(self):
        obs = ObsConfig(metrics_interval=150, spatial=True)
        series = run(spec(obs=obs, rate=0.2)).timeseries
        assert series is not None and series.spatial is not None
        last = series.spatial.occupancy[-1]
        # The hotspot column is hotter than the mesh-wide mean occupancy.
        assert max(last) > sum(last) / len(last)

    def test_non_spatial_payload_is_unchanged(self):
        obs = ObsConfig(metrics_interval=100)
        payload = result_to_dict(run(spec(obs=obs)))
        assert "spatial" not in payload["timeseries"]


class TestExecutorObs:
    def test_obs_runs_bypass_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        obs = ObsConfig(metrics_interval=100)
        first = Executor(workers=1, cache=cache, obs=obs)
        first.map([spec()])
        second = Executor(workers=1, cache=cache, obs=obs)
        results = second.map([spec()])
        assert not second.events[0].cache_hit
        assert results[0].timeseries is not None

    def test_disabled_obs_still_caches(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        Executor(workers=1, cache=cache).map([spec()])
        second = Executor(workers=1, cache=cache)
        second.map([spec()])
        assert second.events[0].cache_hit

    def test_campaign_trace_paths_are_per_run(self, tmp_path):
        obs = ObsConfig(trace_path=str(tmp_path / "trace.json"))
        executor = Executor(workers=1, obs=obs)
        executor.map([spec(rate=0.05), spec(rate=0.1), spec(rate=0.15)])
        names = sorted(p.name for p in tmp_path.glob("trace-*.json"))
        assert names == ["trace-0000.json", "trace-0001.json", "trace-0002.json"]

    def test_single_run_keeps_the_plain_path(self, tmp_path):
        obs = ObsConfig(trace_path=str(tmp_path / "trace.json"))
        Executor(workers=1, obs=obs).map([spec()])
        assert (tmp_path / "trace.json").exists()

    def test_spec_level_obs_wins_over_executor_obs(self, tmp_path):
        spec_obs = ObsConfig(trace_path=str(tmp_path / "mine.json"))
        executor = Executor(
            workers=1, obs=ObsConfig(trace_path=str(tmp_path / "theirs.json"))
        )
        executor.map([spec(obs=spec_obs)])
        assert (tmp_path / "mine.json").exists()
        assert not (tmp_path / "theirs.json").exists()


class TestCliObs:
    def test_sweep_with_observability_flags(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        manifest = tmp_path / "manifest.json"
        argv = [
            "sweep",
            "--config", "Optical4",
            "--pattern", "uniform",
            "--rates", "0.05",
            "--cycles", "200",
            "--trace-out", str(trace),
            "--metrics-interval", "50",
            "--profile",
            "--manifest", str(manifest),
        ]
        assert main(argv) == 0
        assert "wrote packet trace" in capsys.readouterr().err
        assert json.loads(trace.read_text())["traceEvents"]
        entry = json.loads(manifest.read_text())["entries"][0]
        assert entry["profile"]["components"]

    def test_trace_sample_flag_validated(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--config", "Optical4", "--rates", "0.05",
                  "--trace-out", "t.json", "--trace-sample", "2.0"])
