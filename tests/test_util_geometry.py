"""Tests for mesh geometry and dimension-order routing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.geometry import (
    OPPOSITE,
    TURN_KIND,
    Coord,
    Direction,
    MeshGeometry,
    TurnKind,
)

nodes64 = st.integers(min_value=0, max_value=63)


class TestCoordAndDirections:
    def test_node_coord_round_trip(self):
        mesh = MeshGeometry(8, 8)
        for node in mesh.nodes():
            assert mesh.node(mesh.coord(node)) == node

    def test_row_major_numbering(self):
        mesh = MeshGeometry(8, 8)
        assert mesh.coord(0) == Coord(0, 0)
        assert mesh.coord(7) == Coord(7, 0)
        assert mesh.coord(8) == Coord(0, 1)
        assert mesh.coord(63) == Coord(7, 7)

    def test_step_directions(self):
        c = Coord(3, 3)
        assert c.step(Direction.NORTH) == Coord(3, 4)
        assert c.step(Direction.SOUTH) == Coord(3, 2)
        assert c.step(Direction.EAST) == Coord(4, 3)
        assert c.step(Direction.WEST) == Coord(2, 3)
        assert c.step(Direction.LOCAL) == c

    def test_opposites_are_involutions(self):
        for direction, opposite in OPPOSITE.items():
            assert OPPOSITE[opposite] == direction

    def test_neighbor_at_edge_is_none(self):
        mesh = MeshGeometry(8, 8)
        assert mesh.neighbor(0, Direction.SOUTH) is None
        assert mesh.neighbor(0, Direction.WEST) is None
        assert mesh.neighbor(63, Direction.NORTH) is None
        assert mesh.neighbor(0, Direction.NORTH) == 8

    def test_invalid_node_rejected(self):
        mesh = MeshGeometry(4, 4)
        with pytest.raises(ValueError):
            mesh.coord(16)
        with pytest.raises(ValueError):
            mesh.coord(-1)

    def test_degenerate_mesh_rejected(self):
        with pytest.raises(ValueError):
            MeshGeometry(0, 4)


class TestTurnClassification:
    def test_straight_through(self):
        assert TURN_KIND[(Direction.NORTH, Direction.NORTH)] is TurnKind.STRAIGHT

    def test_right_turns(self):
        assert TURN_KIND[(Direction.NORTH, Direction.EAST)] is TurnKind.RIGHT
        assert TURN_KIND[(Direction.EAST, Direction.SOUTH)] is TurnKind.RIGHT
        assert TURN_KIND[(Direction.WEST, Direction.NORTH)] is TurnKind.RIGHT

    def test_left_turns(self):
        assert TURN_KIND[(Direction.NORTH, Direction.WEST)] is TurnKind.LEFT
        assert TURN_KIND[(Direction.SOUTH, Direction.WEST)] is TurnKind.RIGHT
        assert TURN_KIND[(Direction.EAST, Direction.NORTH)] is TurnKind.LEFT

    def test_local_acceptance(self):
        for direction in (Direction.NORTH, Direction.EAST, Direction.SOUTH, Direction.WEST):
            assert TURN_KIND[(direction, Direction.LOCAL)] is TurnKind.LOCAL


class TestDimensionOrderRouting:
    @given(nodes64, nodes64)
    def test_route_length_is_manhattan_distance(self, src, dst):
        mesh = MeshGeometry(8, 8)
        assert len(mesh.dor_route(src, dst)) == mesh.hop_count(src, dst) + 1

    @given(nodes64, nodes64)
    def test_route_endpoints(self, src, dst):
        mesh = MeshGeometry(8, 8)
        route = mesh.dor_route(src, dst)
        assert route[0] == src and route[-1] == dst

    @given(nodes64, nodes64)
    def test_route_steps_are_adjacent(self, src, dst):
        mesh = MeshGeometry(8, 8)
        route = mesh.dor_route(src, dst)
        for a, b in zip(route, route[1:]):
            assert mesh.hop_count(a, b) == 1

    @given(nodes64, nodes64)
    def test_x_before_y(self, src, dst):
        mesh = MeshGeometry(8, 8)
        directions = mesh.dor_directions(src, dst)
        seen_y = False
        for direction in directions:
            if direction in (Direction.NORTH, Direction.SOUTH):
                seen_y = True
            else:
                assert not seen_y, "X move after a Y move violates DOR"

    @given(nodes64, nodes64)
    def test_at_most_one_turn(self, src, dst):
        mesh = MeshGeometry(8, 8)
        directions = mesh.dor_directions(src, dst)
        turns = sum(1 for a, b in zip(directions, directions[1:]) if a != b)
        assert turns <= 1

    def test_self_route_is_single_node(self):
        mesh = MeshGeometry(8, 8)
        assert mesh.dor_route(5, 5) == [5]
        assert mesh.dor_directions(5, 5) == []


class TestEdgeRows:
    def test_edge_rows_detected(self):
        mesh = MeshGeometry(8, 8)
        assert mesh.is_edge_row(0)  # bottom row
        assert mesh.is_edge_row(7)
        assert mesh.is_edge_row(56)  # top row
        assert not mesh.is_edge_row(8)

    def test_rectangular_mesh(self):
        mesh = MeshGeometry(4, 2)
        assert mesh.num_nodes == 8
        assert mesh.coord(5) == Coord(1, 1)
        assert mesh.is_edge_row(5)
