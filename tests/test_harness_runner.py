"""Tests for the experiment runner and sweeps."""

import pytest

from repro.core.config import PhastlaneConfig
from repro.electrical.config import ElectricalConfig
from repro.fabric import FabricError, make_network
from repro.harness.exec import RunSpec, SyntheticWorkload, TraceFileWorkload
from repro.harness.runner import run
from repro.harness.sweeps import (
    latency_vs_injection,
    saturation_rate,
    zero_load_latency,
)
from repro.sim.stats import SaturationError
from repro.traffic.trace import Trace, TraceEvent
from repro.util.geometry import MeshGeometry

MESH = MeshGeometry(4, 4)
OPTICAL = PhastlaneConfig(mesh=MESH, max_hops_per_cycle=4)
ELECTRICAL = ElectricalConfig(mesh=MESH)


def run_trace_file(config, trace, tmp_path, **spec_kwargs):
    """Save an in-memory trace and run it through the spec API."""
    path = tmp_path / f"{trace.name}.trace"
    trace.save(path)
    return run(RunSpec(config, TraceFileWorkload(str(path)), **spec_kwargs))


class TestMakeNetwork:
    def test_dispatch_on_config_type(self):
        from repro.core.network import PhastlaneNetwork
        from repro.electrical.network import ElectricalNetwork

        assert isinstance(make_network(OPTICAL), PhastlaneNetwork)
        assert isinstance(make_network(ELECTRICAL), ElectricalNetwork)

    def test_unknown_config_rejected(self):
        with pytest.raises(FabricError):
            make_network(object())

    def test_labels(self):
        assert OPTICAL.label == "Optical4"
        assert ELECTRICAL.label == "Electrical3"
        assert ElectricalConfig(mesh=MESH, router_delay_cycles=2).label == (
            "Electrical2"
        )


class TestRunTrace:
    def test_both_networks_run_same_trace(self, tmp_path):
        trace = Trace(
            "t", 16, events=[TraceEvent(c, c % 16, (c + 3) % 16) for c in range(50)]
        )
        optical = run_trace_file(OPTICAL, trace, tmp_path)
        electrical = run_trace_file(ELECTRICAL, trace, tmp_path)
        assert optical.stats.packets_delivered == 50
        assert electrical.stats.packets_delivered == 50
        assert optical.mean_latency < electrical.mean_latency

    def test_result_summary_fields(self, tmp_path):
        trace = Trace("t", 16, events=[TraceEvent(0, 0, 5)])
        result = run_trace_file(OPTICAL, trace, tmp_path)
        summary = result.summary()
        assert summary["delivered"] == 1
        assert summary["delivery_ratio"] == 1.0
        assert result.power_w > 0
        assert result.drained

    def test_undrainable_trace_raises(self, tmp_path):
        # The electrical network needs several cycles per hop; a zero-cycle
        # drain budget cannot complete the delivery.
        trace = Trace("t", 16, events=[TraceEvent(0, 0, 5)])
        with pytest.raises(SaturationError):
            run_trace_file(ELECTRICAL, trace, tmp_path, max_drain_cycles=0)


class TestRunSynthetic:
    def test_measurement_window_applied(self):
        spec = RunSpec(OPTICAL, SyntheticWorkload("uniform", 0.1), cycles=300)
        result = run(spec)
        assert result.stats.measurement_start == 60  # cycles // 5
        assert result.stats.latency.mean.count > 0

    def test_invalid_cycles_rejected(self):
        with pytest.raises(ValueError):
            RunSpec(OPTICAL, SyntheticWorkload("uniform", 0.1), cycles=0)

    def test_workload_label(self):
        spec = RunSpec(OPTICAL, SyntheticWorkload("transpose", 0.25), cycles=100)
        assert run(spec).workload == "transpose@0.25"


class TestSweeps:
    def test_latency_increases_with_rate(self):
        points = latency_vs_injection(
            ELECTRICAL, "transpose", rates=(0.05, 0.4), cycles=500
        )
        assert points[0].mean_latency < points[-1].mean_latency or points[-1].saturated

    def test_saturated_points_marked(self):
        points = latency_vs_injection(
            ELECTRICAL, "transpose", rates=(0.05, 0.95), cycles=600
        )
        assert not points[0].saturated
        assert points[-1].saturated

    def test_saturation_rate_extraction(self):
        points = latency_vs_injection(
            OPTICAL, "uniform", rates=(0.05, 0.15), cycles=400
        )
        assert saturation_rate(points) >= 0.15

    def test_zero_load_latency(self):
        points = latency_vs_injection(OPTICAL, "uniform", rates=(0.02,), cycles=400)
        assert zero_load_latency(points) < 5.0
