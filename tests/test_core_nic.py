"""Tests for the Phastlane NIC."""

import pytest

from repro.core.config import PhastlaneConfig
from repro.core.nic import PhastlaneNic
from repro.core.router import LOCAL_QUEUE, PhastlaneRouter
from repro.sim.stats import NetworkStats
from repro.traffic.coherence import MessageKind
from repro.traffic.trace import TraceEvent
from repro.util.geometry import MeshGeometry

MESH = MeshGeometry(8, 8)


def make_nic(node=9, **overrides):
    config = PhastlaneConfig(mesh=MESH, **overrides)
    stats = NetworkStats()
    return PhastlaneNic(node, config, stats), PhastlaneRouter(node, config), stats


class TestUnicastGeneration:
    def test_event_becomes_packet(self):
        nic, router, stats = make_nic()
        nic.generate([TraceEvent(0, 9, 12)], 0)
        assert nic.occupancy == 1
        assert stats.packets_generated == 1

    def test_wrong_node_event_rejected(self):
        nic, _, _ = make_nic(node=9)
        with pytest.raises(ValueError):
            nic.generate([TraceEvent(0, 3, 12)], 0)

    def test_feed_moves_one_packet_per_cycle(self):
        nic, router, stats = make_nic()
        nic.generate([TraceEvent(0, 9, 12), TraceEvent(0, 9, 13)], 0)
        assert nic.feed_router(router, 0) == 1
        assert len(router.queues[LOCAL_QUEUE]) == 1
        assert stats.packets_injected == 1

    def test_feed_respects_router_capacity(self):
        nic, router, stats = make_nic(buffer_entries=1)
        nic.generate([TraceEvent(0, 9, 12), TraceEvent(0, 9, 13)], 0)
        nic.feed_router(router, 0)
        assert nic.feed_router(router, 1) == 0  # local queue full

    def test_overflow_waits_in_generation_queue(self):
        nic, _, _ = make_nic(nic_buffer_entries=2)
        events = [TraceEvent(0, 9, 12) for _ in range(5)]
        nic.generate(events, 0)
        assert nic.occupancy == 2
        assert nic.backlog == 5


class TestBroadcastExpansion:
    def test_broadcast_becomes_multicast_packets(self):
        nic, _, stats = make_nic(node=9)  # interior row
        nic.generate([TraceEvent(0, 9, None, MessageKind.MISS_REQUEST)], 0)
        assert nic.backlog == 16
        assert stats.packets_generated == 63  # one per expected delivery
        assert stats.multicast_packets == 1

    def test_edge_row_broadcast_is_eight_packets(self):
        nic, _, _ = make_nic(node=3)  # bottom row
        nic.generate([TraceEvent(0, 3, None, MessageKind.MISS_REQUEST)], 0)
        assert nic.backlog == 8

    def test_broadcast_ids_unique_per_broadcast(self):
        nic, _, _ = make_nic(node=9)
        nic.generate([TraceEvent(0, 9, None), TraceEvent(0, 9, None)], 0)
        ids = {p.broadcast_id for p in nic._generation_queue}
        ids |= {p.broadcast_id for p in nic._buffer}
        assert len(ids) == 2

    def test_broadcast_ids_unique_across_nodes(self):
        config = PhastlaneConfig(mesh=MESH)
        nics = [PhastlaneNic(n, config, NetworkStats()) for n in (9, 10)]
        for nic in nics:
            nic.generate([TraceEvent(0, nic.node, None)], 0)
        ids_a = {p.broadcast_id for p in list(nics[0]._buffer) + list(nics[0]._generation_queue)}
        ids_b = {p.broadcast_id for p in list(nics[1]._buffer) + list(nics[1]._generation_queue)}
        assert not ids_a & ids_b


class TestIdle:
    def test_idle_transitions(self):
        nic, router, _ = make_nic()
        assert nic.idle()
        nic.generate([TraceEvent(0, 9, 12)], 0)
        assert not nic.idle()
        nic.feed_router(router, 0)
        assert nic.idle()
