"""Tests for the synthetic traffic patterns."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.rng import DeterministicRng
from repro.traffic.patterns import (
    FIGURE9_PATTERNS,
    PATTERNS,
    HotspotPattern,
    NeighborPattern,
    TornadoPattern,
    UniformRandomPattern,
    pattern_by_name,
)
from repro.util.geometry import MeshGeometry

MESH = MeshGeometry(8, 8)


def rng(label="t"):
    return DeterministicRng(11, label)


class TestRegistry:
    def test_all_patterns_instantiable(self):
        for name in PATTERNS:
            assert pattern_by_name(name, MESH).name == name

    def test_figure9_patterns_exist(self):
        assert set(FIGURE9_PATTERNS) <= set(PATTERNS)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError, match="unknown pattern"):
            pattern_by_name("zigzag", MESH)


class TestPermutations:
    @pytest.mark.parametrize("name", FIGURE9_PATTERNS)
    def test_deterministic(self, name):
        pattern = pattern_by_name(name, MESH)
        assert all(
            pattern.destination(s, rng()) == pattern.destination(s, rng())
            for s in range(64)
        )

    @pytest.mark.parametrize("name", FIGURE9_PATTERNS)
    def test_destinations_in_range(self, name):
        pattern = pattern_by_name(name, MESH)
        for source in range(64):
            assert 0 <= pattern.destination(source, rng()) < 64

    def test_transpose_maps_coordinates(self):
        pattern = pattern_by_name("transpose", MESH)
        # (x, y) -> (y, x): node (1, 2) = 17 -> (2, 1) = 10.
        assert pattern.destination(17, rng()) == 10

    def test_bitcomp_pairs_opposite_corners(self):
        pattern = pattern_by_name("bitcomp", MESH)
        assert pattern.destination(0, rng()) == 63

    def test_permutations_need_power_of_two(self):
        with pytest.raises(ValueError):
            pattern_by_name("shuffle", MeshGeometry(3, 3))

    def test_out_of_range_source_rejected(self):
        with pytest.raises(ValueError):
            pattern_by_name("bitrev", MESH).destination(64, rng())


class TestUniform:
    def test_never_self(self):
        pattern = UniformRandomPattern(MESH)
        generator = rng("uniform")
        assert all(pattern.destination(5, generator) != 5 for _ in range(500))

    def test_covers_all_destinations(self):
        pattern = UniformRandomPattern(MESH)
        generator = rng("cover")
        seen = {pattern.destination(0, generator) for _ in range(5000)}
        assert seen == set(range(1, 64))

    def test_single_node_mesh_rejected(self):
        with pytest.raises(ValueError):
            UniformRandomPattern(MeshGeometry(1, 1)).destination(0, rng())


class TestTornado:
    def test_halfway_around_row(self):
        pattern = TornadoPattern(MESH)
        assert pattern.destination(0, rng()) == 4
        assert pattern.destination(5, rng()) == 1  # wraps
        assert pattern.destination(8, rng()) == 12  # row preserved


class TestNeighbor:
    @given(st.integers(0, 63))
    def test_destination_is_adjacent(self, source):
        pattern = NeighborPattern(MESH)
        dest = pattern.destination(source, rng(f"n{source}"))
        assert MESH.hop_count(source, dest) == 1

    def test_corner_has_two_choices(self):
        pattern = NeighborPattern(MESH)
        generator = rng("corner")
        seen = {pattern.destination(0, generator) for _ in range(200)}
        assert seen == {1, 8}


class TestHotspot:
    def test_fraction_one_always_hits_hotspot(self):
        pattern = HotspotPattern(MESH, hotspots=(10,), fraction=1.0)
        generator = rng("hs")
        assert all(pattern.destination(3, generator) == 10 for _ in range(100))

    def test_hotspot_never_targets_itself(self):
        pattern = HotspotPattern(MESH, hotspots=(10,), fraction=1.0)
        generator = rng("self")
        assert all(pattern.destination(10, generator) != 10 for _ in range(100))

    def test_fraction_zero_is_uniform(self):
        pattern = HotspotPattern(MESH, hotspots=(10,), fraction=0.0)
        generator = rng("zero")
        hits = sum(pattern.destination(3, generator) == 10 for _ in range(1000))
        assert hits < 50

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            HotspotPattern(MESH, fraction=1.5)
        with pytest.raises(ValueError):
            HotspotPattern(MESH, hotspots=(99,))
