"""Tests for the SPLASH2 trace substrate."""

import pytest

from repro.traffic.splash2 import (
    CACHE_CONFIGURATION,
    SPLASH2_INPUT_SETS,
    SPLASH2_ORDER,
    SPLASH2_PROFILES,
    Splash2Profile,
    generate_splash2_trace,
)
from repro.traffic.coherence import CoherenceMessageMix
from repro.util.geometry import MeshGeometry


class TestTables:
    def test_table3_has_ten_benchmarks(self):
        assert len(SPLASH2_INPUT_SETS) == 10
        assert SPLASH2_INPUT_SETS["ocean"] == "2050x2050 grid"
        assert SPLASH2_INPUT_SETS["radix"] == "64 M integers"

    def test_profiles_cover_table3(self):
        assert set(SPLASH2_PROFILES) == set(SPLASH2_INPUT_SETS)
        assert set(SPLASH2_ORDER) == set(SPLASH2_PROFILES)

    def test_table4_cache_parameters(self):
        assert CACHE_CONFIGURATION["memory_latency"] == "80 cycles"
        assert "32KB L1I" in CACHE_CONFIGURATION["simulated_cache_sizes"]


class TestProfiles:
    def test_burst_rate_consistency(self):
        for profile in SPLASH2_PROFILES.values():
            duty = profile.burst_length / (profile.burst_length + profile.gap_length)
            assert profile.burst_rate * duty == pytest.approx(profile.mean_rate)

    def test_buffer_sensitive_benchmarks_are_heaviest(self):
        # Ocean and FMM drive the drop-sensitivity findings of section 5.
        heavy = {"ocean", "fmm"}
        for name in heavy:
            for other in set(SPLASH2_PROFILES) - heavy - {"barnes", "cholesky"}:
                assert (
                    SPLASH2_PROFILES[name].mean_rate
                    > SPLASH2_PROFILES[other].mean_rate
                )

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            Splash2Profile(
                name="bad",
                mean_rate=0.0,
                burst_length=1.0,
                gap_length=0.0,
                pattern_mix={"uniform": 1.0},
                coherence=CoherenceMessageMix(),
            )
        with pytest.raises(ValueError):
            Splash2Profile(
                name="bad",
                mean_rate=0.9,
                burst_length=10.0,
                gap_length=90.0,  # duty 0.1 cannot reach 0.9 mean
                pattern_mix={"uniform": 1.0},
                coherence=CoherenceMessageMix(),
            )


class TestGeneration:
    def test_deterministic_for_seed(self):
        a = generate_splash2_trace("fft", seed=3, duration_cycles=300)
        b = generate_splash2_trace("fft", seed=3, duration_cycles=300)
        assert list(a) == list(b)

    def test_different_seeds_differ(self):
        a = generate_splash2_trace("fft", seed=3, duration_cycles=300)
        b = generate_splash2_trace("fft", seed=4, duration_cycles=300)
        assert list(a) != list(b)

    def test_load_approximates_profile(self):
        profile = SPLASH2_PROFILES["radix"]
        trace = generate_splash2_trace("radix", duration_cycles=2000)
        assert trace.offered_load() == pytest.approx(profile.mean_rate, rel=0.15)

    def test_broadcast_fraction_approximates_mix(self):
        profile = SPLASH2_PROFILES["ocean"]
        trace = generate_splash2_trace("ocean", duration_cycles=2000)
        fraction = trace.broadcast_count / len(trace)
        assert fraction == pytest.approx(profile.coherence.broadcast_fraction, rel=0.25)

    def test_no_self_traffic(self):
        trace = generate_splash2_trace("lu", duration_cycles=400)
        assert all(e.destination != e.source for e in trace if not e.is_broadcast)

    def test_respects_mesh(self):
        mesh = MeshGeometry(4, 4)
        trace = generate_splash2_trace("water-spatial", mesh=mesh, duration_cycles=400)
        assert trace.num_nodes == 16
        assert all(e.source < 16 for e in trace)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError, match="unknown SPLASH2"):
            generate_splash2_trace("linpack")

    def test_duration_override(self):
        trace = generate_splash2_trace("fft", duration_cycles=123)
        assert trace.last_cycle < 123
