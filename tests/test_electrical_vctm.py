"""Tests for Virtual Circuit Tree Multicasting helpers."""

import pytest

from repro.electrical.vctm import VirtualCircuitTreeCache, split_by_output
from repro.util.geometry import Direction, MeshGeometry

MESH = MeshGeometry(8, 8)


class TestSplitByOutput:
    def test_partition_covers_all_destinations(self):
        destinations = {0, 7, 56, 63, 27}
        parts = split_by_output(27, destinations, MESH)
        combined = set().union(*parts.values())
        assert combined == destinations

    def test_partitions_are_disjoint(self):
        destinations = set(range(64)) - {20}
        parts = split_by_output(20, destinations, MESH)
        total = sum(len(p) for p in parts.values())
        assert total == len(destinations)

    def test_local_partition(self):
        parts = split_by_output(5, {5, 6}, MESH)
        assert parts[Direction.LOCAL] == {5}
        assert parts[Direction.EAST] == {6}

    def test_dor_direction_used(self):
        # From node 0, destination 9 = (1, 1): X first -> EAST.
        parts = split_by_output(0, {9}, MESH)
        assert parts == {Direction.EAST: {9}}

    def test_same_column_goes_vertical(self):
        parts = split_by_output(0, {8, 16}, MESH)
        assert parts == {Direction.NORTH: {8, 16}}


class TestVctCache:
    def test_first_lookup_misses_then_hits(self):
        cache = VirtualCircuitTreeCache()
        tree1, hit1 = cache.lookup(0, {1, 2, 3})
        tree2, hit2 = cache.lookup(0, {1, 2, 3})
        assert not hit1 and hit2
        assert tree1 == tree2

    def test_distinct_sets_get_distinct_trees(self):
        cache = VirtualCircuitTreeCache()
        tree1, _ = cache.lookup(0, {1, 2})
        tree2, _ = cache.lookup(0, {1, 3})
        assert tree1 != tree2

    def test_per_source_tables(self):
        cache = VirtualCircuitTreeCache()
        tree1, _ = cache.lookup(0, {5})
        tree2, _ = cache.lookup(1, {5})
        assert tree1 != tree2

    def test_fifo_eviction(self):
        cache = VirtualCircuitTreeCache(capacity=2)
        cache.lookup(0, {1})
        cache.lookup(0, {2})
        cache.lookup(0, {3})  # evicts {1}
        _, hit = cache.lookup(0, {1})
        assert not hit

    def test_hit_rate(self):
        cache = VirtualCircuitTreeCache()
        cache.lookup(0, {1})
        cache.lookup(0, {1})
        cache.lookup(0, {1})
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_zero_capacity_rejected(self):
        cache = VirtualCircuitTreeCache(capacity=0)
        with pytest.raises(ValueError):
            cache.lookup(0, {1})
