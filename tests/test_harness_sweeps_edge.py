"""Edge-case tests for sweep helpers and figure renderers."""

import math

import pytest

from repro.harness.sweeps import (
    LatencyPoint,
    saturation_rate,
    zero_load_latency,
)


def point(rate, latency):
    return LatencyPoint(rate=rate, mean_latency=latency, throughput=0.0, delivered=0)


class TestSweepHelpers:
    def test_all_saturated_zero_load_raises(self):
        points = [point(0.1, math.inf), point(0.2, math.inf)]
        with pytest.raises(ValueError):
            zero_load_latency(points)

    def test_all_saturated_saturation_rate_is_zero(self):
        points = [point(0.1, math.inf)]
        assert saturation_rate(points) == 0.0

    def test_zero_load_uses_lowest_unsaturated_rate(self):
        points = [point(0.3, 5.0), point(0.1, 2.0), point(0.2, 3.0)]
        assert zero_load_latency(points) == 2.0

    def test_saturation_rate_is_highest_unsaturated(self):
        points = [point(0.1, 2.0), point(0.2, 3.0), point(0.3, math.inf)]
        assert saturation_rate(points) == 0.2

    def test_saturated_property(self):
        assert point(0.1, math.inf).saturated
        assert not point(0.1, 5.0).saturated


class TestFig09RenderOptions:
    def test_render_without_plots(self):
        from repro.harness.experiments.fig09 import Figure9, render

        data = Figure9(
            rates=(0.1,),
            curves={"transpose": {"Optical4": [point(0.1, 2.0)]}},
        )
        text = render(data, with_plots=False)
        assert "Figure 9 (transpose)" in text
        assert "panel" not in text

    def test_render_with_plots(self):
        from repro.harness.experiments.fig09 import Figure9, render

        data = Figure9(
            rates=(0.1, 0.2),
            curves={
                "transpose": {
                    "Optical4": [point(0.1, 2.0), point(0.2, 3.0)],
                }
            },
        )
        text = render(data)
        assert "Figure 9 panel: transpose" in text
