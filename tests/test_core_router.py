"""Unit tests for the Phastlane router's electrical side."""

import pytest

from repro.core.config import PhastlaneConfig
from repro.core.packet import OpticalPacket
from repro.core.router import LOCAL_QUEUE, PhastlaneRouter
from repro.core.routing import build_plan
from repro.util.geometry import Direction, MeshGeometry

MESH = MeshGeometry(8, 8)


def make_packet(src=0, dst=3, max_hops=4):
    return OpticalPacket(
        origin=src, plan=build_plan(MESH, src, dst, max_hops), generated_cycle=0
    )


def make_router(node=0, **overrides):
    config = PhastlaneConfig(mesh=MESH, **overrides)
    return PhastlaneRouter(node, config)


class TestBuffering:
    def test_capacity_enforced(self):
        router = make_router(buffer_entries=2)
        router.enqueue(LOCAL_QUEUE, make_packet())
        router.enqueue(LOCAL_QUEUE, make_packet())
        assert not router.has_space(LOCAL_QUEUE)
        with pytest.raises(RuntimeError):
            router.enqueue(LOCAL_QUEUE, make_packet())

    def test_infinite_buffers(self):
        router = make_router(buffer_entries=None)
        for _ in range(200):
            router.enqueue(LOCAL_QUEUE, make_packet())
        assert router.has_space(LOCAL_QUEUE)

    def test_pending_holds_buffer_slot(self):
        router = make_router(buffer_entries=1)
        router.enqueue(LOCAL_QUEUE, make_packet())
        assert router.select_transmissions(0)
        # The packet left the queue but its slot is held pending the drop
        # window, so the queue is still "full".
        assert not router.has_space(LOCAL_QUEUE)

    def test_misrouted_packet_rejected(self):
        router = make_router(node=5)
        with pytest.raises(ValueError):
            router.enqueue(LOCAL_QUEUE, make_packet(src=0))

    def test_bad_queue_id_rejected(self):
        router = make_router()
        with pytest.raises(ValueError):
            router.enqueue(9, make_packet())


class TestArbitration:
    def test_selects_head_toward_free_output(self):
        router = make_router()
        packet = make_packet(0, 3)  # wants EAST
        router.enqueue(LOCAL_QUEUE, packet)
        selected = router.select_transmissions(0)
        assert selected == [(LOCAL_QUEUE, packet)]

    def test_one_packet_per_output_port(self):
        router = make_router()
        a, b = make_packet(0, 3), make_packet(0, 5)  # both want EAST
        router.enqueue(LOCAL_QUEUE, a)
        router.enqueue(int(Direction.WEST), _reroute(b, 0))
        selected = router.select_transmissions(0)
        assert len(selected) == 1

    def test_different_outputs_both_selected(self):
        router = make_router(node=9)
        east = OpticalPacket(origin=9, plan=build_plan(MESH, 9, 11, 4), generated_cycle=0)
        north = OpticalPacket(origin=9, plan=build_plan(MESH, 9, 25, 4), generated_cycle=0)
        router.enqueue(LOCAL_QUEUE, east)
        router.enqueue(int(Direction.NORTH), north)
        assert len(router.select_transmissions(0)) == 2

    def test_backoff_respected(self):
        router = make_router()
        router.enqueue(LOCAL_QUEUE, make_packet(), eligible_cycle=10)
        assert router.select_transmissions(5) == []
        assert router.select_transmissions(10)

    def test_rotating_pointer_moves(self):
        router = make_router()
        before = router._arbiter_pointer
        router.select_transmissions(0)
        assert router._arbiter_pointer != before or True  # pointer advanced
        assert router._arbiter_pointer == (before + 1) % 5


class TestBackoff:
    def test_exponential_growth(self):
        router = make_router()
        penalty = router.config.retry_penalty_cycles
        first = [router.backoff_cycles(1) for _ in range(50)]
        fifth = [router.backoff_cycles(5) for _ in range(50)]
        assert min(first) >= penalty
        assert max(first) < 2 * penalty
        assert min(fifth) >= penalty * 16

    def test_cap_applies(self):
        router = make_router(backoff_cap_log2=2)
        penalty = router.config.retry_penalty_cycles
        assert max(router.backoff_cycles(50) for _ in range(50)) <= penalty * 4 + penalty

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            make_router().backoff_cycles(0)


class TestPendingResolution:
    def test_confirmed_transmission_frees_slot(self):
        router = make_router(buffer_entries=1)
        router.enqueue(LOCAL_QUEUE, make_packet())
        router.select_transmissions(0)
        retries = router.resolve_pending(1, dropped={})
        assert retries == []
        assert router.has_space(LOCAL_QUEUE)
        assert not router.busy

    def test_dropped_transmission_requeues_with_backoff(self):
        router = make_router()
        packet = make_packet()
        router.enqueue(LOCAL_QUEUE, packet)
        router.select_transmissions(0)
        retries = router.resolve_pending(1, dropped={packet.uid: 2})
        assert retries == [(packet, 2)]
        assert packet.attempts == 1
        assert router.queues[LOCAL_QUEUE][0].packet is packet
        assert router.queues[LOCAL_QUEUE][0].eligible_cycle > 1

    def test_same_cycle_pending_not_resolved(self):
        router = make_router()
        packet = make_packet()
        router.enqueue(LOCAL_QUEUE, packet)
        router.select_transmissions(5)
        router.resolve_pending(5, dropped={})
        assert router.pending  # still awaiting next cycle's drop window


def _reroute(packet: OpticalPacket, node: int) -> OpticalPacket:
    """Rebuild a packet as if ``node`` were now responsible for it."""
    packet.plan = build_plan(MESH, node, packet.final_node, 4)
    return packet
