"""Tests for the fabric backend registry."""

from dataclasses import dataclass, field

import pytest

from repro.core.config import PhastlaneConfig
from repro.core.network import PhastlaneNetwork
from repro.electrical.config import ElectricalConfig
from repro.electrical.network import ElectricalNetwork
from repro.fabric import (
    FabricError,
    IdealConfig,
    IdealNetwork,
    config_kind,
    config_type_for,
    entry_for_config,
    make_network,
    register_backend,
    registered_backends,
    unregister_backend,
)
from repro.util.geometry import MeshGeometry


@dataclass(frozen=True)
class ToyConfig:
    mesh: MeshGeometry = field(default_factory=lambda: MeshGeometry(2, 2))

    @property
    def label(self) -> str:
        return "Toy"


class ToyNetwork:
    def __init__(self, config, source=None, stats=None):
        self.config = config
        self.source = source
        self.stats = stats


@pytest.fixture
def toy_backend():
    register_backend("toy", ToyConfig, ToyNetwork)
    yield
    unregister_backend("toy")


class TestDispatch:
    def test_builtin_backends(self):
        mesh = MeshGeometry(4, 4)
        cases = [
            (PhastlaneConfig(mesh=mesh), PhastlaneNetwork, "phastlane"),
            (ElectricalConfig(mesh=mesh), ElectricalNetwork, "electrical"),
            (IdealConfig(mesh=mesh), IdealNetwork, "ideal"),
        ]
        for config, network_type, kind in cases:
            assert isinstance(make_network(config), network_type)
            assert config_kind(config) == kind
            assert config_type_for(kind) is type(config)

    def test_unknown_config_error_names_class_and_backends(self):
        class MysteryConfig:
            pass

        with pytest.raises(FabricError) as excinfo:
            make_network(MysteryConfig())
        message = str(excinfo.value)
        assert "MysteryConfig" in message
        for kind in ("phastlane", "electrical", "ideal"):
            assert kind in message
        assert "register_backend" in message  # points at the fix

    def test_unknown_kind_rejected(self):
        with pytest.raises(FabricError) as excinfo:
            config_type_for("quantum")
        assert "quantum" in str(excinfo.value)

    def test_source_and_stats_forwarded(self):
        from repro.sim.stats import NetworkStats

        stats = NetworkStats()
        network = make_network(PhastlaneConfig(mesh=MeshGeometry(4, 4)), stats=stats)
        assert network.stats is stats


class TestOpenness:
    def test_registered_backend_is_buildable(self, toy_backend):
        assert "toy" in registered_backends()
        network = make_network(ToyConfig())
        assert isinstance(network, ToyNetwork)
        assert config_kind(ToyConfig()) == "toy"

    def test_subclass_falls_back_to_isinstance(self, toy_backend):
        class FancyToyConfig(ToyConfig):
            pass

        assert isinstance(make_network(FancyToyConfig()), ToyNetwork)

    def test_unregister_restores_error(self):
        register_backend("toy", ToyConfig, ToyNetwork)
        unregister_backend("toy")
        with pytest.raises(FabricError):
            entry_for_config(ToyConfig())

    def test_replacing_same_kind_is_allowed(self, toy_backend):
        class ToyNetworkV2(ToyNetwork):
            pass

        register_backend("toy", ToyConfig, ToyNetworkV2)
        assert isinstance(make_network(ToyConfig()), ToyNetworkV2)

    def test_same_config_type_under_two_kinds_rejected(self, toy_backend):
        with pytest.raises(FabricError):
            register_backend("toy2", ToyConfig, ToyNetwork)

    def test_invalid_registrations_rejected(self):
        with pytest.raises(FabricError):
            register_backend("", ToyConfig, ToyNetwork)
        with pytest.raises(FabricError):
            register_backend("bad", "not a type", ToyNetwork)

    def test_registered_backends_is_a_snapshot(self):
        snapshot = registered_backends()
        snapshot["bogus"] = None
        assert "bogus" not in registered_backends()
