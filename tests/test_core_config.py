"""Tests for the Phastlane configuration and packet metadata."""

import pytest

from repro.core.config import HOPS_FOR_SCENARIO, PhastlaneConfig
from repro.core.packet import OpticalPacket
from repro.core.routing import build_plan
from repro.util.geometry import Direction, MeshGeometry

MESH = MeshGeometry(8, 8)


class TestConfig:
    def test_defaults_match_table1(self):
        config = PhastlaneConfig()
        assert config.max_hops_per_cycle == 4
        assert config.buffer_entries == 10
        assert config.nic_buffer_entries == 50
        assert config.payload_wdm == 64

    def test_labels_match_figure10(self):
        assert PhastlaneConfig().label == "Optical4"
        assert PhastlaneConfig(max_hops_per_cycle=5).label == "Optical5"
        assert PhastlaneConfig(buffer_entries=32).label == "Optical4B32"
        assert PhastlaneConfig(buffer_entries=None).label == "Optical4IB"

    def test_scenario_mapping(self):
        assert PhastlaneConfig(max_hops_per_cycle=4).scenario == "pessimistic"
        assert PhastlaneConfig(max_hops_per_cycle=5).scenario == "average"
        assert PhastlaneConfig(max_hops_per_cycle=8).scenario == "optimistic"

    def test_for_scenario_builder(self):
        config = PhastlaneConfig.for_scenario("optimistic")
        assert config.max_hops_per_cycle == HOPS_FOR_SCENARIO["optimistic"]
        with pytest.raises(ValueError):
            PhastlaneConfig.for_scenario("wild-guess")

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            PhastlaneConfig(max_hops_per_cycle=0)
        with pytest.raises(ValueError):
            PhastlaneConfig(buffer_entries=0)
        with pytest.raises(ValueError):
            PhastlaneConfig(crossing_efficiency=0.0)
        with pytest.raises(ValueError):
            PhastlaneConfig(retry_penalty_cycles=0)


class TestOpticalPacket:
    def make(self, src=0, dst=18):
        return OpticalPacket(
            origin=src, plan=build_plan(MESH, src, dst, 4), generated_cycle=3
        )

    def test_current_and_final_nodes(self):
        packet = self.make()
        assert packet.current_node == 0
        assert packet.final_node == 18
        assert packet.remaining_hops == 4

    def test_desired_output_is_first_exit(self):
        assert self.make().desired_output is Direction.EAST
        assert self.make(dst=8).desired_output is Direction.NORTH

    def test_uids_unique(self):
        assert self.make().uid != self.make().uid

    def test_multicast_flag(self):
        packet = self.make()
        assert not packet.is_multicast
        packet.broadcast_id = 7
        assert packet.is_multicast

    def test_trivial_plan_rejected(self):
        with pytest.raises(ValueError):
            OpticalPacket(origin=0, plan=build_plan(MESH, 0, 1, 4)[:1], generated_cycle=0)
