"""Unit tests for the topology layer: registry, built-ins, refusals.

The mesh family is additionally pinned *indirectly* by the digest and
Fig 9/10 byte-identity tests — here we check the topology-specific
surface: registry error handling, torus wraparound and wrap-port
labelling, concentrated-mesh router mapping, and the honest
``require_grid`` refusal the cycle-accurate pipelines rely on.
"""

import pytest

from repro.topology import (
    DEFAULT_TOPOLOGY,
    ConcentratedMesh,
    GridTopology,
    Mesh2D,
    Topology,
    TopologyError,
    Torus2D,
    as_topology,
    policy_by_name,
    register_topology,
    registered_policies,
    registered_topologies,
    require_grid,
    topology_for,
    topology_from_name,
    topology_of,
    unregister_topology,
)
from repro.util.errors import FabricError
from repro.util.geometry import Direction, MeshGeometry

MESH44 = MeshGeometry(4, 4)


class TestRegistry:
    def test_builtins_are_registered(self):
        assert set(registered_topologies()) >= {"mesh", "torus", "cmesh"}
        assert DEFAULT_TOPOLOGY == "mesh"

    def test_unknown_name_names_the_known_ones(self):
        with pytest.raises(TopologyError, match="mesh.*torus"):
            topology_from_name("hypercube", MESH44)

    def test_duplicate_registration_refused(self):
        with pytest.raises(TopologyError, match="already registered"):
            register_topology("mesh", Mesh2D)

    def test_register_and_unregister_round_trip(self):
        class Ring(Mesh2D):
            name = "test-ring"

        register_topology("test-ring", Ring)
        try:
            assert "test-ring" in registered_topologies()
            assert isinstance(topology_from_name("test-ring", MESH44), Ring)
        finally:
            unregister_topology("test-ring")
        assert "test-ring" not in registered_topologies()
        with pytest.raises(TopologyError, match="not registered"):
            unregister_topology("test-ring")

    def test_topology_for_caches_per_name_and_mesh(self):
        a = topology_for("torus", MESH44)
        assert topology_for("torus", MESH44) is a
        assert topology_for("torus", MeshGeometry(4, 4)) is a  # value equality
        assert topology_for("mesh", MESH44) is not a

    def test_as_topology_adapts_meshes_and_passes_topologies_through(self):
        adapted = as_topology(MESH44)
        assert isinstance(adapted, Mesh2D)
        torus = Torus2D(MESH44)
        assert as_topology(torus) is torus

    def test_topology_of_reads_the_config_field_with_mesh_default(self):
        class WithField:
            mesh = MESH44
            topology = "torus"

        class Legacy:  # pre-topology configs have no field at all
            mesh = MESH44

        assert isinstance(topology_of(WithField()), Torus2D)
        assert isinstance(topology_of(Legacy()), Mesh2D)

    def test_topology_error_is_a_fabric_error(self):
        assert issubclass(TopologyError, FabricError)


class TestMesh2D:
    def test_delegates_to_mesh_geometry(self):
        topo = Mesh2D(MESH44)
        for node in topo.nodes():
            for direction in Direction:
                assert topo.neighbor(node, direction) == MESH44.neighbor(
                    node, direction
                )
        assert topo.hop_count(0, 15) == MESH44.hop_count(0, 15)
        assert topo.dor_route(0, 15) == MESH44.dor_route(0, 15)

    def test_link_enumeration_matches_legacy_fault_candidate_order(self):
        topo = Mesh2D(MESH44)
        legacy = [
            (node, int(port))
            for node in MESH44.nodes()
            for port in Direction
            if port is not Direction.LOCAL
            and MESH44.neighbor(node, port) is not None
        ]
        assert topo.links() == legacy

    def test_corner_has_two_ports_interior_has_four(self):
        topo = Mesh2D(MESH44)
        assert len(topo.ports(0)) == 2
        assert len(topo.ports(5)) == 4

    def test_port_labels_are_compass_names(self):
        topo = Mesh2D(MESH44)
        assert topo.port_label(5, int(Direction.EAST)) == "EAST"

    def test_str(self):
        assert str(Mesh2D(MESH44)) == "4x4 mesh"


class TestTorus2D:
    def test_every_node_has_four_ports(self):
        topo = Torus2D(MESH44)
        assert all(len(topo.ports(node)) == 4 for node in topo.nodes())

    def test_wrap_neighbors(self):
        topo = Torus2D(MESH44)
        # Node 0 is (0, 0): WEST wraps to (3, 0), SOUTH wraps to (0, 3).
        assert topo.neighbor(0, Direction.WEST) == 3
        assert topo.neighbor(0, Direction.SOUTH) == 12
        assert topo.neighbor(0, Direction.EAST) == 1

    def test_hop_count_uses_minimal_wrap_distance(self):
        topo = Torus2D(MESH44)
        assert topo.hop_count(0, 3) == 1  # wrap west beats 3 hops east
        assert topo.hop_count(0, 15) == 2  # (0,0)->(3,3) via both wraps
        assert topo.hop_count(0, 5) == 2  # interior pair unchanged

    def test_wrap_ports_are_labelled(self):
        topo = Torus2D(MESH44)
        assert topo.port_label(0, int(Direction.WEST)) == "WEST_WRAP"
        assert topo.port_label(0, int(Direction.EAST)) == "EAST"

    def test_folded_layout_doubles_link_length_above_two_wide(self):
        assert Torus2D(MESH44).link_length_mm(0, int(Direction.EAST), 1.5) == 3.0
        narrow = Torus2D(MeshGeometry(2, 4))
        assert narrow.link_length_mm(0, int(Direction.EAST), 1.5) == 1.5
        assert narrow.link_length_mm(0, int(Direction.NORTH), 1.5) == 3.0

    def test_dor_routes_take_the_wrap_shortcut(self):
        topo = Torus2D(MESH44)
        assert topo.dor_directions(0, 3) == [Direction.WEST]
        route = topo.dor_route(0, 15)
        assert route[0] == 0 and route[-1] == 15
        assert len(route) - 1 == topo.hop_count(0, 15)

    def test_size_one_dimension_has_no_self_links(self):
        line = Torus2D(MeshGeometry(4, 1))
        assert line.neighbor(0, Direction.NORTH) is None
        assert line.neighbor(0, Direction.WEST) == 3

    def test_broadcast_sweeps_cover_all_nodes(self):
        topo = Torus2D(MESH44)
        for source in topo.nodes():
            covered = set()
            for final, taps in topo.broadcast_sweeps(source):
                assert source not in taps
                covered.update(taps)
            assert covered == set(topo.nodes()) - {source}

    def test_no_edge_rows(self):
        topo = Torus2D(MESH44)
        assert not any(topo.is_edge_row(node) for node in topo.nodes())


class TestConcentratedMesh:
    def test_router_grid_is_half_size_rounded_up(self):
        assert ConcentratedMesh(MESH44).routers.num_nodes == 4
        assert ConcentratedMesh(MeshGeometry(5, 3)).routers.num_nodes == 6

    def test_router_mapping_and_terminals_round_trip(self):
        topo = ConcentratedMesh(MESH44)
        for router in topo.routers.nodes():
            terminals = topo.terminals_of(router)
            assert terminals == tuple(sorted(terminals))
            for terminal in terminals:
                assert topo.router_of(terminal) == router
        # Every terminal belongs to exactly one router.
        seen = [t for r in topo.routers.nodes() for t in topo.terminals_of(r)]
        assert sorted(seen) == list(topo.nodes())

    def test_co_located_terminals_are_zero_hops_apart(self):
        topo = ConcentratedMesh(MESH44)
        assert topo.hop_count(0, 1) == 0  # same 2x2 tile
        assert topo.hop_count(0, 15) == 2  # opposite corner routers

    def test_router_pitch_doubles_link_length(self):
        assert ConcentratedMesh(MESH44).link_length_mm(0, 0, 1.5) == 3.0

    def test_is_not_a_grid_topology(self):
        topo = ConcentratedMesh(MESH44)
        assert not isinstance(topo, GridTopology)
        with pytest.raises(TopologyError, match="grid topology"):
            require_grid(topo, "the Phastlane cycle-accurate pipeline")

    def test_str_names_both_grids(self):
        assert "4x4 cmesh" in str(ConcentratedMesh(MESH44))
        assert "2x2 routers" in str(ConcentratedMesh(MESH44))


class TestRoutingPolicies:
    def test_builtin_policies_registered(self):
        assert set(registered_policies()) >= {"dor", "shortest"}

    def test_unknown_policy_names_the_known_ones(self):
        with pytest.raises(TopologyError, match="dor.*shortest"):
            policy_by_name("adaptive")

    def test_dor_refuses_non_grid_topologies(self):
        with pytest.raises(TopologyError, match="grid topology"):
            policy_by_name("dor").plan(ConcentratedMesh(MESH44), 0, 15)

    def test_shortest_works_on_any_topology(self):
        policy = policy_by_name("shortest")
        for topo in (Mesh2D(MESH44), Torus2D(MESH44)):
            nodes, directions = policy.plan(topo, 0, 15)
            assert nodes[0] == 0 and nodes[-1] == 15
            assert len(directions) == len(nodes) - 1 == topo.hop_count(0, 15)


class TestBaseMetrics:
    def test_unreachable_nodes_raise(self):
        class Disconnected(Topology):
            name = "disconnected"

            def neighbor(self, node, direction):
                return None

        topo = Disconnected(MeshGeometry(2, 1))
        with pytest.raises(TopologyError, match="unreachable"):
            topo.hop_count(0, 1)
        with pytest.raises(TopologyError, match="unreachable"):
            topo.shortest_route(0, 1)

    def test_route_directions_reject_non_adjacent_nodes(self):
        topo = Mesh2D(MESH44)
        with pytest.raises(TopologyError, match="not adjacent"):
            topo.route_directions([0, 15])

    def test_shortest_route_of_a_node_to_itself(self):
        assert Mesh2D(MESH44).shortest_route(3, 3) == [3]
