"""The performance-observability subsystem: matrix, harness, BENCH, gate.

The REPORT_SHAS constants pin the no-perturbation guarantee: a RunSpec
executed under the bench harness (timed repeats + EngineProfiler pass +
cProfile pass) must produce a byte-identical result report to a plain
``run()``.  If a change legitimately alters simulated behaviour,
recapture them in the same commit and say so in the commit message.
"""

import hashlib
import json
import time

import pytest

from repro.cli import main
from repro.core.config import PhastlaneConfig
from repro.electrical.config import ElectricalConfig
from repro.harness import runner as runner_module
from repro.harness.exec import CALIBRATION_STAMP, RunSpec, SyntheticWorkload
from repro.harness.report import result_to_dict
from repro.harness.runner import run
from repro.perf import (
    BENCH_SCHEMA,
    BenchSpec,
    bench_cycles,
    bench_report,
    compare,
    default_matrix,
    format_bench_table,
    format_compare,
    format_component_shares,
    format_hot_functions,
    load_bench,
    run_bench,
    write_bench,
)
from repro.util.geometry import MeshGeometry

MESH4 = MeshGeometry(4, 4)
OPT = PhastlaneConfig(mesh=MESH4, max_hops_per_cycle=4)
ELE = ElectricalConfig(mesh=MESH4)

PIN_SPECS = {
    "opt": RunSpec(OPT, SyntheticWorkload("uniform", 0.1), cycles=200),
    "ele": RunSpec(ELE, SyntheticWorkload("uniform", 0.1), cycles=200),
}

REPORT_SHAS = {
    "opt": "a9f6605bb88a3287d8b374beee3959e76440f31705e1065ede18b8288d2b2d1a",
    "ele": "a737c04fc49c3ac26824988654d479ef7252eac0e1bf09a233629454b14bfc9e",
}


def canonical(payload) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def tiny_bench(config=OPT, cycles=60, repeats=2) -> BenchSpec:
    return BenchSpec(
        "tiny",
        RunSpec(config, SyntheticWorkload("uniform", 0.1), cycles=cycles),
        repeats=repeats,
    )


class TestMatrix:
    def test_shape_and_names(self):
        matrix = default_matrix(cycles=100)
        names = [bench.name for bench in matrix]
        assert len(names) == len(set(names)) == 22
        for sim in ("phastlane", "electrical"):
            for pattern in ("uniform", "transpose", "hotspot"):
                assert f"{sim}-4x4/{pattern}" in names
                assert f"{sim}-4x4/{pattern}+faults" in names
            assert f"{sim}-8x8/uniform" in names
            assert f"{sim}-4x4-torus/uniform" in names
        # The vectorized speedup block (see matrix docstring).
        assert "vectorized-8x8/uniform" in names
        assert "vectorized-8x8/uniform+faults" in names
        assert "vectorized-exact-8x8/uniform" in names
        assert "phastlane-16x16/uniform" in names
        assert "vectorized-16x16/uniform" in names
        assert "vectorized-32x32/uniform" in names

    def test_torus_entries_run_on_the_torus_topology(self):
        for bench in default_matrix(cycles=100):
            expected = "torus" if "-torus" in bench.name else "mesh"
            assert bench.spec.config.topology == expected

    def test_fault_entries_carry_an_enabled_fault_config(self):
        matrix = default_matrix(cycles=100)
        for bench in matrix:
            faulted = bench.name.endswith("+faults")
            assert (bench.spec.faults is not None) == faulted
        assert any(b.spec.config.mesh.num_nodes == 64 for b in matrix)

    def test_cycles_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CYCLES", "123")
        assert bench_cycles() == 123
        assert all(b.spec.cycles == 123 for b in default_matrix())
        monkeypatch.delenv("REPRO_BENCH_CYCLES")
        assert bench_cycles() == 600

    def test_validation(self):
        with pytest.raises(ValueError, match="name"):
            BenchSpec("", PIN_SPECS["opt"])
        with pytest.raises(ValueError, match="repeat"):
            BenchSpec("x", PIN_SPECS["opt"], repeats=0)


class TestRunBench:
    def test_measures_rates_and_attribution(self):
        result = run_bench(tiny_bench(), top=5)
        assert result.repeats == 2 and len(result.wall_s_all) == 2
        assert result.wall_s == min(result.wall_s_all) > 0
        assert result.cycles == 60
        assert result.cycles_per_s == pytest.approx(60 / result.wall_s)
        stats = result.result.stats
        assert result.flits_per_s == pytest.approx(
            (stats.packets_injected + stats.hops_traversed) / result.wall_s
        )
        assert "PhastlaneNetwork" in result.profile["components"]
        assert 1 <= len(result.hot_functions) <= 5
        hot = result.hot_functions[0]
        assert set(hot) == {"function", "calls", "self_s", "cumulative_s"}

    def test_cprofile_opt_out(self):
        result = run_bench(tiny_bench(repeats=1), cprofile=False)
        assert result.hot_functions == ()

    @pytest.mark.parametrize("key", sorted(PIN_SPECS))
    def test_bench_harness_is_observability_not_physics(self, key):
        """Bench-harness execution matches a plain run() byte-for-byte."""
        plain = canonical(result_to_dict(run(PIN_SPECS[key])))
        bench = run_bench(BenchSpec("pin", PIN_SPECS[key], repeats=2), top=3)
        assert canonical(result_to_dict(bench.result)) == plain
        assert hashlib.sha256(plain).hexdigest() == REPORT_SHAS[key]


class TestBenchReport:
    def test_schema_and_round_trip(self, tmp_path):
        result = run_bench(tiny_bench(repeats=1), cprofile=False)
        payload = bench_report([result])
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["calibration"] == CALIBRATION_STAMP
        assert set(payload["host"]) == {"platform", "python", "cpu_count"}
        entry = payload["entries"]["tiny"]
        assert entry["digest"] == tiny_bench().spec.digest()
        assert entry["wall_s"] == result.wall_s
        path = write_bench(tmp_path / "BENCH.json", payload)
        assert load_bench(path) == json.loads(path.read_text())

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "something-else"}')
        with pytest.raises(ValueError, match="repro-bench"):
            load_bench(path)

    def test_formatters_render(self):
        result = run_bench(tiny_bench(repeats=1), top=3)
        assert "tiny" in format_bench_table([result])
        assert "PhastlaneNetwork" in format_component_shares(result.profile)
        assert "self s" in format_hot_functions(result.hot_functions)

    def test_markdown_formatters_render_tables(self):
        from repro.perf import format_bench_markdown, format_hot_functions_markdown

        result = run_bench(tiny_bench(repeats=1), top=3)
        markdown = format_bench_markdown([result])
        lines = markdown.splitlines()
        assert lines[0].startswith("**benchmark matrix")
        assert lines[2].startswith("| entry |")
        assert lines[3].startswith("| --- |")
        assert any(line.startswith("| tiny |") for line in lines)
        hot = format_hot_functions_markdown(result.hot_functions)
        assert "| function |" in hot


def _payload(entries):
    return {
        "schema": BENCH_SCHEMA,
        "calibration": CALIBRATION_STAMP,
        "entries": {
            name: {"wall_s": wall, "cycles": cycles}
            for name, (wall, cycles) in entries.items()
        },
    }


class TestCompare:
    def test_self_compare_is_clean(self):
        payload = _payload({"a": (1.0, 100), "b": (2.0, 100)})
        report = compare(payload, payload)
        assert report.ok
        assert {e.status for e in report.entries} == {"ok"}

    def test_regression_and_faster_statuses(self):
        baseline = _payload({"slow": (1.0, 100), "fast": (1.0, 100)})
        current = _payload({"slow": (1.3, 100), "fast": (0.5, 100)})
        report = compare(current, baseline)
        by_name = {e.name: e for e in report.entries}
        assert by_name["slow"].status == "regression"
        assert by_name["slow"].ratio == pytest.approx(1.3)
        assert by_name["fast"].status == "faster"
        assert not report.ok and len(report.regressions) == 1
        assert "REGRESSION" in format_compare(report)
        from repro.perf import format_compare_markdown

        markdown = format_compare_markdown(report)
        assert "| entry |" in markdown
        assert markdown.endswith("REGRESSION: 1 entry past the gate")

    def test_within_threshold_is_ok(self):
        report = compare(
            _payload({"a": (1.2, 100)}), _payload({"a": (1.0, 100)})
        )
        assert report.ok and report.entries[0].status == "ok"

    def test_new_missing_and_incomparable(self):
        baseline = _payload({"gone": (1.0, 100), "changed": (1.0, 100)})
        current = _payload({"fresh": (1.0, 100), "changed": (9.0, 200)})
        report = compare(current, baseline)
        by_name = {e.name: e for e in report.entries}
        assert by_name["gone"].status == "missing"
        assert by_name["fresh"].status == "new"
        assert by_name["changed"].status == "incomparable"
        assert report.ok  # none of these gate

    def test_calibration_mismatch_never_gates(self):
        baseline = _payload({"a": (1.0, 100)})
        current = _payload({"a": (99.0, 100)})
        current["calibration"] = "different-physics"
        report = compare(current, baseline)
        assert report.entries[0].status == "incomparable"
        assert report.ok

    def test_threshold_validated(self):
        with pytest.raises(ValueError, match="threshold"):
            compare(_payload({}), _payload({}), threshold=0.0)


class TestBenchCli:
    # Best-of-3 repeats: wall_s is the min across repeats, so a stray
    # ambient-load spike on one repeat cannot trip the +25% self-compare
    # gate, while a systematic slowdown (the injected-sleep test) still
    # regresses every repeat and gates as intended.
    ARGS = ["bench", "--cycles", "60", "--repeats", "3", "--no-cprofile",
            "--only", "phastlane-4x4/uniform"]

    def _bench(self, tmp_path, *extra):
        return main(self.ARGS + ["--out", str(tmp_path / "BENCH.json")]
                    + list(extra))

    # The self-compare tests check plumbing and formatting, not gate
    # calibration (TestCompare pins that on synthetic payloads), so they
    # loosen the wall-time gate: at 60 cycles a measurement is ~10ms and
    # ambient machine load alone can exceed the default +25%.
    LOOSE_GATE = ("--threshold", "300")

    def test_writes_bench_json_and_self_compare_exits_zero(self, tmp_path, capsys):
        assert self._bench(tmp_path) == 0
        payload = load_bench(tmp_path / "BENCH.json")
        assert set(payload["entries"]) == {
            "phastlane-4x4/uniform", "phastlane-4x4/uniform+faults"
        }
        assert self._bench(tmp_path, "--compare", str(tmp_path / "BENCH.json"),
                           *self.LOOSE_GATE) == 0
        out = capsys.readouterr().out
        assert "benchmark matrix" in out
        assert "OK: no entry regressed" in out

    def test_markdown_format_flag(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH.json"
        assert self._bench(tmp_path) == 0
        capsys.readouterr()
        assert self._bench(
            tmp_path, "--compare", str(baseline), "--format", "markdown",
            *self.LOOSE_GATE
        ) == 0
        out = capsys.readouterr().out
        assert "**benchmark matrix" in out
        assert "| entry |" in out
        assert "| --- |" in out
        assert "OK: no entry regressed" in out

    def test_synthetic_regression_gates_unless_warn_only(
        self, tmp_path, capsys, monkeypatch
    ):
        assert self._bench(tmp_path) == 0
        baseline = str(tmp_path / "BENCH.json")
        # Inject a sleep under run()'s own timer: every simulation gets
        # 60ms slower, far past the +25% gate at these tiny cycle counts.
        real = runner_module._execute_synthetic

        def slow(*args, **kwargs):
            time.sleep(0.06)
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_module, "_execute_synthetic", slow)
        assert self._bench(tmp_path, "--compare", baseline) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert self._bench(tmp_path, "--compare", baseline, "--warn-only") == 0

    def test_missing_baseline_exits_two(self, tmp_path):
        assert self._bench(tmp_path, "--compare", str(tmp_path / "nope.json")) == 2

    def test_unmatched_only_filter_exits_two(self, tmp_path):
        assert main(["bench", "--only", "no-such-entry",
                     "--out", str(tmp_path / "b.json")]) == 2
