"""Tests for the Fig 7 peak-power model and laser energy accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.photonics.power import (
    OpticalPowerModel,
    REASONABLE_PEAK_W,
)


@pytest.fixture(scope="module")
def model() -> OpticalPowerModel:
    return OpticalPowerModel()


class TestPaperAnchors:
    """Section 3.2's quoted operating points."""

    def test_64wdm_4hop_98pct_is_32w(self, model):
        assert model.peak_power_w(64, 4, 0.98) == pytest.approx(32.0, rel=0.02)

    def test_128wdm_5hop_98pct_is_32w(self, model):
        assert model.peak_power_w(128, 5, 0.98) == pytest.approx(32.0, rel=0.02)

    def test_128wdm_4hop_98pct_is_15w(self, model):
        assert model.peak_power_w(128, 4, 0.98) == pytest.approx(15.0, rel=0.02)

    def test_32wdm_needs_high_efficiency_or_short_hops(self, model):
        # "requires either very high crossing efficiency (at least 99%) or a
        # limit on the maximum distance (2-3 hops)"
        assert model.peak_power_w(32, 4, 0.98) > REASONABLE_PEAK_W
        assert model.peak_power_w(32, 2, 0.98) <= REASONABLE_PEAK_W
        assert model.peak_power_w(32, 4, 0.99) <= REASONABLE_PEAK_W


class TestModelShape:
    @given(st.sampled_from([32, 64, 128]), st.integers(1, 7))
    def test_more_hops_needs_more_power(self, model_wdm, hops):
        model = OpticalPowerModel()
        assert model.peak_power_w(model_wdm, hops + 1, 0.98) > model.peak_power_w(
            model_wdm, hops, 0.98
        )

    @given(st.sampled_from([32, 64, 128]), st.integers(1, 8))
    def test_better_efficiency_needs_less_power(self, wdm, hops):
        model = OpticalPowerModel()
        assert model.peak_power_w(wdm, hops, 0.99) < model.peak_power_w(wdm, hops, 0.97)

    def test_perfect_efficiency_is_base_power(self, model):
        assert model.peak_power_w(64, 1, 1.0) == model.peak_power_w(64, 8, 1.0)

    def test_invalid_inputs_rejected(self, model):
        with pytest.raises(ValueError):
            model.peak_power_w(64, 0, 0.98)
        with pytest.raises(ValueError):
            model.peak_power_w(64, 4, 0.0)
        with pytest.raises(ValueError):
            model.peak_power_w(64, 4, 1.5)

    def test_contour_covers_grid(self, model):
        points = model.contour((64,), (1, 2), (0.98, 0.99))
        assert len(points) == 4
        assert all(p.payload_wdm == 64 for p in points)


class TestMaxReasonableHops:
    def test_64wdm_98pct_allows_four_hops(self, model):
        assert model.max_reasonable_hops(64, 0.98) == 4

    def test_32wdm_98pct_limited_to_two(self, model):
        assert model.max_reasonable_hops(32, 0.98) <= 3

    def test_budget_must_be_positive(self, model):
        with pytest.raises(ValueError):
            model.max_reasonable_hops(64, 0.98, budget_w=0.0)


class TestLaserEnergy:
    def test_energy_grows_with_hops(self, model):
        assert model.transmit_laser_energy_pj(64, 4) > model.transmit_laser_energy_pj(64, 1)

    def test_multicast_taps_cost_extra(self, model):
        base = model.transmit_laser_energy_pj(64, 4)
        tapped = model.transmit_laser_energy_pj(64, 4, multicast_taps=4)
        assert tapped > base
        # Each tap extracts 10%: compensation is (1/0.9)^taps.
        assert tapped / base == pytest.approx((1 / 0.9) ** 4)

    def test_single_transmission_far_below_peak(self, model):
        from repro.photonics.constants import CYCLE_TIME_PS

        energy = model.transmit_laser_energy_pj(64, 4)
        peak_energy = 32.0 * CYCLE_TIME_PS  # whole-network worst case
        assert energy < peak_energy / 100

    def test_invalid_inputs_rejected(self, model):
        with pytest.raises(ValueError):
            model.transmit_laser_energy_pj(64, 0)
        with pytest.raises(ValueError):
            model.transmit_laser_energy_pj(64, 4, multicast_taps=-1)
