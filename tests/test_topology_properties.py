"""Property-based topology invariants (hypothesis).

Structural laws every registered topology must uphold, whatever the
shape: routes walk real links, link symmetry holds on grids, hop counts
agree with the routes that realise them, and the deterministic
enumeration contracts (ports ascending, links node-major) that the
fault scheduler depends on.  Degenerate shapes — 1xN meshes, the 2x2
torus where EAST and WEST wrap to the same node — are part of the
sample space on purpose.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.topology import (
    GridTopology,
    Torus2D,
    registered_topologies,
    topology_for,
)
from repro.util.geometry import OPPOSITE, Direction, MeshGeometry

shapes = st.sampled_from(
    [(1, 1), (1, 4), (4, 1), (2, 2), (3, 3), (4, 2), (4, 4), (3, 5), (8, 8)]
)
topology_names = st.sampled_from(sorted(registered_topologies()))
grid_names = st.sampled_from(["mesh", "torus"])


def make(name, shape):
    return topology_for(name, MeshGeometry(*shape))


@given(topology_names, shapes)
def test_ports_are_ascending_and_links_node_major(name, shape):
    topo = make(name, shape)
    for node in topo.nodes():
        ports = topo.ports(node)
        assert list(ports) == sorted(ports)
        assert all(0 <= p < int(Direction.LOCAL) for p in ports)
    links = topo.links()
    assert links == [(n, p) for n in topo.nodes() for p in topo.ports(n)]
    assert len(set(links)) == len(links)


@given(topology_names, shapes)
def test_neighbor_none_exactly_off_the_port_list(name, shape):
    topo = make(name, shape)
    for node in topo.nodes():
        connected = set(topo.ports(node))
        for port in range(int(Direction.LOCAL)):
            there = topo.neighbor(node, port)
            assert (there is not None) == (port in connected)
            if there is not None:
                assert 0 <= there < topo.num_nodes
                assert there != node  # no self-links, even on a 2-torus


@given(grid_names, shapes)
def test_grid_links_are_symmetric(name, shape):
    """Every grid link has a reverse link through the opposite port."""
    topo = make(name, shape)
    for node, port in topo.links():
        there = topo.neighbor(node, port)
        assert topo.neighbor(there, OPPOSITE[Direction(port)]) == node


@given(
    grid_names, shapes, st.integers(0, 10_000), st.integers(0, 10_000)
)
def test_routes_walk_real_links_and_realise_the_hop_count(name, shape, a, b):
    topo = make(name, shape)
    src, dst = a % topo.num_nodes, b % topo.num_nodes
    if src == dst:
        return
    for route in (topo.dor_route(src, dst), topo.shortest_route(src, dst)):
        assert route[0] == src and route[-1] == dst
        assert len(set(route)) == len(route)  # minimal routes never revisit
        for here, there in zip(route, route[1:]):
            assert there in {topo.neighbor(here, p) for p in topo.ports(here)}
        assert len(route) - 1 == topo.hop_count(src, dst)


@given(grid_names, shapes, st.integers(0, 10_000), st.integers(0, 10_000))
def test_route_directions_replay_the_route(name, shape, a, b):
    topo = make(name, shape)
    src, dst = a % topo.num_nodes, b % topo.num_nodes
    route = topo.shortest_route(src, dst)
    here = src
    for direction in topo.route_directions(route):
        here = topo.neighbor(here, direction)
    assert here == dst


@given(grid_names, shapes, st.integers(0, 10_000), st.integers(0, 10_000))
def test_dor_first_direction_matches_the_route(name, shape, a, b):
    topo = make(name, shape)
    src, dst = a % topo.num_nodes, b % topo.num_nodes
    if src == dst:
        return
    directions = topo.dor_directions(src, dst)
    assert directions, "distinct nodes on a connected grid need >= 1 hop"
    assert topo.dor_first_direction(src, dst) == directions[0]


@given(topology_names, shapes, st.integers(0, 10_000), st.integers(0, 10_000))
def test_hop_count_is_a_symmetric_metric(name, shape, a, b):
    topo = make(name, shape)
    src, dst = a % topo.num_nodes, b % topo.num_nodes
    assert topo.hop_count(src, dst) == topo.hop_count(dst, src)
    assert (topo.hop_count(src, dst) == 0) == (
        src == dst or name == "cmesh" and topo.router_of(src) == topo.router_of(dst)
    )


@given(grid_names, shapes, st.integers(0, 10_000))
def test_broadcast_sweeps_cover_everything_once_per_tap_set(name, shape, s):
    topo = make(name, shape)
    if topo.height < 2:
        return  # row-only grids have no vertical sweeps (documented)
    assert isinstance(topo, GridTopology)
    source = s % topo.num_nodes
    covered = set()
    for final, taps in topo.broadcast_sweeps(source):
        assert source not in taps
        assert final in taps | {source}
        covered.update(taps)
    assert covered == set(topo.nodes()) - {source}


def test_two_by_two_torus_east_and_west_reach_the_same_node():
    """The degenerate wrap: both horizontal ports land on the one other
    column, but as distinct links with distinct labels."""
    topo = Torus2D(MeshGeometry(2, 2))
    assert topo.neighbor(0, Direction.EAST) == topo.neighbor(0, Direction.WEST) == 1
    assert topo.neighbor(0, Direction.NORTH) == topo.neighbor(0, Direction.SOUTH) == 2
    assert len(topo.ports(0)) == 4
    assert topo.hop_count(0, 3) == 2
    labels = {topo.port_label(0, p) for p in topo.ports(0)}
    assert labels == {"EAST", "WEST_WRAP", "NORTH", "SOUTH_WRAP"}


def test_one_by_n_mesh_is_a_line():
    topo = topology_for("mesh", MeshGeometry(5, 1))
    assert len(topo.ports(0)) == 1 and len(topo.ports(2)) == 2
    assert topo.hop_count(0, 4) == 4
    assert topo.dor_route(0, 4) == [0, 1, 2, 3, 4]
