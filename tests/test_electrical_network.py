"""Integration-level tests for the electrical baseline network."""

import pytest

from repro.electrical import ElectricalConfig, ElectricalNetwork
from repro.sim.engine import SimulationEngine
from repro.traffic.injection import BernoulliInjector
from repro.traffic.patterns import pattern_by_name
from repro.traffic.trace import SyntheticSource, Trace, TraceEvent, TraceSource
from repro.util.geometry import MeshGeometry

from helpers import drain


def run_trace_events(events, mesh=None, config=None, max_extra=20_000):
    mesh = mesh or MeshGeometry(8, 8)
    config = config or ElectricalConfig(mesh=mesh)
    trace = Trace("t", mesh.num_nodes, events=list(events))
    network = ElectricalNetwork(config, TraceSource(trace))
    drain(network, trace.last_cycle + 1, max_extra)
    return network


class TestUnicastDelivery:
    def test_single_packet_delivered(self):
        network = run_trace_events([TraceEvent(0, 0, 63)])
        assert network.stats.packets_delivered == 1
        assert network.stats.delivery_ratio == 1.0

    def test_zero_load_latency_matches_pipeline(self):
        # 14 hops at 3 cycles/hop + 1 ejection cycle + 1 delivery count.
        network = run_trace_events([TraceEvent(0, 0, 63)])
        hops = 14
        expected = hops * 3 + 1 + 1
        assert network.stats.mean_latency == pytest.approx(expected, abs=1)

    def test_two_cycle_router_is_faster(self):
        mesh = MeshGeometry(8, 8)
        slow = run_trace_events([TraceEvent(0, 0, 63)])
        fast = run_trace_events(
            [TraceEvent(0, 0, 63)],
            config=ElectricalConfig(mesh=mesh, router_delay_cycles=2),
        )
        assert fast.stats.mean_latency < slow.stats.mean_latency

    def test_adjacent_delivery(self):
        network = run_trace_events([TraceEvent(0, 0, 1)])
        assert network.stats.mean_latency == pytest.approx(3 + 1 + 1, abs=1)

    def test_every_pair_eventually_delivered(self):
        mesh = MeshGeometry(4, 4)
        events = [
            TraceEvent(0, src, dst)
            for src in range(16)
            for dst in range(16)
            if src != dst
        ]
        network = run_trace_events(events, mesh=mesh)
        assert network.stats.packets_delivered == 240

    def test_hop_count_accounting(self):
        network = run_trace_events([TraceEvent(0, 0, 63)])
        assert network.stats.hops_traversed == 14


class TestBroadcast:
    def test_broadcast_reaches_everyone_once(self):
        network = run_trace_events([TraceEvent(0, 10, None)])
        assert network.stats.packets_delivered == 63
        assert network.stats.packets_generated == 63

    def test_vctm_cache_warms(self):
        network = run_trace_events(
            [TraceEvent(0, 5, None), TraceEvent(50, 5, None)]
        )
        assert network.vctm.hits == 1
        assert network.vctm.misses == 1
        assert network.stats.packets_delivered == 126

    def test_multicast_flag_recorded(self):
        network = run_trace_events([TraceEvent(0, 5, None)])
        assert network.stats.multicast_packets == 1


class TestFlowControlInvariants:
    def test_all_credits_restored_after_drain(self):
        mesh = MeshGeometry(4, 4)
        events = [TraceEvent(c, c % 16, (c + 5) % 16) for c in range(200)]
        network = run_trace_events(events, mesh=mesh)
        for router in network.routers:
            for port_credits in router.credits:
                assert all(port_credits)

    def test_no_flit_lost_under_load(self):
        mesh = MeshGeometry(4, 4)
        source = SyntheticSource(
            pattern_by_name("uniform", mesh),
            lambda: BernoulliInjector(0.3),
            seed=5,
            stop_cycle=400,
        )
        network = ElectricalNetwork(ElectricalConfig(mesh=mesh), source)
        drain(network, 400)
        stats = network.stats
        assert stats.packets_delivered == stats.packets_generated
        assert stats.packets_dropped == 0

    def test_saturating_pattern_still_lossless(self):
        mesh = MeshGeometry(4, 4)
        source = SyntheticSource(
            pattern_by_name("transpose", mesh),
            lambda: BernoulliInjector(0.8),
            seed=5,
            stop_cycle=200,
        )
        network = ElectricalNetwork(ElectricalConfig(mesh=mesh), source)
        drain(network, 200, max_extra=50_000)
        assert network.stats.delivery_ratio == 1.0


class TestEnergyAccounting:
    def test_energy_recorded_per_category(self):
        network = run_trace_events([TraceEvent(0, 0, 63)])
        energy = network.stats.energy_pj
        for category in ("buffer_write", "buffer_read", "crossbar", "link", "leakage"):
            assert energy[category] > 0

    def test_leakage_accrues_every_cycle(self):
        mesh = MeshGeometry(4, 4)
        network = ElectricalNetwork(ElectricalConfig(mesh=mesh))
        engine = SimulationEngine()
        engine.register(network)
        engine.run(10)
        leak10 = network.stats.energy_pj["leakage"]
        engine.run(10)
        assert network.stats.energy_pj["leakage"] == pytest.approx(2 * leak10)

    def test_longer_paths_use_more_link_energy(self):
        near = run_trace_events([TraceEvent(0, 0, 1)])
        far = run_trace_events([TraceEvent(0, 0, 63)])
        assert far.stats.energy_pj["link"] > near.stats.energy_pj["link"]


class TestNicBackpressure:
    def test_nic_never_drops(self):
        mesh = MeshGeometry(2, 2)
        # Burst of 100 packets in one cycle from one node: far beyond the
        # 50-entry NIC, absorbed by the generation queue.
        events = [TraceEvent(0, 0, 3) for _ in range(100)]
        trace = Trace("burst", 4, events=events)
        network = ElectricalNetwork(ElectricalConfig(mesh=mesh), TraceSource(trace))
        drain(network, 1)
        assert network.stats.packets_delivered == 100

    def test_injection_serialises_one_per_cycle(self):
        mesh = MeshGeometry(2, 2)
        events = [TraceEvent(0, 0, 3) for _ in range(20)]
        trace = Trace("burst", 4, events=events)
        network = ElectricalNetwork(ElectricalConfig(mesh=mesh), TraceSource(trace))
        engine = drain(network, 1)
        # 20 packets at 1/cycle injection minimum.
        assert engine.cycle >= 20
