"""Tests for the WDM packet layout (Table 1 / Fig 3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.photonics.wdm import PacketLayout, WdmChannelPlan, design_point_layout


class TestChannelPlan:
    def test_exact_fit(self):
        assert WdmChannelPlan(640, 64).waveguides == 10

    def test_rounds_up(self):
        assert WdmChannelPlan(641, 64).waveguides == 11
        assert WdmChannelPlan(1, 64).waveguides == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            WdmChannelPlan(0, 64)
        with pytest.raises(ValueError):
            WdmChannelPlan(64, 0)

    @given(st.integers(1, 4096), st.integers(1, 256))
    def test_capacity_bound(self, bits, wdm):
        plan = WdmChannelPlan(bits, wdm)
        assert plan.waveguides * wdm >= bits
        assert (plan.waveguides - 1) * wdm < bits


class TestDesignPointLayout:
    """The Table 1 design point must fall out of the layout maths."""

    def test_payload_ten_waveguides_at_64wdm(self):
        layout = design_point_layout()
        assert layout.payload_waveguides == 10

    def test_control_two_waveguides_35wdm(self):
        layout = design_point_layout()
        assert layout.control_waveguides == 2
        assert layout.control_wdm == 35

    def test_fourteen_control_groups(self):
        assert design_point_layout().control_groups == 14

    def test_twelve_waveguides_per_direction(self):
        assert design_point_layout().waveguides_per_direction == 12

    def test_describe_matches_table1(self):
        rows = design_point_layout().describe()
        assert rows == {
            "packet_payload_wdm": 64,
            "packet_payload_waveguides": 10,
            "packet_control_bits": 70,
            "packet_control_wdm": 35,
            "packet_control_waveguides": 2,
        }


class TestLayoutSweep:
    def test_waveguides_shrink_with_wdm(self):
        w = [PacketLayout(payload_wdm=wdm).payload_waveguides for wdm in (32, 64, 128)]
        assert w == [20, 10, 5]

    def test_receivers_per_port_constant(self):
        # Total resonator/receiver pairs per port depend on bits, not WDM.
        counts = {
            PacketLayout(payload_wdm=wdm).receivers_per_input_port
            for wdm in (32, 64, 128)
        }
        assert counts == {640 + 70}

    def test_invalid_layout_rejected(self):
        with pytest.raises(ValueError):
            PacketLayout(payload_bits=0)
        with pytest.raises(ValueError):
            PacketLayout(payload_wdm=-1)
