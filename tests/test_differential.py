"""Differential proof harness for the vectorized backend.

The vectorized engine (``repro.vectorized``) claims a calibration with two
tiers, and this suite is the proof of exactly that claim — no more:

* ``mode="exact"`` — *bit-identical*: every flattened stats field
  (counters, latency distribution, energy ledger) equals the reference
  Phastlane simulator's, across mesh/torus, synthetic patterns, trace
  workloads and every fault model.  Failures name the diverging field.
* ``mode="fast"`` — *engine*-identical but traffic drawn from a
  documented, digest-distinguished Philox stream: trace workloads stay
  bit-identical; synthetic runs are compared field-by-field where every
  field is either bit-identical or named in the explicit tolerance
  allowlist below.  A field in neither class fails the run.

What this harness does **not** prove: fast-mode synthetic schedules are
statistically — not draw-for-draw — equivalent to the reference, so
fast-mode latency/energy numbers carry the tolerance bands, and nothing
here validates patterns outside the supported set (those fall back to
exact replay, which the fallback tests pin instead).
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.routing import build_plan
from repro.fabric import FabricError, make_network
from repro.faults import FaultConfig
from repro.harness.exec import Executor, RunSpec, SyntheticWorkload
from repro.harness.report import stats_to_dict
from repro.harness.runner import run
from repro.obs import CollectingTracer
from repro.sim.engine import SimulationEngine
from repro.topology import topology_of
from repro.traffic.injection import BurstyInjector
from repro.traffic.patterns import pattern_by_name
from repro.traffic.trace import SyntheticSource, Trace, TraceEvent, TraceSource
from repro.util.geometry import Direction, MeshGeometry
from repro.vectorized import (
    MODES,
    VECTORIZED_CALIBRATION,
    VectorizedConfig,
    as_phastlane,
    philox_key,
    philox_supported,
)
from repro.vectorized.plans import compile_plan, neighbor_table

# -- helpers -----------------------------------------------------------------


def flatten(payload: dict, prefix: str = "") -> dict:
    """``stats_to_dict`` output as dotted field paths (lossless)."""
    flat = {}
    for key, value in payload.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten(value, f"{path}."))
        else:
            flat[path] = value
    return flat


def pair_specs(vec_config, workload, *, cycles, seed, faults=None):
    """The vectorized spec and the reference spec it is calibrated to."""
    ref = RunSpec(
        as_phastlane(vec_config), workload, cycles=cycles, seed=seed, faults=faults
    )
    vec = RunSpec(vec_config, workload, cycles=cycles, seed=seed, faults=faults)
    return ref, vec


def assert_stats_identical(ref_stats, vec_stats, context=""):
    """Field-by-field bit-identity; a failure names the diverging field."""
    ref = flatten(stats_to_dict(ref_stats))
    vec = flatten(stats_to_dict(vec_stats))
    for field in sorted(set(ref) | set(vec)):
        assert ref.get(field) == vec.get(field), (
            f"stat field {field!r} diverged{context}: "
            f"reference={ref.get(field)!r} vectorized={vec.get(field)!r}"
        )


def drive(config, source, *, faults=None, tracer=None, cycles=None):
    """Run a network to drain (or for ``cycles``) outside the runner."""
    network = make_network(config, source, faults=faults)
    if tracer is not None:
        network.add_tracer(tracer)
    engine = SimulationEngine()
    engine.register(network)
    if cycles is not None:
        engine.run(cycles)
    else:
        engine.run(1)
        assert engine.run_until(lambda: network.idle(engine.cycle), 100_000)
    return network


# -- exact mode: bit-identity under fuzzed RunSpecs --------------------------

DIFF = settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: Square/power-of-two shapes so every pattern below is well-defined.
shapes = st.sampled_from([(2, 2), (4, 4), (4, 2), (8, 8)])
grid_topologies = st.sampled_from(["mesh", "torus"])
patterns = st.sampled_from(["uniform", "bitcomp", "tornado"])
rates = st.sampled_from([0.05, 0.1, 0.25])
fault_models = st.sampled_from(
    [
        None,
        FaultConfig(seed=2, link_flip_prob=0.05, retry_limit=5),
        FaultConfig(seed=3, dead_port_count=2, retry_limit=4),
        FaultConfig(seed=4, corrupt_prob=0.08, retry_limit=5),
        FaultConfig(seed=5, nic_stall_prob=0.05, nic_stall_cycles=4),
    ]
)


class TestExactModeBitIdentity:
    """``mode="exact"`` must reproduce the reference stats byte-for-byte."""

    @DIFF
    @given(shapes, grid_topologies, patterns, rates, fault_models,
           st.integers(0, 100))
    def test_synthetic_stats_bit_identical(
        self, shape, topology, pattern, rate, faults, seed
    ):
        vec_config = VectorizedConfig(
            mesh=MeshGeometry(*shape), topology=topology, mode="exact"
        )
        ref, vec = pair_specs(
            vec_config, SyntheticWorkload(pattern, rate),
            cycles=150, seed=seed, faults=faults,
        )
        assert_stats_identical(
            run(ref).stats, run(vec).stats,
            f" ({shape} {topology} {pattern}@{rate} seed={seed})",
        )

    @DIFF
    @given(grid_topologies, st.sampled_from([1, 2, 5]), st.integers(0, 50))
    def test_hop_budget_axis_bit_identical(self, topology, max_hops, seed):
        vec_config = VectorizedConfig(
            mesh=MeshGeometry(4, 4), topology=topology,
            max_hops_per_cycle=max_hops, mode="exact",
        )
        ref, vec = pair_specs(
            vec_config, SyntheticWorkload("uniform", 0.2), cycles=150, seed=seed
        )
        assert_stats_identical(
            run(ref).stats, run(vec).stats, f" (hops={max_hops} seed={seed})"
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("topology", ["mesh", "torus"])
    def test_16x16_bit_identical(self, topology):
        vec_config = VectorizedConfig(
            mesh=MeshGeometry(16, 16), topology=topology, mode="exact"
        )
        ref, vec = pair_specs(
            vec_config, SyntheticWorkload("uniform", 0.1), cycles=200, seed=1
        )
        assert_stats_identical(
            run(ref).stats, run(vec).stats, f" (16x16 {topology})"
        )


# -- fast mode: explicit tolerance allowlist ---------------------------------

#: Fields allowed to differ in fast mode, with (relative, absolute)
#: tolerance.  Everything traffic-shaped lands here — the Philox stream is
#: statistically, not draw-for-draw, equivalent to the reference.  Every
#: other field (drop/retry/fault counters, measurement window, multicast)
#: must stay bit-identical; a field missing from both classes fails.
FAST_TOLERANCES = {
    "average_power_w": (0.15, 0.0),
    "buffer_occupancy.count": (0.15, 0.0),
    "buffer_occupancy.max": (0.25, 5),
    "buffer_occupancy.mean": (0.5, 0.05),
    "buffer_occupancy.min": (0.0, 1),
    "delivery_ratio": (0.02, 0.0),
    "final_cycle": (0.15, 0.0),
    "hops_traversed": (0.15, 0.0),
    "latency.count": (0.12, 0.0),
    "latency.max": (0.0, 12),
    "latency.mean": (0.25, 0.0),
    "latency.min": (0.0, 2),
    "packets_delivered": (0.12, 0.0),
    "packets_generated": (0.12, 0.0),
    "packets_injected": (0.12, 0.0),
}
FAST_TOLERANCE_PREFIXES = {
    "energy_pj.": (0.15, 0.0),
}
#: Per-bucket latency counts are sample noise; the harness checks the
#: histogram's total mass against ``latency.count`` instead.
HISTOGRAM_PREFIX = "latency.histogram."


def fast_rule(field: str):
    rule = FAST_TOLERANCES.get(field)
    if rule is not None:
        return rule
    for prefix, prefix_rule in FAST_TOLERANCE_PREFIXES.items():
        if field.startswith(prefix):
            return prefix_rule
    return None


class TestFastModeTolerances:
    """``mode="fast"`` vs the reference: every field classified."""

    @pytest.mark.parametrize("seed", [1, 7])
    @pytest.mark.parametrize(
        "pattern,rate",
        [("uniform", 0.1), ("transpose", 0.08), ("bitrev", 0.08)],
    )
    def test_synthetic_stats_within_bands(self, pattern, rate, seed):
        vec_config = VectorizedConfig(mesh=MeshGeometry(8, 8))
        ref, vec = pair_specs(
            vec_config, SyntheticWorkload(pattern, rate), cycles=400, seed=seed
        )
        ref_flat = flatten(stats_to_dict(run(ref).stats))
        vec_flat = flatten(stats_to_dict(run(vec).stats))
        for field in sorted(set(ref_flat) | set(vec_flat)):
            if field.startswith(HISTOGRAM_PREFIX):
                continue
            rule = fast_rule(field)
            if rule is None:
                assert ref_flat.get(field) == vec_flat.get(field), (
                    f"field {field!r} is not tolerance-banded and diverged: "
                    f"reference={ref_flat.get(field)!r} "
                    f"vectorized={vec_flat.get(field)!r}"
                )
                continue
            assert field in ref_flat and field in vec_flat, (
                f"tolerance-banded field {field!r} missing on one side"
            )
            rel, absolute = rule
            assert math.isclose(
                ref_flat[field], vec_flat[field],
                rel_tol=rel, abs_tol=absolute,
            ), (
                f"field {field!r} outside its band (rel={rel}, abs={absolute}): "
                f"reference={ref_flat[field]!r} vectorized={vec_flat[field]!r}"
            )
        # The per-bucket histogram is noise-tolerant only in aggregate.
        for side, flat in (("reference", ref_flat), ("vectorized", vec_flat)):
            mass = sum(
                count for field, count in flat.items()
                if field.startswith(HISTOGRAM_PREFIX)
            )
            assert mass == flat["latency.count"], (
                f"{side} histogram mass {mass} != latency.count"
            )

    def test_fast_mode_is_deterministic(self):
        spec = RunSpec(
            VectorizedConfig(mesh=MeshGeometry(4, 4)),
            SyntheticWorkload("uniform", 0.2), cycles=200, seed=9,
        )
        assert stats_to_dict(run(spec).stats) == stats_to_dict(run(spec).stats)

    def test_philox_stream_is_digest_distinguished(self):
        # The documented calibration stream: sha256(f"{seed}/vectorized/{p}").
        assert philox_key(1, "uniform") == 1070236708838027888
        assert philox_key(1, "uniform") != philox_key(2, "uniform")
        assert philox_key(1, "uniform") != philox_key(1, "transpose")
        assert "fast=philox" in VECTORIZED_CALIBRATION
        assert "exact=bit-identical" in VECTORIZED_CALIBRATION

    def test_unsupported_sources_fall_back_to_replay(self):
        mesh = MeshGeometry(4, 4)
        bursty = SyntheticSource(
            pattern_by_name("uniform", mesh),
            lambda: BurstyInjector(0.4, 3.0, 12.0),
            seed=5, stop_cycle=150,
        )
        assert not philox_supported(bursty)
        unbounded = SyntheticSource(
            pattern_by_name("uniform", mesh),
            lambda: BurstyInjector(0.4, 3.0, 12.0),
            seed=5, stop_cycle=None,
        )
        assert not philox_supported(unbounded)


# -- fallback paths stay bit-identical even in fast mode ---------------------


class TestFallbackBitIdentity:
    def make_bursty(self, mesh, stop_cycle):
        return SyntheticSource(
            pattern_by_name("uniform", mesh),
            lambda: BurstyInjector(0.4, 3.0, 12.0),
            seed=5, stop_cycle=stop_cycle,
        )

    def test_bursty_bounded_source_identical(self):
        # Bursty injectors fall outside the Philox calibration, so even in
        # fast mode the schedule is an exact replay of the reference draws.
        mesh = MeshGeometry(4, 4)
        vec_config = VectorizedConfig(mesh=mesh)
        ref = drive(as_phastlane(vec_config), self.make_bursty(mesh, 150))
        vec = drive(vec_config, self.make_bursty(mesh, 150))
        assert_stats_identical(ref.stats, vec.stats, " (bursty bounded)")

    def test_unbounded_source_identical_at_fixed_cycle(self):
        # stop_cycle=None forces the dense per-cycle pull fallback; the
        # source never exhausts, so compare at a fixed cycle instead of
        # running to drain.
        mesh = MeshGeometry(4, 4)
        vec_config = VectorizedConfig(mesh=mesh)
        ref = drive(as_phastlane(vec_config), self.make_bursty(mesh, None),
                    cycles=120)
        vec = drive(vec_config, self.make_bursty(mesh, None), cycles=120)
        assert_stats_identical(ref.stats, vec.stats, " (unbounded)")


# -- trace workloads: bit-identical in BOTH modes ----------------------------


def dense_trace(mesh: MeshGeometry, seed: int) -> Trace:
    """Multi-event cycles, same-node runs, late stragglers — the bucketing
    edge cases the sparse ingest has to reproduce."""
    n = mesh.num_nodes
    events = []
    for index in range(6 * n):
        cycle = (seed + index) % 17
        src = (seed + 3 * index) % n
        dst = (seed + 5 * index + 1) % n
        if src != dst:
            events.append(TraceEvent(cycle, src, dst))
    events.append(TraceEvent(60, 0, n - 1))
    return Trace("dense", n, events=events)


class TestTraceBitIdentity:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("topology", ["mesh", "torus"])
    def test_trace_workload_bit_identical(self, mode, topology):
        mesh = MeshGeometry(4, 4)
        trace = dense_trace(mesh, seed=3)
        vec_config = VectorizedConfig(mesh=mesh, topology=topology, mode=mode)
        ref = drive(as_phastlane(vec_config), TraceSource(trace))
        vec = drive(vec_config, TraceSource(trace))
        assert_stats_identical(ref.stats, vec.stats, f" (trace {mode})")


# -- observability: reduced fidelity, zero perturbation ----------------------


def normalized_events(tracer):
    """Event stream with packet uids renumbered by first appearance."""
    order: dict = {}
    stream = []
    for event in tracer.events:
        uid = order.setdefault(event.uid, len(order))
        stream.append((event.kind, event.cycle, event.node, uid))
    return stream


class TestObservability:
    @pytest.mark.parametrize("mode", MODES)
    def test_tracer_attachment_never_perturbs_stats(self, mode):
        mesh = MeshGeometry(4, 4)
        vec_config = VectorizedConfig(mesh=mesh, mode=mode)

        def source():
            return SyntheticSource(
                pattern_by_name("uniform", mesh),
                lambda: BurstyInjector(0.5, 2.0, 6.0),
                seed=11, stop_cycle=100,
            )

        tracer = CollectingTracer()
        bare = drive(vec_config, source())
        traced = drive(vec_config, source(), tracer=tracer)
        assert_stats_identical(bare.stats, traced.stats, " (tracer attached)")
        assert tracer.events, "tracer attached but saw no events"
        kinds = {event.kind for event in tracer.events}
        assert {"generated", "injected", "delivered"} <= kinds

    def test_fault_event_streams_bit_identical_in_exact_mode(self):
        mesh = MeshGeometry(4, 4)
        faults = FaultConfig(seed=2, link_flip_prob=0.08, retry_limit=5)
        vec_config = VectorizedConfig(mesh=mesh, mode="exact")

        def source():
            return SyntheticSource(
                pattern_by_name("uniform", mesh),
                lambda: BurstyInjector(0.5, 2.0, 6.0),
                seed=11, stop_cycle=100,
            )

        ref_tracer, vec_tracer = CollectingTracer(), CollectingTracer()
        ref = drive(as_phastlane(vec_config), source(), faults=faults,
                    tracer=ref_tracer)
        vec = drive(vec_config, source(), faults=faults, tracer=vec_tracer)
        assert_stats_identical(ref.stats, vec.stats, " (faulted, traced)")
        # Packet uids come from each backend's own allocator (the reference
        # counter is process-global), so compare streams with uids
        # normalized to first-appearance order — same events, same order,
        # same per-packet correspondence.
        ref_events = normalized_events(ref_tracer)
        vec_events = normalized_events(vec_tracer)
        assert ref_events == vec_events
        assert any(kind.startswith("fault") for kind, *_ in ref_events)


# -- parallel execution: serial == pooled, bit-for-bit -----------------------


class TestExecutorBitIdentity:
    def test_pooled_map_identical_to_serial(self):
        mesh = MeshGeometry(4, 4)
        specs = [
            RunSpec(VectorizedConfig(mesh=mesh), SyntheticWorkload("uniform", 0.15),
                    cycles=200, seed=seed)
            for seed in (1, 2, 3)
        ] + [
            RunSpec(VectorizedConfig(mesh=mesh, mode="exact"),
                    SyntheticWorkload("transpose", 0.2), cycles=200, seed=4),
        ]
        serial = [stats_to_dict(run(spec).stats) for spec in specs]
        pooled = [
            stats_to_dict(result.stats)
            for result in Executor(workers=2).map(specs)
        ]
        assert serial == pooled


# -- refusals: same one-line FabricError pattern as cmesh --------------------


class TestRefusals:
    def test_non_grid_topology_refused(self):
        config = VectorizedConfig(mesh=MeshGeometry(4, 4), topology="cmesh")
        with pytest.raises(FabricError, match="grid topology"):
            make_network(config)

    def test_broadcast_trace_refused(self):
        mesh = MeshGeometry(4, 4)
        trace = Trace("bcast", mesh.num_nodes,
                      events=[TraceEvent(0, 0, None)])
        with pytest.raises(FabricError, match="unicast"):
            drive(VectorizedConfig(mesh=mesh), TraceSource(trace))

    def test_unknown_mode_refused(self):
        with pytest.raises(ValueError, match="unknown engine mode"):
            VectorizedConfig(mesh=MeshGeometry(4, 4), mode="warp")

    def test_unknown_topology_refused(self):
        with pytest.raises(ValueError, match="unknown topology"):
            VectorizedConfig(mesh=MeshGeometry(4, 4), topology="hypercube")


# -- compiled plans: bit-identical to build_plan -----------------------------


class TestCompiledPlans:
    @pytest.mark.parametrize("max_hops", [1, 3, 4])
    @pytest.mark.parametrize("topology", ["mesh", "torus"])
    @pytest.mark.parametrize("shape", [(4, 4), (5, 3), (2, 6), (8, 8)])
    def test_compile_plan_matches_build_plan(self, shape, topology, max_hops):
        mesh = MeshGeometry(*shape)
        topo = topology_of(
            VectorizedConfig(mesh=mesh, topology=topology,
                             max_hops_per_cycle=max_hops)
        )
        neighbors = neighbor_table(topo)
        for source in range(mesh.num_nodes):
            for destination in range(mesh.num_nodes):
                if source == destination:
                    continue
                plan = compile_plan(topo, neighbors, source, destination, max_hops)
                reference = build_plan(topo, source, destination, max_hops)
                assert plan.nodes == tuple(step.node for step in reference)
                assert plan.exits == tuple(
                    -1 if step.exit is None else int(step.exit)
                    for step in reference
                )
                assert plan.locals == tuple(step.local for step in reference)
                assert plan.final == destination

    def test_self_route_refused_like_build_plan(self):
        mesh = MeshGeometry(4, 4)
        topo = topology_of(VectorizedConfig(mesh=mesh))
        with pytest.raises(ValueError, match="distinct endpoints"):
            compile_plan(topo, neighbor_table(topo), 3, 3, 4)

    def test_plan_keys_mirror_exit_marks(self):
        mesh = MeshGeometry(4, 4)
        topo = topology_of(VectorizedConfig(mesh=mesh))
        plan = compile_plan(topo, neighbor_table(topo), 0, 15, 2)
        for index in range(plan.length):
            if plan.locals[index]:
                assert plan.keys[index] == -1
            else:
                assert plan.keys[index] == (
                    plan.nodes[index] * 4 + plan.exits[index]
                )


# -- config surface ----------------------------------------------------------


class TestVectorizedConfig:
    def test_labels_distinguish_modes(self):
        assert VectorizedConfig(mesh=MeshGeometry(4, 4)).label == "Vector4"
        assert (
            VectorizedConfig(mesh=MeshGeometry(4, 4), mode="exact").label
            == "Vector4X"
        )

    def test_as_phastlane_mirrors_physics(self):
        config = VectorizedConfig(
            mesh=MeshGeometry(4, 2), topology="torus", max_hops_per_cycle=3,
            buffer_entries=7, nic_buffer_entries=9, payload_wdm=32,
            crossing_efficiency=0.9, retry_penalty_cycles=2,
            backoff_cap_log2=3, packet_bits=128, seed=6,
        )
        mirror = as_phastlane(config)
        for field in (
            "mesh", "topology", "max_hops_per_cycle", "buffer_entries",
            "nic_buffer_entries", "payload_wdm", "crossing_efficiency",
            "retry_penalty_cycles", "backoff_cap_log2", "packet_bits", "seed",
        ):
            assert getattr(mirror, field) == getattr(config, field), field

    def test_direction_ints_are_the_plan_port_ids(self):
        # compile_plan/neighbor_table assume N/E/S/W are 0..3.
        assert [int(d) for d in (
            Direction.NORTH, Direction.EAST, Direction.SOUTH, Direction.WEST
        )] == [0, 1, 2, 3]
