"""Tests for the C0/C1 control-bit encoding (Fig 3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.control import (
    ControlGroup,
    decode_control_bits,
    encode_plan,
    pack_control_bits,
    shift_groups,
)
from repro.core.routing import broadcast_plans, build_plan
from repro.util.geometry import MeshGeometry

MESH = MeshGeometry(8, 8)
nodes = st.integers(0, 63)


class TestControlGroup:
    def test_bits_round_trip(self):
        group = ControlGroup(left=True, local=True, multicast=True)
        assert ControlGroup.from_bits(group.to_bits()) == group

    @given(st.integers(0, 31))
    def test_from_bits_inverse_of_to_bits(self, bits):
        try:
            group = ControlGroup.from_bits(bits)
        except ValueError:
            # multiple direction bits set simultaneously
            direction_bits = bits & 0b111
            assert bin(direction_bits).count("1") > 1
            return
        assert group.to_bits() == bits

    def test_multiple_directions_rejected(self):
        with pytest.raises(ValueError):
            ControlGroup(straight=True, left=True)

    def test_oversized_bits_rejected(self):
        with pytest.raises(ValueError):
            ControlGroup.from_bits(32)


class TestEncodePlan:
    @given(nodes, nodes)
    def test_group_count_matches_route_length(self, src, dst):
        if src == dst:
            return
        plan = build_plan(MESH, src, dst, max_hops=4)
        groups = encode_plan(plan)
        assert len(groups) == len(plan) - 1

    @given(nodes, nodes)
    def test_every_route_fits_the_70_bit_budget(self, src, dst):
        """The 14-group budget covers any 8x8 dimension-order route."""
        if src == dst:
            return
        encode_plan(build_plan(MESH, src, dst, max_hops=4))  # must not raise

    @given(nodes)
    def test_broadcast_plans_fit_budget(self, source):
        for plan in broadcast_plans(MESH, source, max_hops=4):
            encode_plan(plan)

    def test_straight_route_sets_straight_bits(self):
        plan = build_plan(MESH, 0, 3, max_hops=4)
        groups = encode_plan(plan)
        assert groups[0].straight and groups[1].straight
        assert groups[-1].local and not groups[-1].straight

    def test_turn_encoded_once(self):
        # 0 -> 9: east then north = a left turn at node 1.
        plan = build_plan(MESH, 0, 9, max_hops=4)
        groups = encode_plan(plan)
        assert groups[0].left
        assert groups[1].local

    def test_exact_14_group_route(self):
        plan = build_plan(MESH, 0, 63, max_hops=4)
        assert len(encode_plan(plan)) == 14

    def test_trivial_plan_rejected(self):
        with pytest.raises(ValueError):
            encode_plan(build_plan(MESH, 0, 1, 4)[:1])


class TestPackAndShift:
    @given(nodes, nodes)
    def test_pack_decode_round_trip(self, src, dst):
        if src == dst:
            return
        groups = encode_plan(build_plan(MESH, src, dst, max_hops=4))
        word = pack_control_bits(groups)
        assert decode_control_bits(word, len(groups)) == groups

    def test_shift_drops_group_one(self):
        groups = encode_plan(build_plan(MESH, 0, 63, max_hops=4))
        word = pack_control_bits(groups)
        shifted = shift_groups(word)
        assert decode_control_bits(shifted, len(groups) - 1) == groups[1:]

    def test_shifting_all_groups_empties_word(self):
        groups = encode_plan(build_plan(MESH, 0, 5, max_hops=4))
        word = pack_control_bits(groups)
        for _ in groups:
            word = shift_groups(word)
        assert word == 0

    def test_negative_word_rejected(self):
        with pytest.raises(ValueError):
            shift_groups(-1)

    def test_decode_count_bounds(self):
        with pytest.raises(ValueError):
            decode_control_bits(0, 15)
