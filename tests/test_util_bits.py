"""Unit and property tests for the bit-permutation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import (
    bit_complement,
    bit_reverse,
    bit_width,
    extract_bits,
    set_bits,
    shuffle_bits,
    transpose_bits,
)

WIDTH = 6  # 64 nodes
addresses = st.integers(min_value=0, max_value=(1 << WIDTH) - 1)


class TestBitWidth:
    def test_powers_of_two(self):
        assert bit_width(64) == 6
        assert bit_width(2) == 1

    def test_non_power_rounds_up(self):
        assert bit_width(65) == 7
        assert bit_width(63) == 6

    def test_single_value_needs_no_bits(self):
        assert bit_width(1) == 0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            bit_width(0)


class TestKnownValues:
    def test_bit_complement_of_zero_is_all_ones(self):
        assert bit_complement(0, WIDTH) == 63

    def test_bit_reverse_examples(self):
        assert bit_reverse(0b000001, WIDTH) == 0b100000
        assert bit_reverse(0b110000, WIDTH) == 0b000011

    def test_shuffle_rotates_left(self):
        assert shuffle_bits(0b100000, WIDTH) == 0b000001
        assert shuffle_bits(0b000001, WIDTH) == 0b000010

    def test_transpose_swaps_halves(self):
        # (x, y) = (3, 5) -> node 5*8+3; transpose -> (5, 3).
        assert transpose_bits((5 << 3) | 3, WIDTH) == (3 << 3) | 5

    def test_transpose_requires_even_width(self):
        with pytest.raises(ValueError):
            transpose_bits(0, 5)

    def test_out_of_range_address_rejected(self):
        with pytest.raises(ValueError):
            bit_complement(64, WIDTH)
        with pytest.raises(ValueError):
            bit_reverse(-1, WIDTH)


class TestPermutationProperties:
    @given(addresses)
    def test_complement_is_involution(self, addr):
        assert bit_complement(bit_complement(addr, WIDTH), WIDTH) == addr

    @given(addresses)
    def test_reverse_is_involution(self, addr):
        assert bit_reverse(bit_reverse(addr, WIDTH), WIDTH) == addr

    @given(addresses)
    def test_transpose_is_involution(self, addr):
        assert transpose_bits(transpose_bits(addr, WIDTH), WIDTH) == addr

    @given(addresses)
    def test_shuffle_has_order_dividing_width(self, addr):
        value = addr
        for _ in range(WIDTH):
            value = shuffle_bits(value, WIDTH)
        assert value == addr

    @pytest.mark.parametrize(
        "permutation", [bit_complement, bit_reverse, shuffle_bits, transpose_bits]
    )
    def test_is_a_bijection(self, permutation):
        images = {permutation(a, WIDTH) for a in range(1 << WIDTH)}
        assert images == set(range(1 << WIDTH))

    @given(addresses)
    def test_results_stay_in_range(self, addr):
        for permutation in (bit_complement, bit_reverse, shuffle_bits, transpose_bits):
            assert 0 <= permutation(addr, WIDTH) < (1 << WIDTH)


class TestFieldAccess:
    @given(
        st.integers(min_value=0, max_value=2**30),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=1, max_value=8),
    )
    def test_set_then_extract_round_trips(self, value, offset, count):
        field = (value >> 3) & ((1 << count) - 1)
        updated = set_bits(value, offset, count, field)
        assert extract_bits(updated, offset, count) == field

    def test_set_bits_rejects_oversized_field(self):
        with pytest.raises(ValueError):
            set_bits(0, 0, 2, 4)

    def test_extract_bits_rejects_negative_offset(self):
        with pytest.raises(ValueError):
            extract_bits(5, -1, 2)
