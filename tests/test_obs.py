"""Unit tests for the observability layer: events, tracers, config, series."""

import json

import pytest

from repro.obs import (
    EVENT_KINDS,
    ChromeTraceWriter,
    CollectingTracer,
    EngineProfiler,
    JsonlTraceWriter,
    ObsConfig,
    PacketEvent,
    TimeSeries,
    TraceHub,
    Window,
    sampled,
)
from repro.obs.timeseries import _bucket_percentile
from collections import Counter


class TestTraceHub:
    def test_empty_hub_is_falsy(self):
        hub = TraceHub()
        assert not hub
        hub.add(CollectingTracer())
        assert hub

    def test_emit_fans_out_to_every_tracer(self):
        hub = TraceHub()
        a, b = CollectingTracer(), CollectingTracer()
        hub.add(a)
        hub.add(b)
        hub.emit("hop", cycle=3, node=7, uid=42, extra={"deflected": True})
        assert len(a.events) == len(b.events) == 1
        event = a.events[0]
        assert event == PacketEvent("hop", 3, 7, 42, {"deflected": True})

    def test_unknown_kind_rejected(self):
        hub = TraceHub()
        hub.add(CollectingTracer())
        with pytest.raises(ValueError, match="unknown event kind"):
            hub.emit("teleported", cycle=0, node=0, uid=0)

    def test_vocabulary_is_the_full_lifecycle(self):
        assert EVENT_KINDS == (
            "generated",
            "injected",
            "hop",
            "blocked",
            "buffered",
            "dropped",
            "retransmitted",
            "delivered",
            "fault_injected",
            "fault_masked",
            "fault_dropped",
        )

    def test_close_and_on_cycle_reach_tracers(self):
        class Recorder(CollectingTracer):
            closed = False
            cycles = 0

            def on_cycle(self, network, cycle):
                self.cycles += 1

            def close(self):
                self.closed = True

        hub = TraceHub()
        tracer = Recorder()
        hub.add(tracer)
        hub.on_cycle(network=None, cycle=0)
        hub.close()
        assert tracer.cycles == 1 and tracer.closed


class TestSampling:
    def test_rate_one_returns_tracer_unwrapped(self):
        tracer = CollectingTracer()
        assert sampled(tracer, 1.0) is tracer

    @pytest.mark.parametrize("rate", [-0.1, 1.1])
    def test_invalid_rate_rejected(self, rate):
        with pytest.raises(ValueError):
            sampled(CollectingTracer(), rate)

    def test_keeps_whole_lifecycles_deterministically(self):
        inner = CollectingTracer()
        tracer = sampled(inner, 0.5)
        for uid in range(200):
            for kind in ("generated", "injected", "delivered"):
                tracer.emit(PacketEvent(kind, cycle=0, node=0, uid=uid))
        kept = {event.uid for event in inner.events}
        # Every kept uid has its complete 3-event lifecycle.
        for uid in kept:
            assert len([e for e in inner.events if e.uid == uid]) == 3
        # Roughly half survive, and a second pass keeps exactly the same set.
        assert 60 <= len(kept) <= 140
        inner2 = CollectingTracer()
        tracer2 = sampled(inner2, 0.5)
        for uid in range(200):
            tracer2.emit(PacketEvent("generated", cycle=0, node=0, uid=uid))
        assert {event.uid for event in inner2.events} == kept

    def test_rate_zero_keeps_nothing(self):
        inner = CollectingTracer()
        tracer = sampled(inner, 0.0)
        for uid in range(50):
            tracer.emit(PacketEvent("generated", cycle=0, node=0, uid=uid))
        assert inner.events == []


class TestFileExporters:
    def test_jsonl_one_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = JsonlTraceWriter(path)
        writer.emit(PacketEvent("generated", 0, 5, 1, {"dst": 9}))
        writer.emit(PacketEvent("delivered", 4, 9, 1))
        writer.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line) for line in lines] == [
            {"kind": "generated", "cycle": 0, "node": 5, "uid": 1, "dst": 9},
            {"kind": "delivered", "cycle": 4, "node": 9, "uid": 1},
        ]

    def test_chrome_trace_schema(self, tmp_path):
        path = tmp_path / "trace.json"
        writer = ChromeTraceWriter(path)
        writer.emit(PacketEvent("dropped", 17, 18, 99, {"attempts": 2}))
        writer.close()
        payload = json.loads(path.read_text())
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        metadata, instant = payload["traceEvents"]
        assert metadata["ph"] == "M"
        assert instant == {
            "name": "dropped",
            "cat": "packet",
            "ph": "i",
            "s": "t",
            "ts": 17,
            "pid": 0,
            "tid": 18,
            "args": {"uid": 99, "attempts": 2},
        }

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = JsonlTraceWriter(path)
        writer.emit(PacketEvent("generated", 0, 0, 0))
        writer.close()
        writer.emit(PacketEvent("generated", 1, 0, 1))
        writer.close()  # second close must not rewrite the file
        assert len(path.read_text().splitlines()) == 1

    def test_empty_trace_writes_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        JsonlTraceWriter(path).close()
        assert path.read_text() == ""


class TestObsConfig:
    def test_defaults_are_disabled(self):
        config = ObsConfig()
        assert not config.enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"trace_path": "t.json"},
            {"metrics_interval": 100},
            {"profile": True},
        ],
    )
    def test_any_leg_enables(self, kwargs):
        assert ObsConfig(**kwargs).enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            ObsConfig(trace_sample=1.5)
        with pytest.raises(ValueError):
            ObsConfig(metrics_interval=0)

    def test_trace_format_from_suffix(self):
        assert ObsConfig(trace_path="a.jsonl").trace_format == "jsonl"
        assert ObsConfig(trace_path="a.json").trace_format == "chrome"

    def test_with_run_index_suffixes_path(self):
        config = ObsConfig(trace_path="out/drops.json")
        assert config.with_run_index(3).trace_path == "out/drops-0003.json"
        assert ObsConfig(profile=True).with_run_index(3) == ObsConfig(profile=True)


class TestTimeSeries:
    WINDOW = Window(
        start=0,
        end=100,
        generated=50,
        injected=48,
        delivered=40,
        dropped=5,
        retransmitted=5,
        mean_occupancy=2.5,
        latency_p50=10,
        latency_p95=30,
        latency_p99=None,
    )

    def test_round_trip(self):
        series = TimeSeries(interval=100, windows=[self.WINDOW])
        assert TimeSeries.from_dict(series.to_dict()) == series

    def test_column_and_rate(self):
        series = TimeSeries(interval=100, windows=[self.WINDOW])
        assert series.column("dropped") == [5]
        assert self.WINDOW.rate("dropped") == pytest.approx(0.05)
        assert self.WINDOW.cycles == 100

    def test_rate_rejects_non_counters(self):
        with pytest.raises(ValueError, match="unknown counter"):
            self.WINDOW.rate("mean_occupancy")

    def test_bucket_percentile_matches_histogram_semantics(self):
        buckets = Counter({3: 2, 7: 1, 100: 1})
        assert _bucket_percentile(buckets, 4, 50.0) == 3
        assert _bucket_percentile(buckets, 4, 100.0) == 100
        assert _bucket_percentile(Counter(), 0, 50.0) is None


class TestEngineProfiler:
    def test_summary_shares_sum_to_one(self):
        profiler = EngineProfiler()
        profiler.account("net", "step", 0.3)
        profiler.account("net", "commit", 0.1)
        profiler.account(42, "step", 0.1)
        profiler.tick()
        summary = profiler.summary()
        assert summary["cycles"] == 1
        assert summary["total_s"] == pytest.approx(0.5)
        assert summary["components"]["str"]["calls"] == 1
        assert sum(c["share"] for c in summary["components"].values()) == (
            pytest.approx(1.0)
        )

    def test_empty_profiler_summary(self):
        summary = EngineProfiler().summary()
        assert summary == {"cycles": 0, "total_s": 0.0, "components": {}}
