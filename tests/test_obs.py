"""Unit tests for the observability layer: events, tracers, config, series."""

import json

import pytest

from repro.obs import (
    EVENT_KINDS,
    TRACE_SCHEMA,
    ChromeTraceWriter,
    CollectingTracer,
    EngineProfiler,
    JsonlTraceWriter,
    MetricsWatcher,
    ObsConfig,
    PacketEvent,
    SpatialSeries,
    TimeSeries,
    TraceHub,
    Window,
    sampled,
)
from repro.obs.timeseries import _bucket_percentile
from collections import Counter
from repro.sim.stats import NetworkStats


class TestTraceHub:
    def test_empty_hub_is_falsy(self):
        hub = TraceHub()
        assert not hub
        hub.add(CollectingTracer())
        assert hub

    def test_emit_fans_out_to_every_tracer(self):
        hub = TraceHub()
        a, b = CollectingTracer(), CollectingTracer()
        hub.add(a)
        hub.add(b)
        hub.emit("hop", cycle=3, node=7, uid=42, extra={"deflected": True})
        assert len(a.events) == len(b.events) == 1
        event = a.events[0]
        assert event == PacketEvent("hop", 3, 7, 42, {"deflected": True})

    def test_unknown_kind_rejected(self):
        hub = TraceHub()
        hub.add(CollectingTracer())
        with pytest.raises(ValueError, match="unknown event kind"):
            hub.emit("teleported", cycle=0, node=0, uid=0)

    def test_vocabulary_is_the_full_lifecycle(self):
        assert EVENT_KINDS == (
            "generated",
            "injected",
            "hop",
            "blocked",
            "buffered",
            "dropped",
            "retransmitted",
            "delivered",
            "fault_injected",
            "fault_masked",
            "fault_dropped",
            "health_warn",
            "health_critical",
        )

    def test_close_and_on_cycle_reach_tracers(self):
        class Recorder(CollectingTracer):
            closed = False
            cycles = 0

            def on_cycle(self, network, cycle):
                self.cycles += 1

            def close(self):
                self.closed = True

        hub = TraceHub()
        tracer = Recorder()
        hub.add(tracer)
        hub.on_cycle(network=None, cycle=0)
        hub.close()
        assert tracer.cycles == 1 and tracer.closed


class TestSampling:
    def test_rate_one_returns_tracer_unwrapped(self):
        tracer = CollectingTracer()
        assert sampled(tracer, 1.0) is tracer

    @pytest.mark.parametrize("rate", [-0.1, 1.1])
    def test_invalid_rate_rejected(self, rate):
        with pytest.raises(ValueError):
            sampled(CollectingTracer(), rate)

    def test_keeps_whole_lifecycles_deterministically(self):
        inner = CollectingTracer()
        tracer = sampled(inner, 0.5)
        for uid in range(200):
            for kind in ("generated", "injected", "delivered"):
                tracer.emit(PacketEvent(kind, cycle=0, node=0, uid=uid))
        kept = {event.uid for event in inner.events}
        # Every kept uid has its complete 3-event lifecycle.
        for uid in kept:
            assert len([e for e in inner.events if e.uid == uid]) == 3
        # Roughly half survive, and a second pass keeps exactly the same set.
        assert 60 <= len(kept) <= 140
        inner2 = CollectingTracer()
        tracer2 = sampled(inner2, 0.5)
        for uid in range(200):
            tracer2.emit(PacketEvent("generated", cycle=0, node=0, uid=uid))
        assert {event.uid for event in inner2.events} == kept

    def test_rate_zero_keeps_nothing(self):
        inner = CollectingTracer()
        tracer = sampled(inner, 0.0)
        for uid in range(50):
            tracer.emit(PacketEvent("generated", cycle=0, node=0, uid=uid))
        assert inner.events == []


class TestFileExporters:
    def test_jsonl_one_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = JsonlTraceWriter(path, meta={"label": "Optical4"})
        writer.emit(PacketEvent("generated", 0, 5, 1, {"dst": 9}))
        writer.emit(PacketEvent("delivered", 4, 9, 1))
        writer.close()
        header, *lines = path.read_text().splitlines()
        assert json.loads(header) == {
            "schema": TRACE_SCHEMA,
            "kinds": list(EVENT_KINDS),
            "label": "Optical4",
        }
        assert [json.loads(line) for line in lines] == [
            {"kind": "generated", "cycle": 0, "node": 5, "uid": 1, "dst": 9},
            {"kind": "delivered", "cycle": 4, "node": 9, "uid": 1},
        ]

    def test_chrome_trace_schema(self, tmp_path):
        path = tmp_path / "trace.json"
        writer = ChromeTraceWriter(path)
        writer.emit(PacketEvent("dropped", 17, 18, 99, {"attempts": 2}))
        writer.close()
        payload = json.loads(path.read_text())
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        metadata, instant = payload["traceEvents"]
        assert metadata["ph"] == "M"
        assert instant == {
            "name": "dropped",
            "cat": "packet",
            "ph": "i",
            "s": "t",
            "ts": 17,
            "pid": 0,
            "tid": 18,
            "args": {"uid": 99, "attempts": 2},
        }

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = JsonlTraceWriter(path)
        writer.emit(PacketEvent("generated", 0, 0, 0))
        writer.close()
        writer.emit(PacketEvent("generated", 1, 0, 1))
        writer.close()  # second close must not rewrite the file
        assert len(path.read_text().splitlines()) == 2  # header + 1 event

    def test_empty_trace_writes_header_only(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        JsonlTraceWriter(path).close()
        (header,) = path.read_text().splitlines()
        assert json.loads(header)["schema"] == TRACE_SCHEMA


class TestObsConfig:
    def test_defaults_are_disabled(self):
        config = ObsConfig()
        assert not config.enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"trace_path": "t.json"},
            {"metrics_interval": 100},
            {"profile": True},
            {"health": True},
            {"metrics_interval": 100, "stream_path": "s.jsonl"},
        ],
    )
    def test_any_leg_enables(self, kwargs):
        assert ObsConfig(**kwargs).enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            ObsConfig(trace_sample=1.5)
        with pytest.raises(ValueError):
            ObsConfig(metrics_interval=0)
        with pytest.raises(ValueError):
            ObsConfig(health=True, health_interval=0)
        with pytest.raises(ValueError):
            ObsConfig(health_interval=100)  # needs health
        with pytest.raises(ValueError):
            ObsConfig(health=True, health_stall_windows=0)
        with pytest.raises(ValueError):
            ObsConfig(stream_path="s.jsonl")  # needs metrics windows

    def test_trace_format_from_suffix(self):
        assert ObsConfig(trace_path="a.jsonl").trace_format == "jsonl"
        assert ObsConfig(trace_path="a.json").trace_format == "chrome"

    def test_effective_health_interval_falls_back(self):
        assert ObsConfig(health=True).effective_health_interval == 100
        assert (
            ObsConfig(health=True, metrics_interval=40).effective_health_interval
            == 40
        )
        assert (
            ObsConfig(
                health=True, metrics_interval=40, health_interval=25
            ).effective_health_interval
            == 25
        )

    def test_with_run_index_suffixes_path(self):
        config = ObsConfig(trace_path="out/drops.json")
        assert config.with_run_index(3).trace_path == "out/drops-0003.json"
        assert ObsConfig(profile=True).with_run_index(3) == ObsConfig(profile=True)

    def test_with_run_index_suffixes_stream_path(self):
        config = ObsConfig(metrics_interval=50, stream_path="out/s.jsonl")
        assert config.with_run_index(2).stream_path == "out/s-0002.jsonl"


class TestTimeSeries:
    WINDOW = Window(
        start=0,
        end=100,
        generated=50,
        injected=48,
        delivered=40,
        dropped=5,
        retransmitted=5,
        mean_occupancy=2.5,
        latency_p50=10,
        latency_p95=30,
        latency_p99=None,
    )

    def test_round_trip(self):
        series = TimeSeries(interval=100, windows=[self.WINDOW])
        assert TimeSeries.from_dict(series.to_dict()) == series

    def test_column_and_rate(self):
        series = TimeSeries(interval=100, windows=[self.WINDOW])
        assert series.column("dropped") == [5]
        assert self.WINDOW.rate("dropped") == pytest.approx(0.05)
        assert self.WINDOW.cycles == 100

    def test_rate_rejects_non_counters(self):
        with pytest.raises(ValueError, match="unknown counter"):
            self.WINDOW.rate("mean_occupancy")

    def test_bucket_percentile_matches_histogram_semantics(self):
        buckets = Counter({3: 2, 7: 1, 100: 1})
        assert _bucket_percentile(buckets, 4, 50.0) == 3
        assert _bucket_percentile(buckets, 4, 100.0) == 100
        assert _bucket_percentile(Counter(), 0, 50.0) is None


class TestEngineProfiler:
    def test_summary_shares_sum_to_one(self):
        profiler = EngineProfiler()
        profiler.account("net", "step", 0.3)
        profiler.account("net", "commit", 0.1)
        profiler.account(42, "step", 0.1)
        profiler.tick()
        summary = profiler.summary()
        assert summary["cycles"] == 1
        assert summary["total_s"] == pytest.approx(0.5)
        assert summary["components"]["str"]["calls"] == 2  # step + commit
        assert sum(c["share"] for c in summary["components"].values()) == (
            pytest.approx(1.0)
        )

    def test_both_phases_count_as_calls(self):
        profiler = EngineProfiler()
        profiler.account("net", "step", 0.2)
        profiler.account("net", "commit", 0.1)
        entry = profiler.summary()["components"]["str"]
        assert entry["step_calls"] == 1
        assert entry["commit_calls"] == 1
        assert entry["calls"] == 2

    def test_commit_only_component_reports_its_calls(self):
        # Regression: `calls` used to increment only on step, so a
        # commit-only component accumulated commit_s with calls == 0.
        profiler = EngineProfiler()
        profiler.account("latch", "commit", 0.4)
        entry = profiler.summary()["components"]["str"]
        assert entry["commit_s"] == pytest.approx(0.4)
        assert entry["calls"] == entry["commit_calls"] == 1
        assert entry["step_calls"] == 0

    def test_empty_profiler_summary(self):
        summary = EngineProfiler().summary()
        assert summary == {"cycles": 0, "total_s": 0.0, "components": {}}


class _StubRouter:
    def __init__(self, node, occupancy):
        self.node = node
        self._occupancy = occupancy

    def occupancy(self):
        return self._occupancy


class _StubNetwork:
    """Minimal MetricsWatcher surface: stats, routers, mesh, tracer hub."""

    def __init__(self, width=2, height=1, occupancies=(3, 1)):
        from repro.util.geometry import MeshGeometry

        self.mesh = MeshGeometry(width, height)
        self.stats = NetworkStats()
        self.routers = [
            _StubRouter(node, occ) for node, occ in enumerate(occupancies)
        ]
        self.tracers = []

    def add_tracer(self, tracer):
        self.tracers.append(tracer)

    def emit(self, kind, cycle, node):
        for tracer in self.tracers:
            tracer.emit(PacketEvent(kind=kind, cycle=cycle, node=node, uid=1))


class TestMetricsWatcherEdges:
    def test_no_cycles_means_no_windows(self):
        watcher = MetricsWatcher(_StubNetwork(), interval=10)
        series = watcher.finalize(0)
        assert series.windows == [] and series.spatial is None

    def test_empty_window_has_zero_rates_and_no_percentiles(self):
        watcher = MetricsWatcher(_StubNetwork(), interval=5)
        for cycle in range(5):
            watcher(cycle)
        (window,) = watcher.finalize(5).windows
        assert window.delivered == window.dropped == 0
        assert window.rate("delivered") == 0.0
        assert window.latency_p50 is window.latency_p95 is None
        assert window.mean_occupancy == pytest.approx(4.0)

    def test_window_with_deliveries_but_none_measured(self):
        # Deliveries inside the warm-up raise packets_delivered without
        # touching the latency histogram: count > 0, percentiles None.
        network = _StubNetwork()
        watcher = MetricsWatcher(network, interval=5)
        network.stats.measurement_start = 100
        network.stats.record_delivered(0, 3)
        for cycle in range(5):
            watcher(cycle)
        (window,) = watcher.finalize(5).windows
        assert window.delivered == 1
        assert window.latency_p50 is None and window.latency_p99 is None

    def test_spatial_series_round_trip(self):
        spatial = SpatialSeries(
            width=2,
            height=1,
            occupancy=[[3.0, 1.0], [0.5, 0.0]],
            drops=[[1, 0], [0, 2]],
            deliveries=[[4, 4], [5, 3]],
        )
        series = TimeSeries(interval=5, spatial=spatial)
        payload = series.to_dict()
        assert payload["spatial"]["mesh"] == [2, 1]
        assert TimeSeries.from_dict(payload) == series

    def test_non_spatial_payload_shape_unchanged(self):
        series = TimeSeries(interval=5)
        assert "spatial" not in series.to_dict()
        assert TimeSeries.from_dict({"interval": 5, "windows": []}) == series

    def test_spatial_watcher_attributes_events_per_node(self):
        network = _StubNetwork()
        watcher = MetricsWatcher(network, interval=5, spatial=True)
        assert len(network.tracers) == 1  # read-only attribution tracer
        network.stats.record_dropped()
        network.emit("dropped", 2, 0)
        network.stats.record_delivered(0, 2)
        network.emit("delivered", 2, 1)
        for cycle in range(5):
            watcher(cycle)
        series = watcher.finalize(5)
        spatial = series.spatial
        assert spatial.width == 2 and spatial.height == 1
        assert spatial.drops == [[1, 0]]
        assert spatial.deliveries == [[0, 1]]
        # Per-node mean occupancy sums to the window's aggregate mean.
        assert spatial.occupancy == [[3.0, 1.0]]
        assert sum(spatial.occupancy[0]) == pytest.approx(
            series.windows[0].mean_occupancy
        )

    def test_spatial_config_requires_interval(self):
        with pytest.raises(ValueError, match="metrics_interval"):
            ObsConfig(spatial=True)
