"""Tests for the design-space explorer and the Table 1 derivation."""

import pytest

from repro.photonics.dse import DesignSpaceExplorer, table1_configuration


@pytest.fixture(scope="module")
def explorer() -> DesignSpaceExplorer:
    return DesignSpaceExplorer()


class TestExplorer:
    def test_selects_64_wavelengths(self, explorer):
        assert explorer.select_wdm() == 64

    def test_design_point_hops(self, explorer):
        assert explorer.evaluate(64, "pessimistic").max_hops_per_cycle == 4
        assert explorer.evaluate(64, "average").max_hops_per_cycle == 5
        assert explorer.evaluate(64, "optimistic").max_hops_per_cycle == 8

    def test_pessimistic_64wdm_is_feasible(self, explorer):
        point = explorer.evaluate(64, "pessimistic")
        assert point.feasible
        assert point.peak_power_w_at_98pct == pytest.approx(32.0, rel=0.02)

    def test_32wdm_infeasible_on_single_core_node(self, explorer):
        # 32 wavelengths exceed both the node area and the laser budget.
        assert not explorer.evaluate(32, "pessimistic").feasible

    def test_sweep_covers_grid(self, explorer):
        points = explorer.sweep((32, 64), ("average",))
        assert len(points) == 2
        assert {p.payload_wdm for p in points} == {32, 64}


class TestTable1:
    def test_matches_paper_rows(self):
        table = table1_configuration()
        assert table["flits_per_packet"] == "1 (80 Bytes)"
        assert table["packet_payload_wdm"] == 64
        assert table["packet_payload_waveguides"] == 10
        assert table["routing_function"] == "Dimension-Order"
        assert table["packet_control_bits"] == 70
        assert table["packet_control_wdm"] == 35
        assert table["packet_control_waveguides"] == 2
        assert table["buffer_entries_in_nic"] == 50
        assert table["max_hops_per_cycle"] == "4, 5, 8"
        assert table["node_transmit_arbitration"] == "Rotating Priority"
        assert table["network_path_arbitration"] == "Fixed Priority"
