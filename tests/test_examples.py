"""Smoke tests: every example script runs end-to-end (scaled down)."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_design_space(self):
        out = run_example("design_space.py")
        assert "Selected WDM degree: 64" in out
        assert "Figure 6" in out

    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "lower latency" in out
        assert "less network power" in out

    def test_synthetic_sweep(self):
        out = run_example("synthetic_sweep.py", "--cycles", "300")
        assert "zero-load" in out
        assert "Figure 9 panel" in out  # the ASCII plot

    def test_splash2_campaign_subset(self):
        out = run_example(
            "splash2_campaign.py", "--cycles", "300", "--benchmarks", "radix,lu"
        )
        assert "Figure 10" in out and "Figure 11" in out
        assert "Headline" in out

    def test_multicast_broadcast(self):
        out = run_example("multicast_broadcast.py")
        assert "16 multicast packets" in out
        assert "Union of taps covers 63 of 63" in out

    def test_topology_compare(self):
        out = run_example("topology_compare.py", "--cycles", "300")
        assert "Phastlane on mesh vs torus" in out
        assert "every registered topology" in out
        assert "cmesh" in out and "torus" in out
        assert "path delay (ps)" in out

    def test_drop_anatomy(self):
        out = run_example("drop_anatomy.py", "--cycles", "300")
        assert "drops per router" in out
        assert "64-entry buffers" in out

    def test_drop_storm_timeline(self):
        out = run_example("drop_storm_timeline.py", "--cycles", "400")
        assert "drop-rate timeline" in out
        assert "where the drops happen" in out
        assert out.count("\n0-") <= out.count("-")  # sanity: table rendered
        assert "0-100" in out and "300-400" in out

    def test_congestion_heatmap(self, tmp_path):
        out_json = tmp_path / "spatial.json"
        out = run_example(
            "congestion_heatmap.py", "--cycles", "300", "--out", str(out_json)
        )
        assert "mean occupancy" in out
        assert "hottest router over the run" in out
        assert out_json.exists()

    def test_health_watch(self):
        out = run_example("health_watch.py", "--cycles", "400")
        assert "health: ok" in out
        assert "health: critical (first violation at cycle" in out
        assert "livelock" in out
        assert "watchdog verdict" in out

    def test_tail_anatomy(self):
        out = run_example("tail_anatomy.py", "--cycles", "300")
        assert "Where the delivered cycles went" in out
        assert "router_contention" in out
        assert "Slowest 5 packets" in out
        assert "Slowest packet, step by step" in out
        assert "cycles end to end" in out

    def test_fault_sweep(self):
        out = run_example(
            "fault_sweep.py",
            "--cycles", "300",
            "--fault-rates", "0.0,0.05",
            "--no-cache",
        )
        assert "Degradation under link faults" in out
        assert "Delivery ratio vs per-crossing fault rate" in out
