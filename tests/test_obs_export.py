"""Tests for the metrics registry, the three exporters and live streaming."""

import json

import pytest

from repro.core.config import PhastlaneConfig
from repro.harness.exec import RunSpec, SyntheticWorkload
from repro.harness.runner import run
from repro.obs import (
    MetricsRegistry,
    ObsConfig,
    registry_from_result,
    to_csv,
    to_jsonl,
    to_prometheus,
    write_registry,
)
from repro.obs.export import iter_stream_events, read_stream
from repro.util.geometry import MeshGeometry

MESH = MeshGeometry(4, 4)
OPTICAL = PhastlaneConfig(mesh=MESH, max_hops_per_cycle=4)


def spec(obs=None, rate=0.15):
    return RunSpec(
        OPTICAL, SyntheticWorkload("uniform", rate), cycles=300, seed=7, obs=obs
    )


@pytest.fixture(scope="module")
def full_result():
    """One run with every telemetry leg enabled."""
    return run(
        spec(obs=ObsConfig(metrics_interval=100, spatial=True, health=True))
    )


class TestRegistry:
    def test_samples_keep_order_and_sorted_labels(self):
        registry = MetricsRegistry()
        registry.add("a", 10, 1.0, z="last", b="first")
        registry.add("b", 20, 2.0)
        registry.add("a", 30, 3.0, z="last", b="first")
        assert registry.series == ("a", "b")
        assert registry.samples[0].labels == (("b", "first"), ("z", "last"))
        assert registry.samples[0].label_dict == {"b": "first", "z": "last"}

    def test_latest_keeps_last_per_series_and_labels(self):
        registry = MetricsRegistry()
        registry.add("x", 10, 1.0, node=0)
        registry.add("x", 20, 2.0, node=0)
        registry.add("x", 20, 9.0, node=1)
        latest = {(s.series, s.labels): s.value for s in registry.latest()}
        assert latest[("x", (("node", "0"),))] == 2.0
        assert latest[("x", (("node", "1"),))] == 9.0


class TestRegistryFromResult:
    def test_all_legs_flatten_into_series(self, full_result):
        registry = registry_from_result(full_result)
        series = set(registry.series)
        assert {
            "stats.packets_generated",
            "stats.delivery_ratio",
            "stats.energy_pj",
            "window.delivered",
            "window.mean_occupancy",
            "spatial.occupancy",
            "health.level",
            "health.findings",
        } <= series

    def test_values_reconcile_with_the_run(self, full_result):
        registry = registry_from_result(full_result)
        stats = full_result.stats
        by_series = {}
        for sample in registry.samples:
            by_series.setdefault(sample.series, []).append(sample)
        (generated,) = by_series["stats.packets_generated"]
        assert generated.value == stats.packets_generated
        assert generated.cycle == stats.final_cycle
        window_delivered = [s.value for s in by_series["window.delivered"]]
        assert sum(window_delivered) == sum(
            w.delivered for w in full_result.timeseries.windows
        )
        # One spatial sample per node per window, node-labelled.
        spatial = by_series["spatial.occupancy"]
        assert len(spatial) == MESH.num_nodes * len(full_result.timeseries.windows)
        assert spatial[0].label_dict == {"node": "0"}
        (level,) = by_series["health.level"]
        assert level.value == 0  # healthy run

    def test_disabled_legs_are_absent(self):
        registry = registry_from_result(run(spec()))
        series = set(registry.series)
        assert "window.delivered" not in series
        assert "spatial.occupancy" not in series
        assert "health.level" not in series
        assert "stats.packets_generated" in series


class TestRenderers:
    def _registry(self):
        registry = MetricsRegistry()
        registry.add("stats.count", 100, 7)
        registry.add("spatial.occupancy", 100, 1.5, node=3)
        return registry

    def test_jsonl_round_trips(self):
        lines = to_jsonl(self._registry()).splitlines()
        records = [json.loads(line) for line in lines]
        assert records == [
            {"series": "stats.count", "cycle": 100, "value": 7},
            {
                "series": "spatial.occupancy",
                "cycle": 100,
                "value": 1.5,
                "labels": {"node": "3"},
            },
        ]

    def test_csv_has_header_and_flat_labels(self):
        lines = to_csv(self._registry()).splitlines()
        assert lines[0] == "series,cycle,value,labels"
        assert lines[1] == "stats.count,100,7,"
        assert lines[2] == "spatial.occupancy,100,1.5,node=3"

    def test_prometheus_exposition_format(self):
        text = to_prometheus(self._registry())
        assert "# TYPE repro_stats_count gauge" in text
        assert 'repro_stats_count{cycle="100"} 7' in text
        assert 'repro_spatial_occupancy{cycle="100",node="3"} 1.5' in text

    def test_prometheus_keeps_latest_sample_only(self):
        registry = MetricsRegistry()
        registry.add("x", 10, 1)
        registry.add("x", 20, 2)
        text = to_prometheus(registry)
        assert 'repro_x{cycle="20"} 2' in text
        assert 'cycle="10"' not in text

    def test_empty_registry_renders_empty(self):
        registry = MetricsRegistry()
        assert to_jsonl(registry) == ""
        assert to_prometheus(registry) == ""


class TestWriteRegistry:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("m.jsonl", '"series"'),
            ("m.csv", "series,cycle,value,labels"),
            ("m.prom", "# TYPE"),
            ("m.txt", "# TYPE"),
        ],
    )
    def test_format_inferred_from_suffix(self, tmp_path, name, expected):
        registry = MetricsRegistry()
        registry.add("a", 1, 2)
        path = write_registry(tmp_path / name, registry)
        assert expected in path.read_text()

    def test_explicit_format_overrides_suffix(self, tmp_path):
        registry = MetricsRegistry()
        registry.add("a", 1, 2)
        path = write_registry(tmp_path / "m.dat", registry, fmt="csv")
        assert path.read_text().startswith("series,cycle,value,labels")

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown export format"):
            write_registry(tmp_path / "m.xml", MetricsRegistry())


class TestLiveStream:
    def test_run_streams_windows_and_end_record(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        obs = ObsConfig(metrics_interval=100, stream_path=str(path))
        result = run(spec(obs=obs))
        records = read_stream(path)
        windows = iter_stream_events(records, "window")
        assert len(windows) == len(result.timeseries.windows)
        assert [w["end"] for w in windows] == [100, 200, 300]
        assert sum(w["delivered"] for w in windows) == sum(
            w.delivered for w in result.timeseries.windows
        )
        assert records[-1]["event"] == "end"
        assert records[-1]["final_cycle"] == 300

    def test_stream_includes_spatial_slices_when_enabled(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        obs = ObsConfig(metrics_interval=100, spatial=True, stream_path=str(path))
        run(spec(obs=obs))
        windows = iter_stream_events(read_stream(path), "window")
        assert all(len(w["spatial"]["occupancy"]) == MESH.num_nodes for w in windows)

    def test_stream_carries_health_status_in_end_record(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        obs = ObsConfig(metrics_interval=100, health=True, stream_path=str(path))
        run(spec(obs=obs))
        records = read_stream(path)
        assert records[-1]["health"] == "ok"
        assert iter_stream_events(records, "health") == []  # no findings

    def test_streamed_run_is_not_perturbed(self, tmp_path):
        obs = ObsConfig(
            metrics_interval=100, stream_path=str(tmp_path / "s.jsonl")
        )
        assert run(spec(obs=obs)) == run(spec())
