"""Cross-network integration and end-to-end property tests.

Both simulators consume identical traces; these tests check the system-level
invariants the paper's comparison rests on: every generated message is
delivered exactly once per destination in both networks, the optical network
is faster at low load, and the electrical network never loses packets.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import PhastlaneConfig
from repro.core.network import PhastlaneNetwork
from repro.electrical.config import ElectricalConfig
from repro.electrical.network import ElectricalNetwork
from repro.traffic.trace import Trace, TraceEvent, TraceSource
from repro.util.geometry import MeshGeometry

from helpers import drain

MESH = MeshGeometry(4, 4)


def random_trace_strategy(num_nodes=16, max_events=25, max_cycle=60):
    event = st.builds(
        TraceEvent,
        cycle=st.integers(0, max_cycle),
        source=st.integers(0, num_nodes - 1),
        destination=st.integers(0, num_nodes - 1) | st.none(),
    )
    return st.lists(event, max_size=max_events).map(
        lambda events: Trace(
            "prop",
            num_nodes,
            events=[
                e for e in events if e.is_broadcast or e.destination != e.source
            ],
        )
    )


def expected_deliveries(trace: Trace) -> int:
    return sum(
        trace.num_nodes - 1 if e.is_broadcast else 1 for e in trace
    )


def run_both(trace: Trace):
    optical = PhastlaneNetwork(
        PhastlaneConfig(mesh=MESH, max_hops_per_cycle=4), TraceSource(trace)
    )
    electrical = ElectricalNetwork(ElectricalConfig(mesh=MESH), TraceSource(trace))
    drain(optical, trace.last_cycle + 1, 50_000)
    drain(electrical, trace.last_cycle + 1, 50_000)
    return optical, electrical


class TestDeliveryEquivalence:
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(random_trace_strategy())
    def test_both_networks_deliver_everything_exactly_once(self, trace):
        optical, electrical = run_both(trace)
        expected = expected_deliveries(trace)
        assert optical.stats.packets_delivered == expected
        assert electrical.stats.packets_delivered == expected

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(random_trace_strategy())
    def test_electrical_never_drops(self, trace):
        _, electrical = run_both(trace)
        assert electrical.stats.packets_dropped == 0

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(random_trace_strategy(max_events=10))
    def test_optical_faster_at_light_load(self, trace):
        if len(trace) == 0:
            return
        optical, electrical = run_both(trace)
        assert optical.stats.mean_latency <= electrical.stats.mean_latency


class TestHeadlineShapes:
    """Small-scale versions of the paper's headline comparisons."""

    def make_trace(self, rate=0.05, cycles=400, broadcast_every=0):
        from repro.sim.rng import DeterministicRng
        from repro.traffic.patterns import pattern_by_name

        rng = DeterministicRng(21, "headline")
        pattern = pattern_by_name("uniform", MESH)
        events = []
        for cycle in range(cycles):
            for node in range(MESH.num_nodes):
                if rng.bernoulli(rate):
                    if broadcast_every and rng.bernoulli(1 / broadcast_every):
                        events.append(TraceEvent(cycle, node, None))
                    else:
                        events.append(
                            TraceEvent(cycle, node, pattern.destination(node, rng))
                        )
        return Trace("headline", MESH.num_nodes, events=events)

    def test_optical_latency_advantage_at_low_load(self):
        optical, electrical = run_both(self.make_trace())
        ratio = electrical.stats.mean_latency / optical.stats.mean_latency
        assert ratio > 3.0  # paper: 5-10x on the 8x8 mesh; 4x4 paths shorter

    def test_optical_power_advantage(self):
        optical, electrical = run_both(self.make_trace())
        assert optical.stats.average_power_w(250) < 0.5 * electrical.stats.average_power_w(250)

    def test_broadcasts_preserved_under_mixed_traffic(self):
        trace = self.make_trace(rate=0.03, broadcast_every=10)
        optical, electrical = run_both(trace)
        expected = expected_deliveries(trace)
        assert optical.stats.packets_delivered == expected
        assert electrical.stats.packets_delivered == expected
