"""Tests for the Fig 5/6 critical-path and hops-per-cycle models."""

import pytest

from repro.photonics import constants
from repro.photonics.latency import (
    RouterLatencyModel,
    figure5_delays,
    figure6_hops,
    max_hops_per_cycle,
)

PAPER_HOPS = {"optimistic": 8, "average": 5, "pessimistic": 4}


class TestFigure6:
    """The headline Fig 6 result: 8/5/4 hops, independent of WDM degree."""

    @pytest.mark.parametrize("scenario,expected", sorted(PAPER_HOPS.items()))
    def test_paper_hop_counts(self, scenario, expected):
        assert max_hops_per_cycle(scenario) == expected

    @pytest.mark.parametrize("wdm", [32, 64, 128])
    def test_wdm_independence(self, wdm):
        for scenario, expected in PAPER_HOPS.items():
            assert max_hops_per_cycle(scenario, wdm) == expected

    def test_figure6_matrix(self):
        hops = figure6_hops()
        for scenario, expected in PAPER_HOPS.items():
            assert set(hops[scenario].values()) == {expected}

    def test_longer_cycle_allows_more_hops(self):
        model = RouterLatencyModel("average")
        assert model.max_hops_per_cycle(500.0) > model.max_hops_per_cycle(250.0)

    def test_invalid_cycle_time_rejected(self):
        with pytest.raises(ValueError):
            RouterLatencyModel("average").max_hops_per_cycle(0.0)


class TestFigure5:
    """Orderings the paper reports for the critical paths (section 3.1)."""

    @pytest.mark.parametrize("scenario", constants.SCALING_SCENARIOS)
    def test_pass_exceeds_block(self, scenario):
        paths = RouterLatencyModel(scenario).critical_paths()
        assert paths.packet_pass_ps > paths.packet_block_ps

    @pytest.mark.parametrize("scenario", constants.SCALING_SCENARIOS)
    def test_accept_is_fastest(self, scenario):
        paths = RouterLatencyModel(scenario).critical_paths()
        assert paths.packet_accept_ps < paths.packet_block_ps
        assert paths.packet_accept_ps < paths.packet_interim_accept_ps

    @pytest.mark.parametrize("scenario", ["average", "pessimistic"])
    def test_resonator_drive_dominates(self, scenario):
        # "most of the delay involves driving the resonators"
        model = RouterLatencyModel(scenario)
        breakdown = model.packet_pass_breakdown()
        assert breakdown.drive_resonators_ps > 0.5 * breakdown.total_ps

    def test_wavelengths_have_little_impact(self):
        # Fig 5: "the number of wavelengths has little impact on delay".
        pp32 = RouterLatencyModel("average", 32).critical_paths().packet_pass_ps
        pp128 = RouterLatencyModel("average", 128).critical_paths().packet_pass_ps
        assert abs(pp128 - pp32) / pp32 < 0.01

    def test_figure5_covers_all_combinations(self):
        delays = figure5_delays((32, 64, 128))
        assert len(delays) == 9
        assert {(d.scenario, d.payload_wdm) for d in delays} == {
            (s, w) for s in constants.SCALING_SCENARIOS for w in (32, 64, 128)
        }


class TestNetworkPathDelay:
    def test_x_plus_one_link_structure(self):
        # X routers between source and dest = X packet passes, X+1 links.
        model = RouterLatencyModel("average")
        one_hop = model.network_path_delay_ps(1)
        two_hop = model.network_path_delay_ps(2)
        pp = model.packet_pass_breakdown().total_ps
        link = constants.HOP_LENGTH_MM * constants.WAVEGUIDE_DELAY_PS_PER_MM
        assert two_hop - one_hop == pytest.approx(pp + link)

    def test_max_hops_fits_cycle_but_one_more_does_not(self):
        for scenario in constants.SCALING_SCENARIOS:
            model = RouterLatencyModel(scenario)
            hops = model.max_hops_per_cycle()
            assert model.network_path_delay_ps(hops) <= constants.CYCLE_TIME_PS
            assert model.network_path_delay_ps(hops + 1) > constants.CYCLE_TIME_PS

    def test_zero_hops_rejected(self):
        with pytest.raises(ValueError):
            RouterLatencyModel("average").network_path_delay_ps(0)

    def test_accepts_scenario_object(self):
        from repro.photonics.scaling import scenario_delays

        model = RouterLatencyModel(scenario_delays("optimistic"))
        assert model.max_hops_per_cycle() == 8


class TestRoundRobinArbitrationLatency:
    """Footnote 3: round-robin 'increases crossbar latency'."""

    @pytest.mark.parametrize("scenario", constants.SCALING_SCENARIOS)
    def test_round_robin_slows_packet_pass(self, scenario):
        fixed = RouterLatencyModel(scenario)
        rr = RouterLatencyModel(scenario, round_robin_arbitration=True)
        extra = constants.RESONATOR_DRIVE_DELAY_PS[scenario]
        assert rr.critical_paths().packet_pass_ps == pytest.approx(
            fixed.critical_paths().packet_pass_ps + extra
        )

    def test_round_robin_costs_hops(self):
        # The extra drive stage shrinks the per-cycle hop budget for the
        # average and pessimistic scenarios — the reason the paper keeps
        # fixed priority despite its unfairness.
        for scenario in ("average", "pessimistic"):
            fixed = RouterLatencyModel(scenario).max_hops_per_cycle()
            rr = RouterLatencyModel(
                scenario, round_robin_arbitration=True
            ).max_hops_per_cycle()
            assert rr < fixed, scenario

    def test_accept_path_unaffected(self):
        fixed = RouterLatencyModel("average")
        rr = RouterLatencyModel("average", round_robin_arbitration=True)
        assert (
            rr.critical_paths().packet_accept_ps
            == fixed.critical_paths().packet_accept_ps
        )
