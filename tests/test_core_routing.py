"""Tests for predecoded route plans, interim nodes and broadcast fan-out."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.routing import (
    broadcast_plans,
    build_plan,
    clear_passed_taps,
    max_segment_hops,
    plan_hops,
    replan_from,
)
from repro.util.geometry import MeshGeometry

MESH = MeshGeometry(8, 8)
nodes = st.integers(0, 63)
hop_budgets = st.sampled_from([4, 5, 8])


class TestBuildPlan:
    def test_follows_dor_route(self):
        plan = build_plan(MESH, 0, 63, max_hops=4)
        assert [s.node for s in plan] == MESH.dor_route(0, 63)

    def test_final_step_is_local_without_exit(self):
        plan = build_plan(MESH, 0, 10, max_hops=4)
        assert plan[-1].local and plan[-1].exit is None

    @given(nodes, nodes, hop_budgets)
    def test_interim_nodes_bound_segments(self, src, dst, max_hops):
        if src == dst:
            return
        plan = build_plan(MESH, src, dst, max_hops)
        assert max_segment_hops(plan) <= max_hops

    @given(nodes, nodes, hop_budgets)
    def test_interim_placement_every_max_hops(self, src, dst, max_hops):
        if src == dst:
            return
        plan = build_plan(MESH, src, dst, max_hops)
        for index, step in enumerate(plan):
            if 0 < index < len(plan) - 1:
                assert step.local == (index % max_hops == 0)

    def test_short_route_has_no_interims(self):
        plan = build_plan(MESH, 0, 3, max_hops=4)
        assert [s.local for s in plan] == [False, False, False, True]

    def test_taps_recorded(self):
        plan = build_plan(MESH, 0, 16, max_hops=4, taps={8, 16})
        assert [s.node for s in plan if s.multicast] == [8, 16]

    def test_off_path_tap_rejected(self):
        with pytest.raises(ValueError, match="not on the DOR path"):
            build_plan(MESH, 0, 2, max_hops=4, taps={9})

    def test_self_route_rejected(self):
        with pytest.raises(ValueError):
            build_plan(MESH, 5, 5, max_hops=4)

    def test_paper_example_14_hop_route(self):
        # Corner-to-corner at 5 hops/cycle: interims at hop 5 and 10
        # (section 2.1.3: "the source picks the nodes five and ten hops
        # away along dimension order as interim destinations").
        plan = build_plan(MESH, 0, 63, max_hops=5)
        interims = [i for i, s in enumerate(plan) if s.local]
        assert interims == [5, 10, 14]


class TestReplanFrom:
    def test_replan_reaches_same_destination(self):
        plan = build_plan(MESH, 0, 63, max_hops=4)
        new_plan = replan_from(MESH, plan, current_index=3, max_hops=4)
        assert new_plan[0].node == plan[3].node
        assert new_plan[-1].node == 63

    def test_replan_repicks_interims(self):
        plan = build_plan(MESH, 0, 63, max_hops=4)
        new_plan = replan_from(MESH, plan, current_index=2, max_hops=4)
        assert max_segment_hops(new_plan) <= 4
        # First interim is now 4 hops from the *new* transmitter.
        interims = [i for i, s in enumerate(new_plan) if s.local]
        assert interims[0] == 4

    def test_replan_preserves_remaining_taps(self):
        plan = build_plan(MESH, 0, 7, max_hops=8, taps={2, 5, 7})
        new_plan = replan_from(MESH, plan, current_index=3, max_hops=8)
        assert {s.node for s in new_plan if s.multicast} == {5, 7}

    def test_replan_from_final_rejected(self):
        plan = build_plan(MESH, 0, 2, max_hops=4)
        with pytest.raises(ValueError):
            replan_from(MESH, plan, current_index=2, max_hops=4)


class TestClearPassedTaps:
    def test_taps_before_drop_cleared(self):
        plan = build_plan(MESH, 0, 7, max_hops=8, taps={1, 3, 5, 7})
        cleared = clear_passed_taps(plan, drop_index=4)
        assert {s.node for s in cleared if s.multicast} == {5, 7}

    def test_route_geometry_unchanged(self):
        plan = build_plan(MESH, 0, 7, max_hops=8, taps={3})
        cleared = clear_passed_taps(plan, drop_index=5)
        assert [s.node for s in cleared] == [s.node for s in plan]
        assert [s.exit for s in cleared] == [s.exit for s in plan]

    def test_bad_index_rejected(self):
        plan = build_plan(MESH, 0, 3, max_hops=4)
        with pytest.raises(ValueError):
            clear_passed_taps(plan, drop_index=99)


class TestBroadcastPlans:
    @given(nodes, hop_budgets)
    def test_covers_all_other_nodes(self, source, max_hops):
        plans = broadcast_plans(MESH, source, max_hops)
        covered = set()
        for plan in plans:
            covered |= {s.node for s in plan if s.multicast}
        assert covered == set(range(64)) - {source}

    @given(nodes)
    def test_packet_count_matches_paper(self, source):
        # Section 2.1.4: 16 multicast messages, 8 from a top/bottom row.
        plans = broadcast_plans(MESH, source, max_hops=4)
        expected = 8 if MESH.is_edge_row(source) else 16
        assert len(plans) == expected

    @given(nodes, hop_budgets)
    def test_each_plan_is_valid(self, source, max_hops):
        for plan in broadcast_plans(MESH, source, max_hops):
            assert plan[0].node == source
            assert plan[-1].local
            assert plan[-1].multicast  # final node also receives
            assert max_segment_hops(plan) <= max_hops

    @given(nodes)
    def test_source_never_tapped(self, source):
        for plan in broadcast_plans(MESH, source, 4):
            assert not plan[0].multicast

    def test_small_mesh_broadcast(self):
        mesh = MeshGeometry(2, 2)
        plans = broadcast_plans(mesh, 0, max_hops=4)
        covered = set()
        for plan in plans:
            covered |= {s.node for s in plan if s.multicast}
        assert covered == {1, 2, 3}


class TestPlanMetrics:
    def test_plan_hops(self):
        assert plan_hops(build_plan(MESH, 0, 63, 4)) == 14

    def test_max_segment_of_direct_plan(self):
        assert max_segment_hops(build_plan(MESH, 0, 3, 4)) == 3
