"""Tests for the snoopy-coherence message model."""

import pytest

from repro.sim.rng import DeterministicRng
from repro.traffic.coherence import (
    CoherenceMessageMix,
    MessageKind,
    memory_controller_for,
)


class TestMessageKind:
    def test_broadcast_classification(self):
        assert MessageKind.MISS_REQUEST.is_broadcast
        assert MessageKind.INVALIDATE.is_broadcast
        assert not MessageKind.DATA_RESPONSE.is_broadcast
        assert not MessageKind.WRITEBACK.is_broadcast


class TestMessageMix:
    def test_broadcast_fraction(self):
        mix = CoherenceMessageMix(
            miss_request=0.1, invalidate=0.1, data_response=0.5, writeback=0.3
        )
        assert mix.broadcast_fraction == pytest.approx(0.2)

    def test_unnormalised_weights_allowed(self):
        mix = CoherenceMessageMix(
            miss_request=2.0, invalidate=0.0, data_response=6.0, writeback=2.0
        )
        assert mix.broadcast_fraction == pytest.approx(0.2)

    def test_draw_follows_weights(self):
        mix = CoherenceMessageMix(
            miss_request=0.0, invalidate=0.0, data_response=1.0, writeback=1.0
        )
        rng = DeterministicRng(3, "mix")
        kinds = {mix.draw(rng) for _ in range(200)}
        assert kinds == {MessageKind.DATA_RESPONSE, MessageKind.WRITEBACK}

    def test_draw_rate_approximates_weights(self):
        mix = CoherenceMessageMix(
            miss_request=0.25, invalidate=0.0, data_response=0.75, writeback=0.0
        )
        rng = DeterministicRng(4, "rate")
        hits = sum(mix.draw(rng) is MessageKind.MISS_REQUEST for _ in range(8000))
        assert hits / 8000 == pytest.approx(0.25, abs=0.03)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            CoherenceMessageMix(miss_request=-0.1)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            CoherenceMessageMix(0.0, 0.0, 0.0, 0.0)


class TestMemoryControllerInterleaving:
    def test_cache_line_interleaving(self):
        # Section 2: "The 64 MCs are interleaved on a cache line basis".
        assert memory_controller_for(0, 64) == 0
        assert memory_controller_for(63, 64) == 63
        assert memory_controller_for(64, 64) == 0
        assert memory_controller_for(130, 64) == 2

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            memory_controller_for(0, 0)
        with pytest.raises(ValueError):
            memory_controller_for(-1, 64)
