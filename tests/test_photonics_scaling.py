"""Tests for the Fig 4 delay-scaling models."""

import pytest

from repro.photonics import constants
from repro.photonics.scaling import (
    ANCHOR_NODES_NM,
    DelayScalingModel,
    SCENARIO_FIT,
    all_scenarios,
    figure4_series,
    receive_model,
    scenario_delays,
    transmit_model,
)


class TestScenarioDelays:
    def test_canonical_16nm_endpoints(self):
        # Paper section 3.1: transmit 8.0-19.4 ps, receive 1.8-3.7 ps.
        assert scenario_delays("optimistic").transmit_ps == 8.0
        assert scenario_delays("pessimistic").transmit_ps == 19.4
        assert scenario_delays("optimistic").receive_ps == 1.8
        assert scenario_delays("pessimistic").receive_ps == 3.7

    def test_average_is_between_extremes(self):
        opt, avg, pess = all_scenarios()
        assert opt.transmit_ps < avg.transmit_ps < pess.transmit_ps
        assert opt.receive_ps < avg.receive_ps < pess.receive_ps
        assert opt.resonator_drive_ps < avg.resonator_drive_ps < pess.resonator_drive_ps

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            scenario_delays("hopeful")

    def test_fit_kind_mapping(self):
        assert scenario_delays("optimistic").fit_kind == "logarithmic"
        assert scenario_delays("average").fit_kind == "linear"
        assert scenario_delays("pessimistic").fit_kind == "exponential"


class TestCurveFits:
    @pytest.mark.parametrize("fit_kind", ["linear", "logarithmic", "exponential"])
    def test_fits_are_decreasing_toward_16nm(self, fit_kind):
        model = transmit_model(fit_kind)
        trend = model.trend([45.0, 32.0, 22.0, 16.0])
        assert trend == sorted(trend, reverse=True)

    def test_fit_ordering_at_16nm(self):
        # Log extrapolates lowest (optimistic), exp highest (pessimistic).
        log = transmit_model("logarithmic").delay_at(16.0)
        lin = transmit_model("linear").delay_at(16.0)
        exp = transmit_model("exponential").delay_at(16.0)
        assert log < lin < exp

    def test_transmit_fit_lands_near_paper_range(self):
        log = transmit_model("logarithmic").delay_at(16.0)
        exp = transmit_model("exponential").delay_at(16.0)
        assert log == pytest.approx(8.0, rel=0.35)
        assert exp == pytest.approx(19.4, rel=0.35)

    def test_receive_fit_lands_near_paper_range(self):
        log = receive_model("logarithmic").delay_at(16.0)
        exp = receive_model("exponential").delay_at(16.0)
        assert log == pytest.approx(1.8, rel=0.35)
        assert exp == pytest.approx(3.7, rel=0.35)

    def test_fit_interpolates_anchor_region(self):
        model = transmit_model("linear")
        for node, anchor in zip(ANCHOR_NODES_NM, (42.0, 28.0, 19.0)):
            assert model.delay_at(node) == pytest.approx(anchor, rel=0.15)

    def test_invalid_fit_kind_rejected(self):
        with pytest.raises(ValueError):
            DelayScalingModel([45, 22], [10, 5], "cubic")

    def test_non_positive_anchor_rejected(self):
        with pytest.raises(ValueError):
            DelayScalingModel([45, 22], [10, 0], "linear")

    def test_delay_never_negative(self):
        model = transmit_model("logarithmic")
        assert model.delay_at(1.0) >= 0.0

    def test_non_positive_query_rejected(self):
        with pytest.raises(ValueError):
            transmit_model("linear").delay_at(0.0)


class TestFigure4Series:
    def test_series_structure(self):
        series = figure4_series()
        assert set(series) == {"transmit", "receive"}
        for component in series.values():
            assert set(component) == set(SCENARIO_FIT)

    def test_transmit_above_receive_everywhere(self):
        series = figure4_series()
        for scenario in constants.SCALING_SCENARIOS:
            for tx, rx in zip(series["transmit"][scenario], series["receive"][scenario]):
                assert tx > rx
