"""Unit tests for the electrical router and flit mechanics."""

import pytest

from repro.electrical.config import ElectricalConfig
from repro.electrical.flit import Flit
from repro.electrical.network import ElectricalNetwork
from repro.electrical.router import LOCAL_PORT
from repro.sim.engine import SimulationEngine
from repro.util.geometry import MeshGeometry


class TestFlit:
    def test_replica_inherits_metadata(self):
        flit = Flit(source=0, destinations={1, 2, 3}, generated_cycle=7)
        replica = flit.replica({1, 2})
        assert replica.generated_cycle == 7
        assert replica.source == 0
        assert replica.uid != flit.uid

    def test_replica_must_be_subset(self):
        flit = Flit(source=0, destinations={1}, generated_cycle=0)
        with pytest.raises(ValueError):
            flit.replica({2})

    def test_multicast_detection(self):
        assert Flit(0, {1, 2}, 0).is_multicast
        assert not Flit(0, {1}, 0).is_multicast

    def test_self_destination_rejected(self):
        with pytest.raises(ValueError):
            Flit(0, {0, 1}, 0)

    def test_empty_destinations_rejected(self):
        with pytest.raises(ValueError):
            Flit(0, set(), 0)


class TestRouterState:
    def make_network(self):
        mesh = MeshGeometry(4, 4)
        return ElectricalNetwork(ElectricalConfig(mesh=mesh))

    def test_find_free_vc(self):
        network = self.make_network()
        router = network.routers[0]
        assert router.find_free_vc(LOCAL_PORT) == 0
        flit = Flit(0, {1}, 0)
        router.accept_flit(LOCAL_PORT, 0, flit, 0, network)
        assert router.find_free_vc(LOCAL_PORT) == 1

    def test_double_occupancy_rejected(self):
        network = self.make_network()
        router = network.routers[0]
        router.accept_flit(LOCAL_PORT, 0, Flit(0, {1}, 0), 0, network)
        with pytest.raises(RuntimeError):
            router.accept_flit(LOCAL_PORT, 0, Flit(0, {2}, 0), 0, network)

    def test_busy_reflects_occupancy(self):
        network = self.make_network()
        router = network.routers[0]
        assert not router.busy
        router.accept_flit(LOCAL_PORT, 0, Flit(0, {1}, 0), 0, network)
        assert router.busy

    def test_double_credit_rejected(self):
        network = self.make_network()
        router = network.routers[0]
        with pytest.raises(RuntimeError):
            router.restore_credit(0, 0)  # credit already free

    def test_local_only_flit_ejects_without_crossbar(self):
        network = self.make_network()
        engine = SimulationEngine()
        engine.register(network)
        # A flit whose only destination is the router's own node goes to
        # the ejection path, not the crossbar; deliver and check.
        router = network.routers[5]
        router.accept_flit(
            LOCAL_PORT, 0, Flit(source=1, destinations={5}, generated_cycle=0), 0, network
        )
        engine.run(3)
        assert network.stats.packets_delivered == 1
        assert not router.busy


class TestConfigValidation:
    def test_table2_defaults(self):
        table = ElectricalConfig().describe()
        assert table["number_of_vcs_per_port"] == 10
        assert table["number_of_entries_per_vc"] == 1
        assert table["vc_allocator"] == "ISLIP"
        assert table["input_speedup"] == 4
        assert table["buffer_entries_in_nic"] == 50
        assert table["wait_for_tail_credit"] == "YES"

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            ElectricalConfig(num_vcs=0)
        with pytest.raises(ValueError):
            ElectricalConfig(router_delay_cycles=0)
        with pytest.raises(ValueError):
            ElectricalConfig(input_speedup=0)
        with pytest.raises(ValueError):
            ElectricalConfig(nic_buffer_entries=0)
