"""Tests for the mesh instrumentation probes."""

import pytest

from repro.core import PhastlaneConfig, PhastlaneNetwork
from repro.electrical import ElectricalConfig, ElectricalNetwork
from repro.sim.probes import (
    MeshProbe,
    attach_phastlane_probe,
    attach_probe,
    render_heatmap,
)
from repro.traffic.trace import Trace, TraceEvent, TraceSource
from repro.util.geometry import MeshGeometry

from helpers import drain

MESH = MeshGeometry(8, 8)


class TestMeshProbe:
    def test_counters_accumulate(self):
        probe = MeshProbe(MeshGeometry(2, 2))
        probe.record_drop(1)
        probe.record_drop(1)
        probe.record_delivery(3)
        assert probe.drops[1] == 2
        assert probe.deliveries[3] == 1

    def test_mean_occupancy(self):
        probe = MeshProbe(MeshGeometry(2, 2))
        probe.sample_occupancy({0: 4, 1: 0})
        probe.sample_occupancy({0: 2, 1: 0})
        assert probe.mean_occupancy(0) == 3.0
        assert probe.mean_occupancy(1) == 0.0

    def test_out_of_mesh_node_rejected(self):
        probe = MeshProbe(MeshGeometry(2, 2))
        with pytest.raises(ValueError):
            probe.record_drop(4)

    def test_heatmap_renders_mesh_shape(self):
        probe = MeshProbe(MeshGeometry(4, 3))
        probe.record_drop(0)
        text = probe.heatmap("drops")
        lines = text.splitlines()
        assert len(lines) == 4  # title + 3 rows
        assert all(len(line) == 4 for line in lines[1:])

    def test_heatmap_peak_marks_hottest_cell(self):
        probe = MeshProbe(MeshGeometry(2, 2))
        for _ in range(10):
            probe.record_drop(3)  # (1, 1): top row, right column
        probe.record_drop(0)
        lines = probe.heatmap("drops").splitlines()
        assert lines[1][1] == "@"  # node 3 printed top-right

    def test_empty_heatmap(self):
        probe = MeshProbe(MeshGeometry(2, 2))
        assert "peak=0" in probe.heatmap("drops")

    def test_hottest_nodes(self):
        probe = MeshProbe(MeshGeometry(2, 2))
        probe.record_delivery(2)
        probe.record_delivery(2)
        probe.record_delivery(1)
        assert probe.hottest_nodes("deliveries", top=1) == [2]

    @pytest.mark.parametrize("bad_name", ["samples", "mesh", "latency", "_check"])
    def test_unknown_counter_rejected(self, bad_name):
        probe = MeshProbe(MeshGeometry(2, 2))
        with pytest.raises(ValueError, match="unknown probe counter"):
            probe.heatmap(bad_name)
        with pytest.raises(ValueError, match="unknown probe counter"):
            probe.hottest_nodes(bad_name)

    def test_occupancy_sum_addressable_by_name(self):
        probe = MeshProbe(MeshGeometry(2, 2))
        probe.sample_occupancy({0: 4, 1: 1})
        assert probe.hottest_nodes("occupancy_sum", top=1) == [0]
        assert "occupancy_sum heatmap" in probe.heatmap("occupancy_sum")


class TestRenderHeatmap:
    def test_mapping_and_dense_sequence_agree(self):
        mesh = MeshGeometry(2, 2)
        as_mapping = render_heatmap({3: 10, 0: 1}, mesh, title="t")
        as_sequence = render_heatmap([1.0, 0.0, 0.0, 10.0], mesh, title="t")
        assert as_mapping == as_sequence
        assert as_mapping.splitlines()[1][1] == "@"  # node 3 top-right

    def test_dense_sequence_length_validated(self):
        with pytest.raises(ValueError, match="4 per-node values"):
            render_heatmap([1.0, 2.0], MeshGeometry(2, 2))

    def test_default_title_carries_peak(self):
        text = render_heatmap([0.0, 0.0, 0.0, 2.5], MeshGeometry(2, 2))
        assert text.splitlines()[0] == "heatmap (2x2 mesh), peak=2.5"

    def test_probe_heatmap_is_a_render_heatmap_wrapper(self):
        probe = MeshProbe(MeshGeometry(2, 2))
        probe.record_drop(3)
        probe.record_drop(0)
        expected = render_heatmap(
            probe.drops, probe.mesh, title="drops heatmap (2x2 mesh), peak=1"
        )
        assert probe.heatmap("drops") == expected


class TestPhastlaneAttachment:
    def test_probe_counts_match_stats(self):
        config = PhastlaneConfig(mesh=MESH, max_hops_per_cycle=4, buffer_entries=1)
        events = [
            TraceEvent(0, 18, 34),
            TraceEvent(0, 17, 26),
            TraceEvent(0, 16, 26),
            TraceEvent(10, 27, None),
        ]
        trace = Trace("t", 64, events=events)
        network = PhastlaneNetwork(config, TraceSource(trace))
        probe = attach_phastlane_probe(network)
        drain(network, 11)

        assert sum(probe.drops.values()) == network.stats.packets_dropped
        # Every delivery — the 63 broadcast taps plus the unicasts — is
        # attributed per node and matches the ledger exactly.
        assert sum(probe.deliveries.values()) == network.stats.packets_delivered
        assert sum(probe.deliveries.values()) >= 63
        assert probe.samples > 0

    def test_drop_location_is_the_blocking_router(self):
        config = PhastlaneConfig(mesh=MESH, max_hops_per_cycle=4, buffer_entries=1)
        events = [
            TraceEvent(0, 18, 34),
            TraceEvent(0, 17, 26),
            TraceEvent(0, 16, 26),
        ]
        network = PhastlaneNetwork(config, TraceSource(Trace("t", 64, events=events)))
        probe = attach_phastlane_probe(network)
        drain(network, 1)
        assert set(probe.drops) <= {17, 18}
        assert sum(probe.drops.values()) >= 1


class TestElectricalAttachment:
    def test_probe_works_on_electrical_baseline(self):
        events = [
            TraceEvent(0, 18, 34),
            TraceEvent(0, 17, 26),
            TraceEvent(10, 27, None),
        ]
        trace = Trace("t", 64, events=events)
        network = ElectricalNetwork(ElectricalConfig(mesh=MESH), TraceSource(trace))
        probe = attach_probe(network)
        drain(network, 11)

        # The electrical baseline never drops; every unicast delivery (and
        # each of the 63 broadcast ejections) lands on the probe.
        assert sum(probe.drops.values()) == 0
        assert sum(probe.deliveries.values()) == network.stats.packets_delivered
        # Node 34 receives its unicast plus one broadcast ejection.
        assert probe.deliveries[34] == 2
        assert probe.samples > 0
        assert sum(probe.occupancy_sum.values()) > 0
