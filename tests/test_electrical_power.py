"""Tests for the electrical power model."""

import pytest

from repro.electrical.power import (
    ALLOCATION_PJ_PER_CYCLE,
    BUFFER_WRITE_PJ_PER_BIT,
    ElectricalPowerModel,
    LINK_PJ_PER_BIT_PER_MM,
)
from repro.photonics.constants import HOP_LENGTH_MM
from repro.sim.stats import NetworkStats


@pytest.fixture
def model() -> ElectricalPowerModel:
    return ElectricalPowerModel()


class TestEnergyEvents:
    def test_buffer_write_energy(self, model):
        stats = NetworkStats()
        model.buffer_write(stats)
        assert stats.energy_pj["buffer_write"] == pytest.approx(
            640 * BUFFER_WRITE_PJ_PER_BIT
        )

    def test_link_energy_scales_with_length(self):
        stats = NetworkStats()
        ElectricalPowerModel(hop_length_mm=2.0).link(stats)
        assert stats.energy_pj["link"] == pytest.approx(
            640 * LINK_PJ_PER_BIT_PER_MM * 2.0
        )

    def test_default_hop_length_is_node_pitch(self, model):
        assert model.hop_length_mm == pytest.approx(HOP_LENGTH_MM)

    def test_allocation_energy_fixed(self, model):
        stats = NetworkStats()
        model.allocation(stats)
        assert stats.energy_pj["allocation"] == ALLOCATION_PJ_PER_CYCLE

    def test_events_accumulate(self, model):
        stats = NetworkStats()
        model.crossbar(stats)
        model.crossbar(stats)
        single = NetworkStats()
        model.crossbar(single)
        assert stats.energy_pj["crossbar"] == pytest.approx(
            2 * single.energy_pj["crossbar"]
        )


class TestLeakage:
    def test_leakage_scales_with_routers_and_cycles(self, model):
        a, b = NetworkStats(), NetworkStats()
        model.leakage(a, num_routers=64, cycles=1)
        model.leakage(b, num_routers=32, cycles=2)
        assert a.energy_pj["leakage"] == pytest.approx(b.energy_pj["leakage"])

    def test_leakage_power_magnitude(self, model):
        # 64 routers at (9 + 1.5) mW = 672 mW static power.
        stats = NetworkStats()
        model.leakage(stats, num_routers=64, cycles=1000)
        stats.final_cycle = 1000
        assert stats.average_power_w(250.0) == pytest.approx(0.672, rel=1e-6)

    def test_invalid_inputs_rejected(self, model):
        with pytest.raises(ValueError):
            model.leakage(NetworkStats(), num_routers=0)


class TestValidation:
    def test_invalid_model_rejected(self):
        with pytest.raises(ValueError):
            ElectricalPowerModel(packet_bits=0)
        with pytest.raises(ValueError):
            ElectricalPowerModel(hop_length_mm=0.0)
