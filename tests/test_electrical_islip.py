"""Tests for the iSLIP allocators."""

import pytest

from repro.electrical.islip import (
    Request,
    RoundRobinArbiter,
    SwitchAllocator,
    VcAllocator,
)


class TestRoundRobinArbiter:
    def test_picks_at_or_after_pointer(self):
        arbiter = RoundRobinArbiter(4)
        arbiter.pointer = 2
        assert arbiter.choose({0, 3}) == 3

    def test_wraps_around(self):
        arbiter = RoundRobinArbiter(4)
        arbiter.pointer = 3
        assert arbiter.choose({1}) == 1

    def test_empty_requests_yield_none(self):
        assert RoundRobinArbiter(4).choose(set()) is None

    def test_advance_past(self):
        arbiter = RoundRobinArbiter(4)
        arbiter.advance_past(3)
        assert arbiter.pointer == 0

    def test_fairness_over_rounds(self):
        """With all lines always requesting, grants rotate evenly."""
        arbiter = RoundRobinArbiter(3)
        grants = []
        for _ in range(9):
            line = arbiter.choose({0, 1, 2})
            grants.append(line)
            arbiter.advance_past(line)
        assert grants == [0, 1, 2] * 3

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)


class TestSwitchAllocator:
    def make(self, speedup=1):
        return SwitchAllocator(num_ports=5, num_vcs=2, input_speedup=speedup)

    def test_conflict_free_subset(self):
        allocator = self.make()
        requests = [Request(0, 0, 2), Request(1, 0, 2), Request(2, 0, 3)]
        granted = allocator.allocate(requests)
        outputs = [r.output_port for r in granted]
        assert len(outputs) == len(set(outputs))
        assert len(granted) == 2  # output 2 grants once, output 3 once

    def test_output_speedup_one_limits_output(self):
        allocator = self.make()
        requests = [Request(i, 0, 4) for i in range(4)]
        assert len(allocator.allocate(requests)) == 1

    def test_input_speedup_allows_multiple_accepts(self):
        allocator = self.make(speedup=4)
        requests = [Request(0, vc, vc) for vc in range(2)]  # two VCs, two outputs
        assert len(allocator.allocate(requests)) == 2

    def test_input_speedup_one_limits_input(self):
        allocator = self.make(speedup=1)
        requests = [Request(0, 0, 1), Request(0, 1, 2)]
        assert len(allocator.allocate(requests)) == 1

    def test_no_requests(self):
        assert self.make().allocate([]) == []

    def test_invalid_request_rejected(self):
        with pytest.raises(ValueError):
            self.make().allocate([Request(9, 0, 0)])
        with pytest.raises(ValueError):
            self.make().allocate([Request(0, 9, 0)])

    def test_pointer_desynchronisation(self):
        """Repeated full contention rotates grants across inputs (iSLIP)."""
        allocator = self.make()
        winners = []
        for _ in range(4):
            granted = allocator.allocate([Request(i, 0, 0) for i in range(4)])
            assert len(granted) == 1
            winners.append(granted[0].input_port)
        assert len(set(winners)) > 1  # not starving a single input

    def test_multicast_vc_can_win_two_outputs(self):
        allocator = self.make(speedup=4)
        requests = [Request(0, 0, 1), Request(0, 0, 2)]
        granted = allocator.allocate(requests)
        assert len(granted) == 2


class TestVcAllocator:
    def test_grants_free_vcs(self):
        allocator = VcAllocator(num_ports=5, num_vcs=2)
        grants = allocator.allocate(
            [(0, 0, 3)], free_vcs={3: [0, 1]}
        )
        assert grants == {(0, 0, 3): 0}

    def test_no_free_vcs_no_grant(self):
        allocator = VcAllocator(5, 2)
        assert allocator.allocate([(0, 0, 3)], {3: []}) == {}

    def test_two_requesters_share_free_vcs(self):
        allocator = VcAllocator(5, 2)
        grants = allocator.allocate(
            [(0, 0, 3), (1, 0, 3)], {3: [0, 1]}
        )
        assert len(grants) == 2
        assert {vc for vc in grants.values()} == {0, 1}

    def test_scarce_vc_goes_to_rotating_winner(self):
        allocator = VcAllocator(5, 2)
        first = allocator.allocate([(0, 0, 3), (1, 0, 3)], {3: [0]})
        second = allocator.allocate([(0, 0, 3), (1, 0, 3)], {3: [0]})
        assert len(first) == 1 and len(second) == 1
        assert set(first) != set(second)  # pointer advanced

    def test_multicast_groups_allocate_in_parallel(self):
        allocator = VcAllocator(5, 2)
        grants = allocator.allocate(
            [(0, 0, 1), (0, 0, 2)], {1: [0], 2: [0]}
        )
        assert len(grants) == 2
