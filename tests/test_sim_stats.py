"""Tests for the statistics ledger."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import Histogram, NetworkStats, RunningMean, SaturationError


class TestRunningMean:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    def test_matches_direct_mean(self, values):
        mean = RunningMean()
        for value in values:
            mean.add(value)
        assert mean.mean == pytest.approx(sum(values) / len(values), rel=1e-9, abs=1e-9)
        assert mean.min == min(values)
        assert mean.max == max(values)
        assert mean.count == len(values)

    def test_total(self):
        mean = RunningMean()
        for v in (1.0, 2.0, 3.0):
            mean.add(v)
        assert mean.total == pytest.approx(6.0)

    def test_empty_stream_extremes_are_sentinels(self):
        # An empty stream keeps the identity sentinels: min is +inf and
        # max is -inf, so min > max flags "no samples" unambiguously.
        mean = RunningMean()
        assert mean.count == 0
        assert mean.min == float("inf")
        assert mean.max == float("-inf")
        assert mean.min > mean.max

    def test_single_value_stream_collapses_extremes(self):
        mean = RunningMean()
        mean.add(7.5)
        assert mean.count == 1
        assert mean.min == 7.5
        assert mean.max == 7.5
        assert mean.mean == 7.5
        assert mean.total == 7.5


class TestHistogram:
    def test_percentiles(self):
        hist = Histogram()
        for v in range(1, 101):
            hist.add(v)
        assert hist.percentile(50) == 50
        assert hist.percentile(99) == 99
        assert hist.percentile(100) == 100

    def test_empty_percentile_rejected(self):
        with pytest.raises(ValueError):
            Histogram().percentile(50)

    def test_invalid_percentile_rejected(self):
        hist = Histogram()
        hist.add(1)
        with pytest.raises(ValueError):
            hist.percentile(0)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_single_bucket_answers_every_percentile(self):
        hist = Histogram()
        for _ in range(5):
            hist.add(42)
        for p in (0.1, 1, 50, 99, 100):
            assert hist.percentile(p) == 42

    def test_p100_is_the_maximum_bucket(self):
        hist = Histogram()
        hist.add(1)
        hist.add(1)
        hist.add(1000)
        assert hist.percentile(100) == 1000

    def test_fractional_values_truncate_into_buckets(self):
        # Buckets are int(value): 3.2 and 3.9 share bucket 3, so every
        # percentile of this histogram reads back the truncated value.
        hist = Histogram()
        hist.add(3.2)
        hist.add(3.9)
        assert hist.items() == [(3, 2)]
        assert hist.percentile(50) == 3
        assert hist.percentile(100) == 3

    def test_tiny_percentile_still_returns_a_bucket(self):
        # target rounds to 0 for small p; the max(1, ...) floor keeps the
        # answer at the smallest bucket rather than an empty scan.
        hist = Histogram()
        hist.add(5)
        hist.add(9)
        assert hist.percentile(0.001) == 5


class TestNetworkStats:
    def test_latency_counts_delivery_cycle(self):
        stats = NetworkStats()
        stats.record_delivered(10, 10)
        assert stats.mean_latency == 1.0  # same-cycle delivery = 1 cycle

    def test_warmup_excludes_early_packets(self):
        stats = NetworkStats(measurement_start=100)
        stats.record_delivered(50, 60)  # warm-up, excluded from latency
        stats.record_delivered(150, 160)
        assert stats.latency.mean.count == 1
        assert stats.packets_delivered == 2

    def test_delivery_before_generation_rejected(self):
        stats = NetworkStats()
        with pytest.raises(ValueError):
            stats.record_delivered(10, 5)

    def test_mean_latency_on_empty_raises_saturation(self):
        with pytest.raises(SaturationError):
            NetworkStats().mean_latency

    def test_delivery_ratio(self):
        stats = NetworkStats()
        for _ in range(4):
            stats.record_generated(0)
        stats.record_delivered(0, 1)
        assert stats.delivery_ratio == 0.25

    def test_average_power(self):
        stats = NetworkStats()
        stats.add_energy("laser", 1000.0)  # 1000 pJ
        stats.final_cycle = 4  # 4 * 250 ps = 1 ns
        assert stats.average_power_w(250.0) == pytest.approx(1.0)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            NetworkStats().add_energy("x", -1.0)

    def test_throughput_over_window(self):
        stats = NetworkStats(measurement_start=100)
        stats.final_cycle = 200
        for _ in range(50):
            stats.record_delivered(150, 160)
        assert stats.throughput(num_nodes=10) == pytest.approx(50 / (100 * 10))

    def test_multicast_counted(self):
        stats = NetworkStats()
        stats.record_generated(0, multicast=True)
        assert stats.multicast_packets == 1
