"""Tests for the runtime health watchdogs: check units, the monitor, and
end-to-end runs (clean, faulted and deliberately livelocked)."""

from collections import Counter
from types import SimpleNamespace

import pytest

from repro.core.config import PhastlaneConfig
from repro.electrical.config import ElectricalConfig
from repro.electrical.network import ElectricalNetwork
from repro.faults import FaultConfig
from repro.harness.exec import RunSpec, SyntheticWorkload
from repro.harness.report import result_from_dict, result_to_dict
from repro.harness.runner import run
from repro.obs import HealthFinding, HealthMonitor, HealthReport, ObsConfig
from repro.obs.events import TraceHub
from repro.obs.health import (
    ConservationCheck,
    CreditLeakCheck,
    HealthCheck,
    HealthContext,
    ProgressCheck,
    default_health_checks,
    register_health_check,
    registered_health_checks,
)
from repro.obs.tracers import CollectingTracer
from repro.sim.stats import NetworkStats
from repro.util.geometry import Direction, MeshGeometry

MESH = MeshGeometry(4, 4)
OPTICAL = PhastlaneConfig(mesh=MESH, max_hops_per_cycle=4)
ELECTRICAL = ElectricalConfig(mesh=MESH)

EAST = int(Direction.EAST)
WEST = int(Direction.WEST)


def spec(config=OPTICAL, obs=None, rate=0.15, cycles=300, faults=None):
    return RunSpec(
        config,
        SyntheticWorkload("uniform", rate),
        cycles=cycles,
        seed=7,
        faults=faults,
        obs=obs,
    )


def ctx_for(network, stats=None, **overrides):
    """A HealthContext over ``network`` with empty event history."""
    fields = dict(
        network=network,
        stats=stats if stats is not None else getattr(network, "stats", None),
        window=0,
        start=0,
        end=100,
        events=Counter(),
        delta=Counter(),
        node_activity=Counter(),
        node_injected=Counter(),
        lost_events=0,
    )
    fields.update(overrides)
    return HealthContext(**fields)


class TestFindingAndReport:
    def test_finding_round_trips(self):
        finding = HealthFinding(
            check="progress", severity="warn", cycle=200, message="m", node=3
        )
        assert HealthFinding.from_dict(finding.to_dict()) == finding
        global_finding = HealthFinding("x", "critical", 1, "m")
        assert HealthFinding.from_dict(global_finding.to_dict()).node is None

    def test_finding_rejects_ok_severity(self):
        with pytest.raises(ValueError, match="warn or critical"):
            HealthFinding("x", "ok", 0, "m")

    def test_report_round_trips(self):
        report = HealthReport(
            status="critical",
            first_violation_cycle=100,
            interval=50,
            windows=6,
            checks={"progress": {"status": "critical", "violations": 2}},
            findings=[HealthFinding("progress", "critical", 100, "livelock")],
            truncated=1,
        )
        assert HealthReport.from_dict(report.to_dict()) == report
        assert not report.ok
        assert HealthReport().ok


class TestRegistry:
    def test_stock_checks_registered(self):
        assert registered_health_checks() == (
            "credit_leak", "flit_conservation", "progress",
        )

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_health_check("progress", lambda sw: ProgressCheck(sw))

    def test_factories_build_fresh_instances(self):
        first = default_health_checks(3)
        second = default_health_checks(3)
        assert {c.name for c in first} == set(registered_health_checks())
        assert all(a is not b for a, b in zip(first, second))
        progress = next(c for c in first if c.name == "progress")
        assert progress.stall_windows == 3


class TestConservationCheck:
    def _net(self, backlog=0):
        return SimpleNamespace(
            nics=[SimpleNamespace(backlog=backlog)], stats=NetworkStats()
        )

    def test_consistent_state_is_clean(self):
        network = self._net(backlog=2)
        ctx = ctx_for(network, events=Counter({"generated": 5, "injected": 3}))
        network.stats.packets_injected = 3
        assert ConservationCheck().evaluate(ctx) == []

    def test_queue_identity_violation_is_critical(self):
        network = self._net(backlog=0)
        ctx = ctx_for(network, events=Counter({"generated": 5, "injected": 3}))
        network.stats.packets_injected = 3
        findings = ConservationCheck().evaluate(ctx)
        assert [f.severity for f in findings] == ["critical"]
        assert "conservation broken" in findings[0].message

    def test_ledger_drift_is_critical(self):
        network = self._net()
        network.stats.retransmissions = 4
        findings = ConservationCheck().evaluate(ctx_for(network))
        assert any("stats.retransmissions=4" in f.message for f in findings)

    def test_lost_packets_reconciled_against_events(self):
        network = self._net()
        network.stats.packets_lost = 2
        findings = ConservationCheck().evaluate(ctx_for(network, lost_events=0))
        assert any("packets_lost" in f.message for f in findings)


class TestCreditLeakCheck:
    def test_applies_only_to_credit_based_backends(self):
        from repro.fabric.registry import make_network

        check = CreditLeakCheck()
        assert check.applies(ElectricalNetwork(ELECTRICAL))
        assert not check.applies(make_network(OPTICAL))

    def test_quiet_network_is_clean(self):
        network = ElectricalNetwork(ELECTRICAL)
        assert CreditLeakCheck().evaluate(ctx_for(network)) == []

    def test_corrupted_credit_is_caught(self):
        network = ElectricalNetwork(ELECTRICAL)
        network.routers[5].credits[EAST][0] = False  # leak it
        findings = CreditLeakCheck().evaluate(ctx_for(network))
        assert len(findings) == 1
        assert findings[0].severity == "critical"
        assert findings[0].node == 5
        assert "credit leaked" in findings[0].message

    def test_double_credit_is_caught(self):
        network = ElectricalNetwork(ELECTRICAL)
        # Node 6's EAST input VC holds a flit, so upstream node 5's EAST
        # credit for that VC must be withheld — but it is still available.
        network.routers[6].vcs[EAST][0] = SimpleNamespace(groups={})
        findings = CreditLeakCheck().evaluate(ctx_for(network))
        assert len(findings) == 1
        assert findings[0].node == 5
        assert "double credit" in findings[0].message

    def test_findings_capped_per_window(self):
        network = ElectricalNetwork(ELECTRICAL)
        for router in network.routers:
            for port in (EAST, WEST):
                for vc in range(len(router.credits[port])):
                    router.credits[port][vc] = False
        findings = CreditLeakCheck().evaluate(ctx_for(network))
        assert len(findings) == CreditLeakCheck.max_findings_per_window


class TestProgressCheck:
    def _net(self, busy=True, backlog=1):
        return SimpleNamespace(
            routers=[SimpleNamespace(node=0, busy=busy)],
            nics=[SimpleNamespace(node=0, backlog=backlog)],
        )

    def _stats(self, delivered=0, lost=0):
        return SimpleNamespace(packets_delivered=delivered, packets_lost=lost)

    def test_stalled_run_warns_then_escalates(self):
        check = ProgressCheck(stall_windows=4)
        network, stats = self._net(), self._stats()
        severities = []
        for window in range(10):
            ctx = ctx_for(network, stats=stats, window=window, end=100 * window)
            severities.append(
                [(f.severity, "livelock" in f.message)
                 for f in check.evaluate(ctx)
                 if f.node is None]
            )
        # Window 0 establishes the baseline; flat counts start at window 1.
        # Warn at 2 flat windows (stall_windows // 2), critical at 4 flat
        # windows, and again every 4 windows while the livelock persists.
        assert severities[2] == [("warn", False)]
        assert severities[4] == [("critical", True)]
        assert severities[8] == [("critical", True)]
        assert severities[5] == []

    def test_progress_resets_the_streak(self):
        check = ProgressCheck(stall_windows=2)
        network = self._net()
        for window, delivered in enumerate([0, 0, 1, 1, 2]):
            findings = check.evaluate(
                ctx_for(network, stats=self._stats(delivered), window=window)
            )
            # Delivery in windows 2 and 4 keeps the flat streak below the
            # critical threshold throughout.
            assert all(f.severity != "critical" for f in findings)

    def test_idle_network_never_flags(self):
        check = ProgressCheck(stall_windows=2)
        network = self._net(busy=False, backlog=0)
        for window in range(8):
            assert check.evaluate(
                ctx_for(network, stats=self._stats(), window=window)
            ) == []

    def test_starved_nic_warns(self):
        check = ProgressCheck(stall_windows=3)
        network = SimpleNamespace(
            routers=[], nics=[SimpleNamespace(node=9, backlog=5)]
        )
        # Deliveries happen (no global livelock), but node 9 never injects.
        findings = []
        for window in range(4):
            findings += check.evaluate(
                ctx_for(network, stats=self._stats(delivered=window), window=window)
            )
        assert [f.node for f in findings] == [9]
        assert "starved" in findings[0].message

    def test_rejects_bad_stall_windows(self):
        with pytest.raises(ValueError):
            ProgressCheck(stall_windows=0)


class _AlwaysCritical(HealthCheck):
    name = "always_critical"

    def evaluate(self, ctx):
        return [
            HealthFinding(
                check=self.name, severity="critical", cycle=ctx.end, message="boom"
            )
        ]


class _FakeNetwork:
    def __init__(self):
        self.stats = NetworkStats()
        self.trace_hub = TraceHub()
        self.routers = []
        self.nics = []

    def add_tracer(self, tracer):
        self.trace_hub.add(tracer)


class TestHealthMonitor:
    def test_evaluates_at_window_boundaries_only(self):
        network = _FakeNetwork()
        monitor = HealthMonitor(network, interval=100, checks=[_AlwaysCritical()])
        for cycle in range(250):
            monitor(cycle)
        assert monitor.windows == 2
        report = monitor.finalize(250)
        assert report.windows == 3  # trailing partial window flushed
        assert report.status == "critical"
        assert report.first_violation_cycle == 100
        assert report.checks["always_critical"] == {
            "status": "critical", "violations": 3,
        }

    def test_findings_capped_and_truncation_counted(self):
        network = _FakeNetwork()
        monitor = HealthMonitor(
            network, interval=10, checks=[_AlwaysCritical()], max_findings=2
        )
        for cycle in range(50):
            monitor(cycle)
        report = monitor.finalize(50)
        assert len(report.findings) == 2
        assert report.truncated == 3

    def test_emits_health_events_and_notifies_listeners(self):
        network = _FakeNetwork()
        tracer = CollectingTracer()
        network.trace_hub.add(tracer)
        monitor = HealthMonitor(network, interval=10, checks=[_AlwaysCritical()])
        heard = []
        monitor.add_listener(heard.append)
        monitor(9)
        events = [e for e in tracer.events if e.kind == "health_critical"]
        assert len(events) == 1
        assert events[0].node == -1 and events[0].uid == -1
        assert events[0].extra == {"check": "always_critical", "message": "boom"}
        assert heard == monitor.findings

    def test_inapplicable_checks_are_filtered(self):
        network = _FakeNetwork()  # no NICs: ConservationCheck's applies() holds
        monitor = HealthMonitor(network, interval=10)
        names = {check.name for check in monitor.checks}
        assert "credit_leak" not in names  # no credit state on the fake
        assert "progress" in names

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            HealthMonitor(_FakeNetwork(), interval=0)


class TestHealthyRuns:
    @pytest.mark.parametrize("config", [OPTICAL, ELECTRICAL])
    def test_clean_run_reports_ok(self, config):
        result = run(spec(config, obs=ObsConfig(health=True)))
        report = result.health
        assert report is not None and report.ok
        assert report.interval == 100
        assert report.windows >= 3
        assert report.findings == []
        assert report.checks["flit_conservation"]["status"] == "ok"
        assert report.checks["progress"]["status"] == "ok"

    def test_credit_audit_attaches_to_electrical_only(self):
        electrical = run(spec(ELECTRICAL, obs=ObsConfig(health=True)))
        optical = run(spec(OPTICAL, obs=ObsConfig(health=True)))
        assert "credit_leak" in electrical.health.checks
        assert "credit_leak" not in optical.health.checks

    def test_faulted_run_keeps_conservation_and_credits_clean(self):
        # Retransmission and fault-loss paths must stay reconciled with
        # the event stream (this pins the retransmitted-emit bookkeeping).
        faults = FaultConfig(seed=3, link_flip_prob=0.25, retry_limit=1)
        result = run(
            spec(ELECTRICAL, obs=ObsConfig(health=True), faults=faults)
        )
        assert result.stats.retransmissions > 0
        assert result.stats.packets_lost > 0
        report = result.health
        assert report.checks["flit_conservation"]["status"] == "ok"
        assert report.checks["credit_leak"]["status"] == "ok"

    def test_health_report_round_trips_through_result_payload(self):
        result = run(spec(obs=ObsConfig(health=True)))
        payload = result_to_dict(result)
        assert payload["health"]["status"] == "ok"
        restored = result_from_dict(payload)
        assert restored.health == result.health

    def test_disabled_run_payload_has_no_health_key(self):
        assert "health" not in result_to_dict(run(spec()))

    def test_manifest_entries_carry_health_status_additively(self):
        from repro.harness.exec import Executor
        from repro.harness.report import manifest_to_dict

        watched = Executor(workers=1, obs=ObsConfig(health=True))
        watched.map([spec()])
        assert manifest_to_dict(watched.events)["entries"][0]["health"] == "ok"
        plain = Executor(workers=1)
        plain.map([spec()])
        # Backward compatible: no watchdogs, no key.
        assert "health" not in manifest_to_dict(plain.events)["entries"][0]


class TestLivelockDetection:
    """The acceptance scenario: a dead link with an unbounded retry budget
    makes zero forward progress; the watchdog must flag it within a small
    number of windows."""

    def _livelocked_result(self, tmp_path=None, stall_windows=3):
        mesh = MeshGeometry(2, 1)
        config = ElectricalConfig(mesh=mesh)
        # Both directions of the only link are dead and the retry budget is
        # effectively infinite: every flit retries forever, so deliveries
        # and losses both stay at zero while the routers hold work.
        faults = FaultConfig(
            seed=1,
            dead_ports=((0, EAST), (1, WEST)),
            retry_limit=1_000_000,
        )
        obs = ObsConfig(
            health=True,
            health_interval=50,
            health_stall_windows=stall_windows,
            trace_path=None if tmp_path is None else str(tmp_path / "t.jsonl"),
        )
        return run(
            RunSpec(
                config,
                SyntheticWorkload("uniform", 0.3),
                cycles=500,
                seed=2,
                faults=faults,
                obs=obs,
            )
        )

    def test_livelock_escalates_to_critical_within_budget(self):
        result = self._livelocked_result()
        assert result.stats.packets_delivered == 0
        assert result.stats.retransmissions > 0
        report = result.health
        assert report.status == "critical"
        assert report.checks["progress"]["status"] == "critical"
        assert any("livelock" in f.message for f in report.findings)
        # Flagged within (stall_windows + 2) windows of 50 cycles.
        assert report.first_violation_cycle <= 50 * 5

    def test_livelock_emits_health_events_on_the_trace(self, tmp_path):
        import json

        self._livelocked_result(tmp_path)
        kinds = [
            json.loads(line)
            for line in (tmp_path / "t.jsonl").read_text().splitlines()
        ]
        critical = [e for e in kinds if e.get("kind") == "health_critical"]
        assert critical
        assert critical[0]["check"] == "progress"
