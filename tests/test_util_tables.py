"""Tests for ASCII table/series rendering."""

import pytest

from repro.util.tables import AsciiTable, format_series


class TestAsciiTable:
    def test_renders_headers_and_rows(self):
        table = AsciiTable(["name", "value"])
        table.add_row(["hops", 5])
        text = table.render()
        assert "name" in text and "hops" in text and "5" in text

    def test_columns_align(self):
        table = AsciiTable(["a", "bbbb"])
        table.add_row(["xxxxxx", 1])
        lines = table.render().splitlines()
        header, sep, row = lines
        assert header.index("|") == row.index("|")
        assert set(sep) <= {"-", "+"}

    def test_title_is_first_line(self):
        table = AsciiTable(["x"], title="My title")
        assert table.render().splitlines()[0] == "My title"

    def test_row_width_mismatch_rejected(self):
        table = AsciiTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            AsciiTable([])

    def test_float_formatting(self):
        table = AsciiTable(["v"])
        table.add_row([3.14159])
        table.add_row([1e-6])
        table.add_row([0.0])
        text = table.render()
        assert "3.142" in text
        assert "1e-06" in text

    def test_str_equals_render(self):
        table = AsciiTable(["x"])
        table.add_row([1])
        assert str(table) == table.render()

    def test_markdown_rendering(self):
        table = AsciiTable(["name", "value"], title="A title")
        table.add_row(["hops", 5])
        lines = table.render_markdown().splitlines()
        assert lines[0] == "**A title**"
        assert lines[1] == ""
        assert lines[2] == "| name | value |"
        assert lines[3] == "| --- | --- |"
        assert lines[4] == "| hops | 5 |"

    def test_markdown_escapes_pipes(self):
        table = AsciiTable(["a"])
        table.add_row(["x|y"])
        assert "x\\|y" in table.render_markdown()
        assert AsciiTable(["a"]).render_markdown().startswith("| a |")


class TestFormatSeries:
    def test_pairs_rendered(self):
        line = format_series("latency", [1, 2], [10.0, 20.0], x_label="rate")
        assert line.startswith("latency [rate]:")
        assert "(1, 10)" in line and "(2, 20)" in line

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series("s", [1, 2], [1.0])
