"""Byte-identity regression pins for the fabric refactor.

The hashes below were captured on the pre-fabric tree (commit 65665da,
where ``make_network`` was an isinstance chain inside the runner).  They
pin two independent guarantees:

* ``RunSpec`` digests are part of the on-disk cache key — if they drift,
  every cached campaign silently invalidates.
* Fig 9/10 payload hashes prove the refactored simulators produce
  *bit-identical* results, not merely statistically similar ones.

If a change legitimately alters simulated behaviour, recapture these
constants in the same commit and say so in the commit message.
"""

import hashlib
import json

from repro.core.config import PhastlaneConfig
from repro.electrical.config import ElectricalConfig
from repro.faults import FaultConfig
from repro.harness.exec import RunSpec, Splash2Workload, SyntheticWorkload
from repro.harness.report import point_to_dict, stats_to_dict
from repro.harness.runner import run
from repro.harness.sweeps import latency_vs_injection
from repro.util.geometry import MeshGeometry
from repro.vectorized import VECTORIZED_CALIBRATION, VectorizedConfig

MESH = MeshGeometry(4, 4)
OPT = PhastlaneConfig(mesh=MESH, max_hops_per_cycle=4)
ELE = ElectricalConfig(mesh=MESH)
VEC = VectorizedConfig(mesh=MESH)

SPEC_DIGESTS = {
    "opt_default_uniform": (
        "aa3a2d8f953aab3ecfe8daa70deab87c0dda9ba559073bfbd0f2465ba44fd32c"
    ),
    "ele_default_uniform": (
        "09c9172508610de1c7132954d6d2f26b7851eb4bae69ebb41d6899101b56c188"
    ),
    "opt_4x4_transpose": (
        "d2ef78f7f7247f5b7e63f75999a5fdc95fe7a79c399360c1c6e0317df6a7f19b"
    ),
    "ele_4x4_radix": (
        "6d5921419789f164839ad60f540deb2dfe4a3703c171e34d8ec84b8a66ded458"
    ),
}

# Vectorized-backend pins.  The digests join the cache-key guarantee
# above; the stats hashes pin both calibrations — note the exact-mode
# hash *equals* ``VEC_REF_STATS_SHA`` (the reference Phastlane stats on
# the mirrored config), which is the bit-identity claim as a constant.
VEC_SPEC_DIGESTS = {
    "vec_fast_uniform": (
        "d44e622895e72bec013801e43a8d641c7419c037eb93a179fff7723e3a4ef9a1"
    ),
    "vec_exact_uniform": (
        "cdef6c44a96fc6abb9b4d8f97ff2f4cc22eef4ae5e0e8ef6924f41df5f607bd1"
    ),
}

VEC_FAST_STATS_SHA = (
    "2a909936830f5c5dc4a77bb4fb741d52120478c87fa994010006094070865b86"
)
VEC_REF_STATS_SHA = (
    "9ea39c78d60608566faad89fbd1b56b3c9ce0d9afc5b1bae4157bc07a6929841"
)

#: The calibration stamp is part of the backend's public contract (it
#: names the fast-mode stream); changing it is a baseline-refresh event.
VEC_CALIBRATION_PIN = (
    "vectorized-1 exact=bit-identical "
    "fast=philox(sha256('{seed}/vectorized/{pattern}')[:8]) "
    "traces=bit-identical"
)

FIG9_HASHES = {
    "Optical4": "87f877ae035fc8d7f74b4ba1e1945ecdd1e2c9556584aa70ce996100af9092ae",
    "Electrical3": "0b5f8b324a9f092bbabdea1d97cc95ce65be87e3b5f6961af7515f2e8f14e6e8",
}

FIG10_HASHES = {
    "Optical4": "6c169430e522a342f325409123b700e97373ecce4fd9923e438c306fb1fe32f7",
    "Electrical3": "09bd6dd2094a58fe36ee0935caa47bf2a7578e35c400ad93cb1ec4258fce8473",
}


def canonical_sha(payload) -> str:
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


def test_run_spec_digests_unchanged():
    specs = {
        "opt_default_uniform": RunSpec(
            PhastlaneConfig(), SyntheticWorkload("uniform", 0.1), cycles=200
        ),
        "ele_default_uniform": RunSpec(
            ElectricalConfig(), SyntheticWorkload("uniform", 0.1), cycles=200
        ),
        "opt_4x4_transpose": RunSpec(
            OPT, SyntheticWorkload("transpose", 0.25), cycles=300, seed=7
        ),
        "ele_4x4_radix": RunSpec(ELE, Splash2Workload("radix"), cycles=300, seed=3),
    }
    digests = {name: spec.digest() for name, spec in specs.items()}
    assert digests == SPEC_DIGESTS


def test_disabled_fault_config_keeps_pre_fault_digests():
    """A default (disabled) FaultConfig is normalised away by the spec, so
    it must reproduce the digests captured before fault injection existed
    — otherwise every cached campaign on disk silently invalidates."""
    specs = {
        "opt_default_uniform": RunSpec(
            PhastlaneConfig(),
            SyntheticWorkload("uniform", 0.1),
            cycles=200,
            faults=FaultConfig(),
        ),
        "ele_default_uniform": RunSpec(
            ElectricalConfig(),
            SyntheticWorkload("uniform", 0.1),
            cycles=200,
            faults=FaultConfig(),
        ),
        "opt_4x4_transpose": RunSpec(
            OPT,
            SyntheticWorkload("transpose", 0.25),
            cycles=300,
            seed=7,
            faults=FaultConfig(),
        ),
        "ele_4x4_radix": RunSpec(
            ELE, Splash2Workload("radix"), cycles=300, seed=3, faults=FaultConfig()
        ),
    }
    digests = {name: spec.digest() for name, spec in specs.items()}
    assert digests == SPEC_DIGESTS


def test_fig9_sweep_payloads_byte_identical():
    hashes = {}
    for label, config in (("Optical4", OPT), ("Electrical3", ELE)):
        points = latency_vs_injection(
            config, "uniform", (0.02, 0.05, 0.1, 0.2), cycles=300, seed=1
        )
        hashes[label] = canonical_sha([point_to_dict(point) for point in points])
    assert hashes == FIG9_HASHES


def test_vectorized_spec_digests_unchanged():
    specs = {
        "vec_fast_uniform": RunSpec(
            VEC, SyntheticWorkload("uniform", 0.1), cycles=200
        ),
        "vec_exact_uniform": RunSpec(
            VectorizedConfig(mesh=MESH, mode="exact"),
            SyntheticWorkload("uniform", 0.1),
            cycles=200,
        ),
    }
    digests = {name: spec.digest() for name, spec in specs.items()}
    assert digests == VEC_SPEC_DIGESTS


def test_vectorized_calibration_stamp_pinned():
    assert VECTORIZED_CALIBRATION == VEC_CALIBRATION_PIN


def test_vectorized_stats_byte_identical():
    fast = run(RunSpec(VEC, SyntheticWorkload("uniform", 0.1), cycles=200))
    assert canonical_sha(stats_to_dict(fast.stats)) == VEC_FAST_STATS_SHA
    exact = run(
        RunSpec(
            VectorizedConfig(mesh=MESH, mode="exact"),
            SyntheticWorkload("uniform", 0.1),
            cycles=200,
        )
    )
    reference = run(RunSpec(OPT, SyntheticWorkload("uniform", 0.1), cycles=200))
    assert canonical_sha(stats_to_dict(reference.stats)) == VEC_REF_STATS_SHA
    # Exact mode hashes to the *reference* constant: bit-identity, pinned.
    assert canonical_sha(stats_to_dict(exact.stats)) == VEC_REF_STATS_SHA


def test_fig10_splash2_stats_byte_identical():
    hashes = {}
    for label, config in (("Optical4", OPT), ("Electrical3", ELE)):
        result = run(RunSpec(config, Splash2Workload("radix"), cycles=300, seed=2))
        hashes[label] = canonical_sha(stats_to_dict(result.stats))
    assert hashes == FIG10_HASHES
