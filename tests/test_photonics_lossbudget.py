"""Tests for the bottom-up loss-budget cross-validation model."""

import pytest

from repro.photonics.lossbudget import (
    ComponentLosses,
    LossBudget,
    cross_validate_anchor,
)


@pytest.fixture
def budget() -> LossBudget:
    return LossBudget()


class TestPathLoss:
    def test_loss_grows_with_hops(self, budget):
        assert budget.path_loss_db(64, 4) > budget.path_loss_db(64, 1)

    def test_loss_grows_with_turns(self, budget):
        assert budget.path_loss_db(64, 4, turns=2) > budget.path_loss_db(64, 4, turns=0)

    def test_fewer_waveguides_fewer_crossings(self, budget):
        # 128-WDM halves the waveguide count -> fewer crossings per router,
        # but more ring-through losses; the crossing term dominates.
        assert budget.per_router_loss_db(128) < budget.per_router_loss_db(32)

    def test_crossing_db_matches_efficiency(self):
        budget = LossBudget(crossing_efficiency=0.98)
        assert budget.crossing_db == pytest.approx(0.0877, rel=1e-2)

    def test_invalid_inputs_rejected(self, budget):
        with pytest.raises(ValueError):
            budget.path_loss_db(64, 0)
        with pytest.raises(ValueError):
            budget.path_loss_db(64, 1, turns=-1)
        with pytest.raises(ValueError):
            LossBudget(crossing_efficiency=0.0)


class TestRequiredPower:
    def test_per_wavelength_power_is_microwatts(self, budget):
        power = budget.required_power_per_wavelength_w(64, 4)
        assert 1e-6 < power < 1e-3  # tens to hundreds of microwatts

    def test_network_peak_is_watts(self, budget):
        peak = budget.network_peak_power_w(64, 4)
        assert 5.0 < peak < 100.0

    def test_peak_scales_with_sensitivity_margin(self):
        tight = LossBudget(ComponentLosses(margin_db=0.0))
        loose = LossBudget(ComponentLosses(margin_db=6.0))
        ratio = loose.network_peak_power_w(64, 4) / tight.network_peak_power_w(64, 4)
        assert ratio == pytest.approx(10 ** 0.6, rel=1e-6)


class TestCrossValidation:
    def test_bottom_up_agrees_with_calibrated_model(self):
        bottom_up, calibrated = cross_validate_anchor()
        assert calibrated == pytest.approx(32.0, rel=0.02)
        ratio = max(bottom_up, calibrated) / min(bottom_up, calibrated)
        assert ratio < 2.0  # actually within a factor of ~1.6

    def test_tolerance_enforced(self):
        with pytest.raises(AssertionError):
            cross_validate_anchor(tolerance_factor=1.01)
