"""Run the doctests embedded in public-API docstrings."""

import doctest

import pytest

import repro.core.routing
import repro.photonics.latency
import repro.photonics.scaling
import repro.sim.rng
import repro.traffic.injection
import repro.traffic.patterns
import repro.util.bits
import repro.util.tables

MODULES = [
    repro.core.routing,
    repro.photonics.latency,
    repro.photonics.scaling,
    repro.sim.rng,
    repro.traffic.injection,
    repro.traffic.patterns,
    repro.util.bits,
    repro.util.tables,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, optionflags=doctest.NORMALIZE_WHITESPACE)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
