"""System-level property-based tests (hypothesis).

These drive both simulators with randomized workloads, mesh shapes and
configurations and check conservation invariants the architecture must
uphold regardless of contention: no packet is lost or duplicated, buffers
never exceed capacity, and delivery latency is bounded below by the
physical minimum.
"""

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import PhastlaneConfig
from repro.core.network import PhastlaneNetwork
from repro.core.routing import build_plan, max_segment_hops
from repro.electrical.config import ElectricalConfig
from repro.electrical.network import ElectricalNetwork
from repro.fabric import FabricError, IdealConfig, make_network, registered_backends
from repro.faults import FaultConfig
from repro.sim.engine import SimulationEngine
from repro.traffic.trace import Trace, TraceEvent, TraceSource
from repro.util.geometry import MeshGeometry
from repro.vectorized import VectorizedConfig

SLOW = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

mesh_shapes = st.sampled_from([(2, 2), (4, 4), (4, 2), (8, 8), (3, 5)])
hop_budgets = st.sampled_from([1, 2, 4, 5, 8])
buffer_sizes = st.sampled_from([1, 2, 10, None])
#: Topologies the cycle-accurate pipelines support (grid graphs).
grid_topologies = st.sampled_from(["mesh", "torus"])
#: Every registered topology, for backends that accept non-grid graphs.
all_topologies = st.sampled_from(["mesh", "torus", "cmesh"])


def burst_trace(mesh: MeshGeometry, seed: int, packets: int) -> Trace:
    """A deterministic all-at-once burst: maximal transient contention."""
    events = []
    n = mesh.num_nodes
    for index in range(packets):
        src = (seed + index) % n
        dst = (seed + 3 * index + 1) % n
        if src != dst:
            events.append(TraceEvent(0, src, dst))
    return Trace("burst", n, events=events)


def run_network(network, trace, max_extra=100_000):
    engine = SimulationEngine()
    engine.register(network)
    engine.run(trace.last_cycle + 1)
    assert engine.run_until(lambda: network.idle(engine.cycle), max_extra)
    return engine


class TestOpticalConservation:
    @SLOW
    @given(
        mesh_shapes, hop_budgets, buffer_sizes, grid_topologies,
        st.integers(0, 1000),
    )
    def test_every_packet_delivered_exactly_once(
        self, shape, max_hops, buffers, topology, seed
    ):
        mesh = MeshGeometry(*shape)
        trace = burst_trace(mesh, seed, packets=3 * mesh.num_nodes)
        config = PhastlaneConfig(
            mesh=mesh, max_hops_per_cycle=max_hops, buffer_entries=buffers,
            topology=topology,
        )
        network = PhastlaneNetwork(config, TraceSource(trace))
        run_network(network, trace)
        assert network.stats.packets_delivered == len(trace)

    @SLOW
    @given(mesh_shapes, hop_budgets, st.integers(0, 1000))
    def test_latency_at_least_segment_count(self, shape, max_hops, seed):
        """A packet needs at least ceil(hops / max_hops) cycles."""
        mesh = MeshGeometry(*shape)
        if mesh.num_nodes < 2:
            return
        src, dst = 0, mesh.num_nodes - 1
        trace = Trace("one", mesh.num_nodes, events=[TraceEvent(0, src, dst)])
        config = PhastlaneConfig(mesh=mesh, max_hops_per_cycle=max_hops)
        network = PhastlaneNetwork(config, TraceSource(trace))
        run_network(network, trace)
        hops = mesh.hop_count(src, dst)
        min_cycles = -(-hops // max_hops)  # ceil
        assert network.stats.mean_latency >= min_cycles

    @SLOW
    @given(mesh_shapes, hop_budgets, grid_topologies, st.integers(0, 100))
    def test_broadcast_covers_mesh_of_any_shape(
        self, shape, max_hops, topology, seed
    ):
        mesh = MeshGeometry(*shape)
        if mesh.height < 2:
            return  # row-only meshes have no column segments (documented)
        source = seed % mesh.num_nodes
        trace = Trace("b", mesh.num_nodes, events=[TraceEvent(0, source, None)])
        config = PhastlaneConfig(
            mesh=mesh, max_hops_per_cycle=max_hops, topology=topology
        )
        network = PhastlaneNetwork(config, TraceSource(trace))
        run_network(network, trace)
        assert network.stats.packets_delivered == mesh.num_nodes - 1

    @SLOW
    @given(st.integers(0, 1000), buffer_sizes)
    def test_buffer_capacity_never_exceeded(self, seed, buffers):
        mesh = MeshGeometry(4, 4)
        trace = burst_trace(mesh, seed, packets=60)
        config = PhastlaneConfig(
            mesh=mesh, max_hops_per_cycle=4, buffer_entries=buffers
        )
        network = PhastlaneNetwork(config, TraceSource(trace))
        engine = SimulationEngine()
        engine.register(network)

        def check_capacity(_cycle):
            if config.buffer_entries is None:
                return
            for router in network.routers:
                for queue in router.queues:
                    assert len(queue) <= config.buffer_entries + len(router.pending)

        engine.add_watcher(check_capacity)
        engine.run(trace.last_cycle + 1)
        engine.run_until(lambda: network.idle(engine.cycle), 100_000)


class TestElectricalConservation:
    @SLOW
    @given(
        mesh_shapes, st.sampled_from([2, 3]), grid_topologies,
        st.integers(0, 1000),
    )
    def test_every_packet_delivered_exactly_once(
        self, shape, delay, topology, seed
    ):
        mesh = MeshGeometry(*shape)
        trace = burst_trace(mesh, seed, packets=3 * mesh.num_nodes)
        config = ElectricalConfig(
            mesh=mesh, router_delay_cycles=delay, topology=topology
        )
        network = ElectricalNetwork(config, TraceSource(trace))
        run_network(network, trace)
        assert network.stats.packets_delivered == len(trace)
        assert network.stats.packets_dropped == 0

    @SLOW
    @given(mesh_shapes, st.integers(0, 1000))
    def test_latency_bounded_below_by_pipeline(self, shape, seed):
        mesh = MeshGeometry(*shape)
        if mesh.num_nodes < 2:
            return
        trace = Trace("one", mesh.num_nodes, events=[TraceEvent(0, 0, 1)])
        network = ElectricalNetwork(ElectricalConfig(mesh=mesh), TraceSource(trace))
        run_network(network, trace)
        # 1 hop at 3 cycles + 1 ejection + 1 for the delivery-cycle count.
        assert network.stats.mean_latency >= 5


def _contract_config(kind: str, mesh: MeshGeometry):
    """A small config per registered backend kind (mirrors the contract suite)."""
    if kind == "phastlane":
        return PhastlaneConfig(mesh=mesh, max_hops_per_cycle=4)
    if kind == "electrical":
        return ElectricalConfig(mesh=mesh)
    if kind == "ideal":
        return IdealConfig(mesh=mesh)
    if kind == "vectorized":
        return VectorizedConfig(mesh=mesh)
    raise AssertionError(
        f"backend {kind!r} has no property-suite config; add one above"
    )


#: Fault models the conservation property sweeps.  The first entry is
#: disabled, so the fault-free path is always part of the sample space.
fault_models = st.sampled_from(
    [
        FaultConfig(),
        FaultConfig(seed=1, link_flip_prob=0.05, retry_limit=5),
        FaultConfig(seed=2, link_flip_prob=0.3, retry_limit=3),
        FaultConfig(seed=3, dead_port_count=2, retry_limit=4),
        FaultConfig(
            seed=4,
            burst_enter_prob=0.02,
            burst_exit_prob=0.3,
            retry_limit=5,
        ),
        FaultConfig(seed=5, corrupt_prob=0.1, retry_limit=5),
        FaultConfig(seed=6, nic_stall_prob=0.05, nic_stall_cycles=4),
        FaultConfig(
            seed=7,
            dead_port_count=1,
            link_flip_prob=0.1,
            nic_stall_prob=0.02,
            retry_limit=4,
        ),
    ]
)

FAULT_SETTINGS = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestFaultConservation:
    """Packets are conserved under every fault model, for every backend.

    After a faulted run fully drains, every generated packet must be either
    delivered or explicitly accounted as lost to exhausted retries —
    nothing vanishes, nothing is duplicated, and the drain itself must
    terminate (graceful degradation, not livelock).
    """

    @FAULT_SETTINGS
    @given(
        st.sampled_from(sorted(registered_backends())),
        st.sampled_from([(4, 4), (4, 2), (3, 5)]),
        all_topologies,
        fault_models,
        st.integers(0, 1000),
    )
    def test_generated_equals_delivered_plus_lost(
        self, kind, shape, topology, faults, seed
    ):
        mesh = MeshGeometry(*shape)
        config = replace(_contract_config(kind, mesh), topology=topology)
        trace = burst_trace(mesh, seed, packets=3 * mesh.num_nodes)
        if topology == "cmesh" and kind != "ideal":
            # Cycle-accurate pipelines honestly refuse non-grid graphs.
            with pytest.raises(FabricError):
                make_network(config, TraceSource(trace), faults=faults)
            return
        if kind == "ideal" and faults.enabled:
            with pytest.raises(FabricError):
                make_network(config, TraceSource(trace), faults=faults)
            return
        network = make_network(config, TraceSource(trace), faults=faults)
        run_network(network, trace)  # asserts the drain terminates
        stats = network.stats
        assert stats.packets_generated == len(trace)
        assert (
            stats.packets_generated
            == stats.packets_delivered + stats.packets_lost
        )
        if not faults.enabled:
            assert stats.packets_lost == 0
            assert stats.faults_injected == 0

    @FAULT_SETTINGS
    @given(
        st.sampled_from(["phastlane", "electrical"]),
        fault_models,
        st.integers(0, 1000),
    )
    def test_fault_ledger_is_self_consistent(self, kind, faults, seed):
        """Masked + lost activity never exceeds what was injected, and
        fault kinds stay within the configured vocabulary."""
        mesh = MeshGeometry(4, 4)
        config = _contract_config(kind, mesh)
        trace = burst_trace(mesh, seed, packets=2 * mesh.num_nodes)
        network = make_network(config, TraceSource(trace), faults=faults)
        run_network(network, trace)
        stats = network.stats
        assert sum(stats.fault_kinds.values()) == stats.faults_injected
        assert stats.delivered_despite_faults <= stats.packets_delivered
        if stats.packets_lost:
            assert stats.faults_injected > 0


class TestPlanProperties:
    @given(
        mesh_shapes,
        hop_budgets,
        st.integers(0, 10_000),
        st.integers(0, 10_000),
    )
    def test_plans_always_respect_hop_budget(self, shape, max_hops, a, b):
        mesh = MeshGeometry(*shape)
        src, dst = a % mesh.num_nodes, b % mesh.num_nodes
        if src == dst:
            return
        plan = build_plan(mesh, src, dst, max_hops)
        assert max_segment_hops(plan) <= max_hops
        assert plan[0].node == src and plan[-1].node == dst
