"""Tests for JSON experiment reports."""

import json
import math

import pytest

from repro.core.config import PhastlaneConfig
from repro.harness.experiments import fig06
from repro.harness.report import (
    figure_to_dict,
    load_report,
    result_to_dict,
    stats_to_dict,
    write_report,
)
from repro.harness.runner import run_trace
from repro.traffic.trace import Trace, TraceEvent
from repro.util.geometry import MeshGeometry


@pytest.fixture
def small_result():
    mesh = MeshGeometry(4, 4)
    trace = Trace("t", 16, events=[TraceEvent(0, 0, 5), TraceEvent(1, 3, 9)])
    return run_trace(PhastlaneConfig(mesh=mesh, max_hops_per_cycle=4), trace)


class TestStatsSerialisation:
    def test_round_trips_through_json(self, small_result):
        payload = stats_to_dict(small_result.stats)
        text = json.dumps(payload)
        assert json.loads(text)["packets_delivered"] == 2

    def test_latency_summary_present(self, small_result):
        payload = stats_to_dict(small_result.stats)
        assert payload["latency"]["count"] == 2
        assert payload["latency"]["mean"] >= 1.0

    def test_empty_stats_have_null_latency(self):
        from repro.sim.stats import NetworkStats

        payload = stats_to_dict(NetworkStats())
        assert payload["latency"]["mean"] is None


class TestResultSerialisation:
    def test_result_fields(self, small_result):
        payload = result_to_dict(small_result)
        assert payload["label"] == "Optical4"
        assert payload["drained"] is True
        assert payload["stats"]["delivery_ratio"] == 1.0


class TestFigureSerialisation:
    def test_fig06_serialises(self):
        payload = figure_to_dict(fig06.compute())
        assert payload["hops"]["average"]["64"] == 5

    def test_non_dataclass_rejected(self):
        with pytest.raises(TypeError):
            figure_to_dict({"not": "a dataclass"})

    def test_infinities_become_null(self):
        from repro.harness.report import _jsonify

        assert _jsonify({"x": math.inf}) == {"x": None}


class TestFileRoundTrip:
    def test_write_and_load(self, tmp_path, small_result):
        path = write_report(
            tmp_path / "reports" / "run.json", result_to_dict(small_result)
        )
        loaded = load_report(path)
        assert loaded["workload"] == "t"
        assert loaded["stats"]["packets_delivered"] == 2

    def test_directories_created(self, tmp_path):
        path = write_report(tmp_path / "a" / "b" / "c.json", {"k": 1})
        assert path.exists()
