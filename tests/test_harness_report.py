"""Tests for JSON experiment reports."""

import json
import math

import pytest

from repro.core.config import PhastlaneConfig
from repro.harness.experiments import fig06
from repro.harness.report import (
    figure_to_dict,
    load_report,
    point_from_dict,
    point_to_dict,
    result_from_dict,
    result_to_dict,
    stats_from_dict,
    stats_to_dict,
    write_report,
)
from repro.harness.exec import RunSpec, TraceFileWorkload
from repro.harness.runner import run
from repro.harness.sweeps import LatencyPoint
from repro.traffic.trace import Trace, TraceEvent
from repro.util.geometry import MeshGeometry


@pytest.fixture
def small_result(tmp_path):
    mesh = MeshGeometry(4, 4)
    trace = Trace("t", 16, events=[TraceEvent(0, 0, 5), TraceEvent(1, 3, 9)])
    path = tmp_path / "t.trace"
    trace.save(path)
    config = PhastlaneConfig(mesh=mesh, max_hops_per_cycle=4)
    return run(RunSpec(config, TraceFileWorkload(str(path))))


class TestStatsSerialisation:
    def test_round_trips_through_json(self, small_result):
        payload = stats_to_dict(small_result.stats)
        text = json.dumps(payload)
        assert json.loads(text)["packets_delivered"] == 2

    def test_latency_summary_present(self, small_result):
        payload = stats_to_dict(small_result.stats)
        assert payload["latency"]["count"] == 2
        assert payload["latency"]["mean"] >= 1.0

    def test_empty_stats_have_null_latency(self):
        from repro.sim.stats import NetworkStats

        payload = stats_to_dict(NetworkStats())
        assert payload["latency"]["mean"] is None


class TestResultSerialisation:
    def test_result_fields(self, small_result):
        payload = result_to_dict(small_result)
        assert payload["label"] == "Optical4"
        assert payload["drained"] is True
        assert payload["stats"]["delivery_ratio"] == 1.0

    def test_wall_time_excluded(self, small_result):
        # Timings belong to the campaign manifest; result payloads must be
        # deterministic so cached reruns serialise byte-identically.
        assert "wall_time_s" not in result_to_dict(small_result)


class TestRoundTrips:
    def test_stats_round_trip_losslessly(self, small_result):
        restored = stats_from_dict(stats_to_dict(small_result.stats))
        assert restored == small_result.stats
        assert stats_to_dict(restored) == stats_to_dict(small_result.stats)

    def test_empty_stats_round_trip(self):
        from repro.sim.stats import NetworkStats

        stats = NetworkStats(measurement_start=10)
        assert stats_from_dict(stats_to_dict(stats)) == stats

    def test_result_round_trip(self, small_result):
        restored = result_from_dict(result_to_dict(small_result))
        assert restored == small_result
        assert restored.stats.latency.histogram.items() == (
            small_result.stats.latency.histogram.items()
        )

    def test_result_round_trip_through_file(self, tmp_path, small_result):
        path = write_report(tmp_path / "r.json", result_to_dict(small_result))
        assert result_from_dict(load_report(path)) == small_result

    def test_latency_point_round_trip(self):
        point = LatencyPoint(rate=0.1, mean_latency=4.25, throughput=0.09, delivered=120)
        assert point_from_dict(point_to_dict(point)) == point

    def test_saturated_point_round_trips_through_null(self):
        point = LatencyPoint(
            rate=0.5, mean_latency=float("inf"), throughput=0.2, delivered=300
        )
        payload = json.loads(json.dumps(point_to_dict(point)))
        assert payload["mean_latency"] is None
        restored = point_from_dict(payload)
        assert restored == point and restored.saturated


class TestFigureSerialisation:
    def test_fig06_serialises(self):
        payload = figure_to_dict(fig06.compute())
        assert payload["hops"]["average"]["64"] == 5

    def test_non_dataclass_rejected(self):
        with pytest.raises(TypeError):
            figure_to_dict({"not": "a dataclass"})

    def test_infinities_become_null(self):
        from repro.harness.report import _jsonify

        assert _jsonify({"x": math.inf}) == {"x": None}


class TestFileRoundTrip:
    def test_write_and_load(self, tmp_path, small_result):
        path = write_report(
            tmp_path / "reports" / "run.json", result_to_dict(small_result)
        )
        loaded = load_report(path)
        assert loaded["workload"] == "t"
        assert loaded["stats"]["packets_delivered"] == 2

    def test_directories_created(self, tmp_path):
        path = write_report(tmp_path / "a" / "b" / "c.json", {"k": 1})
        assert path.exists()
