"""Tests for the trace format and traffic sources."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.traffic.coherence import MessageKind
from repro.traffic.injection import BernoulliInjector
from repro.traffic.patterns import pattern_by_name
from repro.traffic.trace import (
    SyntheticSource,
    Trace,
    TraceEvent,
    TraceSource,
    merge_traces,
)
from repro.util.geometry import MeshGeometry

events_strategy = st.lists(
    st.builds(
        TraceEvent,
        cycle=st.integers(0, 500),
        source=st.integers(0, 15),
        destination=st.one_of(st.none(), st.integers(0, 15)),
        kind=st.sampled_from(MessageKind),
    ),
    max_size=40,
)


class TestTraceEvent:
    def test_line_round_trip_unicast(self):
        event = TraceEvent(12, 3, 9, MessageKind.WRITEBACK)
        assert TraceEvent.from_line(event.to_line()) == event

    def test_line_round_trip_broadcast(self):
        event = TraceEvent(0, 7, None, MessageKind.MISS_REQUEST)
        parsed = TraceEvent.from_line(event.to_line())
        assert parsed == event and parsed.is_broadcast

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent.from_line("1 2 3")

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent(-1, 0, 1)
        with pytest.raises(ValueError):
            TraceEvent(0, -1, 1)


class TestTrace:
    def test_events_sorted_on_construction(self):
        trace = Trace("t", 16, events=[TraceEvent(5, 0, 1), TraceEvent(1, 2, 3)])
        assert [e.cycle for e in trace] == [1, 5]

    def test_append_enforces_order(self):
        trace = Trace("t", 16)
        trace.append(TraceEvent(5, 0, 1))
        with pytest.raises(ValueError):
            trace.append(TraceEvent(4, 0, 1))

    def test_out_of_mesh_event_rejected(self):
        with pytest.raises(ValueError):
            Trace("t", 16, events=[TraceEvent(0, 16, 1)])
        with pytest.raises(ValueError):
            Trace("t", 16, events=[TraceEvent(0, 0, 99)])

    def test_offered_load(self):
        trace = Trace("t", 10, events=[TraceEvent(c, 0, 1) for c in range(10)])
        assert trace.offered_load() == pytest.approx(10 / (10 * 10))

    def test_broadcast_count(self):
        trace = Trace("t", 4, events=[TraceEvent(0, 0, None), TraceEvent(1, 1, 2)])
        assert trace.broadcast_count == 1

    @given(events=events_strategy)
    def test_save_load_round_trip(self, tmp_path_factory, events):
        trace = Trace("prop", 16, events=events)
        path = tmp_path_factory.mktemp("traces") / "prop.trace"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == "prop"
        assert loaded.num_nodes == 16
        assert list(loaded) == list(trace)

    def test_load_requires_nodes_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("1 2 3 data_response\n")
        with pytest.raises(ValueError, match="nodes"):
            Trace.load(path)


class TestTraceSource:
    def test_events_delivered_at_their_cycle(self):
        trace = Trace("t", 4, events=[TraceEvent(2, 1, 3), TraceEvent(5, 1, 0)])
        source = TraceSource(trace)
        assert source.injections(1, 0) == []
        assert len(source.injections(1, 2)) == 1
        assert not source.exhausted(3)
        assert len(source.injections(1, 5)) == 1
        assert source.exhausted(6)

    def test_late_poll_returns_all_due(self):
        trace = Trace("t", 4, events=[TraceEvent(1, 0, 2), TraceEvent(3, 0, 2)])
        source = TraceSource(trace)
        assert len(source.injections(0, 10)) == 2


class TestSyntheticSource:
    def test_respects_stop_cycle(self):
        mesh = MeshGeometry(4, 4)
        source = SyntheticSource(
            pattern_by_name("uniform", mesh),
            lambda: BernoulliInjector(1.0),
            stop_cycle=3,
        )
        assert source.injections(0, 2)
        assert source.injections(0, 3) == []
        assert source.exhausted(3)

    def test_reproducible_given_seed(self):
        mesh = MeshGeometry(4, 4)

        def build():
            return SyntheticSource(
                pattern_by_name("uniform", mesh),
                lambda: BernoulliInjector(0.5),
                seed=9,
                stop_cycle=20,
            )

        a = [build().injections(n, c) for n in range(16) for c in range(20)]
        b = [build().injections(n, c) for n in range(16) for c in range(20)]
        assert a == b

    def test_no_self_traffic(self):
        mesh = MeshGeometry(2, 2)
        source = SyntheticSource(
            pattern_by_name("uniform", mesh), lambda: BernoulliInjector(1.0)
        )
        for cycle in range(50):
            for node in range(4):
                for event in source.injections(node, cycle):
                    assert event.destination != node


class TestMergeTraces:
    def test_merge_sorts_and_combines(self):
        a = Trace("a", 4, events=[TraceEvent(3, 0, 1)])
        b = Trace("b", 4, events=[TraceEvent(1, 2, 3)])
        merged = merge_traces("ab", [a, b])
        assert [e.cycle for e in merged] == [1, 3]

    def test_merge_rejects_mismatched_meshes(self):
        with pytest.raises(ValueError):
            merge_traces("x", [Trace("a", 4), Trace("b", 8)])

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_traces("x", [])
