"""Tests for the ASCII plotting utility."""

import math

import pytest

from repro.util.plot import MARKERS, AsciiPlot, plot_latency_curves


class TestAsciiPlot:
    def test_renders_series_markers(self):
        plot = AsciiPlot(width=20, height=6, title="demo")
        plot.add_series("a", [0, 1, 2], [0, 1, 2])
        plot.add_series("b", [0, 1, 2], [2, 1, 0])
        text = plot.render()
        assert "demo" in text
        assert "o" in text and "x" in text
        assert "o=a" in text and "x=b" in text

    def test_axis_labels_present(self):
        plot = AsciiPlot(width=20, height=6, x_label="rate", y_label="latency")
        plot.add_series("s", [0.0, 0.5], [1.0, 9.0])
        text = plot.render()
        assert "latency vs rate" in text
        assert "9" in text and "1" in text  # y-range labels

    def test_infinite_values_clip_to_top(self):
        plot = AsciiPlot(width=20, height=6)
        plot.add_series("s", [0, 1, 2], [1.0, 2.0, math.inf])
        text = plot.render()
        assert "^" in text

    def test_extremes_land_on_grid_edges(self):
        plot = AsciiPlot(width=20, height=6)
        plot.add_series("s", [0, 10], [0, 100])
        lines = plot.render().splitlines()
        rows = [line for line in lines if "|" in line]
        assert "o" in rows[0]  # max value on top row
        assert "o" in rows[-1]  # min value on bottom row

    def test_constant_series_renders(self):
        plot = AsciiPlot(width=20, height=6)
        plot.add_series("flat", [0, 1, 2], [5.0, 5.0, 5.0])
        assert plot.render()

    def test_empty_plot_rejected(self):
        with pytest.raises(ValueError):
            AsciiPlot(width=20, height=6).render()

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            AsciiPlot(width=4, height=2)

    def test_mismatched_series_rejected(self):
        plot = AsciiPlot(width=20, height=6)
        with pytest.raises(ValueError):
            plot.add_series("bad", [1, 2], [1.0])

    def test_series_limit(self):
        plot = AsciiPlot(width=20, height=6)
        for index in range(len(MARKERS)):
            plot.add_series(f"s{index}", [0], [float(index)])
        with pytest.raises(ValueError):
            plot.add_series("one-too-many", [0], [0.0])


class TestLatencyCurvePlot:
    def test_plots_latency_points(self):
        from repro.harness.sweeps import LatencyPoint

        curves = {
            "Optical4": [
                LatencyPoint(0.1, 2.0, 0.1, 100),
                LatencyPoint(0.4, math.inf, 0.4, 50),
            ],
            "Electrical3": [
                LatencyPoint(0.1, 18.0, 0.1, 100),
                LatencyPoint(0.5, 40.0, 0.4, 300),
            ],
        }
        text = plot_latency_curves(curves, title="Fig 9 panel")
        assert "Fig 9 panel" in text
        assert "o=Optical4" in text
        assert "^" in text  # the saturated optical point
