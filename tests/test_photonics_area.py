"""Tests for the Fig 8 area model."""

import pytest

from repro.photonics import constants
from repro.photonics.area import NODE_AREA_MM2, RouterAreaModel, figure8_series


@pytest.fixture(scope="module")
def model() -> RouterAreaModel:
    return RouterAreaModel()


class TestSweetSpot:
    def test_sweet_spot_is_64(self, model):
        assert model.sweet_spot((16, 24, 32, 48, 64, 96, 128, 192, 256)) == 64

    def test_64wdm_matches_single_core_node(self, model):
        assert model.area_mm2(64) == pytest.approx(
            constants.NODE_AREA_SINGLE_CORE_MM2, rel=0.02
        )

    def test_fits_node_classification(self, model):
        assert model.fits_node(64, cores_per_node=1)
        assert not model.fits_node(32, cores_per_node=1)
        # Larger dual/quad-core nodes admit 32/128 wavelengths (section 3.3).
        assert model.fits_node(32, cores_per_node=4)
        assert model.fits_node(128, cores_per_node=4)

    def test_unknown_core_count_rejected(self, model):
        with pytest.raises(ValueError):
            model.fits_node(64, cores_per_node=3)


class TestAreaComponents:
    def test_port_side_grows_linearly_with_wdm(self, model):
        b32, b64 = model.breakdown(32), model.breakdown(64)
        assert b64.port_side_um == pytest.approx(2 * b32.port_side_um)

    def test_waveguide_side_shrinks_with_wdm(self, model):
        b32, b64, b128 = (model.breakdown(w) for w in (32, 64, 128))
        assert b32.waveguide_side_um > b64.waveguide_side_um > b128.waveguide_side_um

    def test_total_is_sum_of_components(self, model):
        breakdown = model.breakdown(64)
        assert breakdown.side_um == pytest.approx(
            breakdown.waveguide_side_um
            + breakdown.port_side_um
            + breakdown.base_side_um
        )

    def test_area_is_side_squared(self, model):
        breakdown = model.breakdown(48)
        assert breakdown.total_area_mm2 == pytest.approx(breakdown.side_mm**2)

    def test_u_shape_around_sweet_spot(self, model):
        # Area decreases toward 64 then increases (the Fig 8 balance).
        areas = [model.area_mm2(w) for w in (16, 32, 64, 128, 256)]
        assert areas[0] > areas[1] > areas[2]
        assert areas[2] < areas[3] < areas[4]

    def test_32_and_128_are_symmetric(self, model):
        # With W(32) = 22 and W(128) = 7 the calibrated coefficients make
        # the two off-sweet-spot points nearly equal, as in Fig 8.
        assert model.area_mm2(32) == pytest.approx(model.area_mm2(128), rel=0.01)


class TestModelValidation:
    def test_invalid_coefficients_rejected(self):
        with pytest.raises(ValueError):
            RouterAreaModel(k_wg_um=0.0)
        with pytest.raises(ValueError):
            RouterAreaModel(base_um=-1.0)

    def test_empty_sweep_rejected(self, model):
        with pytest.raises(ValueError):
            model.sweet_spot(())

    def test_figure8_series_shape(self):
        series = figure8_series()
        assert [b.payload_wdm for b in series] == [16, 24, 32, 48, 64, 96, 128, 192, 256]

    def test_node_area_table(self):
        assert NODE_AREA_MM2[1] == 3.5
        assert NODE_AREA_MM2[2] == 4.5
        assert NODE_AREA_MM2[4] == 6.5
