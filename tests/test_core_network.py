"""Behavioural tests for the Phastlane optical network simulator.

These tests construct precise contention scenarios to check the paper's
arbitration rules: same-cycle multi-hop transit, straight-beats-turn
priority, buffered-packet priority, blocking into input buffers, drops with
next-cycle drop signals, retransmission, interim-node pipelining and
multicast taps.
"""

import pytest

from repro.core import PhastlaneConfig, PhastlaneNetwork
from repro.sim.engine import SimulationEngine
from repro.traffic.coherence import MessageKind
from repro.traffic.injection import BernoulliInjector
from repro.traffic.patterns import pattern_by_name
from repro.traffic.trace import SyntheticSource, Trace, TraceEvent, TraceSource
from repro.util.geometry import MeshGeometry

from helpers import drain

MESH = MeshGeometry(8, 8)


def run_events(events, config=None, max_extra=20_000):
    config = config or PhastlaneConfig(mesh=MESH, max_hops_per_cycle=4)
    trace = Trace("t", config.mesh.num_nodes, events=list(events))
    network = PhastlaneNetwork(config, TraceSource(trace))
    engine = drain(network, trace.last_cycle + 1, max_extra)
    return network, engine


class TestSingleCycleTransit:
    def test_adjacent_delivery_same_cycle(self):
        network, _ = run_events([TraceEvent(0, 0, 1)])
        assert network.stats.mean_latency == 1.0

    def test_max_hops_delivered_in_one_cycle(self):
        # 4 hops fit one cycle at the four-hop configuration.
        network, _ = run_events([TraceEvent(0, 0, 4)])
        assert network.stats.mean_latency == 1.0

    def test_turning_path_same_cycle(self):
        # 0 -> (2, 2) = 18: two east, two north, still 4 hops, one cycle.
        network, _ = run_events([TraceEvent(0, 0, 18)])
        assert network.stats.mean_latency == 1.0

    def test_longer_path_pipelines_through_interims(self):
        # 14 hops at 4 hops/cycle: 4 optical segments, one cycle each.
        network, _ = run_events([TraceEvent(0, 0, 63)])
        assert network.stats.mean_latency == pytest.approx(4.0)
        assert network.stats.packets_dropped == 0

    def test_eight_hop_network_needs_fewer_segments(self):
        fast = PhastlaneConfig(mesh=MESH, max_hops_per_cycle=8)
        network, _ = run_events([TraceEvent(0, 0, 63)], config=fast)
        assert network.stats.mean_latency == pytest.approx(2.0)

    def test_hops_accounted(self):
        network, _ = run_events([TraceEvent(0, 0, 4)])
        assert network.stats.hops_traversed == 4


class TestFixedPriorityArbitration:
    def test_straight_beats_turn(self):
        # A: node 2 straight north to 26; B: node 16 east-then-north to 26's
        # column neighbour; both want the N output of node 18 in the same
        # wave.  A (straight) wins; B is blocked, buffered and retried.
        events = [
            TraceEvent(0, 2, 34),  # straight north through 18
            TraceEvent(0, 16, 26),  # turns north at 18
        ]
        network, _ = run_events(events)
        stats = network.stats
        assert stats.packets_delivered == 2
        assert stats.packets_dropped == 0
        # One packet took an extra cycle after being buffered.
        assert stats.latency.mean.max == 2
        assert stats.latency.mean.min == 1

    def test_no_contention_when_staggered(self):
        events = [
            TraceEvent(0, 2, 34),
            TraceEvent(2, 16, 26),
        ]
        network, _ = run_events(events)
        assert network.stats.latency.mean.max == 1

    def test_buffered_packet_blocks_newly_arriving(self):
        # Node 18's own (buffered) launch claims N; the straight packet
        # arriving from node 2 in the same cycle is blocked.
        events = [
            TraceEvent(0, 18, 34),  # local launch north
            TraceEvent(0, 2, 34),  # straight through 18, blocked
        ]
        network, _ = run_events(events)
        stats = network.stats
        assert stats.packets_delivered == 2
        assert stats.latency.mean.max == 2

    def test_left_and_right_turns_to_different_queues(self):
        # Three packets converge on node 18's N port in the same wave:
        # straight wins, the two turners are buffered at different input
        # ports (E and W), so nothing drops even with 1-entry buffers.
        config = PhastlaneConfig(mesh=MESH, max_hops_per_cycle=4, buffer_entries=1)
        events = [
            TraceEvent(0, 2, 34),
            TraceEvent(0, 16, 26),
            TraceEvent(0, 20, 26),
        ]
        network, _ = run_events(events, config=config)
        assert network.stats.packets_dropped == 0
        assert network.stats.packets_delivered == 3


class TestDropAndRetransmit:
    def drop_scenario_config(self):
        return PhastlaneConfig(mesh=MESH, max_hops_per_cycle=4, buffer_entries=1)

    def drop_scenario_events(self):
        # Node 18 launches north (claims the port all cycle).  P1 from 17
        # arrives first (wave 1), is blocked into the single E-input slot.
        # P2 from 16 arrives next wave, also blocked, buffer full -> drop.
        return [
            TraceEvent(0, 18, 34),
            TraceEvent(0, 17, 26),
            TraceEvent(0, 16, 26),
        ]

    def test_drop_occurs_when_buffer_full(self):
        network, _ = run_events(
            self.drop_scenario_events(), config=self.drop_scenario_config()
        )
        assert network.stats.packets_dropped >= 1
        assert network.stats.retransmissions >= 1

    def test_dropped_packet_eventually_delivered(self):
        network, _ = run_events(
            self.drop_scenario_events(), config=self.drop_scenario_config()
        )
        assert network.stats.packets_delivered == 3
        assert network.stats.delivery_ratio == 1.0

    def test_drop_signal_arrives_next_cycle(self):
        config = self.drop_scenario_config()
        trace = Trace("t", 64, events=self.drop_scenario_events())
        network = PhastlaneNetwork(config, TraceSource(trace))
        engine = SimulationEngine()
        engine.register(network)
        # Run until the congestion produces a drop (cycle 1 in this layout).
        assert engine.run_until(lambda: bool(network._drop_signals), 10)
        dropped_uid = next(iter(network._drop_signals))
        engine.tick()  # next cycle: the transmitter learns and requeues
        assert dropped_uid not in network._drop_signals
        retried = [
            entry.packet
            for router in network.routers
            for queue in router.queues
            for entry in queue
        ]
        assert any(p.uid == dropped_uid for p in retried)

    def test_backoff_delays_redelivery(self):
        network, engine = run_events(
            self.drop_scenario_events(), config=self.drop_scenario_config()
        )
        # The dropped packet waits out the retry penalty before resending.
        assert network.stats.latency.mean.max >= 1 + network.config.retry_penalty_cycles

    def test_infinite_buffers_never_drop(self):
        config = PhastlaneConfig(mesh=MESH, max_hops_per_cycle=4, buffer_entries=None)
        source = SyntheticSource(
            pattern_by_name("transpose", MESH),
            lambda: BernoulliInjector(0.4),
            seed=3,
            stop_cycle=300,
        )
        network = PhastlaneNetwork(config, source)
        drain(network, 300, 50_000)
        assert network.stats.packets_dropped == 0
        assert network.stats.delivery_ratio == 1.0


class TestMulticast:
    def test_broadcast_reaches_all_nodes(self):
        network, _ = run_events([TraceEvent(0, 27, None, MessageKind.MISS_REQUEST)])
        assert network.stats.packets_delivered == 63
        assert network.stats.delivery_ratio == 1.0

    def test_broadcast_from_corner(self):
        network, _ = run_events([TraceEvent(0, 0, None, MessageKind.MISS_REQUEST)])
        assert network.stats.packets_delivered == 63

    def test_duplicate_taps_deduplicated(self):
        # Row nodes are tapped by both the north and south column packets;
        # deliveries must still be exactly 63.
        network, _ = run_events([TraceEvent(0, 35, None, MessageKind.INVALIDATE)])
        assert network.stats.packets_delivered == 63

    def test_two_broadcasts_do_not_alias(self):
        events = [
            TraceEvent(0, 27, None, MessageKind.MISS_REQUEST),
            TraceEvent(40, 27, None, MessageKind.MISS_REQUEST),
        ]
        network, _ = run_events(events)
        assert network.stats.packets_delivered == 126

    def test_unicast_dedup_not_applied(self):
        # Two identical unicasts are distinct packets: both delivered.
        events = [TraceEvent(0, 0, 5), TraceEvent(0, 0, 5)]
        network, _ = run_events(events)
        assert network.stats.packets_delivered == 2


class TestEnergyAccounting:
    def test_categories_present(self):
        network, _ = run_events([TraceEvent(0, 0, 63)])
        energy = network.stats.energy_pj
        for category in ("modulator", "laser", "receiver", "buffer_read", "static"):
            assert energy[category] > 0, category

    def test_multicast_charges_taps(self):
        unicast, _ = run_events([TraceEvent(0, 27, 28)])
        broadcast, _ = run_events([TraceEvent(0, 27, None)])
        assert (
            broadcast.stats.energy_pj["receiver"]
            > 20 * unicast.stats.energy_pj["receiver"]
        )

    def test_static_power_accrues_when_idle(self):
        network = PhastlaneNetwork(PhastlaneConfig(mesh=MESH))
        engine = SimulationEngine()
        engine.register(network)
        engine.run(10)
        assert network.stats.energy_pj["static"] > 0
        assert network.stats.total_energy_pj == network.stats.energy_pj["static"]

    def test_drop_signal_energy_charged(self):
        config = PhastlaneConfig(mesh=MESH, max_hops_per_cycle=4, buffer_entries=1)
        events = [
            TraceEvent(0, 18, 34),
            TraceEvent(0, 17, 26),
            TraceEvent(0, 16, 26),
        ]
        network, _ = run_events(events, config=config)
        assert network.stats.energy_pj["drop_network"] > 0


class TestLoadBehaviour:
    def test_uniform_load_drains_losslessly(self):
        source = SyntheticSource(
            pattern_by_name("uniform", MESH),
            lambda: BernoulliInjector(0.15),
            seed=8,
            stop_cycle=400,
        )
        network = PhastlaneNetwork(
            PhastlaneConfig(mesh=MESH, max_hops_per_cycle=4), source
        )
        drain(network, 400)
        stats = network.stats
        assert stats.delivery_ratio == 1.0
        assert stats.mean_latency < 5.0

    def test_more_buffers_never_hurt(self):
        def run(buffers):
            source = SyntheticSource(
                pattern_by_name("transpose", MESH),
                lambda: BernoulliInjector(0.45),
                seed=8,
                stop_cycle=400,
            )
            network = PhastlaneNetwork(
                PhastlaneConfig(
                    mesh=MESH, max_hops_per_cycle=4, buffer_entries=buffers
                ),
                source,
            )
            drain(network, 400, 100_000)
            return network.stats

        small, large = run(2), run(64)
        assert large.packets_dropped <= small.packets_dropped
        assert large.mean_latency <= small.mean_latency * 1.05

    def test_deterministic_given_seed(self):
        def run():
            source = SyntheticSource(
                pattern_by_name("uniform", MESH),
                lambda: BernoulliInjector(0.2),
                seed=13,
                stop_cycle=200,
            )
            network = PhastlaneNetwork(
                PhastlaneConfig(mesh=MESH, max_hops_per_cycle=4), source
            )
            drain(network, 200)
            return network.stats

        a, b = run(), run()
        assert a.packets_delivered == b.packets_delivered
        assert a.mean_latency == b.mean_latency
        assert a.total_energy_pj == b.total_energy_pj
