"""Tests for device-level optical component models."""

import pytest

from repro.photonics import constants
from repro.photonics.components import (
    Modulator,
    OpticalLink,
    Receiver,
    RingResonator,
    RouterOptics,
    Waveguide,
)
from repro.photonics.scaling import scenario_delays


class TestWaveguide:
    def test_propagation_delay(self):
        assert Waveguide(1.0).propagation_delay_ps == pytest.approx(10.45)
        assert Waveguide(2.0).propagation_delay_ps == pytest.approx(20.9)

    def test_zero_length_allowed(self):
        assert Waveguide(0.0).propagation_delay_ps == 0.0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Waveguide(-0.1)


class TestRingResonator:
    def test_scenario_drive_delay(self):
        ring = RingResonator.for_scenario(scenario_delays("average"))
        assert ring.drive_delay_ps == constants.RESONATOR_DRIVE_DELAY_PS["average"]

    def test_loss_bounds_enforced(self):
        with pytest.raises(ValueError):
            RingResonator(1.0, through_loss=0.0)
        with pytest.raises(ValueError):
            RingResonator(1.0, drop_loss=1.5)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            RingResonator(-1.0)


class TestModulatorReceiver:
    def test_scenario_delays(self):
        scenario = scenario_delays("pessimistic")
        assert Modulator.for_scenario(scenario).transmit_delay_ps == 19.4
        assert Receiver.for_scenario(scenario).receive_delay_ps == 3.7

    def test_transmit_energy_scales_with_bits(self):
        modulator = Modulator(10.0)
        assert modulator.transmit_energy_pj(640) == pytest.approx(
            640 * constants.MODULATOR_ENERGY_PJ_PER_BIT
        )
        assert modulator.transmit_energy_pj(0) == 0.0

    def test_receive_energy_scales_with_bits(self):
        receiver = Receiver(2.0)
        assert receiver.receive_energy_pj(100) == pytest.approx(
            100 * constants.RECEIVER_ENERGY_PJ_PER_BIT
        )

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            Modulator(1.0).transmit_energy_pj(-1)
        with pytest.raises(ValueError):
            Receiver(1.0).receive_energy_pj(-1)


class TestLinkAndRouterOptics:
    def test_default_link_is_one_node_pitch(self):
        link = OpticalLink()
        assert link.length_mm == pytest.approx(constants.HOP_LENGTH_MM)
        assert link.delay_ps == pytest.approx(
            constants.HOP_LENGTH_MM * constants.WAVEGUIDE_DELAY_PS_PER_MM
        )

    def test_crossbar_traversal_grows_weakly_with_wdm(self):
        optics = RouterOptics(scenario_delays("average"))
        t32 = optics.crossbar_traversal_ps(32)
        t128 = optics.crossbar_traversal_ps(128)
        assert t32 < t128
        assert (t128 - t32) < 0.1  # weak enough to keep Fig 6 WDM-independent

    def test_crossbar_traversal_rejects_bad_wdm(self):
        optics = RouterOptics(scenario_delays("average"))
        with pytest.raises(ValueError):
            optics.crossbar_traversal_ps(0)
