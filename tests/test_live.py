"""Tests for live campaign telemetry: executor progress forwarding, the
ASCII dashboard (non-TTY and TTY rendering) and the HTML campaign report."""

import io
from types import SimpleNamespace

from repro.core.config import PhastlaneConfig
from repro.harness.exec import Executor, RunProgress, RunSpec, SyntheticWorkload
from repro.harness.htmlreport import render_campaign_html, write_campaign_html
from repro.harness.runner import ProgressSample, run
from repro.obs import LiveDashboard, ObsConfig
from repro.obs.live import run_dashboard
from repro.util.geometry import MeshGeometry

MESH = MeshGeometry(4, 4)
OPTICAL = PhastlaneConfig(mesh=MESH, max_hops_per_cycle=4)


def spec(rate=0.15, cycles=300, obs=None):
    return RunSpec(
        OPTICAL, SyntheticWorkload("uniform", rate), cycles=cycles, seed=7, obs=obs
    )


def sample(cycle=100, done=False, health=None):
    return ProgressSample(
        cycle=cycle,
        cycles_total=300,
        generated=50,
        delivered=40,
        dropped=1,
        flits=500,
        worst_node=5,
        worst_occupancy=3,
        health=health,
        done=done,
    )


def fake_event(index=0, cache_hit=False, health_status="ok"):
    stats = SimpleNamespace(
        flits_processed=1200, packets_delivered=90, packets_dropped=2
    )
    health = None if health_status is None else SimpleNamespace(status=health_status)
    return SimpleNamespace(
        index=index,
        total=2,
        spec=SimpleNamespace(label="Optical4", workload_name="uniform@0.15"),
        cache_hit=cache_hit,
        wall_time_s=0.25,
        result=SimpleNamespace(stats=stats, health=health),
    )


class TestRunProgressPlumbing:
    def test_serial_executor_forwards_intra_run_samples(self):
        records = []
        executor = Executor(workers=1, live=records.append)
        executor.map([spec(obs=ObsConfig(metrics_interval=100))])
        assert records and all(isinstance(r, RunProgress) for r in records)
        assert records[0].label == "Optical4"
        assert records[0].workload == "uniform@0.15"
        cycles = [r.sample.cycle for r in records]
        assert cycles == sorted(cycles)
        assert records[-1].sample.done
        assert records[-1].sample.cycles_total == 300
        # Window-boundary samples plus the final done sample.
        assert len(records) >= 3

    def test_pool_executor_forwards_samples_from_workers(self):
        records = []
        executor = Executor(workers=2, live=records.append)
        results = executor.map(
            [spec(rate=0.05), spec(rate=0.1)],
        )
        assert len(results) == 2
        indices = {r.index for r in records}
        assert indices == {0, 1}
        for index in indices:
            mine = [r for r in records if r.index == index]
            assert mine[-1].sample.done
        # Order within one run is preserved even across the queue.
        for index in indices:
            cycles = [r.sample.cycle for r in records if r.index == index]
            assert cycles == sorted(cycles)

    def test_progress_samples_track_cycles_completed(self):
        seen = []
        run(spec(obs=ObsConfig(metrics_interval=100)), progress=seen.append)
        assert [s.cycle for s in seen] == [100, 200, 300, 300]
        assert [s.done for s in seen] == [False, False, False, True]
        assert seen[-1].delivered > 0

    def test_no_live_callback_means_no_overhead_path(self):
        executor = Executor(workers=1)
        results = executor.map([spec()])
        assert results[0].stats.packets_delivered > 0

    def test_live_run_results_match_plain_results(self):
        live = Executor(workers=1, live=lambda record: None)
        plain = Executor(workers=1)
        assert live.map([spec()]) == plain.map([spec()])


class TestLiveDashboardNonTty:
    def _dashboard(self):
        stream = io.StringIO()
        return LiveDashboard(stream=stream), stream

    def test_progress_samples_do_not_spam_plain_streams(self):
        dashboard, stream = self._dashboard()
        for cycle in (100, 200):
            dashboard.on_progress(
                RunProgress(
                    index=0, total=2, label="Optical4",
                    workload="uniform@0.15", sample=sample(cycle),
                )
            )
        assert stream.getvalue() == ""

    def test_completion_lines_and_summary(self):
        dashboard, stream = self._dashboard()
        dashboard.on_event(fake_event(index=0))
        dashboard.on_event(fake_event(index=1, cache_hit=True))
        dashboard.close()
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("[1/2] Optical4")
        assert "health=ok" in lines[0]
        assert "cache" in lines[1]
        assert lines[2].startswith("campaign: 2/2 runs (1 cached)")
        assert "health: all ok" in lines[2]

    def test_health_flags_surface_in_summary(self):
        dashboard, stream = self._dashboard()
        dashboard.on_event(fake_event(index=0, health_status="critical"))
        dashboard.close()
        assert "health: 1 critical" in stream.getvalue()

    def test_close_is_idempotent(self):
        dashboard, stream = self._dashboard()
        dashboard.on_event(fake_event())
        dashboard.close()
        once = stream.getvalue()
        dashboard.close()
        assert stream.getvalue() == once


class TestLiveDashboardTty:
    class _Tty(io.StringIO):
        def isatty(self):
            return True

    def test_panel_repaints_in_place(self):
        stream = self._Tty()
        dashboard = LiveDashboard(stream=stream, min_redraw_s=0.0)
        dashboard.on_progress(
            RunProgress(
                index=0, total=1, label="Optical4",
                workload="uniform@0.15", sample=sample(150),
            )
        )
        out = stream.getvalue()
        assert "\x1b[K" in out  # clears lines rather than appending
        assert "Optical4" in out and "150/300" in out
        assert "#" in out  # the progress bar is partially filled
        dashboard.on_event(fake_event(index=0))
        dashboard.close()
        assert stream.getvalue().endswith("\n")

    def test_second_frame_moves_the_cursor_up(self):
        stream = self._Tty()
        dashboard = LiveDashboard(stream=stream, min_redraw_s=0.0)
        progress = RunProgress(
            index=0, total=1, label="Optical4",
            workload="uniform@0.15", sample=sample(100),
        )
        dashboard.on_progress(progress)
        dashboard.on_progress(progress)
        assert "\x1b[2F" in stream.getvalue()


class TestRunDashboardHelper:
    def test_patches_callbacks_and_composes_progress(self):
        seen = []
        kwargs = {"workers": 1, "progress": seen.append}
        dashboard = run_dashboard(kwargs)
        assert kwargs["live"] == dashboard.on_progress
        event = fake_event()
        kwargs["progress"](event)
        assert seen == [event]  # the original callback still fires
        assert dashboard._completed == 1


class TestHtmlReport:
    def _events(self):
        executor = Executor(
            workers=1, obs=ObsConfig(metrics_interval=100, health=True)
        )
        executor.map([spec(rate=0.05), spec(rate=0.1)])
        return executor.events

    def test_report_contains_rows_badges_and_sparklines(self):
        html_text = render_campaign_html(self._events(), title="Nightly")
        assert html_text.startswith("<!DOCTYPE html>")
        assert "<title>Nightly</title>" in html_text
        assert html_text.count("uniform@0.05") == 1
        assert html_text.count("uniform@0.1") >= 1
        assert html_text.count('class="badge"') >= 3  # 2 rows + summary
        assert html_text.count("<svg") == 2  # one sparkline per run
        assert "2 runs" in html_text

    def test_runs_without_obs_render_dashes(self):
        executor = Executor(workers=1)
        executor.map([spec()])
        html_text = render_campaign_html(executor.events)
        assert "&mdash;" in html_text  # no health verdict
        assert "<svg" not in html_text  # no time series, no sparkline

    def test_write_creates_parent_dirs(self, tmp_path):
        path = write_campaign_html(tmp_path / "a" / "b.html", self._events())
        assert path.read_text().endswith("</html>\n")


class TestCliLive:
    def test_sweep_live_non_tty(self, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "sweep", "--rates", "0.05,0.1", "--cycles", "150",
            "--no-cache", "--live", "--workers", "2",
        ]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "[2/2]" in err
        assert "campaign: 2/2 runs" in err
        assert "\x1b[" not in err  # no control codes off-TTY

    def test_campaign_live_renders_and_writes_html(self, tmp_path, capsys):
        from repro.cli import main

        html = tmp_path / "campaign.html"
        argv = [
            "campaign", "--cycles", "20", "--no-cache",
            "--live", "--workers", "2", "--html", str(html),
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "campaign:" in captured.err
        assert "\x1b[" not in captured.err
        assert html.read_text().startswith("<!DOCTYPE html>")
