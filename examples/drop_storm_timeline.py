#!/usr/bin/env python
"""Drop storms in time *and* space: windowed rates plus a mesh heatmap.

Drives the optical network with hotspot traffic (every node aims a share
of its packets at one column, the paper's worst case for Phastlane's
bufferless fast path), collecting both legs of the observability layer at
once:

- a :class:`~repro.obs.timeseries.MetricsWatcher` folds the run into
  per-window injection/drop rates and latency percentiles (the *when* of
  a drop storm);
- a :class:`~repro.sim.probes.MeshProbe` attributes every drop to the
  blocking router (the *where*).

Run:  python examples/drop_storm_timeline.py [--cycles N] [--rate R]
"""

import argparse

from repro.core import PhastlaneConfig, PhastlaneNetwork
from repro.obs import MetricsWatcher
from repro.sim.engine import SimulationEngine
from repro.sim.probes import attach_probe
from repro.traffic.injection import BernoulliInjector
from repro.traffic.patterns import pattern_by_name
from repro.traffic.trace import SyntheticSource

#: Width of the ASCII rate bars.
BAR = 40


def run_instrumented(rate: float, cycles: int, interval: int):
    config = PhastlaneConfig()
    source = SyntheticSource(
        pattern_by_name("hotspot", config.mesh),
        lambda: BernoulliInjector(rate),
        seed=7,
        stop_cycle=cycles,
    )
    network = PhastlaneNetwork(config, source)
    probe = attach_probe(network)
    watcher = MetricsWatcher(network, interval)
    engine = SimulationEngine()
    engine.register(network)
    engine.add_watcher(watcher)
    engine.run(cycles)
    return network, probe, watcher.finalize(engine.cycle)


def render_timeline(series) -> str:
    """One row per window: drop-rate bar, injection rate, p95 latency."""
    peak = max((w.rate("dropped") for w in series.windows), default=0.0)
    lines = [
        "cycles        drops/cycle"
        + " " * (BAR - 10)
        + "inj/cycle   p95 latency"
    ]
    for window in series.windows:
        dropped = window.rate("dropped")
        width = round(dropped / peak * BAR) if peak else 0
        p95 = "--" if window.latency_p95 is None else f"{window.latency_p95}"
        lines.append(
            f"{window.start:5d}-{window.end:<5d} "
            f"{'#' * width:<{BAR}} {dropped:7.3f}  "
            f"{window.rate('injected'):7.3f}  {p95:>6}"
        )
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=1000)
    parser.add_argument("--rate", type=float, default=0.2)
    parser.add_argument("--interval", type=int, default=100)
    args = parser.parse_args()

    network, probe, series = run_instrumented(args.rate, args.cycles, args.interval)
    stats = network.stats

    print(
        f"hotspot @ {args.rate:g} pkts/node/cycle, {args.cycles} cycles: "
        f"{stats.packets_dropped} drops, {stats.retransmissions} "
        f"retransmissions, mean latency {stats.mean_latency:.1f} cycles\n"
    )
    print("drop-rate timeline (storms ramp as buffers fill):")
    print(render_timeline(series))
    print()
    print(probe.heatmap("drops", title="where the drops happen:"))
    hottest = probe.hottest_nodes("drops", top=3)
    if hottest and probe.drops[hottest[0]]:
        print(
            "hottest droppers: "
            + ", ".join(f"node {n} ({probe.drops[n]})" for n in hottest)
        )


if __name__ == "__main__":
    main()
