#!/usr/bin/env python
"""Fault-degradation curve: throughput and losses vs device fault rate.

Holds the workload fixed (uniform traffic at one injection rate) and sweeps
the per-crossing fault probability on the optical network and the electrical
baseline, printing a degradation table and an ASCII delivery-ratio plot.
The interesting comparison is *how* the two fabrics degrade: Phastlane
converts every fault into a drop-signal round trip and a retransmission
(so faults cost latency before they cost packets), while the electrical
baseline retries at link level.  Past the retry limit both start losing
packets — the cliff the curve makes visible.

Run:  python examples/fault_sweep.py [--rate 0.05] [--cycles N]
      [--fault-rates 0.0,0.01,...] [--dead-ports 2] [--workers 4]
"""

import argparse

from repro.faults import FaultConfig
from repro.harness.exec import Executor, ResultCache
from repro.harness.experiments.configs import standard_configs
from repro.harness.sweeps import throughput_vs_fault_rate
from repro.util.plot import AsciiPlot
from repro.util.tables import AsciiTable

LABELS = ("Optical4", "Electrical3")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=0.05)
    parser.add_argument("--cycles", type=int, default=900)
    parser.add_argument(
        "--fault-rates", default="0.0,0.002,0.005,0.01,0.02,0.05,0.1"
    )
    parser.add_argument(
        "--dead-ports", type=int, default=0, metavar="N",
        help="additionally kill N seed-chosen ports at every swept point",
    )
    parser.add_argument("--fault-seed", type=int, default=0)
    parser.add_argument("--retry-limit", type=int, default=8)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args()

    fault_rates = [float(r) for r in args.fault_rates.split(",")]
    template = FaultConfig(
        seed=args.fault_seed,
        dead_port_count=args.dead_ports,
        retry_limit=args.retry_limit,
    )
    executor = Executor(
        workers=args.workers,
        cache=None if args.no_cache else ResultCache(),
    )
    configs = standard_configs()

    table = AsciiTable(
        ["config", "fault rate", "delivered", "lost", "faults",
         "delivery ratio", "mean latency"],
        title=f"Degradation under link faults — uniform@{args.rate:g}",
    )
    curves = {}
    for label in LABELS:
        print(f"sweeping {label} ...")
        points = throughput_vs_fault_rate(
            configs[label],
            "uniform",
            args.rate,
            fault_rates,
            cycles=args.cycles,
            faults=template,
            executor=executor,
        )
        curves[label] = points
        for point in points:
            latency = point.mean_latency
            table.add_row(
                [
                    label,
                    f"{point.fault_rate:g}",
                    point.delivered,
                    point.lost,
                    point.faults_injected,
                    f"{point.delivery_ratio:.4f}",
                    "-" if latency == float("inf") else f"{latency:.2f}",
                ]
            )
    print()
    print(table.render())
    print()

    plot = AsciiPlot(
        width=60,
        height=12,
        title="Delivery ratio vs per-crossing fault rate",
        x_label="fault rate",
        y_label="delivery ratio",
    )
    for label, points in curves.items():
        plot.add_series(
            label,
            [point.fault_rate for point in points],
            [point.delivery_ratio for point in points],
        )
    print(plot.render())
    hits = executor.cache_hits
    print(f"\n{len(executor.events)} runs, {hits} served from cache.")


if __name__ == "__main__":
    main()
