#!/usr/bin/env python
"""SPLASH2 campaign: regenerate the paper's Figure 10 and Figure 11.

Generates the ten SPLASH2-like traces of Table 3, replays each through the
section-5 configuration matrix (optical 4/5/8-hop, 32/64/infinite-buffer
variants, 2/3-cycle electrical baselines) and prints network speedup and
power tables.

Run:  python examples/splash2_campaign.py [--cycles N] [--benchmarks a,b,..]
      [--workers 4] [--no-cache]
A full campaign takes several minutes; use --cycles 600 for a quick look,
--workers to fan it across processes.  Reruns are served from the on-disk
result cache.
"""

import argparse

from repro.harness.exec import Executor, ResultCache
from repro.harness.experiments import fig10, fig11
from repro.harness.experiments.splash2_runs import compute_matrix
from repro.traffic.splash2 import SPLASH2_ORDER


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=1500,
                        help="injection cycles per trace (default 1500)")
    parser.add_argument("--benchmarks", type=str, default=None,
                        help="comma-separated subset of SPLASH2 benchmarks")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the campaign fan-out")
    parser.add_argument("--no-cache", action="store_true",
                        help="always simulate; skip the on-disk result cache")
    args = parser.parse_args()

    benchmarks = (
        tuple(args.benchmarks.split(",")) if args.benchmarks else SPLASH2_ORDER
    )
    executor = Executor(
        workers=args.workers,
        cache=None if args.no_cache else ResultCache(),
    )
    print(f"Running {len(benchmarks)} benchmarks x 8 configurations "
          f"({args.cycles} cycles each, {args.workers} workers) ...")
    matrix = compute_matrix(
        benchmarks=benchmarks, duration_cycles=args.cycles, seed=args.seed,
        executor=executor,
    )
    print(f"{len(executor.events)} runs, {executor.cache_hits} served from cache.")

    speedups = fig10.from_matrix(matrix)
    print()
    print(fig10.render(speedups))
    print()
    power = fig11.from_matrix(matrix)
    print(fig11.render(power))

    print(
        f"\nHeadline: Optical4 geomean speedup {speedups.geomean('Optical4'):.2f}x, "
        f"mean power saving {100 * power.mean_savings('Optical4'):.0f}% "
        f"vs the three-cycle electrical baseline."
    )


if __name__ == "__main__":
    main()
