#!/usr/bin/env python
"""Compare registered topologies under one workload.

Part 1 drives the cycle-accurate Phastlane pipeline with the same
uniform traffic on the 2D mesh and on the 2D torus — the wrap links cut
the mean hop count, which shows up directly as lower latency.  Part 2
sweeps the analytic ideal backend over *every* registered topology,
including the concentrated mesh the cycle-accurate pipeline honestly
refuses, isolating the pure topology effect from contention.  Part 3
prices one corner-to-corner packet with the photonics latency model on
each grid topology (the folded torus pays longer waveguides per hop but
needs fewer hops).

Run:  python examples/topology_compare.py [--cycles N]
"""

import argparse

from repro import PhastlaneConfig, RunSpec, SyntheticWorkload, run
from repro.fabric import IdealConfig
from repro.photonics.latency import RouterLatencyModel
from repro.topology import registered_topologies, topology_for
from repro.util.geometry import MeshGeometry
from repro.util.tables import AsciiTable

RATE = 0.10  # packets/node/cycle


def cycle_accurate_comparison(cycles: int) -> None:
    print(
        f"Phastlane on mesh vs torus (8x8, uniform traffic at {RATE} "
        "packets/node/cycle) ..."
    )
    workload = SyntheticWorkload("uniform", RATE)
    results = {
        name: run(
            RunSpec(PhastlaneConfig(topology=name), workload, cycles=cycles)
        )
        for name in ("mesh", "torus")
    }

    table = AsciiTable(
        ["metric"] + list(results),
        title="\nCycle-accurate Phastlane, same workload, two topologies",
    )
    table.add_row(
        ["mean packet latency (cycles)"]
        + [f"{r.mean_latency:.2f}" for r in results.values()]
    )
    table.add_row(
        ["mean hops per packet"]
        + [
            f"{r.stats.hops_traversed / r.stats.packets_delivered:.2f}"
            for r in results.values()
        ]
    )
    table.add_row(
        ["delivered packets"]
        + [r.stats.packets_delivered for r in results.values()]
    )
    print(table.render())


def analytic_comparison(cycles: int) -> None:
    print(
        "\nAnalytic (contention-free) backend across every registered "
        "topology — including cmesh, which the cycle-accurate pipeline "
        "refuses:"
    )
    workload = SyntheticWorkload("uniform", RATE)
    table = AsciiTable(["topology", "mean latency (cycles)", "graph"])
    for name in registered_topologies():
        result = run(
            RunSpec(IdealConfig(topology=name), workload, cycles=cycles)
        )
        topology = topology_for(name, MeshGeometry(8, 8))
        table.add_row([name, f"{result.mean_latency:.2f}", str(topology)])
    print(table.render())


def photonics_comparison() -> None:
    print(
        "\nPhotonics path delay, corner to corner (node 0 -> 63) on each "
        "grid topology:"
    )
    model = RouterLatencyModel("average")
    mesh = MeshGeometry(8, 8)
    table = AsciiTable(["topology", "hops", "path delay (ps)"])
    for name in ("mesh", "torus"):
        topology = topology_for(name, mesh)
        delay = model.topology_path_delay_ps(topology, 0, 63)
        table.add_row([name, topology.hop_count(0, 63), f"{delay:.1f}"])
    print(table.render())
    print(
        "\nWrap links collapse the corner-to-corner route, and even with "
        "the folded layout doubling each waveguide the torus path is far "
        "shorter end to end."
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=1500)
    args = parser.parse_args()

    cycle_accurate_comparison(args.cycles)
    analytic_comparison(args.cycles)
    photonics_comparison()


if __name__ == "__main__":
    main()
