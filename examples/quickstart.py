#!/usr/bin/env python
"""Quickstart: simulate a Phastlane network and its electrical baseline.

Builds the paper's 8x8 four-hop Phastlane network and the three-cycle
electrical VC router, drives both with the same uniform-random traffic, and
prints the latency/power comparison — a miniature of the paper's headline
result (2x network performance at ~80% lower power).

Run:  python examples/quickstart.py
"""

from repro import (
    ElectricalConfig,
    PhastlaneConfig,
    RunSpec,
    SyntheticWorkload,
    run,
)
from repro.util.tables import AsciiTable


def main() -> None:
    rate = 0.10  # packets/node/cycle
    cycles = 1500

    print(f"Simulating uniform traffic at {rate} packets/node/cycle ...")
    workload = SyntheticWorkload("uniform", rate)
    optical = run(RunSpec(PhastlaneConfig(), workload, cycles=cycles))
    electrical = run(RunSpec(ElectricalConfig(), workload, cycles=cycles))

    table = AsciiTable(
        ["metric", optical.label, electrical.label],
        title="\nPhastlane vs electrical baseline (8x8 mesh, 4 GHz)",
    )
    table.add_row(
        [
            "mean packet latency (cycles)",
            f"{optical.mean_latency:.2f}",
            f"{electrical.mean_latency:.2f}",
        ]
    )
    table.add_row(
        ["network power (W)", f"{optical.power_w:.2f}", f"{electrical.power_w:.2f}"]
    )
    table.add_row(
        [
            "delivered packets",
            optical.stats.packets_delivered,
            electrical.stats.packets_delivered,
        ]
    )
    table.add_row(["dropped packets", optical.stats.packets_dropped, 0])
    print(table.render())

    speedup = electrical.mean_latency / optical.mean_latency
    saving = 1 - optical.power_w / electrical.power_w
    print(
        f"\nPhastlane delivers {speedup:.1f}x lower latency using "
        f"{100 * saving:.0f}% less network power."
    )


if __name__ == "__main__":
    main()
