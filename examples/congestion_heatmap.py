#!/usr/bin/env python
"""Congestion maps over time: the spatial telemetry leg end-to-end.

Drives the optical network with hotspot traffic (every node aims a share
of its packets at one column — the congestion worst case of section 5)
through the plain ``run()`` entry point with spatial metrics enabled, so
the windowed time series carries a per-router occupancy/drop/delivery
companion series.  The script then renders the mean-occupancy heatmap at
three time slices — early, middle, late — showing the hotspot column
lighting up as buffers fill, and exports the whole series as JSON (the
same payload a ``--report`` campaign file would embed).

Run:  python examples/congestion_heatmap.py [--cycles N] [--rate R] [--out F]
"""

import argparse
import json

from repro.core import PhastlaneConfig
from repro.harness.exec import RunSpec, SyntheticWorkload
from repro.harness.runner import run
from repro.obs import ObsConfig
from repro.sim.probes import render_heatmap
from repro.util.geometry import MeshGeometry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=600)
    parser.add_argument("--rate", type=float, default=0.15)
    parser.add_argument("--out", help="write the spatial time series as JSON here")
    args = parser.parse_args()

    interval = max(1, args.cycles // 6)
    spec = RunSpec(
        config=PhastlaneConfig(),
        workload=SyntheticWorkload("hotspot", args.rate),
        cycles=args.cycles,
        seed=7,
        obs=ObsConfig(metrics_interval=interval, spatial=True),
    )
    result = run(spec)
    series = result.timeseries
    assert series is not None and series.spatial is not None
    spatial = series.spatial
    mesh = MeshGeometry(spatial.width, spatial.height)

    print(
        f"hotspot@{args.rate:g} on {mesh}, {args.cycles} cycles, "
        f"{len(series.windows)} windows of {interval} cycles"
    )
    print(f"delivered {result.stats.packets_delivered}, "
          f"dropped {result.stats.packets_dropped}")
    print()

    slices = sorted({0, len(series.windows) // 2, len(series.windows) - 1})
    for index in slices:
        window = series.windows[index]
        print(
            render_heatmap(
                spatial.occupancy[index],
                mesh,
                title=(
                    f"mean occupancy, cycles {window.start}-{window.end} "
                    f"(peak={max(spatial.occupancy[index]):.1f}, "
                    f"drops={sum(spatial.drops[index])})"
                ),
            )
        )
        print()

    hottest = max(range(mesh.num_nodes),
                  key=lambda node: sum(row[node] for row in spatial.occupancy))
    print(f"hottest router over the run: node {hottest} ({mesh.coord(hottest)})")

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(series.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote spatial time series to {args.out}")


if __name__ == "__main__":
    main()
