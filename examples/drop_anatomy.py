#!/usr/bin/env python
"""Drop anatomy: where Phastlane's packet drops happen, and why.

Instruments the optical network with a spatial probe while replaying the
Ocean trace (the paper's most drop-prone workload, section 5), then prints
heatmaps of drops, deliveries and mean buffer occupancy across the 8x8
mesh, for 10- versus 64-entry buffers.

Run:  python examples/drop_anatomy.py [--cycles N]
"""

import argparse

from repro.core import PhastlaneConfig, PhastlaneNetwork
from repro.sim.engine import SimulationEngine
from repro.sim.probes import attach_phastlane_probe
from repro.traffic.splash2 import generate_splash2_trace
from repro.traffic.trace import TraceSource


def run_instrumented(buffers, trace):
    config = PhastlaneConfig(buffer_entries=buffers)
    network = PhastlaneNetwork(config, TraceSource(trace))
    probe = attach_phastlane_probe(network)
    engine = SimulationEngine()
    engine.register(network)
    engine.run(trace.last_cycle + 1)
    engine.run_until(lambda: network.idle(engine.cycle), 100_000)
    return network, probe


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=1000)
    args = parser.parse_args()

    trace = generate_splash2_trace("ocean", duration_cycles=args.cycles)
    print(
        f"Ocean trace: {len(trace)} events, {trace.broadcast_count} broadcasts, "
        f"offered load {trace.offered_load():.3f}\n"
    )

    for buffers in (10, 64):
        network, probe = run_instrumented(buffers, trace)
        stats = network.stats
        print(
            f"=== {buffers}-entry buffers: "
            f"latency {stats.mean_latency:.1f} cycles, "
            f"{stats.packets_dropped} drops, "
            f"{stats.retransmissions} retransmissions ==="
        )
        print(probe.heatmap("drops", title="drops per router:"))
        print()
        hottest = probe.hottest_nodes("drops", top=3)
        if hottest and probe.drops[hottest[0]]:
            print(
                "hottest droppers: "
                + ", ".join(f"node {n} ({probe.drops[n]})" for n in hottest)
            )
        print(probe.heatmap("deliveries", title="deliveries per node:"))
        print()


if __name__ == "__main__":
    main()
