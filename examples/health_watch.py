#!/usr/bin/env python
"""Watchdog escalation under a dead-port fault storm.

Runs the same workload twice with the runtime health monitor enabled:

1. a **healthy baseline** — the electrical mesh under uniform traffic,
   where every watchdog (flit conservation, credit-leak audit, progress)
   stays quiet for the whole run;
2. a **livelocked storm** — both directions of a link are dead and the
   retry budget is effectively infinite, so every flit retries forever.
   Deliveries and losses both sit at zero while the routers stay busy:
   the classic livelock signature.  The progress watchdog first warns,
   then escalates to critical, and stamps the cycle of first violation.

The point of the demo is the *shape* of the escalation: nothing in the
stats ledger looks alarming cycle-to-cycle (no drops, no losses), yet
the per-window watchdog catches the flat delivery streak within a few
metric windows.

Run:  python examples/health_watch.py [--cycles N] [--interval N]
"""

import argparse

from repro.electrical.config import ElectricalConfig
from repro.faults import FaultConfig
from repro.harness.exec import RunSpec, SyntheticWorkload
from repro.harness.runner import run
from repro.obs import ObsConfig
from repro.util.geometry import Direction, MeshGeometry
from repro.util.tables import AsciiTable

EAST = int(Direction.EAST)
WEST = int(Direction.WEST)


def watched_run(config, cycles, interval, stall_windows, faults=None, rate=0.15):
    obs = ObsConfig(
        health=True,
        health_interval=interval,
        health_stall_windows=stall_windows,
    )
    return run(
        RunSpec(
            config,
            SyntheticWorkload("uniform", rate),
            cycles=cycles,
            seed=2,
            faults=faults,
            obs=obs,
        )
    )


def describe(title: str, result) -> None:
    report = result.health
    stats = result.stats
    print(f"== {title} ==")
    print(
        f"  delivered {stats.packets_delivered}, lost {stats.packets_lost},"
        f" retransmissions {stats.retransmissions}"
    )
    table = AsciiTable(["check", "status", "violations"])
    for name, summary in sorted(report.checks.items()):
        table.add_row([name, summary["status"], summary["violations"]])
    print("\n".join("  " + line for line in table.render().splitlines()))
    print(f"  health: {report.status}", end="")
    if report.first_violation_cycle is not None:
        print(f" (first violation at cycle {report.first_violation_cycle})")
    else:
        print()
    for finding in report.findings:
        where = "global" if finding.node is None else f"node {finding.node}"
        print(
            f"    [{finding.severity:8s}] cycle {finding.cycle:4d}"
            f" {finding.check} ({where}): {finding.message}"
        )
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=500)
    parser.add_argument("--interval", type=int, default=50, metavar="CYCLES")
    parser.add_argument("--stall-windows", type=int, default=3)
    args = parser.parse_args()

    healthy = watched_run(
        ElectricalConfig(mesh=MeshGeometry(4, 4)),
        args.cycles,
        args.interval,
        args.stall_windows,
    )
    describe("healthy baseline (electrical 4x4, uniform)", healthy)

    # The storm: the only link of a 2x1 mesh is dead in both directions
    # and the retry budget never runs out, so no flit is ever delivered
    # or declared lost -- the watchdog has to catch the livelock.
    storm = watched_run(
        ElectricalConfig(mesh=MeshGeometry(2, 1)),
        args.cycles,
        args.interval,
        args.stall_windows,
        faults=FaultConfig(
            seed=1, dead_ports=((0, EAST), (1, WEST)), retry_limit=1_000_000
        ),
        rate=0.3,
    )
    describe("dead-port storm (2x1 mesh, both directions dead)", storm)

    assert healthy.health.ok, "baseline must stay healthy"
    assert storm.health.status == "critical", "storm must escalate"
    windows = (
        storm.health.first_violation_cycle or args.cycles
    ) // args.interval
    print(
        f"watchdog verdict: livelock flagged after {windows} windows of"
        f" {args.interval} cycles, long before the run's {args.cycles}-cycle"
        " budget expired."
    )


if __name__ == "__main__":
    main()
