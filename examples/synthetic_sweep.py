#!/usr/bin/env python
"""Synthetic latency sweep: a single panel of the paper's Figure 9.

Sweeps the injection rate for one synthetic pattern and prints the average
packet latency curve for the optical 4/5/8-hop networks and the 2/3-cycle
electrical routers, with zero-load latency and saturation-rate summaries.

Run:  python examples/synthetic_sweep.py [--pattern transpose] [--cycles N]
"""

import argparse

from repro.harness.experiments.configs import FIG9_LABELS, standard_configs
from repro.harness.sweeps import (
    latency_vs_injection,
    saturation_rate,
    zero_load_latency,
)
from repro.traffic.patterns import PATTERNS
from repro.util.plot import plot_latency_curves
from repro.util.tables import AsciiTable

RATES = (0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pattern", default="transpose", choices=sorted(PATTERNS))
    parser.add_argument("--cycles", type=int, default=900)
    args = parser.parse_args()

    configs = standard_configs()
    table = AsciiTable(
        ["config"] + [f"{r:g}" for r in RATES] + ["zero-load", "saturation"],
        title=f"Average packet latency (cycles) vs injection rate — {args.pattern}",
    )
    curves = {}
    for label in FIG9_LABELS:
        print(f"sweeping {label} ...")
        points = latency_vs_injection(
            configs[label], args.pattern, RATES, cycles=args.cycles
        )
        curves[label] = points
        cells = ["sat" if p.saturated else f"{p.mean_latency:.1f}" for p in points]
        table.add_row(
            [label]
            + cells
            + [f"{zero_load_latency(points):.1f}", f"{saturation_rate(points):g}"]
        )
    print()
    print(table.render())
    print()
    print(plot_latency_curves(curves, title=f"Figure 9 panel: {args.pattern}"))


if __name__ == "__main__":
    main()
