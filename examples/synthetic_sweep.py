#!/usr/bin/env python
"""Synthetic latency sweep: a single panel of the paper's Figure 9.

Sweeps the injection rate for one synthetic pattern and prints the average
packet latency curve for the optical 4/5/8-hop networks and the 2/3-cycle
electrical routers, with zero-load latency and saturation-rate summaries.
The whole sweep is one campaign: ``--workers N`` fans it across a process
pool and reruns are served from the on-disk cache unless ``--no-cache``.

Run:  python examples/synthetic_sweep.py [--pattern transpose] [--cycles N]
      [--workers 4] [--no-cache]
"""

import argparse

from repro.harness.exec import Executor, ResultCache
from repro.harness.experiments.configs import FIG9_LABELS, standard_configs
from repro.harness.sweeps import (
    latency_vs_injection,
    saturation_rate,
    zero_load_latency,
)
from repro.traffic.patterns import PATTERNS
from repro.util.plot import plot_latency_curves
from repro.util.tables import AsciiTable

RATES = (0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pattern", default="transpose", choices=sorted(PATTERNS))
    parser.add_argument("--cycles", type=int, default=900)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args()

    executor = Executor(
        workers=args.workers,
        cache=None if args.no_cache else ResultCache(),
    )
    configs = standard_configs()
    table = AsciiTable(
        ["config"] + [f"{r:g}" for r in RATES] + ["zero-load", "saturation"],
        title=f"Average packet latency (cycles) vs injection rate — {args.pattern}",
    )
    curves = {}
    for label in FIG9_LABELS:
        print(f"sweeping {label} ...")
        points = latency_vs_injection(
            configs[label], args.pattern, RATES, cycles=args.cycles,
            executor=executor,
        )
        curves[label] = points
        cells = ["sat" if p.saturated else f"{p.mean_latency:.1f}" for p in points]
        table.add_row(
            [label]
            + cells
            + [f"{zero_load_latency(points):.1f}", f"{saturation_rate(points):g}"]
        )
    print()
    print(table.render())
    print()
    print(plot_latency_curves(curves, title=f"Figure 9 panel: {args.pattern}"))
    hits = executor.cache_hits
    print(f"\n{len(executor.events)} runs, {hits} served from cache.")


if __name__ == "__main__":
    main()
