#!/usr/bin/env python
"""Tail anatomy: why Phastlane's slowest packets are slow.

Drives a hotspot workload (everyone sending toward one corner — the
paper's worst case for the drop/retransmit machinery), reconstructs every
packet's span from the lifecycle trace, and prints the latency blame
split plus the full anatomy of the five slowest deliveries: where each
one queued, contended, crossed links and backed off, cycle by cycle.

The same analysis runs post-hoc on any JSONL trace via
``repro analyze trace.jsonl``.

Run:  python examples/tail_anatomy.py [--cycles N]
"""

import argparse

from repro.core import PhastlaneConfig, PhastlaneNetwork
from repro.obs import CollectingTracer, analyze_events, render_markdown
from repro.sim.engine import SimulationEngine
from repro.sim.stats import NetworkStats
from repro.topology import topology_of
from repro.traffic.injection import BernoulliInjector
from repro.traffic.patterns import pattern_by_name
from repro.traffic.trace import SyntheticSource


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=400)
    parser.add_argument("--rate", type=float, default=0.2)
    args = parser.parse_args()

    config = PhastlaneConfig()
    source = SyntheticSource(
        pattern_by_name("hotspot", topology_of(config)),
        lambda: BernoulliInjector(args.rate),
        seed=7,
        stop_cycle=args.cycles,
    )
    network = PhastlaneNetwork(config, source, NetworkStats())
    tracer = CollectingTracer()
    network.add_tracer(tracer)
    engine = SimulationEngine()
    engine.register(network)
    engine.run(args.cycles)

    report = analyze_events(tracer.events, link_delay=0, top=5)
    print(render_markdown(report, blame="routers", top=5))

    print("## Slowest packet, step by step")
    print()
    anatomy = report.anatomies[0]
    print(
        f"packet {anatomy['packet']}: node {anatomy['origin']} -> "
        f"{anatomy['destination']}, {anatomy['latency']} cycles end to end"
    )
    for cycle, kind, node in anatomy["timeline"]:
        print(f"  cycle {cycle:>5}  {kind:<14} node {node}")


if __name__ == "__main__":
    main()
