#!/usr/bin/env python
"""Design-space exploration: regenerate the section-3 analysis (Figs 4-8).

Walks the paper's router design space — component-delay scaling scenarios,
critical-path latency, hops-per-cycle, peak optical power and router area —
and prints how the Table 1 configuration (64-way WDM, four-hop network)
falls out of the tradeoffs.

Run:  python examples/design_space.py
"""

from repro.harness.experiments import fig04, fig05, fig06, fig07, fig08
from repro.photonics.dse import DesignSpaceExplorer
from repro.util.tables import AsciiTable


def main() -> None:
    for module in (fig04, fig05, fig06, fig07, fig08):
        print(module.render(module.compute()))
        print()

    explorer = DesignSpaceExplorer()
    table = AsciiTable(
        ["wdm", "scenario", "hops/cycle", "router mm^2", "peak W @98%", "feasible"],
        title="Design points (section 3 summary):",
    )
    for point in explorer.sweep():
        table.add_row(
            [
                point.payload_wdm,
                point.scenario,
                point.max_hops_per_cycle,
                f"{point.router_area_mm2:.2f}",
                f"{point.peak_power_w_at_98pct:.1f}",
                "yes" if point.feasible else "no",
            ]
        )
    print(table.render())
    print(
        f"\nSelected WDM degree: {explorer.select_wdm()} wavelengths "
        "(the Fig 8 area sweet spot, matching the 3.5 mm^2 node)."
    )


if __name__ == "__main__":
    main()
