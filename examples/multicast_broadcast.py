#!/usr/bin/env python
"""Broadcast anatomy: Phastlane multicast vs electrical VCTM trees.

Dissects one snoopy-coherence broadcast (an L2 miss request reaching all 63
other nodes) in both networks: the up-to-16 multicast packets with their
power taps on the optical side (section 2.1.4), and the dimension-order
replication tree on the electrical side.  Then measures delivery latency and
energy for a broadcast-heavy workload.

Run:  python examples/multicast_broadcast.py
"""

import tempfile
from pathlib import Path

from repro import (
    ElectricalConfig,
    PhastlaneConfig,
    RunSpec,
    Trace,
    TraceEvent,
    TraceFileWorkload,
    run,
)
from repro.core.routing import broadcast_plans
from repro.electrical.vctm import split_by_output
from repro.traffic.coherence import MessageKind
from repro.util.geometry import MeshGeometry
from repro.util.tables import AsciiTable

MESH = MeshGeometry(8, 8)
SOURCE = 27  # an interior node: full 16-packet fan-out


def show_optical_plans() -> None:
    plans = broadcast_plans(MESH, SOURCE, max_hops=4)
    print(
        f"Phastlane broadcast from node {SOURCE}: {len(plans)} multicast packets"
    )
    table = AsciiTable(["packet", "route", "hops", "taps"])
    for index, plan in enumerate(plans):
        route = "->".join(str(step.node) for step in plan)
        taps = sum(step.multicast for step in plan)
        table.add_row([index, route, len(plan) - 1, taps])
    print(table.render())
    covered = set()
    for plan in plans:
        covered |= {s.node for s in plan if s.multicast}
    print(f"Union of taps covers {len(covered)} of 63 destinations.\n")


def show_electrical_tree() -> None:
    destinations = set(range(MESH.num_nodes)) - {SOURCE}
    partitions = split_by_output(SOURCE, destinations, MESH)
    print(f"Electrical VCTM tree root at node {SOURCE}:")
    for direction, dests in sorted(partitions.items()):
        print(f"  {direction.name:<6} branch carries {len(dests)} destinations")
    print()


def measure_broadcast_storm() -> None:
    events = [
        TraceEvent(cycle, node, None, MessageKind.MISS_REQUEST)
        for cycle in range(0, 200, 10)
        for node in (9, 27, 36, 54)
    ]
    trace = Trace("broadcast-storm", MESH.num_nodes, events=events)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "broadcast-storm.trace"
        trace.save(path)
        workload = TraceFileWorkload(str(path))
        table = AsciiTable(
            ["network", "deliveries", "mean latency", "power (W)"],
            title=f"Broadcast storm: {len(events)} broadcasts from four nodes",
        )
        for config in (
            PhastlaneConfig(),
            PhastlaneConfig(buffer_entries=64),
            ElectricalConfig(),
        ):
            result = run(RunSpec(config, workload))
            table.add_row(
                [
                    result.label,
                    result.stats.packets_delivered,
                    f"{result.mean_latency:.1f}",
                    f"{result.power_w:.2f}",
                ]
            )
    print(table.render())
    print(
        "\nNote: a broadcast costs Phastlane up to 16 serialized multicast\n"
        "packets per source (section 2.1.4), so back-to-back broadcast storms\n"
        "stress its small buffers — the weakness the paper's section 5\n"
        "attributes Ocean/FMM's buffer sensitivity to.  Larger buffers help;\n"
        "the electrical VCTM tree injects a single flit per broadcast."
    )


def main() -> None:
    show_optical_plans()
    show_electrical_tree()
    measure_broadcast_storm()


if __name__ == "__main__":
    main()
