"""Bit-level helpers used by traffic permutations and packet field packing.

The synthetic traffic patterns of Dally & Towles (and of the paper's Fig 9)
are defined as permutations on the bits of the node address; the helpers here
implement those permutations for arbitrary address widths.
"""

from __future__ import annotations


def bit_width(n: int) -> int:
    """Number of bits needed to represent ``n`` distinct values.

    >>> bit_width(64)
    6
    >>> bit_width(1)
    0
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return (n - 1).bit_length()


def _check_address(addr: int, width: int) -> None:
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if addr < 0 or addr >= (1 << width):
        raise ValueError(f"address {addr} out of range for width {width}")


def bit_complement(addr: int, width: int) -> int:
    """Bit Complement permutation: every address bit is inverted.

    Destination d_i = ~s_i.  Node 0 talks to node 2^w - 1, etc.
    """
    _check_address(addr, width)
    return addr ^ ((1 << width) - 1)


def bit_reverse(addr: int, width: int) -> int:
    """Bit Reverse permutation: d_i = s_{w-1-i}."""
    _check_address(addr, width)
    out = 0
    for i in range(width):
        if addr & (1 << i):
            out |= 1 << (width - 1 - i)
    return out


def shuffle_bits(addr: int, width: int) -> int:
    """Perfect shuffle permutation: d_i = s_{(i-1) mod w} (left rotate)."""
    _check_address(addr, width)
    msb = (addr >> (width - 1)) & 1
    return ((addr << 1) | msb) & ((1 << width) - 1)


def transpose_bits(addr: int, width: int) -> int:
    """Matrix transpose permutation: swap the high and low halves of the bits.

    Requires an even ``width`` (square mesh); d_i = s_{(i + w/2) mod w}.
    """
    _check_address(addr, width)
    if width % 2:
        raise ValueError(f"transpose requires an even bit width, got {width}")
    half = width // 2
    lo = addr & ((1 << half) - 1)
    hi = addr >> half
    return (lo << half) | hi


def extract_bits(value: int, offset: int, count: int) -> int:
    """Extract ``count`` bits of ``value`` starting at bit ``offset``."""
    if offset < 0 or count < 0:
        raise ValueError("offset and count must be non-negative")
    return (value >> offset) & ((1 << count) - 1)


def set_bits(value: int, offset: int, count: int, field: int) -> int:
    """Return ``value`` with ``count`` bits at ``offset`` replaced by ``field``."""
    if field < 0 or field >= (1 << count):
        raise ValueError(f"field {field} does not fit in {count} bits")
    mask = ((1 << count) - 1) << offset
    return (value & ~mask) | (field << offset)
