"""Shared utilities: bit manipulation, mesh geometry, ASCII tables, units."""

from repro.util.bits import (
    bit_complement,
    bit_reverse,
    bit_width,
    extract_bits,
    set_bits,
    shuffle_bits,
    transpose_bits,
)
from repro.util.geometry import (
    Coord,
    Direction,
    MeshGeometry,
    OPPOSITE,
    TURN_KIND,
    TurnKind,
)
from repro.util.plot import AsciiPlot, plot_latency_curves
from repro.util.tables import AsciiTable, format_series
from repro.util.units import (
    GHZ,
    MM,
    MW,
    PJ,
    PS,
    UM,
    W,
    from_db,
    to_db,
)

__all__ = [
    "AsciiPlot",
    "AsciiTable",
    "Coord",
    "Direction",
    "GHZ",
    "MM",
    "MW",
    "MeshGeometry",
    "OPPOSITE",
    "PJ",
    "PS",
    "TURN_KIND",
    "TurnKind",
    "UM",
    "W",
    "bit_complement",
    "bit_reverse",
    "bit_width",
    "extract_bits",
    "format_series",
    "from_db",
    "plot_latency_curves",
    "set_bits",
    "shuffle_bits",
    "to_db",
    "transpose_bits",
]
