"""Plain-text table and series rendering for harness reports.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output aligned and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class AsciiTable:
    """A simple fixed-width ASCII table.

    >>> t = AsciiTable(["name", "value"])
    >>> t.add_row(["hops", 5])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    name | value
    -----+------
    hops | 5
    """

    def __init__(self, headers: Sequence[str], title: str | None = None):
        if not headers:
            raise ValueError("table needs at least one column")
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        cells = [_format_cell(c) for c in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(line.rstrip() for line in lines)

    def render_markdown(self) -> str:
        """Render the same rows as a GitHub-flavoured Markdown table.

        The title becomes a bold caption line; cell pipes are escaped so
        arbitrary entry names cannot break the table grid.
        """
        lines = []
        if self.title:
            lines.append(f"**{_escape_md(self.title)}**")
            lines.append("")
        lines.append("| " + " | ".join(_escape_md(h) for h in self.headers) + " |")
        lines.append("|" + "|".join(" --- " for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_escape_md(c) for c in row) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _escape_md(cell: str) -> str:
    return cell.replace("|", "\\|")


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], x_label: str = "x"
) -> str:
    """Render one figure series as ``name: (x, y) (x, y) ...`` lines."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    pairs = " ".join(f"({_format_cell(x)}, {_format_cell(y)})" for x, y in zip(xs, ys))
    return f"{name} [{x_label}]: {pairs}"
