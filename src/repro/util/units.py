"""Unit conventions and conversions.

Internal conventions used consistently across the repository:

- time: picoseconds (ps) for device-level delays, cycles for network-level
  simulation (1 cycle = 250 ps at the 4 GHz clock of the paper);
- distance: millimetres (mm);
- power: watts (W);
- energy: picojoules (pJ).

The constants here are multipliers to the internal unit, so e.g.
``5 * UM`` is 5 micrometres expressed in millimetres.
"""

from __future__ import annotations

import math

# Time (internal unit: picoseconds).
PS = 1.0
NS = 1e3

# Distance (internal unit: millimetres).
MM = 1.0
UM = 1e-3
CM = 10.0

# Power (internal unit: watts).
W = 1.0
MW = 1e-3
UW = 1e-6

# Energy (internal unit: picojoules).
PJ = 1.0
FJ = 1e-3
NJ = 1e3

# Frequency helper (Hz); used only for documentation-style conversions.
GHZ = 1e9


def to_db(ratio: float) -> float:
    """Power ratio -> decibels.  ``ratio`` must be positive."""
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)


def from_db(db: float) -> float:
    """Decibels -> power ratio."""
    return 10.0 ** (db / 10.0)


def cycle_time_ps(frequency_ghz: float) -> float:
    """Clock period in picoseconds for a frequency in GHz."""
    if frequency_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_ghz}")
    return 1e3 / frequency_ghz
