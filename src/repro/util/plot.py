"""Terminal line plots for experiment output.

The harness renders figures as ASCII tables for precision; these plots give
the *shape* at a glance (latency-vs-load knees, area U-curves) without any
plotting dependency.  Series are drawn on a shared character grid with one
marker per series; points past saturation (``inf``) are clipped to the top
row with a ``^`` marker.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

#: Marker characters assigned to series in order.
MARKERS = "ox+*#@%&"


@dataclass
class Series:
    name: str
    xs: list[float]
    ys: list[float]
    marker: str

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError(f"series {self.name!r}: xs and ys differ in length")


@dataclass
class AsciiPlot:
    """A character-grid line plot.

    >>> plot = AsciiPlot(width=20, height=6, title="demo")
    >>> plot.add_series("linear", [0, 1, 2], [0, 1, 2])
    >>> print(plot.render())  # doctest: +SKIP
    """

    width: int = 60
    height: int = 16
    title: str | None = None
    x_label: str = "x"
    y_label: str = "y"
    _series: list[Series] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.width < 8 or self.height < 4:
            raise ValueError("plot must be at least 8x4 characters")

    def add_series(
        self, name: str, xs: Sequence[float], ys: Sequence[float]
    ) -> None:
        if len(self._series) >= len(MARKERS):
            raise ValueError(f"at most {len(MARKERS)} series per plot")
        marker = MARKERS[len(self._series)]
        self._series.append(Series(name, list(xs), list(ys), marker))

    def _bounds(self) -> tuple[float, float, float, float]:
        xs = [x for s in self._series for x in s.xs]
        ys = [y for s in self._series for y in s.ys if math.isfinite(y)]
        if not xs:
            raise ValueError("cannot render an empty plot")
        if not ys:
            ys = [0.0, 1.0]
        x_min, x_max = min(xs), max(xs)
        y_min, y_max = min(ys), max(ys)
        if x_min == x_max:
            x_max = x_min + 1.0
        if y_min == y_max:
            y_max = y_min + 1.0
        return x_min, x_max, y_min, y_max

    def render(self) -> str:
        x_min, x_max, y_min, y_max = self._bounds()
        grid = [[" "] * self.width for _ in range(self.height)]

        def col(x: float) -> int:
            frac = (x - x_min) / (x_max - x_min)
            return min(self.width - 1, max(0, round(frac * (self.width - 1))))

        def row(y: float) -> int:
            frac = (y - y_min) / (y_max - y_min)
            return min(
                self.height - 1,
                max(0, self.height - 1 - round(frac * (self.height - 1))),
            )

        for series in self._series:
            for x, y in zip(series.xs, series.ys):
                if math.isfinite(y):
                    grid[row(y)][col(x)] = series.marker
                else:
                    grid[0][col(x)] = "^"  # clipped saturation point

        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        top_label = f"{y_max:.4g}"
        bottom_label = f"{y_min:.4g}"
        gutter = max(len(top_label), len(bottom_label)) + 1
        for index, grid_row in enumerate(grid):
            if index == 0:
                label = top_label.rjust(gutter - 1)
            elif index == self.height - 1:
                label = bottom_label.rjust(gutter - 1)
            else:
                label = " " * (gutter - 1)
            lines.append(f"{label}|{''.join(grid_row)}")
        axis = " " * (gutter - 1) + "+" + "-" * self.width
        lines.append(axis)
        x_axis = f"{x_min:.4g}".ljust(self.width // 2) + f"{x_max:.4g}".rjust(
            self.width - self.width // 2
        )
        lines.append(" " * gutter + x_axis)
        legend = "  ".join(f"{s.marker}={s.name}" for s in self._series)
        lines.append(f"{self.y_label} vs {self.x_label}   {legend}")
        return "\n".join(line.rstrip() for line in lines)


def plot_latency_curves(
    curves: dict[str, list],
    title: str,
    width: int = 60,
    height: int = 14,
) -> str:
    """Plot {label: [LatencyPoint, ...]} latency-vs-rate curves."""
    plot = AsciiPlot(
        width=width,
        height=height,
        title=title,
        x_label="injection rate (packets/node/cycle)",
        y_label="mean latency (cycles)",
    )
    for label, points in curves.items():
        plot.add_series(
            label,
            [p.rate for p in points],
            [p.mean_latency for p in points],
        )
    return plot.render()
