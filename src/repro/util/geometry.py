"""2D mesh geometry: coordinates, port directions, dimension-order routes.

Both the Phastlane optical network and the electrical baseline operate on the
same 8x8 (by default) mesh and the same dimension-order (X-then-Y) routing
function, so the geometry lives in one shared module.

Port naming follows the paper's Figure 2: each router has North, South, East
and West input/output ports plus a Local port.  A packet travelling north
*exits* through the N output port (i.e. direction names refer to the direction
of travel, not the neighbour's compass position on the page).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, NamedTuple


class Direction(enum.IntEnum):
    """Direction of travel through a router (also names the output port)."""

    NORTH = 0
    EAST = 1
    SOUTH = 2
    WEST = 3
    LOCAL = 4

    @property
    def short(self) -> str:
        return "NESWL"[int(self)]


OPPOSITE: dict[Direction, Direction] = {
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
    Direction.LOCAL: Direction.LOCAL,
}


class TurnKind(enum.Enum):
    """How a packet moves through a router crossbar.

    STRAIGHT has fixed priority over LEFT and RIGHT turns in Phastlane
    (paper section 2.1); LOCAL means the packet is accepted at this node.
    """

    STRAIGHT = "straight"
    LEFT = "left"
    RIGHT = "right"
    LOCAL = "local"


def _turn_table() -> dict[tuple[Direction, Direction], TurnKind]:
    # Keyed by (incoming travel direction, outgoing travel direction).
    table: dict[tuple[Direction, Direction], TurnKind] = {}
    order = [Direction.NORTH, Direction.EAST, Direction.SOUTH, Direction.WEST]
    for i, d in enumerate(order):
        table[(d, d)] = TurnKind.STRAIGHT
        table[(d, order[(i + 1) % 4])] = TurnKind.RIGHT
        table[(d, order[(i - 1) % 4])] = TurnKind.LEFT
        table[(d, Direction.LOCAL)] = TurnKind.LOCAL
    return table


TURN_KIND: dict[tuple[Direction, Direction], TurnKind] = _turn_table()


class Coord(NamedTuple):
    """Mesh coordinate: ``x`` is the column, ``y`` is the row (row 0 = south)."""

    x: int
    y: int

    def step(self, direction: Direction) -> "Coord":
        """The neighbouring coordinate in ``direction`` (no bounds check)."""
        dx, dy = _DELTA[direction]
        return Coord(self.x + dx, self.y + dy)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x},{self.y})"


_DELTA: dict[Direction, tuple[int, int]] = {
    Direction.NORTH: (0, 1),
    Direction.SOUTH: (0, -1),
    Direction.EAST: (1, 0),
    Direction.WEST: (-1, 0),
    Direction.LOCAL: (0, 0),
}


@dataclass(frozen=True)
class MeshGeometry:
    """A ``width`` x ``height`` 2D mesh with dimension-order (X-then-Y) routing.

    Node ids are assigned row-major: ``node = y * width + x``.
    """

    width: int = 8
    height: int = 8

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("mesh dimensions must be at least 1x1")

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def coord(self, node: int) -> Coord:
        """Coordinate of a node id."""
        if node < 0 or node >= self.num_nodes:
            raise ValueError(f"node {node} out of range for {self}")
        return Coord(node % self.width, node // self.width)

    def node(self, coord: Coord) -> int:
        """Node id of a coordinate."""
        if not self.contains(coord):
            raise ValueError(f"coordinate {coord} outside {self}")
        return coord.y * self.width + coord.x

    def contains(self, coord: Coord) -> bool:
        return 0 <= coord.x < self.width and 0 <= coord.y < self.height

    def nodes(self) -> Iterator[int]:
        return iter(range(self.num_nodes))

    def hop_count(self, src: int, dst: int) -> int:
        """Manhattan distance between two nodes."""
        a, b = self.coord(src), self.coord(dst)
        return abs(a.x - b.x) + abs(a.y - b.y)

    def dor_directions(self, src: int, dst: int) -> list[Direction]:
        """The sequence of travel directions under X-then-Y routing.

        Empty list when ``src == dst``.
        """
        a, b = self.coord(src), self.coord(dst)
        path: list[Direction] = []
        step_x = Direction.EAST if b.x > a.x else Direction.WEST
        path.extend([step_x] * abs(b.x - a.x))
        step_y = Direction.NORTH if b.y > a.y else Direction.SOUTH
        path.extend([step_y] * abs(b.y - a.y))
        return path

    def dor_route(self, src: int, dst: int) -> list[int]:
        """Node ids visited under X-then-Y routing, inclusive of endpoints."""
        coord = self.coord(src)
        route = [src]
        for direction in self.dor_directions(src, dst):
            coord = coord.step(direction)
            route.append(self.node(coord))
        return route

    def dor_first_direction(self, src: int, dst: int) -> Direction:
        """First travel direction of the X-then-Y route (cached table).

        This is the per-hop routing function both simulators evaluate on
        every flit arrival, so it is precomputed for the whole mesh.
        """
        if src == dst:
            raise ValueError("no direction from a node to itself")
        return _first_direction_table(self.width, self.height)[src][dst]

    def neighbor(self, node: int, direction: Direction) -> int | None:
        """Neighbouring node id in ``direction``, or None at the mesh edge."""
        if node < 0 or node >= self.num_nodes:
            raise ValueError(f"node {node} out of range for {self}")
        return _neighbor_table(self.width, self.height)[node][int(direction)]

    def is_edge_row(self, node: int) -> bool:
        """True when the node sits on the top or bottom row of the mesh.

        Broadcast fan-out in Phastlane is halved for such nodes (section
        2.1.4: "eight if it is located on the top or bottom rows").
        """
        y = self.coord(node).y
        return y == 0 or y == self.height - 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.width}x{self.height} mesh"


@lru_cache(maxsize=None)
def _neighbor_table(width: int, height: int) -> tuple[tuple[int | None, ...], ...]:
    """node -> direction -> neighbour id (None at mesh edges)."""
    mesh = MeshGeometry(width, height)
    table = []
    for node in mesh.nodes():
        row: list[int | None] = []
        for direction in Direction:
            coord = mesh.coord(node).step(direction)
            row.append(mesh.node(coord) if mesh.contains(coord) else None)
        table.append(tuple(row))
    return tuple(table)


@lru_cache(maxsize=None)
def _first_direction_table(
    width: int, height: int
) -> tuple[tuple[Direction, ...], ...]:
    """src -> dst -> first X-then-Y travel direction (src==dst slot unused)."""
    mesh = MeshGeometry(width, height)
    table = []
    for src in mesh.nodes():
        sx, sy = mesh.coord(src)
        row: list[Direction] = []
        for dst in mesh.nodes():
            dx, dy = mesh.coord(dst)
            if dx > sx:
                row.append(Direction.EAST)
            elif dx < sx:
                row.append(Direction.WEST)
            elif dy > sy:
                row.append(Direction.NORTH)
            elif dy < sy:
                row.append(Direction.SOUTH)
            else:
                row.append(Direction.LOCAL)  # src == dst; callers reject
        table.append(tuple(row))
    return tuple(table)
