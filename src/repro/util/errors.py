"""Shared exception types that sit below every layer of the stack.

:class:`FabricError` is the user-facing "you asked for something the
fabric cannot do" error: unknown backend kinds, bad registrations,
honest refusals (a backend that cannot model faults, a pattern that is
undefined on a topology).  It historically lived in
:mod:`repro.fabric.protocol`, which still re-exports it; the class
itself lives here so that low-level packages (:mod:`repro.topology`,
:mod:`repro.traffic`) can raise it without importing :mod:`repro.fabric`
— whose package init pulls in the simulators and would create an import
cycle.
"""

from __future__ import annotations


class FabricError(Exception):
    """A fabric-layer failure: unknown backend, bad registration, etc."""
