"""Cross-cutting observability: tracing, time-series metrics, profiling.

The subsystem has three independent legs, all opt-in and all governed by
one :class:`ObsConfig`:

- **packet-lifecycle tracing** — both simulators carry a
  :class:`~repro.obs.events.TraceHub` with explicit emit points (no
  monkeypatching); any :class:`~repro.obs.tracers.Tracer` registered on the
  hub receives structured :class:`~repro.obs.events.PacketEvent` records
  (``generated``, ``injected``, ``hop``, ``blocked``, ``buffered``,
  ``dropped``, ``retransmitted``, ``delivered``).  Exporters write JSONL or
  Chrome ``trace_event`` JSON (loadable in Perfetto / ``chrome://tracing``).
- **windowed time-series metrics** — a :class:`~repro.obs.timeseries.MetricsWatcher`
  engine watcher aggregates per-window injection/delivery/drop rates, mean
  buffer occupancy and latency percentiles into a
  :class:`~repro.obs.timeseries.TimeSeries` that serialises into the JSON
  report.
- **engine profiling** — an :class:`~repro.obs.profile.EngineProfiler`
  accounts per-component ``step``/``commit`` wall time inside
  :class:`~repro.sim.engine.SimulationEngine`, summarised per run in the
  campaign manifest.
- **runtime health watchdogs** — a :class:`~repro.obs.health.HealthMonitor`
  engine watcher runs pluggable invariant checks (flit conservation,
  credit leaks, livelock/stall/starvation) at window boundaries, emitting
  ``health_*`` trace events and a :class:`~repro.obs.health.HealthReport`
  in the JSON report.
- **streaming exporters** — a :class:`~repro.obs.export.MetricsRegistry`
  unifies stats, windows, spatial slices and health behind named series
  with JSONL/CSV/Prometheus renderers, and a
  :class:`~repro.obs.export.JsonlStreamWriter` tails windows and findings
  to a file *while the run executes*.
- **causal trace analytics** — :mod:`repro.obs.analysis` reconstructs
  per-packet :class:`~repro.obs.analysis.PacketSpan` records from the
  event stream (in memory or post-hoc from a JSONL trace), decomposes
  each delivered latency into exact wait components, and aggregates them
  into a :class:`~repro.obs.analysis.BlameReport` — per-router/per-link
  cycle attribution, slowest-packet anatomies, tail breakdowns, and
  cross-run diffs (``repro analyze``).

Hard invariant: observability never perturbs simulation results.  Every
hook only *reads* simulator state; with everything disabled the emit points
reduce to a falsy check on an empty hub, and reports are byte-identical to
uninstrumented runs.
"""

from repro.obs.analysis import (
    BlameReport,
    PacketSpan,
    analyze_events,
    analyze_trace_file,
    diff_reports,
    reconstruct_spans,
    render_diff_markdown,
    render_markdown,
)
from repro.obs.config import ObsConfig
from repro.obs.events import EVENT_KINDS, PacketEvent, TraceHub
from repro.obs.export import (
    JsonlStreamWriter,
    MetricsRegistry,
    registry_from_blame,
    registry_from_result,
    to_csv,
    to_jsonl,
    to_prometheus,
    write_registry,
)
from repro.obs.health import (
    HealthCheck,
    HealthFinding,
    HealthMonitor,
    HealthReport,
    register_health_check,
)
from repro.obs.live import LiveDashboard
from repro.obs.profile import EngineProfiler
from repro.obs.session import ObsSession
from repro.obs.timeseries import MetricsWatcher, SpatialSeries, TimeSeries, Window
from repro.obs.tracers import (
    TRACE_SCHEMA,
    ChromeTraceWriter,
    CollectingTracer,
    JsonlTraceWriter,
    Tracer,
    sampled,
)

__all__ = [
    "EVENT_KINDS",
    "TRACE_SCHEMA",
    "BlameReport",
    "ChromeTraceWriter",
    "CollectingTracer",
    "EngineProfiler",
    "HealthCheck",
    "HealthFinding",
    "HealthMonitor",
    "HealthReport",
    "JsonlStreamWriter",
    "JsonlTraceWriter",
    "LiveDashboard",
    "MetricsRegistry",
    "MetricsWatcher",
    "ObsConfig",
    "ObsSession",
    "PacketEvent",
    "PacketSpan",
    "SpatialSeries",
    "TimeSeries",
    "TraceHub",
    "Tracer",
    "Window",
    "analyze_events",
    "analyze_trace_file",
    "diff_reports",
    "reconstruct_spans",
    "register_health_check",
    "registry_from_blame",
    "registry_from_result",
    "render_diff_markdown",
    "render_markdown",
    "sampled",
    "to_csv",
    "to_jsonl",
    "to_prometheus",
    "write_registry",
]
