"""Windowed time-series metrics: rates, occupancy and latency percentiles.

A :class:`MetricsWatcher` is an engine watcher (called once per committed
cycle) that snapshots the run's :class:`~repro.sim.stats.NetworkStats`
counters at fixed cycle intervals and turns the deltas into
:class:`Window` records — per-window injection/delivery/drop/retransmit
counts, mean total buffer occupancy, and p50/p95/p99 latency of the
packets *measured in that window*.  The result is a :class:`TimeSeries`
that serialises losslessly into the JSON report, which is what the
latency-over-time and drop-storm plots of the paper's section 5 analysis
need.

With ``spatial=True`` the watcher additionally keeps the *where*: a
:class:`SpatialSeries` of per-router mean occupancy, drops and deliveries
per window (drop/delivery attribution rides the network's tracer hub,
exactly like :mod:`repro.sim.probes`).  That turns the probes' ASCII-only
congestion heatmaps into a JSON time series that lands in the same report
file as the windowed metrics.

The watcher is strictly read-only over the network (the no-perturbation
invariant): it copies counters and sums buffer occupancy but never writes
simulator state.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.events import PacketEvent
from repro.obs.tracers import Tracer

#: Percentiles reported per window, as (field suffix, p) pairs.
_PERCENTILES = (("p50", 50.0), ("p95", 95.0), ("p99", 99.0), ("p999", 99.9))


@dataclass(frozen=True)
class Window:
    """Aggregates over one ``[start, end)`` cycle window."""

    start: int
    end: int
    generated: int
    injected: int
    delivered: int
    dropped: int
    retransmitted: int
    #: Mean over the window of the summed buffer occupancy of all routers.
    mean_occupancy: float
    #: Latency percentiles (cycles) of packets measured in this window;
    #: ``None`` when the window measured no deliveries.
    latency_p50: int | None
    latency_p95: int | None
    latency_p99: int | None
    #: Fault-injection activity (both zero for fault-free runs): faults
    #: that fired in this window, and packets lost to exhausted retries.
    faulted: int = 0
    lost: int = 0
    #: p99.9 tail latency; defaulted (unlike its siblings) so payloads
    #: written before it existed still round-trip.
    latency_p999: int | None = None

    @property
    def cycles(self) -> int:
        return self.end - self.start

    def rate(self, counter: str) -> float:
        """A counter as a per-cycle rate over this window."""
        if counter not in _WINDOW_COUNTERS:
            raise ValueError(
                f"unknown counter {counter!r}; expected one of {_WINDOW_COUNTERS}"
            )
        return getattr(self, counter) / self.cycles if self.cycles else 0.0


_WINDOW_COUNTERS = (
    "generated",
    "injected",
    "delivered",
    "dropped",
    "retransmitted",
    "faulted",
    "lost",
)


@dataclass
class SpatialSeries:
    """Per-router telemetry aligned window-for-window with a time series.

    Each list holds one entry per closed window; each entry is a dense
    per-node list in node order (node = ``y * width + x``).  ``occupancy``
    is the mean buffer occupancy of each router over the window;
    ``drops``/``deliveries`` are the event counts attributed to the router
    where they physically happened.  Feed one slice to
    :func:`repro.sim.probes.render_heatmap` to see the congestion map at
    that moment of the run.
    """

    width: int
    height: int
    occupancy: list[list[float]] = field(default_factory=list)
    drops: list[list[int]] = field(default_factory=list)
    deliveries: list[list[int]] = field(default_factory=list)

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def to_dict(self) -> dict[str, Any]:
        return {
            "mesh": [self.width, self.height],
            "occupancy": self.occupancy,
            "drops": self.drops,
            "deliveries": self.deliveries,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SpatialSeries":
        width, height = payload["mesh"]
        return cls(
            width=int(width),
            height=int(height),
            occupancy=[[float(v) for v in row] for row in payload["occupancy"]],
            drops=[[int(v) for v in row] for row in payload["drops"]],
            deliveries=[[int(v) for v in row] for row in payload["deliveries"]],
        )


class _NodeEventTracer(Tracer):
    """Read-only tracer counting drops/deliveries per mesh node."""

    def __init__(self) -> None:
        self.drops: Counter = Counter()
        self.deliveries: Counter = Counter()

    def emit(self, event: PacketEvent) -> None:
        if event.kind == "dropped":
            self.drops[event.node] += 1
        elif event.kind == "delivered":
            self.deliveries[event.node] += 1


@dataclass
class TimeSeries:
    """An ordered list of :class:`Window` records at a fixed interval.

    ``spatial``, when collected, carries the per-router companion series
    (same window boundaries); it serialises under a ``"spatial"`` key that
    is simply absent for non-spatial runs, so pre-existing payloads stay
    byte-identical.
    """

    interval: int
    windows: list[Window] = field(default_factory=list)
    spatial: SpatialSeries | None = None

    def column(self, name: str) -> list[Any]:
        """One window field across all windows (for plotting)."""
        return [getattr(window, name) for window in self.windows]

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "interval": self.interval,
            "windows": [
                {
                    "start": w.start,
                    "end": w.end,
                    "generated": w.generated,
                    "injected": w.injected,
                    "delivered": w.delivered,
                    "dropped": w.dropped,
                    "retransmitted": w.retransmitted,
                    "mean_occupancy": w.mean_occupancy,
                    "latency_p50": w.latency_p50,
                    "latency_p95": w.latency_p95,
                    "latency_p99": w.latency_p99,
                    "latency_p999": w.latency_p999,
                    "faulted": w.faulted,
                    "lost": w.lost,
                }
                for w in self.windows
            ],
        }
        if self.spatial is not None:
            payload["spatial"] = self.spatial.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TimeSeries":
        spatial = payload.get("spatial")
        return cls(
            interval=int(payload["interval"]),
            spatial=None if spatial is None else SpatialSeries.from_dict(spatial),
            windows=[
                Window(
                    start=int(w["start"]),
                    end=int(w["end"]),
                    generated=int(w["generated"]),
                    injected=int(w["injected"]),
                    delivered=int(w["delivered"]),
                    dropped=int(w["dropped"]),
                    retransmitted=int(w["retransmitted"]),
                    mean_occupancy=float(w["mean_occupancy"]),
                    latency_p50=_opt_int(w["latency_p50"]),
                    latency_p95=_opt_int(w["latency_p95"]),
                    latency_p99=_opt_int(w["latency_p99"]),
                    # Absent in payloads written before p99.9 landed.
                    latency_p999=_opt_int(w.get("latency_p999")),
                    # Absent in payloads written before fault injection.
                    faulted=int(w.get("faulted", 0)),
                    lost=int(w.get("lost", 0)),
                )
                for w in payload.get("windows", [])
            ],
        )


def _opt_int(value: Any) -> int | None:
    return None if value is None else int(value)


def _bucket_percentile(buckets: Counter, count: int, p: float) -> int | None:
    """Percentile of a windowed latency histogram delta (matches
    :meth:`repro.sim.stats.Histogram.percentile` semantics)."""
    if count == 0:
        return None
    target = max(1, int(round(count * p / 100.0)))
    running = 0
    for bucket in sorted(buckets):
        running += buckets[bucket]
        if running >= target:
            return bucket
    return max(buckets)  # pragma: no cover - defensive


class MetricsWatcher:
    """Engine watcher that folds a run into a :class:`TimeSeries`.

    Register with ``engine.add_watcher(watcher)`` and call
    :meth:`finalize` after the run to flush the trailing partial window.
    Works with any network exposing ``stats`` and ``routers`` with an
    ``occupancy()`` method (both simulators do).

    ``spatial=True`` additionally collects the per-router companion
    series (see :class:`SpatialSeries`): the watcher registers a
    read-only tracer on the network's emit hub to attribute drops and
    deliveries to nodes, and splits its per-cycle occupancy sweep per
    router.  The network must then also expose ``mesh`` and
    ``add_tracer`` — again, both simulators do.
    """

    def __init__(self, network: Any, interval: int, spatial: bool = False) -> None:
        if interval <= 0:
            raise ValueError(f"metrics interval must be positive, got {interval}")
        self.network = network
        self.series = TimeSeries(interval=interval)
        self._window_start = 0
        self._occupancy_sum = 0
        self._tracer: _NodeEventTracer | None = None
        self._node_occupancy: list[int] | None = None
        self._listeners: list[Callable[[Window, dict[str, Any] | None], None]] = []
        if spatial:
            mesh = network.mesh
            self.series.spatial = SpatialSeries(mesh.width, mesh.height)
            self._tracer = _NodeEventTracer()
            network.add_tracer(self._tracer)
            self._node_occupancy = [0] * mesh.num_nodes
        self._last = self._snapshot()

    def add_listener(
        self, listener: Callable[[Window, dict[str, Any] | None], None]
    ) -> None:
        """Call ``listener(window, spatial_slice)`` at each window close.

        ``spatial_slice`` is the per-node companion data for that window
        (``None`` for non-spatial watchers) — this is what live streaming
        (:class:`~repro.obs.export.JsonlStreamWriter`) subscribes to.
        """
        self._listeners.append(listener)

    def _snapshot(self) -> dict[str, Any]:
        stats = self.network.stats
        snapshot = {
            "generated": stats.packets_generated,
            "injected": stats.packets_injected,
            "delivered": stats.packets_delivered,
            "dropped": stats.packets_dropped,
            "retransmitted": stats.retransmissions,
            "faulted": stats.faults_injected,
            "lost": stats.packets_lost,
            "histogram": Counter(stats.latency.histogram._buckets),
        }
        if self._tracer is not None:
            snapshot["node_drops"] = Counter(self._tracer.drops)
            snapshot["node_deliveries"] = Counter(self._tracer.deliveries)
        return snapshot

    def __call__(self, cycle: int) -> None:
        """Per-cycle hook; ``cycle`` is the cycle that just committed."""
        if self._node_occupancy is None:
            self._occupancy_sum += sum(
                router.occupancy() for router in self.network.routers
            )
        else:
            total = 0
            for router in self.network.routers:
                occupancy = router.occupancy()
                total += occupancy
                self._node_occupancy[router.node] += occupancy
            self._occupancy_sum += total
        if (cycle + 1) - self._window_start >= self.series.interval:
            self._close_window(cycle + 1)

    def finalize(self, final_cycle: int) -> TimeSeries:
        """Flush the trailing partial window; returns the series."""
        if final_cycle > self._window_start:
            self._close_window(final_cycle)
        return self.series

    def _close_window(self, end: int) -> None:
        now = self._snapshot()
        last = self._last
        delta_hist = now["histogram"] - last["histogram"]
        delta_count = sum(delta_hist.values())
        cycles = end - self._window_start
        percentiles = {
            f"latency_{suffix}": _bucket_percentile(delta_hist, delta_count, p)
            for suffix, p in _PERCENTILES
        }
        self.series.windows.append(
            Window(
                start=self._window_start,
                end=end,
                generated=now["generated"] - last["generated"],
                injected=now["injected"] - last["injected"],
                delivered=now["delivered"] - last["delivered"],
                dropped=now["dropped"] - last["dropped"],
                retransmitted=now["retransmitted"] - last["retransmitted"],
                mean_occupancy=self._occupancy_sum / cycles,
                faulted=now["faulted"] - last["faulted"],
                lost=now["lost"] - last["lost"],
                **percentiles,
            )
        )
        spatial_slice: dict[str, Any] | None = None
        if self._node_occupancy is not None:
            spatial = self.series.spatial
            assert spatial is not None
            spatial.occupancy.append(
                [occupancy / cycles for occupancy in self._node_occupancy]
            )
            spatial.drops.append(
                self._node_delta(now["node_drops"], last["node_drops"])
            )
            spatial.deliveries.append(
                self._node_delta(now["node_deliveries"], last["node_deliveries"])
            )
            spatial_slice = {
                "occupancy": spatial.occupancy[-1],
                "drops": spatial.drops[-1],
                "deliveries": spatial.deliveries[-1],
            }
            self._node_occupancy = [0] * len(self._node_occupancy)
        self._window_start = end
        self._occupancy_sum = 0
        self._last = now
        for listener in self._listeners:
            listener(self.series.windows[-1], spatial_slice)

    def _node_delta(self, now: Counter, last: Counter) -> list[int]:
        """Per-node counter delta over one window, as a dense node list."""
        spatial = self.series.spatial
        assert spatial is not None
        return [now[node] - last[node] for node in range(spatial.num_nodes)]
