"""Structured packet-lifecycle events and the hub that fans them out.

Both simulators own a :class:`TraceHub` created at construction time and
shared with their NICs; every lifecycle emit point in the simulators is an
explicit call on that hub, guarded by its truthiness (an empty hub is
falsy), so disabled tracing costs one boolean check per potential event and
allocates nothing.

The event vocabulary is fixed (:data:`EVENT_KINDS`) so exporters and
consumers can rely on it:

``generated``
    The traffic source handed a message to a NIC (one event per packet,
    so a Phastlane broadcast emits one per column-multicast packet).
``injected``
    The packet crossed the NIC-to-router interface.
``hop``
    The packet traversed into a router (optically, or over an electrical
    link into an input VC).
``blocked``
    The packet wanted an output port (or a free injection VC) and lost.
``buffered``
    The packet was written into a router's input buffer.
``dropped``
    No buffer space: a Packet Dropped signal is on its way back.
``retransmitted``
    The transmitter saw the drop signal and requeued the packet.
``delivered``
    The packet (or one multicast tap of it) reached a destination.
``fault_injected``
    An injected device fault hit this packet's crossing (or, with
    ``uid == -1``, froze a NIC); ``extra["fault"]`` names the fault model
    (``extra`` keys must not shadow ``kind`` — file exporters flatten them
    into the event payload).
``fault_masked``
    The recovery machinery (drop-signal backoff resend, link-level retry)
    absorbed an earlier fault — the packet is back in flight.
``fault_dropped``
    The packet exhausted its retry budget after a fault and is lost.
``health_warn`` / ``health_critical``
    A :class:`~repro.obs.health.HealthMonitor` invariant check fired at a
    window boundary.  These are monitor events, not packet events: ``uid``
    is ``-1``, ``node`` is the implicated router (or ``-1`` for global
    findings) and ``extra`` carries ``check`` and ``message``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracers import Tracer

#: The complete packet-lifecycle vocabulary, in rough lifecycle order.
EVENT_KINDS = (
    "generated",
    "injected",
    "hop",
    "blocked",
    "buffered",
    "dropped",
    "retransmitted",
    "delivered",
    "fault_injected",
    "fault_masked",
    "fault_dropped",
    "health_warn",
    "health_critical",
)

_KIND_SET = frozenset(EVENT_KINDS)


@dataclass(frozen=True, slots=True)
class PacketEvent:
    """One structured lifecycle event.

    ``node`` is where the event physically happened (for ``dropped`` that
    is the blocking router, matching the paper's drop-storm attribution);
    ``uid`` identifies the packet across its whole lifecycle, including
    retransmissions.
    """

    kind: str
    cycle: int
    node: int
    uid: int
    extra: Mapping[str, Any] | None = None


class TraceHub:
    """Fan-out point between a simulator's emit sites and its tracers.

    The hub is *shared by reference* between a network and its NICs, so
    tracers attached after construction (``network.add_tracer``) see events
    from every component.  Hub truthiness doubles as the fast-path guard:
    ``if hub: hub.emit(...)``.
    """

    __slots__ = ("_tracers",)

    def __init__(self) -> None:
        self._tracers: list["Tracer"] = []

    def __bool__(self) -> bool:
        return bool(self._tracers)

    @property
    def tracers(self) -> tuple["Tracer", ...]:
        return tuple(self._tracers)

    def add(self, tracer: "Tracer") -> None:
        self._tracers.append(tracer)

    def emit(
        self,
        kind: str,
        cycle: int,
        node: int,
        uid: int,
        extra: Mapping[str, Any] | None = None,
    ) -> None:
        """Build one :class:`PacketEvent` and hand it to every tracer."""
        if kind not in _KIND_SET:
            raise ValueError(f"unknown event kind {kind!r}; expected {EVENT_KINDS}")
        event = PacketEvent(kind=kind, cycle=cycle, node=node, uid=uid, extra=extra)
        for tracer in self._tracers:
            tracer.emit(event)

    def on_cycle(self, network: Any, cycle: int) -> None:
        """End-of-cycle hook: lets tracers sample network state (read-only)."""
        for tracer in self._tracers:
            tracer.on_cycle(network, cycle)

    def close(self) -> None:
        for tracer in self._tracers:
            tracer.close()
