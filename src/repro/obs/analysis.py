"""Causal trace analytics: span reconstruction and latency blame.

This module answers the question the raw event stream only implies:
**where did a slow packet's cycles go?**  :func:`reconstruct_spans` walks
the fixed :data:`~repro.obs.events.EVENT_KINDS` vocabulary
(``generated -> injected -> hop/blocked/buffered -> dropped/retransmitted
-> delivered``) and rebuilds one :class:`PacketSpan` per packet,
partitioning its end-to-end latency into four named wait components:

``source_queue``
    ``generated -> injected``: cycles spent in the NIC before the packet
    entered the network, charged to the origin node.
``router_contention``
    Cycles parked in a router's buffers waiting to win arbitration (or,
    at the destination, to be ejected), charged per router.
``link_transit``
    Cycles physically crossing links, charged per directed link.  The
    per-hop transit cost comes from the trace header (``link_delay``):
    Phastlane's same-cycle optical waves transit in 0 cycles, the
    electrical baseline in ``router_delay_cycles`` per hop, and the
    analytic ideal backend's whole flight is transit.
``retransmit_backoff``
    Cycles lost to the drop/retry machinery — the drop-signal round
    trip (charged to the *dropping* router) plus the exponential-backoff
    requeue wait (charged to the retransmitting router).

The walk attributes every inter-event gap to exactly one bucket, so for
every delivered packet the components **sum exactly** to its delivered
latency — an invariant the property suite asserts on both cycle-accurate
simulators.  :func:`analyze_events` aggregates spans into a
:class:`BlameReport` (per-router / per-link / per-cause attribution,
top-K slowest-packet anatomies, tail percentiles);
:func:`analyze_trace_file` does the same post-hoc from a JSONL trace
(validating the ``repro-trace/v1`` schema header when present);
:func:`diff_reports` compares two reports keyed by their RunSpec digests.

Packets are identified by *first-appearance index* in the event stream,
not raw uid — reference uid counters are process-global, so this is what
makes blame reports from reference and vectorized ``mode="exact"``
traces of the same spec byte-identical (their event streams are pinned
identical modulo uid by the differential suite).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.obs.events import EVENT_KINDS, PacketEvent
from repro.obs.tracers import TRACE_SCHEMA

#: The wait components every delivered latency decomposes into.
COMPONENTS = (
    "source_queue",
    "router_contention",
    "link_transit",
    "retransmit_backoff",
)

#: Tail percentiles reported by :class:`BlameReport`, as (name, p) pairs.
TAIL_PERCENTILES = (("p50", 50.0), ("p95", 95.0), ("p99", 99.0), ("p999", 99.9))


@dataclass
class PacketSpan:
    """One packet's reconstructed lifecycle and latency decomposition.

    ``packet`` is the first-appearance index of the packet's uid in the
    event stream (stable across backends and process-global uid offsets);
    ``timeline`` is the cycle-ordered event list ``(cycle, kind, node)``.
    """

    packet: int
    origin: int
    generated_cycle: int
    destination: int | None = None
    delivered_cycle: int | None = None
    multicast: bool = False
    lost: bool = False
    deliveries: int = 0
    hops: int = 0
    blocked: int = 0
    drops: int = 0
    retransmits: int = 0
    faults: int = 0
    source_queue: int = 0
    #: node -> cycles parked waiting for arbitration/ejection there.
    contention: Counter = field(default_factory=Counter)
    #: (from, to) -> cycles in flight on that directed link.
    transit: Counter = field(default_factory=Counter)
    #: node -> cycles lost to drop signalling and retry backoff there.
    backoff: Counter = field(default_factory=Counter)
    timeline: list = field(default_factory=list)

    @property
    def delivered(self) -> bool:
        return self.delivered_cycle is not None

    @property
    def latency(self) -> int:
        """End-to-end delivered latency (cycles); final tap for multicast."""
        if self.delivered_cycle is None:
            raise ValueError(f"packet {self.packet} was never delivered")
        return self.delivered_cycle - self.generated_cycle

    def components(self) -> dict[str, int]:
        """The four-way wait decomposition; sums to :attr:`latency`."""
        return {
            "source_queue": self.source_queue,
            "router_contention": sum(self.contention.values()),
            "link_transit": sum(self.transit.values()),
            "retransmit_backoff": sum(self.backoff.values()),
        }

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly anatomy: identity, decomposition, full timeline."""
        return {
            "packet": self.packet,
            "origin": self.origin,
            "destination": self.destination,
            "generated_cycle": self.generated_cycle,
            "delivered_cycle": self.delivered_cycle,
            "latency": self.latency if self.delivered else None,
            "multicast": self.multicast,
            "lost": self.lost,
            "hops": self.hops,
            "blocked": self.blocked,
            "drops": self.drops,
            "retransmits": self.retransmits,
            "components": self.components(),
            "contention": {str(n): c for n, c in sorted(self.contention.items())},
            "transit": {
                f"{a}->{b}": c for (a, b), c in sorted(self.transit.items())
            },
            "backoff": {str(n): c for n, c in sorted(self.backoff.items())},
            "timeline": [list(entry) for entry in self.timeline],
        }


class _SpanWalker:
    """The per-packet state machine attributing inter-event gaps.

    Every *anchor-advancing* event (injected, hop, buffered, dropped,
    retransmitted, fault_masked, delivered) attributes exactly the gap
    since the previous anchor to one bucket and moves the anchor; marker
    events (blocked, fault_injected) attribute nothing.  The buckets
    therefore partition ``[generated, last event]`` with no gap counted
    twice — the exact-sum invariant is true by construction.
    """

    __slots__ = ("span", "link_delay", "mode", "node", "anchor", "backoff_node")

    def __init__(self, span: PacketSpan, link_delay: int) -> None:
        self.span = span
        self.link_delay = link_delay
        self.mode = "source"  # source | queued | flying | backoff
        self.node = span.origin
        self.anchor = span.generated_cycle
        self.backoff_node = span.origin

    def feed(self, event: PacketEvent) -> None:
        span = self.span
        kind = event.kind
        span.timeline.append((event.cycle, kind, event.node))
        gap = event.cycle - self.anchor
        if kind == "blocked":
            span.blocked += 1  # marker: the time still accrues to the
            return  # bucket of the state the packet is waiting in
        if kind == "fault_injected":
            span.faults += 1
            return
        if kind == "injected":
            if self.mode == "source":
                span.source_queue += gap
            else:  # pragma: no cover - defensive
                self._charge(gap)
            self._advance(event, "queued")
        elif kind == "hop":
            self._arrive(event, gap)
            span.hops += 1
            self._advance(event, "flying")
        elif kind == "buffered":
            self._arrive(event, gap)
            self._advance(event, "queued")
        elif kind == "dropped":
            self._arrive(event, gap)
            span.drops += 1
            self._advance(event, "backoff")
            self.backoff_node = event.node
        elif kind == "retransmitted":
            span.retransmits += 1
            # The drop-signal round trip is blamed on the router that
            # dropped; a link-level retry (no dropped event) on the
            # retransmitting router itself.
            blame = self.backoff_node if self.mode == "backoff" else event.node
            span.backoff[blame] += gap
            self._advance(event, "backoff")
            self.backoff_node = event.node
        elif kind == "fault_masked":
            self._charge(gap)
            self._advance(event, "queued")
        elif kind == "fault_dropped":
            self._charge(gap)
            span.lost = True
            self._advance(event, "backoff")
        elif kind == "delivered":
            if event.node != self.node and self.mode in ("queued", "flying"):
                # Analytic flight (ideal backend): no per-hop events, the
                # whole gap is transit on the origin->destination "link".
                span.transit[(self.node, event.node)] += gap
            else:
                self._charge(gap)
            span.deliveries += 1
            span.delivered_cycle = event.cycle
            span.destination = event.node
            self._advance(event, "flying" if self.mode == "source" else self.mode)

    def _arrive(self, event: PacketEvent, gap: int) -> None:
        """Movement into ``event.node``: split the gap into link transit
        (up to ``link_delay`` when the node changed) plus waiting time."""
        if event.node != self.node:
            transit = min(self.link_delay, gap)
            if transit:
                self.span.transit[(self.node, event.node)] += transit
            gap -= transit
        self._charge(gap)

    def _charge(self, gap: int) -> None:
        """Waiting time to the current mode's bucket at the current node."""
        if not gap:
            return
        if self.mode == "backoff":
            self.span.backoff[self.backoff_node] += gap
        elif self.mode == "source":
            self.span.source_queue += gap
        else:
            self.span.contention[self.node] += gap

    def _advance(self, event: PacketEvent, mode: str) -> None:
        self.mode = mode
        self.node = event.node
        self.anchor = event.cycle


def reconstruct_spans(
    events: Iterable[PacketEvent], link_delay: int = 0
) -> list[PacketSpan]:
    """Rebuild per-packet spans from a lifecycle event stream.

    Events may arrive in any order within a packet (the electrical
    backend stamps ``hop`` with the *arrival* cycle but emits it at
    schedule time); each packet's events are stable-sorted by cycle
    before walking.  Monitor events (``uid < 0``, ``health_*``) are
    skipped.  Spans are returned in first-appearance order, renumbered
    from zero.
    """
    per_uid: dict[int, list[tuple[int, int, PacketEvent]]] = {}
    for index, event in enumerate(events):
        if event.uid < 0 or event.kind.startswith("health_"):
            continue
        per_uid.setdefault(event.uid, []).append((event.cycle, index, event))
    spans: list[PacketSpan] = []
    for packet, stream in enumerate(per_uid.values()):
        stream.sort(key=lambda entry: (entry[0], entry[1]))
        first = stream[0][2]
        extra: Mapping[str, Any] = first.extra or {}
        span = PacketSpan(
            packet=packet,
            origin=first.node,
            generated_cycle=first.cycle,
            destination=extra.get("dst"),
            multicast=bool(extra.get("multicast", False)),
        )
        walker = _SpanWalker(span, link_delay)
        for _, _, event in stream:
            if event.kind == "generated":
                span.timeline.append((event.cycle, event.kind, event.node))
                continue
            walker.feed(event)
        spans.append(span)
    return spans


def _percentile(latencies: list[int], p: float) -> int | None:
    """Nearest-rank percentile over sorted latencies (matches the
    windowed :func:`~repro.obs.timeseries._bucket_percentile` semantics).
    """
    if not latencies:
        return None
    target = max(1, int(round(len(latencies) * p / 100.0)))
    return latencies[min(target, len(latencies)) - 1]


@dataclass
class BlameReport:
    """Aggregated cycle attribution over one traced run.

    ``meta`` carries run identity from the trace header (spec digest,
    label, workload) and is deliberately **excluded** from
    :meth:`to_dict`: the payload holds only event-derived data, which is
    what makes reference and vectorized exact-mode reports of the same
    spec byte-identical.
    """

    packets: int
    delivered: int
    lost: int
    in_flight: int
    total_latency: int
    components: dict[str, int]
    routers: dict[int, dict[str, int]]
    links: dict[tuple[int, int], dict[str, int]]
    causes: dict[str, int]
    tail: dict[str, Any]
    anatomies: list[dict[str, Any]]
    meta: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro-blame/v1",
            "packets": self.packets,
            "delivered": self.delivered,
            "lost": self.lost,
            "in_flight": self.in_flight,
            "total_latency": self.total_latency,
            "components": dict(self.components),
            "routers": {
                str(node): dict(entry) for node, entry in self.routers.items()
            },
            "links": {
                f"{a}->{b}": dict(entry)
                for (a, b), entry in self.links.items()
            },
            "causes": dict(self.causes),
            "tail": dict(self.tail),
            "anatomies": [dict(entry) for entry in self.anatomies],
        }

    def to_json(self) -> str:
        """Canonical JSON rendering (the byte-identity surface)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def top_routers(self, top: int = 5) -> list[tuple[int, dict[str, int]]]:
        """Routers by total blamed cycles, descending (ties by node id)."""
        return sorted(
            self.routers.items(), key=lambda item: (-item[1]["total"], item[0])
        )[:top]

    def top_links(self, top: int = 5) -> list[tuple[tuple[int, int], dict[str, int]]]:
        """Links by transit cycles then traversals, descending."""
        return sorted(
            self.links.items(),
            key=lambda item: (-item[1]["transit"], -item[1]["traversals"], item[0]),
        )[:top]


def analyze_spans(
    spans: list[PacketSpan], top: int = 5, meta: dict[str, Any] | None = None
) -> BlameReport:
    """Aggregate reconstructed spans into a :class:`BlameReport`."""
    delivered = [span for span in spans if span.delivered]
    lost = sum(1 for span in spans if span.lost)
    components = {name: 0 for name in COMPONENTS}
    routers: dict[int, dict[str, int]] = {}
    links: dict[tuple[int, int], dict[str, int]] = {}

    def router(node: int) -> dict[str, int]:
        return routers.setdefault(
            node, {"contention": 0, "backoff": 0, "source_queue": 0, "total": 0}
        )

    def link(key: tuple[int, int]) -> dict[str, int]:
        return links.setdefault(key, {"transit": 0, "traversals": 0})

    counts: Counter = Counter()
    for span in spans:
        counts["drops"] += span.drops
        counts["retransmits"] += span.retransmits
        counts["blocked"] += span.blocked
        counts["faults"] += span.faults
        # Traversal counts come from the hop timeline so they cover
        # every packet, including ones that died en route.
        previous: int | None = None
        for _, kind, node in span.timeline:
            if kind == "hop" and previous is not None and previous != node:
                link((previous, node))["traversals"] += 1
            if kind in ("generated", "injected", "hop", "buffered", "delivered"):
                previous = node
    # Cycle blame is taken over *delivered* packets only, so the report
    # decomposes exactly the latency the run's stats measured.
    for span in delivered:
        for name, cycles in span.components().items():
            components[name] += cycles
        router(span.origin)["source_queue"] += span.source_queue
        for node, cycles in span.contention.items():
            router(node)["contention"] += cycles
        for node, cycles in span.backoff.items():
            router(node)["backoff"] += cycles
        for key, cycles in span.transit.items():
            link(key)["transit"] += cycles
    for entry in routers.values():
        entry["total"] = (
            entry["contention"] + entry["backoff"] + entry["source_queue"]
        )
    latencies = sorted(span.latency for span in delivered)
    tail: dict[str, Any] = {
        name: _percentile(latencies, p) for name, p in TAIL_PERCENTILES
    }
    threshold = tail["p99"]
    tail_spans = (
        [span for span in delivered if span.latency >= threshold]
        if threshold is not None
        else []
    )
    tail["tail_packets"] = len(tail_spans)
    tail_components = {name: 0 for name in COMPONENTS}
    for span in tail_spans:
        for name, cycles in span.components().items():
            tail_components[name] += cycles
    tail["tail_components"] = tail_components
    slowest = sorted(
        delivered, key=lambda span: (-span.latency, span.packet)
    )[:top]
    causes = dict(components)
    for key in ("drops", "retransmits", "blocked", "faults"):
        causes[key] = counts[key]
    return BlameReport(
        packets=len(spans),
        delivered=len(delivered),
        lost=lost,
        in_flight=len(spans) - len(delivered) - lost,
        total_latency=sum(latencies),
        components=components,
        routers=routers,
        links=links,
        causes=causes,
        tail=tail,
        anatomies=[span.to_dict() for span in slowest],
        meta=dict(meta or {}),
    )


def analyze_events(
    events: Iterable[PacketEvent],
    link_delay: int = 0,
    top: int = 5,
    meta: dict[str, Any] | None = None,
) -> BlameReport:
    """In-memory analysis: events (e.g. from a
    :class:`~repro.obs.tracers.CollectingTracer`) straight to blame."""
    return analyze_spans(
        reconstruct_spans(events, link_delay=link_delay), top=top, meta=meta
    )


def _event_from_payload(payload: dict[str, Any]) -> PacketEvent:
    """One JSONL trace line back into a :class:`PacketEvent` (the file
    exporter flattens ``extra`` into the payload, so the residue is it).
    """
    extra = {
        key: value
        for key, value in payload.items()
        if key not in ("kind", "cycle", "node", "uid")
    }
    return PacketEvent(
        kind=str(payload["kind"]),
        cycle=int(payload["cycle"]),
        node=int(payload["node"]),
        uid=int(payload["uid"]),
        extra=extra or None,
    )


def read_trace_file(
    path: str | Path,
) -> tuple[list[PacketEvent], dict[str, Any]]:
    """Parse a JSONL trace into (events, header metadata).

    Traces written since the ``repro-trace/v1`` header lead with a schema
    record carrying run identity and ``link_delay``; older header-less
    traces parse fine with empty metadata.  An unrecognised schema tag is
    an error — the analyzer's input validation.
    """
    path = Path(path)
    events: list[PacketEvent] = []
    meta: dict[str, Any] = {}
    for number, line in enumerate(path.read_text().splitlines()):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{number + 1}: not JSONL: {exc}") from exc
        if "schema" in payload:
            if payload["schema"] != TRACE_SCHEMA:
                raise ValueError(
                    f"{path}: unsupported trace schema {payload['schema']!r}; "
                    f"this analyzer reads {TRACE_SCHEMA!r}"
                )
            meta = {k: v for k, v in payload.items() if k not in ("schema", "kinds")}
            continue
        if payload.get("kind") not in EVENT_KINDS:
            raise ValueError(
                f"{path}:{number + 1}: unknown event kind "
                f"{payload.get('kind')!r}; is this a JSONL packet trace?"
            )
        events.append(_event_from_payload(payload))
    return events, meta


def analyze_trace_file(
    path: str | Path, top: int = 5, link_delay: int | None = None
) -> BlameReport:
    """Post-hoc analysis of a JSONL trace file.

    ``link_delay`` defaults to the trace header's value (0 for
    header-less traces); pass it explicitly to override.
    """
    events, meta = read_trace_file(path)
    if link_delay is None:
        link_delay = int(meta.get("link_delay", 0))
    return analyze_events(events, link_delay=link_delay, top=top, meta=meta)


# -- cross-run diffing --------------------------------------------------------


def diff_reports(a: BlameReport, b: BlameReport) -> dict[str, Any]:
    """Blame deltas between two runs, keyed by their RunSpec digests.

    Positive deltas mean run B spent *more* cycles (got worse) than run
    A.  Router deltas compare total blamed cycles per node across the
    union of blamed routers.
    """

    def identity(report: BlameReport) -> dict[str, Any]:
        return {
            "spec": report.meta.get("spec"),
            "label": report.meta.get("label"),
            "workload": report.meta.get("workload"),
        }

    def delta(x: int | None, y: int | None) -> dict[str, Any]:
        entry: dict[str, Any] = {"a": x, "b": y}
        entry["delta"] = (y - x) if (x is not None and y is not None) else None
        return entry

    routers = {}
    for node in sorted(set(a.routers) | set(b.routers)):
        routers[str(node)] = delta(
            a.routers.get(node, {}).get("total", 0),
            b.routers.get(node, {}).get("total", 0),
        )
    return {
        "schema": "repro-blame-diff/v1",
        "a": identity(a),
        "b": identity(b),
        "packets": delta(a.packets, b.packets),
        "delivered": delta(a.delivered, b.delivered),
        "lost": delta(a.lost, b.lost),
        "total_latency": delta(a.total_latency, b.total_latency),
        "components": {
            name: delta(a.components.get(name, 0), b.components.get(name, 0))
            for name in COMPONENTS
        },
        "tail": {
            name: delta(a.tail.get(name), b.tail.get(name))
            for name, _ in TAIL_PERCENTILES
        },
        "routers": routers,
    }


# -- renderers ----------------------------------------------------------------


def _md_table(headers: list[str], rows: list[list[Any]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _share(part: int, whole: int) -> str:
    return f"{100.0 * part / whole:.1f}%" if whole else "-"


def render_markdown(
    report: BlameReport, blame: str = "routers", top: int = 5
) -> str:
    """Human-readable blame report: summary, component split, the chosen
    blame table (``routers``/``links``/``causes``), tail, anatomies."""
    meta = report.meta
    title = "Latency blame report"
    if meta.get("label"):
        title += f": {meta['label']}"
        if meta.get("workload"):
            title += f" on {meta['workload']}"
    out = [f"# {title}", ""]
    if meta.get("spec"):
        out += [f"RunSpec digest: `{meta['spec']}`", ""]
    out += [
        f"{report.packets} packets traced: {report.delivered} delivered, "
        f"{report.lost} lost, {report.in_flight} in flight at run end.",
        "",
        "## Where the delivered cycles went",
        "",
        _md_table(
            ["component", "cycles", "share"],
            [
                [name, cycles, _share(cycles, report.total_latency)]
                for name, cycles in report.components.items()
            ],
        ),
        "",
    ]
    if blame == "routers":
        out += [
            "## Top blamed routers",
            "",
            _md_table(
                ["router", "contention", "backoff", "source queue", "total"],
                [
                    [
                        node,
                        entry["contention"],
                        entry["backoff"],
                        entry["source_queue"],
                        entry["total"],
                    ]
                    for node, entry in report.top_routers(top)
                ],
            ),
            "",
        ]
    elif blame == "links":
        out += [
            "## Top blamed links",
            "",
            _md_table(
                ["link", "transit cycles", "traversals"],
                [
                    [f"{a}->{b}", entry["transit"], entry["traversals"]]
                    for (a, b), entry in report.top_links(top)
                ],
            ),
            "",
        ]
    else:
        out += [
            "## Blame by cause",
            "",
            _md_table(
                ["cause", "value"],
                [[name, value] for name, value in report.causes.items()],
            ),
            "",
        ]
    tail_rows = [
        [name, report.tail.get(name) if report.tail.get(name) is not None else "-"]
        for name, _ in TAIL_PERCENTILES
    ]
    out += [
        "## Tail latency",
        "",
        _md_table(["percentile", "latency (cycles)"], tail_rows),
        "",
    ]
    tail_components = report.tail.get("tail_components", {})
    tail_total = sum(tail_components.values())
    if tail_total:
        out += [
            f"The {report.tail['tail_packets']} packets at or beyond p99 "
            "decompose as: "
            + ", ".join(
                f"{name} {_share(cycles, tail_total)}"
                for name, cycles in tail_components.items()
            )
            + ".",
            "",
        ]
    if report.anatomies:
        out += [f"## Slowest {len(report.anatomies)} packets", ""]
        for anatomy in report.anatomies:
            parts = ", ".join(
                f"{name} {cycles}"
                for name, cycles in anatomy["components"].items()
                if cycles
            )
            out.append(
                f"- packet {anatomy['packet']}: node {anatomy['origin']} -> "
                f"{anatomy['destination']}, {anatomy['latency']} cycles "
                f"({parts or 'pure transit'}; {anatomy['hops']} hops, "
                f"{anatomy['drops']} drops, {anatomy['retransmits']} retries)"
            )
        out.append("")
    return "\n".join(out)


def render_diff_markdown(diff: dict[str, Any], top: int = 10) -> str:
    """Human-readable blame delta between two analysed runs."""

    def name(side: dict[str, Any]) -> str:
        label = side.get("label") or "run"
        digest = side.get("spec")
        return f"{label} (`{digest[:12]}`)" if digest else label

    def fmt(value: Any) -> str:
        return "-" if value is None else str(value)

    def signed(value: Any) -> str:
        if value is None:
            return "-"
        return f"+{value}" if value > 0 else str(value)

    out = [
        f"# Blame diff: {name(diff['a'])} vs {name(diff['b'])}",
        "",
        "Positive deltas mean the second run spent more cycles.",
        "",
        _md_table(
            ["metric", "A", "B", "delta"],
            [
                [key, fmt(diff[key]["a"]), fmt(diff[key]["b"]),
                 signed(diff[key]["delta"])]
                for key in ("packets", "delivered", "lost", "total_latency")
            ]
            + [
                [f"component {key}", fmt(entry["a"]), fmt(entry["b"]),
                 signed(entry["delta"])]
                for key, entry in diff["components"].items()
            ]
            + [
                [f"tail {key}", fmt(entry["a"]), fmt(entry["b"]),
                 signed(entry["delta"])]
                for key, entry in diff["tail"].items()
            ],
        ),
        "",
    ]
    movers = sorted(
        diff["routers"].items(),
        key=lambda item: (-abs(item[1]["delta"] or 0), int(item[0])),
    )
    movers = [item for item in movers if item[1]["delta"]][:top]
    if movers:
        out += [
            "## Router movers",
            "",
            _md_table(
                ["router", "A", "B", "delta"],
                [
                    [node, fmt(entry["a"]), fmt(entry["b"]),
                     signed(entry["delta"])]
                    for node, entry in movers
                ],
            ),
            "",
        ]
    return "\n".join(out)
