"""Tracer implementations: in-memory collection and file exporters.

A :class:`Tracer` receives every :class:`~repro.obs.events.PacketEvent` a
simulator emits.  Two file exporters are provided:

- :class:`JsonlTraceWriter` — one JSON object per line, trivially
  greppable and streamable;
- :class:`ChromeTraceWriter` — the Chrome ``trace_event`` JSON object
  format (``{"traceEvents": [...]}``), loadable in Perfetto or
  ``chrome://tracing``.  Each packet event becomes a thread-scoped instant
  event whose ``tid`` is the mesh node and whose timestamp is the cycle
  number (1 cycle rendered as 1 µs), so a drop storm shows up as a burst
  of ``dropped`` instants on the hotspot rows.

:func:`sampled` bounds tracing overhead: it keeps or discards *whole
packet lifecycles* (all events of a uid), deterministically, so a sampled
trace is still internally consistent.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.events import EVENT_KINDS, PacketEvent

#: Schema tag written as the first record of every JSONL trace.  Bump the
#: version when the event vocabulary or line layout changes incompatibly;
#: :func:`repro.obs.analysis.read_trace_file` validates against it.
TRACE_SCHEMA = "repro-trace/v1"


class Tracer:
    """Base tracer: a no-op sink with the full receiving surface."""

    def emit(self, event: PacketEvent) -> None:
        """Receive one lifecycle event."""

    def on_cycle(self, network: Any, cycle: int) -> None:
        """End-of-cycle callback (network state is read-only here)."""

    def close(self) -> None:
        """Flush any buffered output; called once after the run."""


class CollectingTracer(Tracer):
    """Keep every event in memory (tests, probes, ad-hoc analysis)."""

    def __init__(self) -> None:
        self.events: list[PacketEvent] = []

    def emit(self, event: PacketEvent) -> None:
        self.events.append(event)

    def by_kind(self, kind: str) -> list[PacketEvent]:
        return [event for event in self.events if event.kind == kind]


class _FileTracer(Tracer):
    """Shared buffering/writing machinery for the file exporters."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._events: list[PacketEvent] = []
        self._closed = False

    def emit(self, event: PacketEvent) -> None:
        self._events.append(event)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(self._render(self._events))

    def _render(self, events: list[PacketEvent]) -> str:
        raise NotImplementedError


class JsonlTraceWriter(_FileTracer):
    """One JSON object per event per line.

    The first line is always a header record tagging the
    :data:`TRACE_SCHEMA` version and the event vocabulary, plus any run
    metadata passed as ``meta`` (the harness supplies the RunSpec digest,
    label, workload, and the backend's per-hop ``link_delay``), so a
    trace file is self-describing for post-hoc analysis.
    """

    def __init__(
        self, path: str | Path, meta: dict[str, Any] | None = None
    ) -> None:
        super().__init__(path)
        self.meta = dict(meta or {})

    def _render(self, events: list[PacketEvent]) -> str:
        header: dict[str, Any] = {
            "schema": TRACE_SCHEMA,
            "kinds": list(EVENT_KINDS),
        }
        header.update(self.meta)
        lines = [json.dumps(header, sort_keys=True)]
        for event in events:
            payload: dict[str, Any] = {
                "kind": event.kind,
                "cycle": event.cycle,
                "node": event.node,
                "uid": event.uid,
            }
            if event.extra:
                payload.update(event.extra)
            lines.append(json.dumps(payload, sort_keys=True))
        return "\n".join(lines) + "\n"


class ChromeTraceWriter(_FileTracer):
    """Chrome ``trace_event`` exporter (Perfetto-loadable).

    Timestamps are in microseconds by the format's definition; we map one
    network cycle to 1 µs so the timeline reads directly in cycles.
    """

    def _render(self, events: list[PacketEvent]) -> str:
        trace_events: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "network"},
            }
        ]
        for event in events:
            args: dict[str, Any] = {"uid": event.uid}
            if event.extra:
                args.update(event.extra)
            trace_events.append(
                {
                    "name": event.kind,
                    "cat": "packet",
                    "ph": "i",
                    "s": "t",
                    "ts": event.cycle,
                    "pid": 0,
                    "tid": event.node,
                    "args": args,
                }
            )
        return json.dumps(
            {"traceEvents": trace_events, "displayTimeUnit": "ms"}, indent=1
        )


class _SamplingTracer(Tracer):
    """Forward only the lifecycles whose uid hashes under the sample rate."""

    def __init__(self, inner: Tracer, rate: float) -> None:
        self.inner = inner
        self.rate = rate
        # Knuth multiplicative hash: decorrelates the keep decision from
        # uid allocation order without perturbing anything (pure read).
        self._threshold = int(rate * 2**32)

    def _keep(self, uid: int) -> bool:
        return ((uid * 2654435761) & 0xFFFFFFFF) < self._threshold

    def emit(self, event: PacketEvent) -> None:
        if self._keep(event.uid):
            self.inner.emit(event)

    def on_cycle(self, network: Any, cycle: int) -> None:
        self.inner.on_cycle(network, cycle)

    def close(self) -> None:
        self.inner.close()


def sampled(tracer: Tracer, rate: float) -> Tracer:
    """Wrap ``tracer`` to keep a deterministic ``rate`` fraction of packets.

    ``rate=1`` returns the tracer unwrapped; the decision is per packet
    uid, so a kept packet's whole lifecycle (including retransmissions) is
    kept.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"sample rate must be in [0, 1], got {rate}")
    if rate >= 1.0:
        return tracer
    return _SamplingTracer(tracer, rate)
