"""Per-run observability lifecycle: attach, run, collect.

:class:`ObsSession` is the one place the runner touches observability: it
translates an :class:`~repro.obs.config.ObsConfig` into attached tracers,
watchers, watchdogs and profilers before the run, and collects their
outputs after.  A session built from ``None`` (or an all-off config)
attaches nothing, so the uninstrumented path is exactly the
pre-observability code path.
"""

from __future__ import annotations

from typing import Any

from repro.obs.config import ObsConfig
from repro.obs.export import JsonlStreamWriter
from repro.obs.health import HealthMonitor, HealthReport
from repro.obs.profile import EngineProfiler
from repro.obs.timeseries import MetricsWatcher, TimeSeries
from repro.obs.tracers import ChromeTraceWriter, JsonlTraceWriter, sampled


class ObsSession:
    """Wires one run's observability up front, collects it at the end."""

    def __init__(
        self,
        config: ObsConfig | None,
        network: Any,
        engine: Any,
        meta: dict[str, Any] | None = None,
    ) -> None:
        self.config = config or ObsConfig()
        self._tracer = None
        self._watcher = None
        self._monitor: HealthMonitor | None = None
        self._stream: JsonlStreamWriter | None = None
        self._engine = engine
        if self.config.trace_path is not None:
            if self.config.trace_format == "jsonl":
                # Only the JSONL format is self-describing: its header
                # carries the run identity for post-hoc `repro analyze`.
                writer: Any = JsonlTraceWriter(self.config.trace_path, meta=meta)
            else:
                writer = ChromeTraceWriter(self.config.trace_path)
            self._tracer = sampled(writer, self.config.trace_sample)
            network.add_tracer(self._tracer)
        if self.config.metrics_interval is not None:
            self._watcher = MetricsWatcher(
                network, self.config.metrics_interval, spatial=self.config.spatial
            )
            engine.add_watcher(self._watcher)
        if self.config.health:
            self._monitor = HealthMonitor(
                network,
                self.config.effective_health_interval,
                stall_windows=self.config.health_stall_windows,
            )
            engine.add_watcher(self._monitor)
        if self.config.stream_path is not None:
            self._stream = JsonlStreamWriter(self.config.stream_path)
            assert self._watcher is not None  # enforced by ObsConfig
            self._watcher.add_listener(self._stream.on_window)
            if self._monitor is not None:
                self._monitor.add_listener(self._stream.on_finding)
        if self.config.profile:
            engine.profiler = EngineProfiler()

    @property
    def health_status(self) -> str | None:
        """The watchdogs' current verdict mid-run (None when disabled)."""
        return self._monitor.status if self._monitor is not None else None

    def finish(
        self,
    ) -> tuple[TimeSeries | None, dict[str, Any] | None, HealthReport | None]:
        """Close all sinks; return (time series, profile, health report)."""
        if self._tracer is not None:
            self._tracer.close()
        timeseries = (
            self._watcher.finalize(self._engine.cycle)
            if self._watcher is not None
            else None
        )
        health = (
            self._monitor.finalize(self._engine.cycle)
            if self._monitor is not None
            else None
        )
        profile = (
            self._engine.profiler.summary()
            if self._engine.profiler is not None
            else None
        )
        if self._stream is not None:
            summary: dict[str, Any] = {"final_cycle": self._engine.cycle}
            if health is not None:
                summary["health"] = health.status
            self._stream.close(summary)
        return timeseries, profile, health
