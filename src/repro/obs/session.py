"""Per-run observability lifecycle: attach, run, collect.

:class:`ObsSession` is the one place the runner touches observability: it
translates an :class:`~repro.obs.config.ObsConfig` into attached tracers,
watchers and profilers before the run, and collects their outputs after.
A session built from ``None`` (or an all-off config) attaches nothing, so
the uninstrumented path is exactly the pre-observability code path.
"""

from __future__ import annotations

from typing import Any

from repro.obs.config import ObsConfig
from repro.obs.profile import EngineProfiler
from repro.obs.timeseries import MetricsWatcher, TimeSeries
from repro.obs.tracers import ChromeTraceWriter, JsonlTraceWriter, sampled


class ObsSession:
    """Wires one run's observability up front, collects it at the end."""

    def __init__(self, config: ObsConfig | None, network: Any, engine: Any) -> None:
        self.config = config or ObsConfig()
        self._tracer = None
        self._watcher = None
        self._engine = engine
        if self.config.trace_path is not None:
            writer_cls = (
                JsonlTraceWriter
                if self.config.trace_format == "jsonl"
                else ChromeTraceWriter
            )
            self._tracer = sampled(
                writer_cls(self.config.trace_path), self.config.trace_sample
            )
            network.add_tracer(self._tracer)
        if self.config.metrics_interval is not None:
            self._watcher = MetricsWatcher(
                network, self.config.metrics_interval, spatial=self.config.spatial
            )
            engine.add_watcher(self._watcher)
        if self.config.profile:
            engine.profiler = EngineProfiler()

    def finish(self) -> tuple[TimeSeries | None, dict[str, Any] | None]:
        """Close the tracer; return (time series, profile summary)."""
        if self._tracer is not None:
            self._tracer.close()
        timeseries = (
            self._watcher.finalize(self._engine.cycle)
            if self._watcher is not None
            else None
        )
        profile = (
            self._engine.profiler.summary()
            if self._engine.profiler is not None
            else None
        )
        return timeseries, profile
