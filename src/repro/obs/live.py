"""ASCII live campaign dashboard: runs-in-flight, rates and health flags.

:class:`LiveDashboard` consumes the two telemetry streams the
:class:`~repro.harness.exec.Executor` produces — intra-run
:class:`~repro.harness.exec.RunProgress` records (its ``live`` callback)
and completion :class:`~repro.harness.exec.RunEvent` records (its
``progress`` callback) — and renders them to a terminal:

- on a TTY, an in-place panel (ANSI cursor movement) with one progress bar
  per run in flight, aggregate flits/s, the worst router occupancy seen
  and any health flags;
- on a non-TTY stream (CI logs, pipes), one plain line per completed run
  plus a closing summary — no control codes, no redraw spam.

The dashboard is thread-safe: with a worker pool the ``live`` callback
fires on the executor's queue-drain thread while completions arrive on
the main thread.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field
from typing import IO, TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - the harness imports obs, not vice versa
    from repro.harness.exec import RunEvent, RunProgress

#: Severity glyphs for the health column.
_HEALTH_FLAGS = {None: " ", "ok": "+", "warn": "!", "critical": "X"}


@dataclass
class _Row:
    """Live state of one campaign run."""

    label: str
    workload: str
    cycle: int = 0
    cycles_total: int = 0
    flits: int = 0
    delivered: int = 0
    dropped: int = 0
    worst_node: int = 0
    worst_occupancy: int = 0
    health: str | None = None
    done: bool = False
    cache_hit: bool = False
    wall_time_s: float = 0.0
    samples: int = field(default=0)

    @property
    def fraction(self) -> float:
        if self.done:
            return 1.0
        if self.cycles_total <= 0:
            return 0.0
        return min(1.0, self.cycle / self.cycles_total)


def _bar(fraction: float, width: int = 12) -> str:
    filled = int(round(fraction * width))
    return "#" * filled + "-" * (width - filled)


class LiveDashboard:
    """Render campaign telemetry live; see module docstring for modes."""

    def __init__(
        self,
        stream: IO[str] | None = None,
        max_rows: int = 12,
        min_redraw_s: float = 0.1,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._lock = threading.Lock()
        self._rows: dict[int, _Row] = {}
        self._total = 0
        self._completed = 0
        self._cache_hits = 0
        self._max_rows = max_rows
        self._min_redraw_s = min_redraw_s
        self._started = time.perf_counter()
        self._painted_lines = 0
        self._last_paint = 0.0
        self._worst_ever = (0, 0)  # (occupancy, node)
        self._health_counts = {"warn": 0, "critical": 0}
        self._closed = False

    # -- executor callbacks ----------------------------------------------------

    def on_progress(self, progress: RunProgress) -> None:
        """Executor ``live`` callback: one intra-run sample."""
        sample = progress.sample
        with self._lock:
            self._total = max(self._total, progress.total)
            row = self._rows.setdefault(
                progress.index, _Row(label=progress.label, workload=progress.workload)
            )
            row.cycle = sample.cycle
            row.cycles_total = sample.cycles_total
            row.flits = sample.flits
            row.delivered = sample.delivered
            row.dropped = sample.dropped
            row.worst_node = sample.worst_node
            row.worst_occupancy = sample.worst_occupancy
            row.health = sample.health
            row.samples += 1
            if sample.done:
                row.done = True
            if sample.worst_occupancy > self._worst_ever[0]:
                self._worst_ever = (sample.worst_occupancy, sample.worst_node)
            self._paint()

    def on_event(self, event: RunEvent) -> None:
        """Executor ``progress`` callback: one completed run."""
        with self._lock:
            self._total = max(self._total, event.total)
            row = self._rows.setdefault(
                event.index,
                _Row(label=event.spec.label, workload=event.spec.workload_name),
            )
            row.done = True
            row.cache_hit = event.cache_hit
            row.wall_time_s = event.wall_time_s
            row.flits = event.result.stats.flits_processed
            row.delivered = event.result.stats.packets_delivered
            row.dropped = event.result.stats.packets_dropped
            if event.result.health is not None:
                row.health = event.result.health.status
            self._completed += 1
            if event.cache_hit:
                self._cache_hits += 1
            if row.health in self._health_counts:
                self._health_counts[row.health] += 1
            if self._tty:
                self._paint(force=True)
            else:
                self._print_completion(event.index, row)

    def close(self) -> None:
        """Final render; always leaves the cursor on a fresh line."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._tty:
                self._paint(force=True)
            self.stream.write(self._summary_line() + "\n")
            self.stream.flush()

    # -- rendering -------------------------------------------------------------

    def _aggregate_flits_per_s(self) -> float:
        elapsed = time.perf_counter() - self._started
        if elapsed <= 0.0:
            return 0.0
        return sum(row.flits for row in self._rows.values()) / elapsed

    def _summary_line(self) -> str:
        worst_occ, worst_node = self._worst_ever
        flags = []
        if self._health_counts["critical"]:
            flags.append(f"{self._health_counts['critical']} critical")
        if self._health_counts["warn"]:
            flags.append(f"{self._health_counts['warn']} warn")
        health = ", ".join(flags) if flags else "all ok"
        return (
            f"campaign: {self._completed}/{self._total or len(self._rows)} runs "
            f"({self._cache_hits} cached) | {self._aggregate_flits_per_s():,.0f} "
            f"flits/s | worst router occupancy {worst_occ} (node {worst_node}) "
            f"| health: {health}"
        )

    def _print_completion(self, index: int, row: _Row) -> None:
        source = "cache" if row.cache_hit else f"{row.wall_time_s:.2f}s"
        health = f" health={row.health}" if row.health is not None else ""
        self.stream.write(
            f"[{self._completed}/{self._total}] {row.label:<14} "
            f"{row.workload:<16} {source}{health}\n"
        )
        self.stream.flush()

    def _render_lines(self) -> list[str]:
        lines = [self._summary_line()]
        in_flight = [
            (index, row) for index, row in sorted(self._rows.items()) if not row.done
        ]
        for index, row in in_flight[: self._max_rows]:
            flag = _HEALTH_FLAGS.get(row.health, "?")
            lines.append(
                f" [{_bar(row.fraction)}] {flag} {row.label:<14} "
                f"{row.workload:<16} {row.cycle}/{row.cycles_total} "
                f"occ {row.worst_occupancy}@{row.worst_node}"
            )
        hidden = len(in_flight) - self._max_rows
        if hidden > 0:
            lines.append(f" ... and {hidden} more runs in flight")
        return lines

    def _paint(self, force: bool = False) -> None:
        """Repaint the TTY panel in place (throttled); no-op off-TTY."""
        if not self._tty:
            return
        now = time.perf_counter()
        if not force and now - self._last_paint < self._min_redraw_s:
            return
        self._last_paint = now
        lines = self._render_lines()
        out = []
        if self._painted_lines:
            out.append(f"\x1b[{self._painted_lines}F")  # cursor to panel top
        for line in lines:
            out.append("\x1b[K" + line + "\n")
        # Clear leftover lines from a taller previous frame.
        extra = self._painted_lines - len(lines)
        if extra > 0:
            out.append("\x1b[K\n" * extra)
            out.append(f"\x1b[{extra}F")
        self._painted_lines = len(lines)
        self.stream.write("".join(out))
        self.stream.flush()


def run_dashboard(executor_kwargs: dict[str, Any]) -> LiveDashboard:
    """Convenience for wiring: build a dashboard and patch its callbacks in.

    Mutates ``executor_kwargs`` so ``Executor(**executor_kwargs)`` reports
    into the returned dashboard (composing with any existing ``progress``
    callback by calling both).
    """
    dashboard = LiveDashboard()
    previous = executor_kwargs.get("progress")

    def progress(event: RunEvent) -> None:
        dashboard.on_event(event)
        if previous is not None:
            previous(event)

    executor_kwargs["progress"] = progress
    executor_kwargs["live"] = dashboard.on_progress
    return dashboard
