"""The observability configuration threaded through runs and campaigns.

:class:`ObsConfig` is deliberately *not* part of a
:class:`~repro.harness.exec.RunSpec`'s identity: it is excluded from the
spec's equality, hash, ``to_dict`` and content digest, exactly like wall
times — two runs of the same spec with and without observability simulate
the same physics.  Consequently the on-disk result cache is bypassed for
observability-enabled runs (a cached result has no trace or time series to
give back).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

#: Health-window length (cycles) when ``health=True`` without an explicit
#: ``health_interval`` and without a metrics window to piggyback on.
DEFAULT_HEALTH_INTERVAL = 100


@dataclass(frozen=True)
class ObsConfig:
    """What to observe during a run.  Everything defaults to off.

    ``trace_path`` enables packet-lifecycle tracing to a file; the format
    is Chrome ``trace_event`` JSON unless the path ends in ``.jsonl``.
    ``trace_sample`` keeps that fraction of packet lifecycles
    (deterministically by uid).  ``metrics_interval`` enables the windowed
    time series (cycles per window); ``spatial`` extends it with the
    per-router occupancy/drop/delivery companion series (it needs the
    window clock, so it requires ``metrics_interval``); ``profile``
    enables engine step/commit wall-time accounting.

    ``health`` enables the runtime watchdogs
    (:class:`~repro.obs.health.HealthMonitor`): invariant checks evaluated
    every ``health_interval`` cycles (defaults to ``metrics_interval``,
    falling back to :data:`DEFAULT_HEALTH_INTERVAL`), with stall/livelock
    escalation after ``health_stall_windows`` flat windows.  ``stream_path``
    enables live JSONL streaming of closed metrics windows and health
    findings (see :class:`~repro.obs.export.JsonlStreamWriter`), so
    external tooling can tail the run while it executes.
    """

    trace_path: str | None = None
    trace_sample: float = 1.0
    metrics_interval: int | None = None
    spatial: bool = False
    profile: bool = False
    health: bool = False
    health_interval: int | None = None
    health_stall_windows: int = 5
    stream_path: str | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ValueError(
                f"trace_sample must be in [0, 1], got {self.trace_sample}"
            )
        if self.metrics_interval is not None and self.metrics_interval <= 0:
            raise ValueError(
                f"metrics_interval must be positive, got {self.metrics_interval}"
            )
        if self.spatial and self.metrics_interval is None:
            raise ValueError(
                "spatial telemetry is windowed: set metrics_interval too"
            )
        if self.health_interval is not None:
            if self.health_interval <= 0:
                raise ValueError(
                    f"health_interval must be positive, got {self.health_interval}"
                )
            if not self.health:
                raise ValueError("health_interval without health=True is inert")
        if self.health_stall_windows < 1:
            raise ValueError(
                f"health_stall_windows must be >= 1, got {self.health_stall_windows}"
            )
        if self.stream_path is not None and self.metrics_interval is None:
            raise ValueError(
                "streaming exports closed metrics windows: set metrics_interval too"
            )

    @property
    def enabled(self) -> bool:
        """True when any leg of the subsystem is switched on."""
        return (
            self.trace_path is not None
            or self.metrics_interval is not None
            or self.profile
            or self.health
            or self.stream_path is not None
        )

    @property
    def trace_format(self) -> str:
        """``"jsonl"`` or ``"chrome"``, inferred from the path suffix."""
        if self.trace_path is not None and self.trace_path.endswith(".jsonl"):
            return "jsonl"
        return "chrome"

    @property
    def effective_health_interval(self) -> int:
        """The watchdog evaluation window, after defaulting (see class doc)."""
        if self.health_interval is not None:
            return self.health_interval
        if self.metrics_interval is not None:
            return self.metrics_interval
        return DEFAULT_HEALTH_INTERVAL

    def with_run_index(self, index: int) -> "ObsConfig":
        """A copy whose output paths are unique to run ``index`` of a campaign.

        ``drops.json`` becomes ``drops-0003.json``; configs without any
        per-run file outputs are returned unchanged.
        """
        config = self
        if config.trace_path is not None:
            config = replace(
                config, trace_path=_indexed_path(config.trace_path, index)
            )
        if config.stream_path is not None:
            config = replace(
                config, stream_path=_indexed_path(config.stream_path, index)
            )
        return config


def _indexed_path(path_str: str, index: int) -> str:
    path = Path(path_str)
    return str(path.with_name(f"{path.stem}-{index:04d}{path.suffix}"))
