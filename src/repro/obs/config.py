"""The observability configuration threaded through runs and campaigns.

:class:`ObsConfig` is deliberately *not* part of a
:class:`~repro.harness.exec.RunSpec`'s identity: it is excluded from the
spec's equality, hash, ``to_dict`` and content digest, exactly like wall
times — two runs of the same spec with and without observability simulate
the same physics.  Consequently the on-disk result cache is bypassed for
observability-enabled runs (a cached result has no trace or time series to
give back).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path


@dataclass(frozen=True)
class ObsConfig:
    """What to observe during a run.  Everything defaults to off.

    ``trace_path`` enables packet-lifecycle tracing to a file; the format
    is Chrome ``trace_event`` JSON unless the path ends in ``.jsonl``.
    ``trace_sample`` keeps that fraction of packet lifecycles
    (deterministically by uid).  ``metrics_interval`` enables the windowed
    time series (cycles per window); ``spatial`` extends it with the
    per-router occupancy/drop/delivery companion series (it needs the
    window clock, so it requires ``metrics_interval``); ``profile``
    enables engine step/commit wall-time accounting.
    """

    trace_path: str | None = None
    trace_sample: float = 1.0
    metrics_interval: int | None = None
    spatial: bool = False
    profile: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ValueError(
                f"trace_sample must be in [0, 1], got {self.trace_sample}"
            )
        if self.metrics_interval is not None and self.metrics_interval <= 0:
            raise ValueError(
                f"metrics_interval must be positive, got {self.metrics_interval}"
            )
        if self.spatial and self.metrics_interval is None:
            raise ValueError(
                "spatial telemetry is windowed: set metrics_interval too"
            )

    @property
    def enabled(self) -> bool:
        """True when any leg of the subsystem is switched on."""
        return (
            self.trace_path is not None
            or self.metrics_interval is not None
            or self.profile
        )

    @property
    def trace_format(self) -> str:
        """``"jsonl"`` or ``"chrome"``, inferred from the path suffix."""
        if self.trace_path is not None and self.trace_path.endswith(".jsonl"):
            return "jsonl"
        return "chrome"

    def with_run_index(self, index: int) -> "ObsConfig":
        """A copy whose trace path is unique to run ``index`` of a campaign.

        ``drops.json`` becomes ``drops-0003.json``; configs without a trace
        path are returned unchanged.
        """
        if self.trace_path is None:
            return self
        path = Path(self.trace_path)
        return replace(
            self, trace_path=str(path.with_name(f"{path.stem}-{index:04d}{path.suffix}"))
        )
