"""Runtime health watchdogs: invariant checks evaluated while a run executes.

A :class:`HealthMonitor` is an engine watcher (like
:class:`~repro.obs.timeseries.MetricsWatcher`) that wakes at fixed cycle
intervals and runs pluggable :class:`HealthCheck` instances over live
simulator state.  The stock checks are the three failure classes the
simulators can silently wedge on:

- **flit conservation** (:class:`ConservationCheck`) — every generated
  packet is either still queued in a NIC or has been injected, and the
  stats ledger agrees event-for-event with the trace stream (injections,
  deliveries, drops, retransmissions, fault losses);
- **credit leaks** (:class:`CreditLeakCheck`, electrical backend) — every
  withheld credit is explained by a live reservation, an in-flight flit,
  an occupied downstream VC, a pending credit return or a link retry;
  an unexplained ``False`` is a leaked credit (and an available credit on
  an occupied VC is a double credit in the making);
- **progress** (:class:`ProgressCheck`) — global livelock (no
  delivery/loss progress for N consecutive windows while work is
  pending), per-router stalls (a busy router emitting no events at all)
  and injection starvation (a backlogged NIC injecting nothing).

Violations become :class:`HealthFinding` records, ``health_warn`` /
``health_critical`` trace events on the network's hub, and a
:class:`HealthReport` in the JSON report with overall severity and the
first-violation cycle.

The monitor honours the observability no-perturbation contract: it only
*reads* simulator state (its tracer counts events; its checks walk router
and queue state without mutating it), so a health-enabled run produces a
bit-identical :class:`~repro.sim.stats.NetworkStats` ledger.  Checks are
white-box by design — the credit audit walks the electrical router's VC
state directly (duck-typed via :meth:`HealthCheck.applies`, so the module
imports neither simulator).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.obs.events import PacketEvent
from repro.obs.tracers import Tracer
from repro.topology import as_topology
from repro.util.geometry import OPPOSITE, Direction

#: Severity scale, in escalation order.
SEVERITIES = ("ok", "warn", "critical")

_SEVERITY_RANK = {severity: rank for rank, severity in enumerate(SEVERITIES)}

#: The four mesh directions as port indices (the local port carries no
#: credits).  Defined locally so this module stays simulator-agnostic.
_MESH_PORTS = tuple(
    int(d) for d in (Direction.NORTH, Direction.EAST, Direction.SOUTH, Direction.WEST)
)

#: Event kinds counted as "this router did something this window".
#: ``generated`` is NIC-side and monitor events are excluded, so a busy
#: router with zero activity events is genuinely wedged.
_ACTIVITY_KINDS = frozenset(
    {
        "injected",
        "hop",
        "blocked",
        "buffered",
        "dropped",
        "retransmitted",
        "delivered",
        "fault_injected",
        "fault_masked",
        "fault_dropped",
    }
)


@dataclass(frozen=True)
class HealthFinding:
    """One invariant violation caught at a window boundary.

    ``cycle`` is the end of the window that caught it; ``node`` is the
    implicated router/NIC, or ``None`` for global findings.
    """

    check: str
    severity: str
    cycle: int
    message: str
    node: int | None = None

    def __post_init__(self) -> None:
        if self.severity not in ("warn", "critical"):
            raise ValueError(
                f"finding severity must be warn or critical, got {self.severity!r}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "check": self.check,
            "severity": self.severity,
            "cycle": self.cycle,
            "message": self.message,
            "node": self.node,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "HealthFinding":
        node = payload.get("node")
        return cls(
            check=str(payload["check"]),
            severity=str(payload["severity"]),
            cycle=int(payload["cycle"]),
            message=str(payload["message"]),
            node=None if node is None else int(node),
        )


@dataclass
class HealthReport:
    """What the watchdogs concluded about one run.

    ``checks`` summarises each check that ran (worst severity it reached
    and how many findings it produced); ``findings`` holds the individual
    violations, capped at the monitor's ``max_findings`` (``truncated``
    counts the overflow, so a drop-storm cannot bloat the report).
    """

    status: str = "ok"
    first_violation_cycle: int | None = None
    interval: int = 0
    windows: int = 0
    checks: dict[str, dict[str, Any]] = field(default_factory=dict)
    findings: list[HealthFinding] = field(default_factory=list)
    truncated: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "first_violation_cycle": self.first_violation_cycle,
            "interval": self.interval,
            "windows": self.windows,
            "checks": {
                name: dict(summary) for name, summary in sorted(self.checks.items())
            },
            "findings": [finding.to_dict() for finding in self.findings],
            "truncated": self.truncated,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "HealthReport":
        first = payload.get("first_violation_cycle")
        return cls(
            status=str(payload["status"]),
            first_violation_cycle=None if first is None else int(first),
            interval=int(payload.get("interval", 0)),
            windows=int(payload.get("windows", 0)),
            checks={
                str(name): {
                    "status": str(summary["status"]),
                    "violations": int(summary["violations"]),
                }
                for name, summary in payload.get("checks", {}).items()
            },
            findings=[
                HealthFinding.from_dict(finding)
                for finding in payload.get("findings", [])
            ],
            truncated=int(payload.get("truncated", 0)),
        )


@dataclass(frozen=True)
class HealthContext:
    """Read-only view handed to each check at a window boundary."""

    network: Any
    stats: Any
    window: int  # zero-based index of the window being closed
    start: int
    end: int
    #: Cumulative event counts by kind since cycle 0.
    events: Counter
    #: Event-count deltas by kind over this window.
    delta: Counter
    #: Per-node activity-event deltas over this window (see module doc).
    node_activity: Counter
    #: Per-node ``injected``-event deltas over this window.
    node_injected: Counter
    #: Cumulative packets reported lost by ``fault_dropped`` events.
    lost_events: int


class HealthCheck:
    """Base class for pluggable invariant checks.

    Checks may keep per-run state (streak counters), so campaigns get a
    fresh instance per run — register a *factory*, not an instance, with
    :func:`register_health_check`.
    """

    name = "check"

    def applies(self, network: Any) -> bool:
        """Whether this check understands ``network``'s state (duck-typed)."""
        return True

    def evaluate(self, ctx: HealthContext) -> list[HealthFinding]:
        """Run the check over one closed window; return any violations."""
        raise NotImplementedError


class ConservationCheck(HealthCheck):
    """Every packet is accounted for, and the ledger matches the events.

    Queue identity: ``generated − injected`` trace events must equal the
    packets currently sitting in NIC queues (both sides count *physical*
    packets, so it holds for multicast on every backend).  Ledger
    reconciliation: the stats counters that have a paired emit point must
    match the event stream exactly — a divergence means a code path
    recorded without emitting (or vice versa), the kind of bookkeeping rot
    this watchdog exists to catch at runtime.
    """

    name = "flit_conservation"

    def applies(self, network: Any) -> bool:
        return hasattr(network, "nics") and hasattr(network, "stats")

    def evaluate(self, ctx: HealthContext) -> list[HealthFinding]:
        findings: list[HealthFinding] = []

        def critical(message: str) -> None:
            findings.append(
                HealthFinding(
                    check=self.name,
                    severity="critical",
                    cycle=ctx.end,
                    message=message,
                )
            )

        backlog = sum(nic.backlog for nic in ctx.network.nics)
        queued = ctx.events["generated"] - ctx.events["injected"]
        if queued != backlog:
            critical(
                f"conservation broken: {queued} packets unaccounted between "
                f"generation and injection but NIC queues hold {backlog}"
            )
        stats = ctx.stats
        ledger = (
            ("injected", stats.packets_injected, "packets_injected"),
            ("delivered", stats.packets_delivered, "packets_delivered"),
            ("dropped", stats.packets_dropped, "packets_dropped"),
            ("retransmitted", stats.retransmissions, "retransmissions"),
        )
        for kind, counted, counter_name in ledger:
            if ctx.events[kind] != counted:
                critical(
                    f"ledger drift: stats.{counter_name}={counted} but "
                    f"{ctx.events[kind]} {kind!r} events were emitted"
                )
        if ctx.lost_events != stats.packets_lost:
            critical(
                f"ledger drift: stats.packets_lost={stats.packets_lost} but "
                f"fault_dropped events account for {ctx.lost_events}"
            )
        return findings


class CreditLeakCheck(HealthCheck):
    """Audit the electrical backend's credit-based flow control.

    For every mesh output port and VC, a withheld credit
    (``router.credits[port][vc] is False``) must be *explained* by exactly
    the mechanisms that legitimately hold one: a local VC-allocation
    reservation, a flit in flight on the link, an occupied downstream
    input VC, a credit return still in the event queue, or a pending
    link-level retry.  An unexplained ``False`` is a leaked credit — the
    port's capacity silently shrank.  The inverse (an *available* credit
    while the downstream VC is occupied) is a double credit in the making
    and is flagged too.

    The audit is duck-typed on the network's event-queue attributes, so it
    attaches to :class:`~repro.electrical.network.ElectricalNetwork` (or
    any backend with the same flow-control shape) without this module
    importing it.
    """

    name = "credit_leak"

    #: Cap findings per window so one systemic leak cannot flood the report.
    max_findings_per_window = 8

    def applies(self, network: Any) -> bool:
        return (
            hasattr(network, "_arrivals")
            and hasattr(network, "_credits")
            and hasattr(network, "_link_retries")
            and bool(getattr(network, "routers", None))
            and hasattr(network.routers[0], "credits")
            and hasattr(network.routers[0], "vcs")
        )

    def evaluate(self, ctx: HealthContext) -> list[HealthFinding]:
        network = ctx.network
        topology = getattr(network, "topology", None) or as_topology(network.mesh)
        occupied: set[tuple[int, int, int]] = set()
        explained: set[tuple[int, int, int]] = set()

        def upstream_of(node: int, port: int) -> int | None:
            return topology.neighbor(node, OPPOSITE[Direction(port)])

        for router in network.routers:
            for port_states in router.vcs:
                for state in port_states:
                    if state is None:
                        continue
                    for output_port, group in state.groups.items():
                        if group.out_vc is not None:
                            explained.add((router.node, output_port, group.out_vc))
            for port in _MESH_PORTS:
                upstream = upstream_of(router.node, port)
                if upstream is None:
                    continue
                for vc, state in enumerate(router.vcs[port]):
                    if state is not None:
                        occupied.add((upstream, port, vc))
        for events in network._arrivals.values():
            for node, port, vc, _flit in events:
                upstream = upstream_of(node, port)
                if upstream is not None:
                    explained.add((upstream, port, vc))
        for events in network._credits.values():
            for node, port, vc in events:
                upstream = upstream_of(node, port)
                if upstream is not None:
                    explained.add((upstream, port, vc))
        for events in network._link_retries.values():
            for sender, _neighbor, port, vc, _flit, _attempts in events:
                explained.add((sender, port, vc))
        explained |= occupied

        findings: list[HealthFinding] = []
        for router in network.routers:
            for port in _MESH_PORTS:
                for vc, free in enumerate(router.credits[port]):
                    key = (router.node, port, vc)
                    if not free and key not in explained:
                        findings.append(
                            HealthFinding(
                                check=self.name,
                                severity="critical",
                                cycle=ctx.end,
                                node=router.node,
                                message=(
                                    "credit leaked on port "
                                    f"{topology.port_label(router.node, port)} "
                                    f"vc {vc}: withheld with no reservation, "
                                    "in-flight flit, occupied VC or pending return"
                                ),
                            )
                        )
                    elif free and key in occupied:
                        findings.append(
                            HealthFinding(
                                check=self.name,
                                severity="critical",
                                cycle=ctx.end,
                                node=router.node,
                                message=(
                                    "double credit on port "
                                    f"{topology.port_label(router.node, port)} "
                                    f"vc {vc}: available while the downstream VC "
                                    "is occupied"
                                ),
                            )
                        )
                    if len(findings) >= self.max_findings_per_window:
                        return findings
        return findings


class ProgressCheck(HealthCheck):
    """Livelock, per-router stall and injection-starvation detection.

    Forward progress is ``delivered + lost`` (a packet abandoned at its
    retry limit is resolution, not livelock).  Global: if that sum stays
    flat for consecutive windows while work is pending (busy routers or
    backlogged NICs), the run is warned at ``stall_windows // 2`` flat
    windows and escalated to critical livelock at ``stall_windows`` (and
    every ``stall_windows`` after, so a persisting livelock keeps
    flagging).  Per-router: a busy router that emitted *no* events for
    ``stall_windows`` windows is wedged-silent.  Per-NIC: a backlogged NIC
    with zero injections for ``stall_windows`` windows is starved.
    """

    name = "progress"

    def __init__(self, stall_windows: int = 5) -> None:
        if stall_windows < 1:
            raise ValueError(f"stall_windows must be >= 1, got {stall_windows}")
        self.stall_windows = stall_windows
        self._last_progress: int | None = None
        self._flat = 0
        self._router_streaks: Counter = Counter()
        self._nic_streaks: Counter = Counter()

    def applies(self, network: Any) -> bool:
        return hasattr(network, "routers") and hasattr(network, "nics")

    def evaluate(self, ctx: HealthContext) -> list[HealthFinding]:
        findings: list[HealthFinding] = []
        stats = ctx.stats
        network = ctx.network
        pending = sum(1 for router in network.routers if router.busy) + sum(
            1 for nic in network.nics if nic.backlog
        )
        progress = stats.packets_delivered + stats.packets_lost
        if self._last_progress is not None and progress == self._last_progress and pending:
            self._flat += 1
        else:
            self._flat = 0
        self._last_progress = progress
        warn_after = max(1, self.stall_windows // 2)
        if self._flat == warn_after and warn_after < self.stall_windows:
            findings.append(
                HealthFinding(
                    check=self.name,
                    severity="warn",
                    cycle=ctx.end,
                    message=(
                        f"no forward progress for {self._flat} windows "
                        f"({pending} routers/NICs still hold work)"
                    ),
                )
            )
        if (
            self._flat >= self.stall_windows
            and (self._flat - self.stall_windows) % self.stall_windows == 0
        ):
            findings.append(
                HealthFinding(
                    check=self.name,
                    severity="critical",
                    cycle=ctx.end,
                    message=(
                        f"livelock: no forward progress for {self._flat} windows "
                        f"while {pending} routers/NICs still hold work"
                    ),
                )
            )
        for router in network.routers:
            node = router.node
            if router.busy and ctx.node_activity[node] == 0:
                self._router_streaks[node] += 1
            else:
                self._router_streaks[node] = 0
            if self._router_streaks[node] == self.stall_windows:
                findings.append(
                    HealthFinding(
                        check=self.name,
                        severity="warn",
                        cycle=ctx.end,
                        node=node,
                        message=(
                            f"router {node} stalled: busy with no events for "
                            f"{self.stall_windows} windows"
                        ),
                    )
                )
        for nic in network.nics:
            node = nic.node
            if nic.backlog and ctx.node_injected[node] == 0:
                self._nic_streaks[node] += 1
            else:
                self._nic_streaks[node] = 0
            if self._nic_streaks[node] == self.stall_windows:
                findings.append(
                    HealthFinding(
                        check=self.name,
                        severity="warn",
                        cycle=ctx.end,
                        node=node,
                        message=(
                            f"NIC {node} starved: backlogged with zero "
                            f"injections for {self.stall_windows} windows"
                        ),
                    )
                )
        return findings


#: Registered check factories, instantiated fresh per monitor (checks keep
#: per-run streak state).  Factories take the monitor's stall_windows.
_CHECK_FACTORIES: dict[str, Callable[[int], HealthCheck]] = {}


def register_health_check(
    name: str, factory: Callable[[int], HealthCheck]
) -> None:
    """Register a check factory; ``factory(stall_windows)`` builds one."""
    if name in _CHECK_FACTORIES:
        raise ValueError(f"health check {name!r} already registered")
    _CHECK_FACTORIES[name] = factory


def registered_health_checks() -> tuple[str, ...]:
    return tuple(sorted(_CHECK_FACTORIES))


def default_health_checks(stall_windows: int) -> list[HealthCheck]:
    """One fresh instance of every registered check."""
    return [
        _CHECK_FACTORIES[name](stall_windows)
        for name in sorted(_CHECK_FACTORIES)
    ]


register_health_check("flit_conservation", lambda _sw: ConservationCheck())
register_health_check("credit_leak", lambda _sw: CreditLeakCheck())
register_health_check("progress", lambda sw: ProgressCheck(stall_windows=sw))


class _EventAuditor(Tracer):
    """Read-only tracer keeping the counts the checks reconcile against."""

    def __init__(self) -> None:
        self.by_kind: Counter = Counter()
        self.node_activity: Counter = Counter()
        self.node_injected: Counter = Counter()
        self.lost = 0

    def emit(self, event: PacketEvent) -> None:
        kind = event.kind
        if kind.startswith("health_"):
            return  # the monitor's own events are not simulator activity
        self.by_kind[kind] += 1
        if kind in _ACTIVITY_KINDS:
            self.node_activity[event.node] += 1
        if kind == "injected":
            self.node_injected[event.node] += 1
        if kind == "fault_dropped" and event.extra is not None:
            self.lost += int(event.extra.get("lost", 0))


#: A listener receives each finding as it is recorded (for streaming).
HealthListener = Callable[[HealthFinding], None]


class HealthMonitor:
    """Engine watcher that runs the health checks at window boundaries.

    Register with ``engine.add_watcher(monitor)`` and call
    :meth:`finalize` after the run to evaluate the trailing partial
    window and collect the :class:`HealthReport`.  Works with any network
    exposing ``stats``, ``routers``, ``nics`` and ``add_tracer`` (all
    registered backends do); individual checks further gate themselves
    via :meth:`HealthCheck.applies`.
    """

    def __init__(
        self,
        network: Any,
        interval: int,
        stall_windows: int = 5,
        checks: Iterable[HealthCheck] | None = None,
        max_findings: int = 200,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"health interval must be positive, got {interval}")
        self.network = network
        self.interval = interval
        self.max_findings = max_findings
        self._auditor = _EventAuditor()
        network.add_tracer(self._auditor)
        candidates = (
            list(checks) if checks is not None else default_health_checks(stall_windows)
        )
        self.checks = [check for check in candidates if check.applies(network)]
        self.status = "ok"
        self.first_violation_cycle: int | None = None
        self.findings: list[HealthFinding] = []
        self.truncated = 0
        self.windows = 0
        self._window_start = 0
        self._check_status = {check.name: "ok" for check in self.checks}
        self._check_violations = {check.name: 0 for check in self.checks}
        self._last_kind: Counter = Counter()
        self._last_activity: Counter = Counter()
        self._last_injected: Counter = Counter()
        self._listeners: list[HealthListener] = []

    def add_listener(self, listener: HealthListener) -> None:
        """Call ``listener(finding)`` for every recorded finding."""
        self._listeners.append(listener)

    def __call__(self, cycle: int) -> None:
        """Per-cycle hook; ``cycle`` is the cycle that just committed."""
        if (cycle + 1) - self._window_start >= self.interval:
            self._evaluate(cycle + 1)

    def finalize(self, final_cycle: int) -> HealthReport:
        """Evaluate the trailing partial window; return the report."""
        if final_cycle > self._window_start:
            self._evaluate(final_cycle)
        return HealthReport(
            status=self.status,
            first_violation_cycle=self.first_violation_cycle,
            interval=self.interval,
            windows=self.windows,
            checks={
                name: {
                    "status": self._check_status[name],
                    "violations": self._check_violations[name],
                }
                for name in sorted(self._check_status)
            },
            findings=list(self.findings),
            truncated=self.truncated,
        )

    # -- internals -------------------------------------------------------------

    def _evaluate(self, end: int) -> None:
        auditor = self._auditor
        ctx = HealthContext(
            network=self.network,
            stats=self.network.stats,
            window=self.windows,
            start=self._window_start,
            end=end,
            events=Counter(auditor.by_kind),
            delta=auditor.by_kind - self._last_kind,
            node_activity=auditor.node_activity - self._last_activity,
            node_injected=auditor.node_injected - self._last_injected,
            lost_events=auditor.lost,
        )
        for check in self.checks:
            for finding in check.evaluate(ctx):
                self._record(finding)
        self._last_kind = Counter(auditor.by_kind)
        self._last_activity = Counter(auditor.node_activity)
        self._last_injected = Counter(auditor.node_injected)
        self._window_start = end
        self.windows += 1

    def _record(self, finding: HealthFinding) -> None:
        if _SEVERITY_RANK[finding.severity] > _SEVERITY_RANK[self.status]:
            self.status = finding.severity
        if self.first_violation_cycle is None:
            self.first_violation_cycle = finding.cycle
        check_status = self._check_status.get(finding.check, "ok")
        if _SEVERITY_RANK[finding.severity] > _SEVERITY_RANK[check_status]:
            self._check_status[finding.check] = finding.severity
        self._check_violations[finding.check] = (
            self._check_violations.get(finding.check, 0) + 1
        )
        if len(self.findings) < self.max_findings:
            self.findings.append(finding)
        else:
            self.truncated += 1
        hub = getattr(self.network, "trace_hub", None)
        if hub:
            hub.emit(
                f"health_{finding.severity}",
                finding.cycle,
                -1 if finding.node is None else finding.node,
                -1,
                extra={"check": finding.check, "message": finding.message},
            )
        for listener in self._listeners:
            listener(finding)
