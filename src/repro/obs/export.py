"""Metrics registry and exporters: one naming scheme, three wire formats.

A :class:`MetricsRegistry` unifies everything a run can report — final
:class:`~repro.sim.stats.NetworkStats` counters, windowed time-series
fields, per-router spatial slices and health status — behind named,
labelled :class:`Sample` records.  :func:`registry_from_result` builds one
from a finished :class:`~repro.harness.runner.RunResult`; three exporters
render it:

- :func:`to_jsonl` — one JSON object per sample per line (greppable,
  ``tail``-able, trivially ingested);
- :func:`to_csv` — flat ``series,cycle,value,labels`` rows for
  spreadsheets and pandas;
- :func:`to_prometheus` — Prometheus text exposition format (latest
  sample per series+labels as a gauge), so a node exporter can scrape a
  run directory.

:class:`JsonlStreamWriter` is the *live* half: subscribed to a
:class:`~repro.obs.timeseries.MetricsWatcher` and a
:class:`~repro.obs.health.HealthMonitor`, it appends one line per closed
window and per health finding as they happen (flushing each line), so
``tail -f`` follows a run in progress.  Enable it with
``ObsConfig(stream_path=...)``.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Iterable

from repro.obs.health import HealthFinding, HealthReport
from repro.obs.timeseries import TimeSeries, Window, _WINDOW_COUNTERS

#: Numeric encoding of health status for the ``health.level`` series.
HEALTH_LEVELS = {"ok": 0, "warn": 1, "critical": 2}


@dataclass(frozen=True)
class Sample:
    """One named, labelled measurement at a cycle."""

    series: str
    cycle: int
    value: float
    labels: tuple[tuple[str, str], ...] = ()

    @property
    def label_dict(self) -> dict[str, str]:
        return dict(self.labels)


class MetricsRegistry:
    """An append-only, ordered collection of :class:`Sample` records."""

    def __init__(self) -> None:
        self._samples: list[Sample] = []

    def add(
        self, series: str, cycle: int, value: float, **labels: Any
    ) -> None:
        self._samples.append(
            Sample(
                series=series,
                cycle=int(cycle),
                value=value,
                labels=tuple(sorted((k, str(v)) for k, v in labels.items())),
            )
        )

    @property
    def samples(self) -> tuple[Sample, ...]:
        return tuple(self._samples)

    @property
    def series(self) -> tuple[str, ...]:
        """Distinct series names, in first-seen order."""
        seen: dict[str, None] = {}
        for sample in self._samples:
            seen.setdefault(sample.series, None)
        return tuple(seen)

    def latest(self) -> list[Sample]:
        """The last sample of every (series, labels) combination."""
        last: dict[tuple[str, tuple[tuple[str, str], ...]], Sample] = {}
        for sample in self._samples:
            last[(sample.series, sample.labels)] = sample
        return list(last.values())


def registry_from_result(result: Any) -> MetricsRegistry:
    """Flatten a finished run's telemetry into one registry.

    Final stats counters land as ``stats.*`` gauges at the final cycle;
    time-series windows as ``window.*`` samples at each window end;
    spatial slices as node-labelled ``spatial.*`` samples; the health
    verdict as ``health.level`` / ``health.findings``.  Legs the run did
    not collect are simply absent.
    """
    registry = MetricsRegistry()
    stats = result.stats
    final = stats.final_cycle
    for name, value in (
        ("stats.packets_generated", stats.packets_generated),
        ("stats.packets_injected", stats.packets_injected),
        ("stats.packets_delivered", stats.packets_delivered),
        ("stats.packets_dropped", stats.packets_dropped),
        ("stats.retransmissions", stats.retransmissions),
        ("stats.packets_lost", stats.packets_lost),
        ("stats.faults_injected", stats.faults_injected),
        ("stats.hops_traversed", stats.hops_traversed),
        ("stats.delivery_ratio", stats.delivery_ratio),
    ):
        registry.add(name, final, value)
    if stats.latency.mean.count:
        registry.add("stats.mean_latency_cycles", final, stats.latency.mean.mean)
    for category, picojoules in sorted(stats.energy_pj.items()):
        registry.add("stats.energy_pj", final, picojoules, category=category)
    timeseries: TimeSeries | None = getattr(result, "timeseries", None)
    if timeseries is not None:
        for window in timeseries.windows:
            _add_window(registry, window)
        spatial = timeseries.spatial
        if spatial is not None:
            for index, window in enumerate(timeseries.windows):
                for node in range(spatial.num_nodes):
                    registry.add(
                        "spatial.occupancy",
                        window.end,
                        spatial.occupancy[index][node],
                        node=node,
                    )
                    registry.add(
                        "spatial.drops", window.end, spatial.drops[index][node],
                        node=node,
                    )
                    registry.add(
                        "spatial.deliveries",
                        window.end,
                        spatial.deliveries[index][node],
                        node=node,
                    )
    health: HealthReport | None = getattr(result, "health", None)
    if health is not None:
        registry.add("health.level", final, HEALTH_LEVELS[health.status])
        registry.add(
            "health.findings", final, len(health.findings) + health.truncated
        )
    return registry


def registry_from_blame(report: Any, final_cycle: int = 0) -> MetricsRegistry:
    """Flatten a :class:`~repro.obs.analysis.BlameReport` into a registry.

    Blame cycles land as ``blame.component_cycles`` samples labelled by
    component, per-router attribution as node-labelled
    ``blame.router_cycles``, per-link transit as ``blame.link_cycles``,
    and the tail percentiles as ``blame.tail_latency`` labelled by
    percentile — scrape-able next to the run's ``stats.*``/``window.*``
    series through the same three exporters.
    """
    registry = MetricsRegistry()
    cycle = final_cycle or int(report.meta.get("cycles", 0))
    for name, value in (
        ("blame.packets", report.packets),
        ("blame.delivered", report.delivered),
        ("blame.lost", report.lost),
        ("blame.total_latency_cycles", report.total_latency),
    ):
        registry.add(name, cycle, value)
    for component, cycles in report.components.items():
        registry.add("blame.component_cycles", cycle, cycles, component=component)
    for node, entry in sorted(report.routers.items()):
        registry.add("blame.router_cycles", cycle, entry["total"], node=node)
    for (a, b), entry in sorted(report.links.items()):
        registry.add(
            "blame.link_cycles", cycle, entry["transit"], link=f"{a}->{b}"
        )
    for name in ("p50", "p95", "p99", "p999"):
        value = report.tail.get(name)
        if value is not None:
            registry.add("blame.tail_latency", cycle, value, percentile=name)
    return registry


def _add_window(registry: MetricsRegistry, window: Window) -> None:
    for counter in _WINDOW_COUNTERS:
        registry.add(f"window.{counter}", window.end, getattr(window, counter))
    registry.add("window.mean_occupancy", window.end, window.mean_occupancy)
    for suffix in ("p50", "p95", "p99", "p999"):
        value = getattr(window, f"latency_{suffix}")
        if value is not None:
            registry.add(f"window.latency_{suffix}", window.end, value)


# -- renderers ----------------------------------------------------------------


def to_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per sample per line."""
    lines = []
    for sample in registry.samples:
        payload: dict[str, Any] = {
            "series": sample.series,
            "cycle": sample.cycle,
            "value": sample.value,
        }
        if sample.labels:
            payload["labels"] = sample.label_dict
        lines.append(json.dumps(payload, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def to_csv(registry: MetricsRegistry) -> str:
    """Flat ``series,cycle,value,labels`` rows (labels as ``k=v;k=v``)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["series", "cycle", "value", "labels"])
    for sample in registry.samples:
        writer.writerow(
            [
                sample.series,
                sample.cycle,
                sample.value,
                ";".join(f"{k}={v}" for k, v in sample.labels),
            ]
        )
    return buffer.getvalue()


def to_prometheus(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Prometheus text exposition format: latest sample per series+labels.

    Series names are sanitised (``.`` → ``_``) and prefixed; every metric
    is exposed as a gauge with the sample cycle attached as a ``cycle``
    label rather than a timestamp (simulated cycles are not wall time).
    """
    by_metric: dict[str, list[Sample]] = {}
    for sample in registry.latest():
        by_metric.setdefault(sample.series, []).append(sample)
    lines: list[str] = []
    for series in registry.series:
        if series not in by_metric:
            continue
        metric = f"{prefix}_{series.replace('.', '_')}"
        lines.append(f"# TYPE {metric} gauge")
        for sample in by_metric.pop(series):
            labels = dict(sample.labels)
            labels["cycle"] = str(sample.cycle)
            rendered = ",".join(
                f'{key}="{value}"' for key, value in sorted(labels.items())
            )
            lines.append(f"{metric}{{{rendered}}} {_format_value(sample.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


_RENDERERS = {
    "jsonl": to_jsonl,
    "csv": to_csv,
    "prom": to_prometheus,
}


def write_registry(
    path: str | Path, registry: MetricsRegistry, fmt: str | None = None
) -> Path:
    """Render a registry to ``path``; format inferred from the suffix.

    ``.jsonl`` → JSONL, ``.csv`` → CSV, ``.prom``/``.txt`` → Prometheus
    text format; pass ``fmt`` explicitly to override.
    """
    path = Path(path)
    if fmt is None:
        suffix = path.suffix.lstrip(".").lower()
        fmt = {"txt": "prom"}.get(suffix, suffix)
    renderer = _RENDERERS.get(fmt or "")
    if renderer is None:
        raise ValueError(
            f"unknown export format {fmt!r}; expected one of {sorted(_RENDERERS)}"
        )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(renderer(registry))
    return path


# -- live streaming -----------------------------------------------------------


class JsonlStreamWriter:
    """Append window/health records to a JSONL file *during* the run.

    Each record carries an ``event`` discriminator: ``window`` (one closed
    metrics window, with an optional per-node spatial slice), ``health``
    (one watchdog finding) and a final ``end`` summary.  Lines are flushed
    as written, so ``tail -f`` (or any log shipper) follows the run live —
    this is the on-ramp for the campaign-service streaming described in
    the roadmap.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: IO[str] | None = self.path.open("w")

    def on_window(
        self, window: Window, spatial_slice: dict[str, Any] | None = None
    ) -> None:
        """MetricsWatcher listener: one closed window."""
        payload: dict[str, Any] = {
            "event": "window",
            "start": window.start,
            "end": window.end,
            "generated": window.generated,
            "injected": window.injected,
            "delivered": window.delivered,
            "dropped": window.dropped,
            "retransmitted": window.retransmitted,
            "mean_occupancy": window.mean_occupancy,
            "latency_p50": window.latency_p50,
            "latency_p95": window.latency_p95,
            "latency_p99": window.latency_p99,
            "latency_p999": window.latency_p999,
            "faulted": window.faulted,
            "lost": window.lost,
        }
        if spatial_slice is not None:
            payload["spatial"] = spatial_slice
        self._write(payload)

    def on_finding(self, finding: HealthFinding) -> None:
        """HealthMonitor listener: one watchdog finding."""
        payload = {"event": "health"}
        payload.update(finding.to_dict())
        self._write(payload)

    def close(self, summary: dict[str, Any] | None = None) -> None:
        """Write the final ``end`` record and close the file."""
        if self._handle is None:
            return
        payload: dict[str, Any] = {"event": "end"}
        if summary:
            payload.update(summary)
        self._write(payload)
        self._handle.close()
        self._handle = None

    def _write(self, payload: dict[str, Any]) -> None:
        if self._handle is None:  # pragma: no cover - defensive
            return
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()


def read_stream(path: str | Path) -> list[dict[str, Any]]:
    """Parse a stream file back into its records (tests, tooling)."""
    records = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            records.append(json.loads(line))
    return records


def iter_stream_events(
    records: Iterable[dict[str, Any]], event: str
) -> list[dict[str, Any]]:
    return [record for record in records if record.get("event") == event]
