"""Opt-in per-component wall-time accounting for the simulation engine.

When :attr:`repro.sim.engine.SimulationEngine.profiler` is set, the engine
times every component's ``step`` and ``commit`` call and feeds the
durations here.  The summary is observability, not physics: it rides on
the campaign manifest (next to wall times), never on the result report.
"""

from __future__ import annotations

from typing import Any


class EngineProfiler:
    """Accumulates step/commit wall time per component type."""

    def __init__(self) -> None:
        #: name -> {"step_s", "commit_s", "step_calls", "commit_calls"}
        self._components: dict[str, dict[str, float]] = {}
        self.cycles = 0

    def account(self, component: Any, phase: str, seconds: float) -> None:
        """Record one timed ``step`` or ``commit`` call.

        Both phases count: a commit-only component (one that accumulates
        ``commit_s`` without ever stepping) must not report zero calls.
        """
        name = type(component).__name__
        entry = self._components.setdefault(
            name,
            {"step_s": 0.0, "commit_s": 0.0, "step_calls": 0, "commit_calls": 0},
        )
        entry[f"{phase}_s"] += seconds
        entry[f"{phase}_calls"] += 1

    def tick(self) -> None:
        """Count one engine cycle (called by the engine per profiled tick)."""
        self.cycles += 1

    @property
    def total_s(self) -> float:
        return sum(
            entry["step_s"] + entry["commit_s"]
            for entry in self._components.values()
        )

    def summary(self) -> dict[str, Any]:
        """JSON-friendly per-component totals with time shares.

        ``calls`` is the total of both phases; the per-phase counts are
        reported separately so a commit-heavy component is attributable.
        """
        total = self.total_s
        components = {}
        for name, entry in sorted(self._components.items()):
            spent = entry["step_s"] + entry["commit_s"]
            step_calls = int(entry["step_calls"])
            commit_calls = int(entry["commit_calls"])
            components[name] = {
                "step_s": entry["step_s"],
                "commit_s": entry["commit_s"],
                "step_calls": step_calls,
                "commit_calls": commit_calls,
                "calls": step_calls + commit_calls,
                "share": (spent / total) if total > 0 else 0.0,
            }
        return {
            "cycles": self.cycles,
            "total_s": total,
            "components": components,
        }
