"""Command-line interface: ``python -m repro <command>``.

Exposes the experiment harness without writing any Python:

- ``repro tables`` — print Tables 1-4;
- ``repro figure fig06`` — regenerate one figure (fig04..fig11);
- ``repro sweep --pattern transpose`` — a Fig 9-style latency sweep;
- ``repro trace generate ocean --out ocean.trace`` — write a SPLASH2 trace;
- ``repro trace info ocean.trace`` — summarise a trace file;
- ``repro run --config Optical4 --trace ocean.trace`` — replay a trace;
- ``repro campaign`` — the full Fig 10/11 SPLASH2 campaign.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.harness.experiments import (
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    tables,
)
from repro.harness.experiments.configs import standard_configs
from repro.harness.experiments.splash2_runs import compute_matrix
from repro.harness.runner import run_trace
from repro.harness.sweeps import latency_vs_injection
from repro.traffic.patterns import PATTERNS
from repro.traffic.splash2 import SPLASH2_PROFILES, generate_splash2_trace
from repro.traffic.trace import Trace
from repro.util.tables import AsciiTable

_ANALYTIC_FIGURES = {
    "fig04": fig04,
    "fig05": fig05,
    "fig06": fig06,
    "fig07": fig07,
    "fig08": fig08,
}


def _cmd_tables(args: argparse.Namespace) -> int:
    print(tables.render_all())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    name = args.name
    if name in _ANALYTIC_FIGURES:
        module = _ANALYTIC_FIGURES[name]
        print(module.render(module.compute()))
        return 0
    if name == "fig09":
        data = fig09.compute(cycles=args.cycles)
        print(fig09.render(data))
        return 0
    if name in ("fig10", "fig11"):
        matrix = compute_matrix(duration_cycles=args.cycles)
        if name == "fig10":
            print(fig10.render(fig10.from_matrix(matrix)))
        else:
            print(fig11.render(fig11.from_matrix(matrix)))
        return 0
    print(f"unknown figure {name!r}", file=sys.stderr)
    return 2


def _cmd_sweep(args: argparse.Namespace) -> int:
    configs = standard_configs()
    if args.config not in configs:
        print(
            f"unknown config {args.config!r}; choose from {sorted(configs)}",
            file=sys.stderr,
        )
        return 2
    rates = [float(r) for r in args.rates.split(",")]
    points = latency_vs_injection(
        configs[args.config], args.pattern, rates, cycles=args.cycles
    )
    table = AsciiTable(
        ["rate", "mean latency", "throughput", "delivered"],
        title=f"{args.config} / {args.pattern}",
    )
    for point in points:
        table.add_row(
            [
                point.rate,
                "sat" if point.saturated else f"{point.mean_latency:.2f}",
                f"{point.throughput:.3f}",
                point.delivered,
            ]
        )
    print(table.render())
    return 0


def _cmd_trace_generate(args: argparse.Namespace) -> int:
    trace = generate_splash2_trace(
        args.benchmark, seed=args.seed, duration_cycles=args.cycles
    )
    trace.save(args.out)
    print(
        f"wrote {len(trace)} events ({trace.broadcast_count} broadcasts, "
        f"offered load {trace.offered_load():.3f}) to {args.out}"
    )
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    trace = Trace.load(args.file)
    table = AsciiTable(["property", "value"], title=f"Trace {trace.name}")
    table.add_row(["nodes", trace.num_nodes])
    table.add_row(["events", len(trace)])
    table.add_row(["broadcasts", trace.broadcast_count])
    table.add_row(["span (cycles)", trace.last_cycle + 1])
    table.add_row(["offered load (pkts/node/cycle)", f"{trace.offered_load():.4f}"])
    print(table.render())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    configs = standard_configs()
    if args.config not in configs:
        print(
            f"unknown config {args.config!r}; choose from {sorted(configs)}",
            file=sys.stderr,
        )
        return 2
    trace = Trace.load(args.trace)
    result = run_trace(configs[args.config], trace)
    table = AsciiTable(
        ["metric", "value"], title=f"{result.label} on {trace.name}"
    )
    for key, value in result.summary().items():
        table.add_row([key, f"{value:.3f}" if isinstance(value, float) else value])
    table.add_row(["power_w", f"{result.power_w:.3f}"])
    table.add_row(["cycles", result.cycles])
    print(table.render())
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    matrix = compute_matrix(duration_cycles=args.cycles, seed=args.seed)
    print(fig10.render(fig10.from_matrix(matrix)))
    print()
    print(fig11.render(fig11.from_matrix(matrix)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Phastlane (ISCA 2009) reproduction harness"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables 1-4").set_defaults(func=_cmd_tables)

    figure = sub.add_parser("figure", help="regenerate one figure")
    figure.add_argument("name", choices=sorted(_ANALYTIC_FIGURES) + ["fig09", "fig10", "fig11"])
    figure.add_argument("--cycles", type=int, default=1500)
    figure.set_defaults(func=_cmd_figure)

    sweep = sub.add_parser("sweep", help="latency vs injection-rate sweep")
    sweep.add_argument("--config", default="Optical4")
    sweep.add_argument("--pattern", default="uniform", choices=sorted(PATTERNS))
    sweep.add_argument("--rates", default="0.02,0.05,0.1,0.2,0.3,0.4,0.5")
    sweep.add_argument("--cycles", type=int, default=900)
    sweep.set_defaults(func=_cmd_sweep)

    trace = sub.add_parser("trace", help="generate or inspect trace files")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    generate = trace_sub.add_parser("generate", help="write a SPLASH2-like trace")
    generate.add_argument("benchmark", choices=sorted(SPLASH2_PROFILES))
    generate.add_argument("--out", required=True)
    generate.add_argument("--cycles", type=int, default=1500)
    generate.add_argument("--seed", type=int, default=1)
    generate.set_defaults(func=_cmd_trace_generate)
    info = trace_sub.add_parser("info", help="summarise a trace file")
    info.add_argument("file")
    info.set_defaults(func=_cmd_trace_info)

    run = sub.add_parser("run", help="replay a trace through one configuration")
    run.add_argument("--config", default="Optical4")
    run.add_argument("--trace", required=True)
    run.set_defaults(func=_cmd_run)

    campaign = sub.add_parser("campaign", help="full Fig 10/11 SPLASH2 campaign")
    campaign.add_argument("--cycles", type=int, default=1500)
    campaign.add_argument("--seed", type=int, default=1)
    campaign.set_defaults(func=_cmd_campaign)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
