"""Command-line interface: ``python -m repro <command>``.

Exposes the experiment harness without writing any Python:

- ``repro tables`` — print Tables 1-4;
- ``repro figure fig06`` — regenerate one figure (fig04..fig11);
- ``repro sweep --pattern transpose`` — a Fig 9-style latency sweep;
- ``repro trace generate ocean --out ocean.trace`` — write a SPLASH2 trace;
- ``repro trace info ocean.trace`` — summarise a trace file;
- ``repro run --config Optical4 --trace ocean.trace`` — replay a trace;
- ``repro fault-sweep --link-flip-prob 0.01`` — a degradation curve;
- ``repro campaign`` — the full Fig 10/11 SPLASH2 campaign;
- ``repro bench`` — the pinned performance matrix: writes a
  schema-versioned ``BENCH.json`` (wall seconds, cycles/sec, flits/sec,
  per-component time shares, top-N hot functions per entry) and, with
  ``--compare BASELINE``, exits non-zero when any entry's wall time
  regresses past the threshold (default +25%; ``--warn-only`` downgrades
  the gate to a warning).

``sweep``, ``run`` and ``fault-sweep`` also accept the fault-injection
flags (``--fault-seed``, ``--fault-model``, ``--link-flip-prob``,
``--dead-ports``, ``--retry-limit``); a fault config is part of run-spec
identity, so faulted runs never collide with fault-free cache entries.

Simulation commands (``figure fig09..fig11``, ``sweep``, ``run``,
``campaign``) share the campaign-executor flags: ``--workers N`` fans the
runs across a process pool, results are cached under ``.repro-cache/``
(disable with ``--no-cache``, relocate with ``--cache-dir``), an ASCII
progress line tracks the campaign on stderr, and ``--report``/``--manifest``
write the deterministic results and the observability manifest as JSON.
They also accept the runtime-health flags (``--health``,
``--health-interval``, ``--stall-windows``), ``--stream-out`` for live
JSONL window/finding streaming, and ``--live`` for the in-terminal
campaign dashboard; ``repro campaign --html PATH`` additionally writes a
self-contained HTML report of the finished campaign.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence, TextIO

from repro.fabric import FabricError
from repro.faults import FaultConfig
from repro.harness.exec import (
    Executor,
    ResultCache,
    RunEvent,
    RunSpec,
    TraceFileWorkload,
)
from repro.harness.experiments import (
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    tables,
)
from repro.harness.experiments.configs import cli_configs
from repro.harness.experiments.splash2_runs import compute_matrix
from repro.harness.report import (
    manifest_to_dict,
    point_to_dict,
    result_to_dict,
    write_report,
)
from repro.harness.htmlreport import write_campaign_html
from repro.harness.sweeps import latency_vs_injection, throughput_vs_fault_rate
from repro.obs import (
    LiveDashboard,
    ObsConfig,
    analyze_trace_file,
    diff_reports,
    render_diff_markdown,
    render_markdown,
)
from repro.perf import (
    DEFAULT_BENCH_PATH,
    DEFAULT_REPEATS,
    bench_report,
    compare,
    default_matrix,
    format_bench_markdown,
    format_bench_table,
    format_compare,
    format_compare_markdown,
    format_component_shares,
    format_hot_functions,
    format_hot_functions_markdown,
    load_bench,
    run_matrix,
    write_bench,
)
from repro.topology import registered_topologies
from repro.traffic.patterns import PATTERNS
from repro.traffic.splash2 import SPLASH2_PROFILES, generate_splash2_trace
from repro.traffic.trace import Trace
from repro.util.geometry import Direction
from repro.util.tables import AsciiTable

_ANALYTIC_FIGURES = {
    "fig04": fig04,
    "fig05": fig05,
    "fig06": fig06,
    "fig07": fig07,
    "fig08": fig08,
}


def _ascii_progress(stream: TextIO):
    """Progress callback: an in-place line on a TTY, one line per run otherwise."""
    done = {"runs": 0, "hits": 0}

    def callback(event: RunEvent) -> None:
        done["runs"] += 1
        done["hits"] += event.cache_hit
        status = "cache" if event.cache_hit else f"{event.wall_time_s:.2f}s"
        line = (
            f"[{done['runs']}/{event.total}] {event.spec.label} "
            f"{event.spec.workload_name} ({status}, {done['hits']} cached)"
        )
        if stream.isatty():
            stream.write("\r" + line.ljust(78))
            if done["runs"] == event.total:
                stream.write("\n")
        else:
            stream.write(line + "\n")
        stream.flush()

    return callback


# Derived from the canonical Direction enum rather than hard-coded, so the
# accepted letters track the geometry layer (N/E/S/W -> 0-3).
_PORT_LETTERS = {
    d.name[0]: int(d) for d in Direction if d is not Direction.LOCAL
}


def _dead_ports(text: str) -> tuple[tuple[int, int], ...]:
    """Parse ``--dead-ports``: comma-separated ``node:port`` pairs.

    The port is a mesh direction — ``N``/``E``/``S``/``W`` or the matching
    integer 0-3 — e.g. ``--dead-ports 5:E,10:N``.
    """
    ports = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        node_text, sep, port_text = item.partition(":")
        if not sep:
            raise argparse.ArgumentTypeError(
                f"invalid dead port {item!r}; expected node:port (e.g. 5:E)"
            )
        try:
            node = int(node_text)
        except ValueError:
            raise argparse.ArgumentTypeError(f"invalid node {node_text!r}")
        port_text = port_text.strip().upper()
        if port_text in _PORT_LETTERS:
            port = _PORT_LETTERS[port_text]
        else:
            try:
                port = int(port_text)
            except ValueError:
                raise argparse.ArgumentTypeError(
                    f"invalid port {port_text!r}; expected N/E/S/W or 0-3"
                )
        ports.append((node, port))
    return tuple(ports)


def _faults_from_args(args: argparse.Namespace) -> FaultConfig | None:
    """Build the fault config from the shared CLI flags (None if disabled)."""
    if args.fault_model == "burst":
        enter, flip = args.link_flip_prob, 0.0
    else:
        enter, flip = 0.0, args.link_flip_prob
    try:
        faults = FaultConfig(
            seed=args.fault_seed,
            dead_ports=args.dead_ports,
            link_flip_prob=flip,
            burst_enter_prob=enter,
            retry_limit=args.retry_limit,
        )
    except ValueError as exc:
        raise SystemExit(f"repro: invalid fault config: {exc}")
    return faults if faults.enabled else None


def _obs_from_args(args: argparse.Namespace) -> ObsConfig | None:
    """Build the observability config from the shared CLI flags."""
    try:
        obs = ObsConfig(
            trace_path=args.trace_out,
            trace_sample=args.trace_sample,
            metrics_interval=args.metrics_interval,
            spatial=args.spatial_metrics,
            profile=args.profile,
            health=args.health,
            health_interval=args.health_interval,
            health_stall_windows=args.stall_windows,
            stream_path=args.stream_out,
        )
    except ValueError as exc:
        raise SystemExit(f"repro: invalid observability config: {exc}")
    return obs if obs.enabled else None


def _executor_from_args(args: argparse.Namespace) -> Executor:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    kwargs: dict = {
        "workers": args.workers,
        "cache": cache,
        "progress": _ascii_progress(sys.stderr),
        "obs": _obs_from_args(args),
    }
    if getattr(args, "live", False):
        # The dashboard replaces the plain progress line entirely — it
        # prints its own per-completion lines off-TTY.
        dashboard = LiveDashboard()
        kwargs["progress"] = dashboard.on_event
        kwargs["live"] = dashboard.on_progress
        args._dashboard = dashboard
    return Executor(**kwargs)


def _finish_campaign(executor: Executor, args: argparse.Namespace) -> None:
    """Summarise the executor's event log; write the manifest if asked."""
    dashboard = getattr(args, "_dashboard", None)
    if dashboard is not None:
        dashboard.close()
    manifest = manifest_to_dict(executor.events)
    print(
        f"campaign: {manifest['runs']} runs, {manifest['cache_hits']} cache "
        f"hits, {manifest['total_wall_time_s']:.2f}s simulated wall time",
        file=sys.stderr,
    )
    if getattr(args, "manifest", None):
        path = write_report(args.manifest, manifest)
        print(f"wrote manifest to {path}", file=sys.stderr)
    if getattr(args, "html", None):
        path = write_campaign_html(args.html, executor.events)
        print(f"wrote HTML campaign report to {path}", file=sys.stderr)
    if getattr(args, "trace_out", None):
        print(f"wrote packet trace(s) to {args.trace_out}", file=sys.stderr)
    if getattr(args, "stream_out", None):
        print(f"streamed metrics to {args.stream_out}", file=sys.stderr)


def _cmd_tables(args: argparse.Namespace) -> int:
    print(tables.render_all())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    name = args.name
    if name in _ANALYTIC_FIGURES:
        module = _ANALYTIC_FIGURES[name]
        print(module.render(module.compute()))
        return 0
    executor = _executor_from_args(args)
    if name == "fig09":
        data = fig09.compute(cycles=args.cycles, executor=executor)
        print(fig09.render(data))
    elif name in ("fig10", "fig11"):
        matrix = compute_matrix(duration_cycles=args.cycles, executor=executor)
        if name == "fig10":
            print(fig10.render(fig10.from_matrix(matrix)))
        else:
            print(fig11.render(fig11.from_matrix(matrix)))
    else:
        print(f"unknown figure {name!r}", file=sys.stderr)
        return 2
    _finish_campaign(executor, args)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    configs = cli_configs(topology=args.topology)
    if args.config not in configs:
        print(
            f"unknown config {args.config!r}; choose from {sorted(configs)}",
            file=sys.stderr,
        )
        return 2
    try:
        rates = [float(r) for r in args.rates.split(",")]
    except ValueError:
        print(
            f"invalid --rates {args.rates!r}; expected comma-separated floats",
            file=sys.stderr,
        )
        return 2
    executor = _executor_from_args(args)
    faults = _faults_from_args(args)
    points = latency_vs_injection(
        configs[args.config],
        args.pattern,
        rates,
        cycles=args.cycles,
        seed=args.seed,
        executor=executor,
        faults=faults,
    )
    table = AsciiTable(
        ["rate", "mean latency", "throughput", "delivered"],
        title=f"{args.config} / {args.pattern}",
    )
    for point in points:
        table.add_row(
            [
                point.rate,
                "sat" if point.saturated else f"{point.mean_latency:.2f}",
                f"{point.throughput:.3f}",
                point.delivered,
            ]
        )
    print(table.render())
    if args.report:
        payload = {
            "kind": "sweep",
            "config": args.config,
            "pattern": args.pattern,
            "cycles": args.cycles,
            "seed": args.seed,
            "rates": rates,
            "points": [point_to_dict(point) for point in points],
        }
        if faults is not None:
            payload["faults"] = faults.to_dict()
        path = write_report(args.report, payload)
        print(f"wrote report to {path}", file=sys.stderr)
    _finish_campaign(executor, args)
    return 0


def _cmd_trace_generate(args: argparse.Namespace) -> int:
    trace = generate_splash2_trace(
        args.benchmark, seed=args.seed, duration_cycles=args.cycles
    )
    trace.save(args.out)
    print(
        f"wrote {len(trace)} events ({trace.broadcast_count} broadcasts, "
        f"offered load {trace.offered_load():.3f}) to {args.out}"
    )
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    trace = Trace.load(args.file)
    table = AsciiTable(["property", "value"], title=f"Trace {trace.name}")
    table.add_row(["nodes", trace.num_nodes])
    table.add_row(["events", len(trace)])
    table.add_row(["broadcasts", trace.broadcast_count])
    table.add_row(["span (cycles)", trace.last_cycle + 1])
    table.add_row(["offered load (pkts/node/cycle)", f"{trace.offered_load():.4f}"])
    print(table.render())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    configs = cli_configs(topology=args.topology)
    if args.config not in configs:
        print(
            f"unknown config {args.config!r}; choose from {sorted(configs)}",
            file=sys.stderr,
        )
        return 2
    spec = RunSpec(
        config=configs[args.config],
        workload=TraceFileWorkload(args.trace),
        faults=_faults_from_args(args),
    )
    executor = _executor_from_args(args)
    result = executor.map([spec])[0]
    table = AsciiTable(
        ["metric", "value"], title=f"{result.label} on {spec.workload_name}"
    )
    for key, value in result.summary().items():
        table.add_row([key, f"{value:.3f}" if isinstance(value, float) else value])
    if result.stats.faults_injected or result.stats.packets_lost:
        table.add_row(["faults_injected", result.stats.faults_injected])
        table.add_row(["faults_masked", result.stats.faults_masked])
        table.add_row(["packets_lost", result.stats.packets_lost])
    table.add_row(["power_w", f"{result.power_w:.3f}"])
    table.add_row(["cycles", result.cycles])
    table.add_row(["wall_time_s", f"{result.wall_time_s:.3f}"])
    table.add_row(["packets_per_second", f"{result.packets_per_second:.0f}"])
    print(table.render())
    if result.profile is not None:
        # --profile on a single run: surface the summary right here, not
        # only in the campaign manifest.
        print()
        print(format_component_shares(result.profile))
    _finish_campaign(executor, args)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    baseline = None
    if args.compare:
        try:
            baseline = load_bench(args.compare)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"repro: cannot load baseline {args.compare}: {exc}",
                  file=sys.stderr)
            return 2
    matrix = default_matrix(cycles=args.cycles, repeats=args.repeats)
    if args.only:
        matrix = [bench for bench in matrix if args.only in bench.name]
        if not matrix:
            print(f"repro: --only {args.only!r} matches no matrix entry",
                  file=sys.stderr)
            return 2

    def progress(index: int, total: int, result) -> None:
        print(
            f"[{index + 1}/{total}] {result.name}: {result.wall_s:.3f}s "
            f"({result.cycles_per_s:,.0f} cycles/s)",
            file=sys.stderr,
        )

    results = run_matrix(
        matrix, cprofile=not args.no_cprofile, top=args.top, progress=progress
    )
    payload = bench_report(results)
    path = write_bench(args.out, payload)
    markdown = args.format == "markdown"
    print(format_bench_markdown(results) if markdown else format_bench_table(results))
    if not args.no_cprofile and results:
        slowest = max(results, key=lambda result: result.wall_s)
        title = f"top hot functions of the slowest entry ({slowest.name})"
        print()
        if markdown:
            print(format_hot_functions_markdown(slowest.hot_functions, title=title))
        else:
            print(format_hot_functions(slowest.hot_functions, title=title))
    print(f"wrote {path}", file=sys.stderr)
    if baseline is not None:
        report = compare(payload, baseline, threshold=args.threshold / 100.0)
        print()
        print(format_compare_markdown(report) if markdown else format_compare(report))
        if not report.ok:
            if args.warn_only:
                print("repro bench: regression gate in warn-only mode",
                      file=sys.stderr)
            else:
                return 1
    return 0


def _cmd_fault_sweep(args: argparse.Namespace) -> int:
    configs = cli_configs(topology=args.topology)
    if args.config not in configs:
        print(
            f"unknown config {args.config!r}; choose from {sorted(configs)}",
            file=sys.stderr,
        )
        return 2
    try:
        fault_rates = [float(r) for r in args.fault_rates.split(",")]
    except ValueError:
        print(
            f"invalid --fault-rates {args.fault_rates!r}; expected "
            "comma-separated floats",
            file=sys.stderr,
        )
        return 2
    # The template carries every knob except the swept probability; sweep
    # it even when the base config would otherwise be disabled.
    template = _faults_from_args(args) or FaultConfig(
        seed=args.fault_seed, retry_limit=args.retry_limit
    )
    executor = _executor_from_args(args)
    points = throughput_vs_fault_rate(
        configs[args.config],
        args.pattern,
        args.rate,
        fault_rates,
        cycles=args.cycles,
        seed=args.seed,
        faults=template,
        executor=executor,
    )
    table = AsciiTable(
        ["fault rate", "throughput", "delivered", "lost", "faults", "mean latency"],
        title=f"{args.config} / {args.pattern}@{args.rate:g} degradation",
    )
    for point in points:
        latency = point.mean_latency
        table.add_row(
            [
                point.fault_rate,
                f"{point.throughput:.4f}",
                point.delivered,
                point.lost,
                point.faults_injected,
                "-" if latency == float("inf") else f"{latency:.2f}",
            ]
        )
    print(table.render())
    if args.report:
        payload = {
            "kind": "fault-sweep",
            "config": args.config,
            "pattern": args.pattern,
            "rate": args.rate,
            "cycles": args.cycles,
            "seed": args.seed,
            "fault_rates": fault_rates,
            "fault_template": template.to_dict(),
            "points": [point.to_dict() for point in points],
        }
        path = write_report(args.report, payload)
        print(f"wrote report to {path}", file=sys.stderr)
    _finish_campaign(executor, args)
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    executor = _executor_from_args(args)
    matrix = compute_matrix(
        duration_cycles=args.cycles, seed=args.seed, executor=executor
    )
    print(fig10.render(fig10.from_matrix(matrix)))
    print()
    print(fig11.render(fig11.from_matrix(matrix)))
    if args.report:
        payload = {
            "kind": "campaign",
            "cycles": args.cycles,
            "seed": args.seed,
            "results": {
                f"{benchmark}/{label}": result_to_dict(result)
                for (benchmark, label), result in matrix.results.items()
            },
        }
        path = write_report(args.report, payload)
        print(f"wrote report to {path}", file=sys.stderr)
    _finish_campaign(executor, args)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.diff and args.trace:
        print("repro: give either a trace or --diff A B, not both",
              file=sys.stderr)
        return 2
    if not args.diff and not args.trace:
        print("repro: need a trace file to analyze (or --diff A B)",
              file=sys.stderr)
        return 2
    try:
        if args.diff:
            first, second = (
                analyze_trace_file(
                    path, top=args.top, link_delay=args.link_delay
                )
                for path in args.diff
            )
            diff = diff_reports(first, second)
            if args.format == "json":
                print(json.dumps(diff, indent=2, sort_keys=True))
            else:
                print(render_diff_markdown(diff))
            if args.out:
                path = write_report(args.out, diff)
                print(f"wrote blame diff to {path}", file=sys.stderr)
            return 0
        report = analyze_trace_file(
            args.trace, top=args.top, link_delay=args.link_delay
        )
    except (OSError, ValueError) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(report.to_json(), end="")
    else:
        print(render_markdown(report, blame=args.blame, top=args.top))
    if args.out:
        path = write_report(args.out, report.to_dict())
        print(f"wrote blame report to {path}", file=sys.stderr)
    return 0


def _sample_rate(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid sample rate {text!r}")
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError("sample rate must be in [0, 1]")
    return value


def _worker_count(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid worker count {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError("need at least one worker")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Phastlane (ISCA 2009) reproduction harness"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    executor_flags = argparse.ArgumentParser(add_help=False)
    executor_flags.add_argument(
        "--workers", type=_worker_count, default=1,
        help="worker processes for campaign fan-out (default 1: in-process)",
    )
    executor_flags.add_argument(
        "--no-cache", action="store_true",
        help="always simulate; do not read or write the result cache",
    )
    executor_flags.add_argument(
        "--cache-dir", default=".repro-cache",
        help="result cache location (default .repro-cache)",
    )
    executor_flags.add_argument(
        "--trace-out", metavar="PATH",
        help="write a packet-lifecycle trace here (Chrome trace_event JSON, "
        "Perfetto-loadable; a .jsonl suffix selects JSONL); campaigns with "
        "several runs get per-run suffixed paths",
    )
    executor_flags.add_argument(
        "--trace-sample", type=_sample_rate, default=1.0, metavar="RATE",
        help="fraction of packet lifecycles to trace, in [0, 1] (default 1)",
    )
    executor_flags.add_argument(
        "--metrics-interval", type=int, metavar="CYCLES",
        help="collect windowed time-series metrics every CYCLES cycles "
        "(serialised into JSON reports)",
    )
    executor_flags.add_argument(
        "--spatial-metrics", action="store_true",
        help="extend the windowed metrics with per-router occupancy/drop/"
        "delivery series (requires --metrics-interval)",
    )
    executor_flags.add_argument(
        "--profile", action="store_true",
        help="account per-component step/commit wall time (summarised in "
        "the campaign manifest; `repro run` also prints it)",
    )
    executor_flags.add_argument(
        "--health", action="store_true",
        help="run the health watchdogs (flit conservation, credit leaks, "
        "stall/livelock detection) at metrics-window boundaries; the "
        "verdict lands in JSON reports and the campaign manifest",
    )
    executor_flags.add_argument(
        "--health-interval", type=int, metavar="CYCLES",
        help="health audit window (default: --metrics-interval, else 100); "
        "requires --health",
    )
    executor_flags.add_argument(
        "--stall-windows", type=int, default=5, metavar="N",
        help="flat windows of zero delivery progress before the livelock "
        "watchdog escalates to critical (default 5)",
    )
    executor_flags.add_argument(
        "--stream-out", metavar="PATH",
        help="stream per-window metrics and health findings to this JSONL "
        "file while the run executes (requires --metrics-interval); "
        "campaigns with several runs get per-run suffixed paths",
    )
    executor_flags.add_argument(
        "--live", action="store_true",
        help="render a live campaign dashboard on stderr (in-place panel "
        "on a TTY, one line per completed run otherwise)",
    )

    fault_flags = argparse.ArgumentParser(add_help=False)
    fault_flags.add_argument(
        "--fault-seed", type=int, default=0, metavar="SEED",
        help="root seed of the fault schedule (independent of traffic seed)",
    )
    fault_flags.add_argument(
        "--fault-model", choices=("bernoulli", "burst"), default="bernoulli",
        help="how --link-flip-prob is applied: independent per-crossing "
        "flips (bernoulli) or Gilbert-Elliott bursts entered at that "
        "probability (burst)",
    )
    fault_flags.add_argument(
        "--link-flip-prob", type=float, default=0.0, metavar="PROB",
        help="transient link-fault probability per crossing (default 0: off)",
    )
    fault_flags.add_argument(
        "--dead-ports", type=_dead_ports, default=(), metavar="LIST",
        help="permanently dead router ports as node:port pairs, "
        "comma-separated; ports are N/E/S/W or 0-3 (e.g. 5:E,10:N)",
    )
    fault_flags.add_argument(
        "--retry-limit", type=int, default=16, metavar="N",
        help="retransmissions before a faulted packet is abandoned (default 16)",
    )

    sub.add_parser("tables", help="print Tables 1-4").set_defaults(func=_cmd_tables)

    figure = sub.add_parser(
        "figure", help="regenerate one figure", parents=[executor_flags]
    )
    figure.add_argument("name", choices=sorted(_ANALYTIC_FIGURES) + ["fig09", "fig10", "fig11"])
    figure.add_argument("--cycles", type=int, default=1500)
    figure.add_argument("--manifest", help="write the campaign manifest JSON here")
    figure.set_defaults(func=_cmd_figure)

    sweep = sub.add_parser(
        "sweep",
        help="latency vs injection-rate sweep",
        parents=[executor_flags, fault_flags],
    )
    sweep.add_argument("--config", default="Optical4")
    sweep.add_argument(
        "--topology", default="mesh", choices=registered_topologies(),
        help="network topology to run the configs on (default mesh)",
    )
    sweep.add_argument("--pattern", default="uniform", choices=sorted(PATTERNS))
    sweep.add_argument("--rates", default="0.02,0.05,0.1,0.2,0.3,0.4,0.5")
    sweep.add_argument("--cycles", type=int, default=900)
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--report", help="write the sweep points as JSON here")
    sweep.add_argument("--manifest", help="write the campaign manifest JSON here")
    sweep.set_defaults(func=_cmd_sweep)

    trace = sub.add_parser("trace", help="generate or inspect trace files")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    generate = trace_sub.add_parser("generate", help="write a SPLASH2-like trace")
    generate.add_argument("benchmark", choices=sorted(SPLASH2_PROFILES))
    generate.add_argument("--out", required=True)
    generate.add_argument("--cycles", type=int, default=1500)
    generate.add_argument("--seed", type=int, default=1)
    generate.set_defaults(func=_cmd_trace_generate)
    info = trace_sub.add_parser("info", help="summarise a trace file")
    info.add_argument("file")
    info.set_defaults(func=_cmd_trace_info)

    run = sub.add_parser(
        "run",
        help="replay a trace through one configuration",
        parents=[executor_flags, fault_flags],
    )
    run.add_argument("--config", default="Optical4")
    run.add_argument(
        "--topology", default="mesh", choices=registered_topologies(),
        help="network topology to run the configs on (default mesh)",
    )
    run.add_argument("--trace", required=True)
    run.add_argument("--manifest", help="write the campaign manifest JSON here")
    run.set_defaults(func=_cmd_run)

    fault_sweep = sub.add_parser(
        "fault-sweep",
        help="throughput vs fault-rate degradation curve",
        parents=[executor_flags, fault_flags],
    )
    fault_sweep.add_argument("--config", default="Optical4")
    fault_sweep.add_argument(
        "--topology", default="mesh", choices=registered_topologies(),
        help="network topology to run the configs on (default mesh)",
    )
    fault_sweep.add_argument("--pattern", default="uniform", choices=sorted(PATTERNS))
    fault_sweep.add_argument(
        "--rate", type=float, default=0.05,
        help="fixed injection rate of the workload (default 0.05)",
    )
    fault_sweep.add_argument(
        "--fault-rates", default="0.0,0.001,0.005,0.01,0.05,0.1",
        help="comma-separated per-crossing fault probabilities to sweep",
    )
    fault_sweep.add_argument("--cycles", type=int, default=900)
    fault_sweep.add_argument("--seed", type=int, default=1)
    fault_sweep.add_argument("--report", help="write the curve points as JSON here")
    fault_sweep.add_argument("--manifest", help="write the campaign manifest JSON here")
    fault_sweep.set_defaults(func=_cmd_fault_sweep)

    bench = sub.add_parser(
        "bench",
        help="run the pinned performance matrix; write (and gate on) BENCH.json",
    )
    bench.add_argument(
        "--out", default=DEFAULT_BENCH_PATH,
        help=f"where to write the benchmark record (default {DEFAULT_BENCH_PATH})",
    )
    bench.add_argument(
        "--cycles", type=int, default=None,
        help="injection window per entry (default: REPRO_BENCH_CYCLES or 600)",
    )
    bench.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS,
        help=f"timed repeats per entry, best-of-k (default {DEFAULT_REPEATS})",
    )
    bench.add_argument(
        "--compare", metavar="BASELINE",
        help="diff against this committed BENCH.json and gate on regressions",
    )
    bench.add_argument(
        "--threshold", type=float, default=25.0, metavar="PCT",
        help="regression gate as percent wall-time increase (default 25)",
    )
    bench.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but exit zero (CI smoke mode)",
    )
    bench.add_argument(
        "--no-cprofile", action="store_true",
        help="skip the cProfile pass (no hot-function tables)",
    )
    bench.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="hot functions kept per entry (default 10)",
    )
    bench.add_argument(
        "--only", metavar="SUBSTR",
        help="run only matrix entries whose name contains SUBSTR",
    )
    bench.add_argument(
        "--format", choices=("ascii", "markdown"), default="ascii",
        help="table format: ascii for terminals, markdown for CI step "
        "summaries (default ascii)",
    )
    bench.set_defaults(func=_cmd_bench)

    campaign = sub.add_parser(
        "campaign", help="full Fig 10/11 SPLASH2 campaign", parents=[executor_flags]
    )
    campaign.add_argument("--cycles", type=int, default=1500)
    campaign.add_argument("--seed", type=int, default=1)
    campaign.add_argument("--report", help="write all run results as JSON here")
    campaign.add_argument("--manifest", help="write the campaign manifest JSON here")
    campaign.add_argument(
        "--html", metavar="PATH",
        help="write a self-contained HTML campaign report here (per-run "
        "timing, health badges, delivered-per-window sparklines)",
    )
    campaign.set_defaults(func=_cmd_campaign)

    analyze = sub.add_parser(
        "analyze",
        help="latency blame report from a JSONL packet trace",
        description=(
            "Reconstruct per-packet spans from a JSONL trace (written with "
            "--trace-out ....jsonl on any simulation command) and report "
            "where the delivered cycles went: source queueing, per-router "
            "contention, link transit, retransmit backoff."
        ),
    )
    analyze.add_argument("trace", nargs="?", help="JSONL trace file")
    analyze.add_argument(
        "--diff", nargs=2, metavar=("A", "B"),
        help="compare two traces: blame deltas keyed by RunSpec digest",
    )
    analyze.add_argument(
        "--top", type=int, default=5,
        help="slowest-packet anatomies / table rows to show (default 5)",
    )
    analyze.add_argument(
        "--blame", default="routers", choices=("routers", "links", "causes"),
        help="which attribution table to render (default routers)",
    )
    analyze.add_argument(
        "--format", default="markdown", choices=("markdown", "json"),
    )
    analyze.add_argument(
        "--out", help="also write the JSON blame report (or diff) here"
    )
    analyze.add_argument(
        "--link-delay", type=int, default=None,
        help="per-hop transit cycles (default: the trace header's value)",
    )
    analyze.set_defaults(func=_cmd_analyze)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except FabricError as exc:
        # Honest refusals (e.g. a cycle-accurate backend asked to run on a
        # non-grid topology) print as one-line errors, not tracebacks.
        print(f"repro: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
