"""Cycle-driven simulation kernel: clocked components, stats, deterministic RNG."""

from repro.sim.engine import Clocked, SimulationEngine
from repro.sim.probes import MeshProbe, attach_phastlane_probe, attach_probe
from repro.sim.rng import DeterministicRng
from repro.sim.stats import (
    Histogram,
    LatencyStats,
    NetworkStats,
    RunningMean,
    SaturationError,
)

__all__ = [
    "Clocked",
    "DeterministicRng",
    "Histogram",
    "LatencyStats",
    "MeshProbe",
    "NetworkStats",
    "RunningMean",
    "SaturationError",
    "SimulationEngine",
    "attach_phastlane_probe",
    "attach_probe",
]
