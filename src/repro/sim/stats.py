"""Statistics collection for network simulations.

:class:`NetworkStats` is the shared ledger both simulators write into: packet
injections, deliveries, drops, retransmissions, hop counts and per-class
energy.  Latency is measured from packet *generation* (entry into the NIC
queue) to delivery at the destination node, matching the paper's "average
packet latency".
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field


class SaturationError(RuntimeError):
    """Raised by sweep drivers when a network fails to reach steady state."""


class RunningMean:
    """Numerically stable streaming mean/max/min/count."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.mean += (value - self.mean) / self.count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def total(self) -> float:
        return self.mean * self.count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunningMean):
            return NotImplemented
        return (self.count, self.mean, self.min, self.max) == (
            other.count,
            other.mean,
            other.min,
            other.max,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunningMean(count={self.count}, mean={self.mean:.3f})"


class Histogram:
    """Integer-bucketed histogram (used for latency distributions)."""

    def __init__(self) -> None:
        self._buckets: Counter[int] = Counter()
        self.count = 0

    def add(self, value: float) -> None:
        self._buckets[int(value)] += 1
        self.count += 1

    def percentile(self, p: float) -> int:
        """The ``p``-th percentile (0 < p <= 100) of the recorded values."""
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if self.count == 0:
            raise ValueError("empty histogram has no percentiles")
        target = max(1, int(round(self.count * p / 100.0)))
        running = 0
        for bucket in sorted(self._buckets):
            running += self._buckets[bucket]
            if running >= target:
                return bucket
        return max(self._buckets)  # pragma: no cover - defensive

    def items(self) -> list[tuple[int, int]]:
        return sorted(self._buckets.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self.count == other.count and self._buckets == other._buckets


@dataclass
class LatencyStats:
    """Latency summary over delivered packets."""

    mean: RunningMean = field(default_factory=RunningMean)
    histogram: Histogram = field(default_factory=Histogram)

    def record(self, latency_cycles: float) -> None:
        if latency_cycles < 0:
            raise ValueError(f"negative latency {latency_cycles}")
        self.mean.add(latency_cycles)
        self.histogram.add(latency_cycles)


@dataclass
class NetworkStats:
    """Ledger of everything a network run records.

    Energy counters are in picojoules; callers convert to average power by
    dividing by simulated time.  ``measurement_start`` supports warm-up:
    packets generated before that cycle are counted for throughput but not
    latency.
    """

    measurement_start: int = 0
    packets_generated: int = 0
    packets_injected: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0
    retransmissions: int = 0
    multicast_packets: int = 0
    hops_traversed: int = 0
    faults_injected: int = 0
    faults_masked: int = 0
    packets_lost: int = 0
    delivered_despite_faults: int = 0
    fault_kinds: Counter = field(default_factory=Counter)
    buffer_occupancy_samples: RunningMean = field(default_factory=RunningMean)
    latency: LatencyStats = field(default_factory=LatencyStats)
    energy_pj: Counter = field(default_factory=Counter)
    final_cycle: int = 0

    def record_generated(self, cycle: int, *, multicast: bool = False) -> None:
        self.packets_generated += 1
        if multicast:
            self.multicast_packets += 1

    def record_injected(self, cycle: int) -> None:
        self.packets_injected += 1

    def record_delivered(self, generated_cycle: int, delivered_cycle: int) -> None:
        """Record a delivery; latency counts the delivery cycle itself.

        A packet generated and delivered within the same cycle has latency 1
        (the light still spent that cycle in flight), keeping the optical
        and electrical latency definitions comparable.
        """
        if delivered_cycle < generated_cycle:
            raise ValueError("delivery before generation")
        self.packets_delivered += 1
        if generated_cycle >= self.measurement_start:
            self.latency.record(delivered_cycle - generated_cycle + 1)

    def record_dropped(self) -> None:
        self.packets_dropped += 1

    def record_retransmission(self) -> None:
        self.retransmissions += 1

    def record_fault(self, kind: str) -> None:
        """An injected fault hit a crossing or NIC (see ``FAULT_KINDS``)."""
        self.faults_injected += 1
        self.fault_kinds[kind] += 1

    def record_fault_masked(self, count: int = 1) -> None:
        """Recovery machinery (backoff resend / link retry) absorbed a fault."""
        self.faults_masked += count

    def record_fault_loss(self, count: int = 1) -> None:
        """A packet exhausted its retry budget and is gone for good."""
        self.packets_lost += count

    def record_fault_survivor(self, count: int = 1) -> None:
        """A delivered packet that was hit by at least one fault en route."""
        self.delivered_despite_faults += count

    def record_hops(self, hops: int) -> None:
        self.hops_traversed += hops

    def add_energy(self, category: str, picojoules: float) -> None:
        if picojoules < 0:
            raise ValueError(f"negative energy for {category}")
        self.energy_pj[category] += picojoules

    @property
    def flits_processed(self) -> int:
        """Total flit events the simulators handled, as a work measure.

        Both networks carry single-flit packets (an 80-byte cache line per
        flit), so the simulator's flit workload is every injection plus
        every router-to-router hop.  ``repro.perf`` divides this by wall
        time to report flits/sec.
        """
        return self.packets_injected + self.hops_traversed

    @property
    def total_energy_pj(self) -> float:
        # fsum: the total must not depend on category insertion order, so a
        # stats ledger restored from a (sorted) JSON report sums identically.
        return math.fsum(self.energy_pj.values())

    def average_power_w(self, cycle_time_ps: float) -> float:
        """Mean power in watts over the run (energy / simulated time)."""
        if self.final_cycle <= 0:
            return 0.0
        seconds = self.final_cycle * cycle_time_ps * 1e-12
        joules = self.total_energy_pj * 1e-12
        return joules / seconds

    @property
    def mean_latency(self) -> float:
        if self.latency.mean.count == 0:
            raise SaturationError("no packets measured for latency")
        return self.latency.mean.mean

    @property
    def delivery_ratio(self) -> float:
        if self.packets_generated == 0:
            return 1.0
        return self.packets_delivered / self.packets_generated

    def throughput(self, num_nodes: int) -> float:
        """Delivered packets per node per cycle over the measured window."""
        window = self.final_cycle - self.measurement_start
        if window <= 0 or num_nodes <= 0:
            return 0.0
        return self.packets_delivered / (window * num_nodes)
