"""The cycle-driven simulation engine.

Both simulators in this repository (the Phastlane optical network and the
electrical baseline) are clocked designs evaluated once per network cycle, so
the kernel is a synchronous two-phase engine rather than a general
discrete-event queue:

- ``step`` phase: every registered :class:`Clocked` component computes its
  next state from the current state (combinational evaluation);
- ``commit`` phase: components atomically adopt the next state (the clock
  edge).

The two-phase split means component evaluation order within a cycle cannot
change simulation results, which keeps the simulators deterministic and the
tests meaningful.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.profile import EngineProfiler


@runtime_checkable
class Clocked(Protocol):
    """A component evaluated every cycle by the engine."""

    def step(self, cycle: int) -> None:
        """Compute next state from current state (no visible mutation)."""

    def commit(self, cycle: int) -> None:
        """Adopt the computed next state (the clock edge)."""


class SimulationEngine:
    """Synchronous engine driving a list of :class:`Clocked` components.

    Components are stepped in registration order and then committed in
    registration order; correctness must not depend on that order (the
    two-phase protocol enforces it as long as ``step`` does not mutate
    state visible to other components).
    """

    def __init__(self) -> None:
        self._components: list[Clocked] = []
        self.cycle = 0
        self._watchers: list[Callable[[int], None]] = []
        #: Opt-in per-component step/commit wall-time accounting.  The
        #: profiled tick is a separate code path so the default path pays
        #: one ``is None`` check and nothing else.
        self.profiler: "EngineProfiler | None" = None

    def register(self, component: Clocked) -> None:
        if not isinstance(component, Clocked):
            raise TypeError(f"{component!r} does not implement the Clocked protocol")
        self._components.append(component)

    def add_watcher(self, watcher: Callable[[int], None]) -> None:
        """Call ``watcher(cycle)`` after each committed cycle (for probes)."""
        self._watchers.append(watcher)

    def tick(self) -> None:
        """Advance the simulation by one cycle."""
        cycle = self.cycle
        if self.profiler is None:
            for component in self._components:
                component.step(cycle)
            for component in self._components:
                component.commit(cycle)
        else:
            self._tick_profiled(cycle)
        self.cycle += 1
        for watcher in self._watchers:
            watcher(cycle)

    def _tick_profiled(self, cycle: int) -> None:
        """One cycle with per-component wall-time accounting."""
        profiler = self.profiler
        assert profiler is not None
        for component in self._components:
            started = perf_counter()
            component.step(cycle)
            profiler.account(component, "step", perf_counter() - started)
        for component in self._components:
            started = perf_counter()
            component.commit(cycle)
            profiler.account(component, "commit", perf_counter() - started)
        profiler.tick()

    def run(self, cycles: int) -> None:
        """Advance by ``cycles`` cycles."""
        if cycles < 0:
            raise ValueError(f"cannot run a negative number of cycles ({cycles})")
        tick = self.tick  # bound once: this loop is the simulators' hot path
        for _ in range(cycles):
            tick()

    def run_until(self, predicate: Callable[[], bool], max_cycles: int) -> bool:
        """Tick until ``predicate()`` is true; returns False on timeout.

        The predicate is evaluated before each tick, so a pre-satisfied
        condition costs zero cycles.
        """
        if max_cycles < 0:
            raise ValueError("max_cycles must be non-negative")
        for _ in range(max_cycles):
            if predicate():
                return True
            self.tick()
        return predicate()
