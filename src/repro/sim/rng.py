"""Deterministic random-number generation for reproducible simulations.

Every stochastic element of the simulators (injection processes, synthetic
trace generation, backoff jitter) draws from a :class:`DeterministicRng`
seeded from an experiment-level root seed plus a stable stream label, so a
run is reproducible bit-for-bit regardless of module import order or the
number of components instantiated.
"""

from __future__ import annotations

import hashlib
import random


class DeterministicRng(random.Random):
    """A ``random.Random`` seeded from a root seed and a stream label.

    >>> a = DeterministicRng(42, "node-3")
    >>> b = DeterministicRng(42, "node-3")
    >>> a.random() == b.random()
    True
    """

    def __init__(self, root_seed: int, stream: str = "") -> None:
        self.root_seed = int(root_seed)
        self.stream = stream
        digest = hashlib.sha256(f"{self.root_seed}/{stream}".encode()).digest()
        super().__init__(int.from_bytes(digest[:8], "big"))

    def fork(self, substream: str) -> "DeterministicRng":
        """A new independent generator labelled ``substream`` under this one."""
        return DeterministicRng(self.root_seed, f"{self.stream}/{substream}")

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        return self.random() < p

    def geometric(self, p: float) -> int:
        """Number of failures before the first success (support 0, 1, ...)."""
        if not 0.0 < p <= 1.0:
            raise ValueError(f"probability must be in (0, 1], got {p}")
        count = 0
        while not self.bernoulli(p):
            count += 1
        return count
