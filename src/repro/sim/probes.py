"""Spatial instrumentation probes for network simulations.

A :class:`MeshProbe` samples per-node state each cycle (buffer occupancy,
queue backlogs) and accumulates per-node event counts (drops, deliveries),
then renders ASCII heatmaps — useful for seeing *where* the Phastlane drop
storms of section 5 happen (they cluster around hotspot columns) and for
debugging traffic profiles.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.util.geometry import MeshGeometry

#: Shade characters from empty to full.
_SHADES = " .:-=+*#%@"


@dataclass
class MeshProbe:
    """Per-node counters and occupancy integrals over a run."""

    mesh: MeshGeometry
    drops: Counter = field(default_factory=Counter)
    deliveries: Counter = field(default_factory=Counter)
    occupancy_sum: Counter = field(default_factory=Counter)
    samples: int = 0

    def record_drop(self, node: int) -> None:
        self._check(node)
        self.drops[node] += 1

    def record_delivery(self, node: int) -> None:
        self._check(node)
        self.deliveries[node] += 1

    def sample_occupancy(self, occupancy_by_node: dict[int, int]) -> None:
        for node, occupancy in occupancy_by_node.items():
            self._check(node)
            self.occupancy_sum[node] += occupancy
        self.samples += 1

    def _check(self, node: int) -> None:
        if node < 0 or node >= self.mesh.num_nodes:
            raise ValueError(f"node {node} outside {self.mesh}")

    # -- views ------------------------------------------------------------------

    def mean_occupancy(self, node: int) -> float:
        if self.samples == 0:
            return 0.0
        return self.occupancy_sum[node] / self.samples

    def hottest_nodes(self, counter_name: str = "drops", top: int = 5) -> list[int]:
        counter: Counter = getattr(self, counter_name)
        return [node for node, _ in counter.most_common(top)]

    def heatmap(self, counter_name: str = "drops", title: str | None = None) -> str:
        """Render a counter as an ASCII shade map of the mesh.

        Row 0 of the mesh (south) is printed at the bottom, matching the
        coordinate system of :mod:`repro.util.geometry`.
        """
        counter: Counter = getattr(self, counter_name)
        peak = max(counter.values(), default=0)
        lines = [title or f"{counter_name} heatmap ({self.mesh}), peak={peak}"]
        for y in reversed(range(self.mesh.height)):
            row = []
            for x in range(self.mesh.width):
                value = counter[y * self.mesh.width + x]
                if peak == 0:
                    row.append(_SHADES[0])
                else:
                    index = round(value / peak * (len(_SHADES) - 1))
                    row.append(_SHADES[index])
            lines.append("".join(row))
        return "\n".join(lines)


def attach_phastlane_probe(network) -> MeshProbe:
    """Instrument a :class:`~repro.core.network.PhastlaneNetwork` in place.

    Wraps the network's drop and delivery bookkeeping so every event is
    attributed to the node where it physically happened, and samples buffer
    occupancy per router at the end of every cycle.
    """
    probe = MeshProbe(network.mesh)

    original_buffer_or_drop = network._buffer_or_drop

    def counting_buffer_or_drop(transit, cycle):
        drops_before = network.stats.packets_dropped
        original_buffer_or_drop(transit, cycle)
        if network.stats.packets_dropped > drops_before:
            probe.record_drop(transit.packet.plan[transit.index].node)

    network._buffer_or_drop = counting_buffer_or_drop

    original_deliver_tap = network._deliver_tap

    def counting_deliver_tap(packet, node, cycle):
        delivered_before = network.stats.packets_delivered
        original_deliver_tap(packet, node, cycle)
        if network.stats.packets_delivered > delivered_before:
            probe.record_delivery(node)

    network._deliver_tap = counting_deliver_tap

    original_step = network.step

    def sampling_step(cycle):
        original_step(cycle)
        probe.sample_occupancy(
            {router.node: router.occupancy() for router in network.routers}
        )

    network.step = sampling_step
    return probe
