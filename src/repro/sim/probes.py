"""Spatial instrumentation probes for network simulations.

A :class:`MeshProbe` samples per-node state each cycle (buffer occupancy,
queue backlogs) and accumulates per-node event counts (drops, deliveries),
then renders ASCII heatmaps — useful for seeing *where* the Phastlane drop
storms of section 5 happen (they cluster around hotspot columns) and for
debugging traffic profiles.

Probes attach through the observability layer's first-class emit points
(:meth:`network.add_tracer <repro.core.network.PhastlaneNetwork.add_tracer>`),
not by monkeypatching network internals, so they work identically on the
Phastlane optical network and the electrical baseline and never perturb
simulation results.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence, Union

from repro.obs.events import PacketEvent
from repro.obs.tracers import Tracer
from repro.util.geometry import MeshGeometry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.topology import Topology

#: What probes and heatmaps accept: a bare mesh grid or any topology whose
#: nodes lay out on one (every built-in topology exposes ``.mesh``).
MeshLike = Union[MeshGeometry, "Topology"]

#: Shade characters from empty to full.
_SHADES = " .:-=+*#%@"

#: Counters addressable by name in :meth:`MeshProbe.heatmap` and
#: :meth:`MeshProbe.hottest_nodes`.
PROBE_COUNTERS = ("drops", "deliveries", "occupancy_sum")


def render_heatmap(
    values: "Mapping[int, float] | Sequence[float]",
    mesh: MeshLike,
    title: str | None = None,
) -> str:
    """Render per-node values as an ASCII shade map of the node grid.

    ``values`` is either a mapping from node to value (missing nodes read
    as zero, so a :class:`collections.Counter` works directly) or a dense
    per-node sequence in node order — e.g. one window slice of a
    :class:`repro.obs.timeseries.SpatialSeries`.  Row 0 of the grid
    (south) prints at the bottom, matching :mod:`repro.util.geometry`.
    Passing a topology instead of a bare mesh labels the default title
    with the topology (e.g. ``8x8 torus``) while rendering on its grid.
    """
    grid = getattr(mesh, "mesh", mesh)
    if isinstance(values, Mapping):
        dense = [float(values.get(node, 0)) for node in range(grid.num_nodes)]
    else:
        dense = [float(value) for value in values]
        if len(dense) != grid.num_nodes:
            raise ValueError(
                f"expected {grid.num_nodes} per-node values for {mesh}, "
                f"got {len(dense)}"
            )
    peak = max(dense, default=0.0)
    lines = [title if title is not None else f"heatmap ({mesh}), peak={peak:g}"]
    for y in reversed(range(grid.height)):
        row = []
        for x in range(grid.width):
            value = dense[y * grid.width + x]
            if peak == 0:
                row.append(_SHADES[0])
            else:
                row.append(_SHADES[round(value / peak * (len(_SHADES) - 1))])
        lines.append("".join(row))
    return "\n".join(lines)


@dataclass
class MeshProbe:
    """Per-node counters and occupancy integrals over a run.

    ``mesh`` may be a bare :class:`MeshGeometry` or any topology; node
    checks and heatmap titles follow whichever was given.
    """

    mesh: MeshLike
    drops: Counter = field(default_factory=Counter)
    deliveries: Counter = field(default_factory=Counter)
    occupancy_sum: Counter = field(default_factory=Counter)
    samples: int = 0

    def record_drop(self, node: int) -> None:
        self._check(node)
        self.drops[node] += 1

    def record_delivery(self, node: int) -> None:
        self._check(node)
        self.deliveries[node] += 1

    def sample_occupancy(self, occupancy_by_node: dict[int, int]) -> None:
        for node, occupancy in occupancy_by_node.items():
            self._check(node)
            self.occupancy_sum[node] += occupancy
        self.samples += 1

    def _check(self, node: int) -> None:
        if node < 0 or node >= self.mesh.num_nodes:
            raise ValueError(f"node {node} outside {self.mesh}")

    def _counter(self, counter_name: str) -> Counter:
        """Resolve a counter by name, rejecting anything off the list.

        A raw ``getattr`` here used to turn a typo (or ``"samples"``,
        which is an ``int``) into a confusing ``AttributeError`` or
        ``TypeError`` deep inside rendering.
        """
        if counter_name not in PROBE_COUNTERS:
            raise ValueError(
                f"unknown probe counter {counter_name!r}; "
                f"expected one of {PROBE_COUNTERS}"
            )
        return getattr(self, counter_name)

    # -- views ------------------------------------------------------------------

    def mean_occupancy(self, node: int) -> float:
        if self.samples == 0:
            return 0.0
        return self.occupancy_sum[node] / self.samples

    def hottest_nodes(self, counter_name: str = "drops", top: int = 5) -> list[int]:
        counter = self._counter(counter_name)
        return [node for node, _ in counter.most_common(top)]

    def heatmap(self, counter_name: str = "drops", title: str | None = None) -> str:
        """Render a counter as an ASCII shade map of the mesh.

        A thin wrapper over :func:`render_heatmap` (which also renders
        spatial time-series slices); the default title names the counter.
        """
        counter = self._counter(counter_name)
        peak = max(counter.values(), default=0)
        return render_heatmap(
            counter,
            self.mesh,
            title or f"{counter_name} heatmap ({self.mesh}), peak={peak}",
        )


class _ProbeTracer(Tracer):
    """Adapter feeding lifecycle events and cycle samples into a probe."""

    def __init__(self, probe: MeshProbe) -> None:
        self.probe = probe

    def emit(self, event: PacketEvent) -> None:
        if event.kind == "dropped":
            self.probe.record_drop(event.node)
        elif event.kind == "delivered":
            self.probe.record_delivery(event.node)

    def on_cycle(self, network: Any, cycle: int) -> None:
        self.probe.sample_occupancy(
            {router.node: router.occupancy() for router in network.routers}
        )


def attach_probe(network: Any) -> MeshProbe:
    """Instrument a network (optical or electrical) with a spatial probe.

    Registers a tracer on the network's emit hub: every drop and delivery
    is attributed to the node where it physically happened, and buffer
    occupancy is sampled per router at the end of every cycle.  Works with
    any network exposing ``add_tracer`` and per-router ``occupancy()`` —
    both :class:`~repro.core.network.PhastlaneNetwork` and
    :class:`~repro.electrical.network.ElectricalNetwork` do.  Networks
    exposing a ``topology`` get it attached to the probe so heatmap
    titles name the real graph (e.g. ``8x8 torus``).
    """
    probe = MeshProbe(getattr(network, "topology", None) or network.mesh)
    network.add_tracer(_ProbeTracer(probe))
    return probe


def attach_phastlane_probe(network: Any) -> MeshProbe:
    """Backwards-compatible alias for :func:`attach_probe`."""
    return attach_probe(network)
