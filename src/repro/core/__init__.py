"""Phastlane: the paper's hybrid electrical/optical routing network (section 2).

The public API of the reproduction's primary contribution:

- :class:`PhastlaneConfig` — the Table 1 network configuration;
- :class:`PhastlaneNetwork` — the cycle-accurate flit-level simulator;
- :func:`build_plan` / :func:`broadcast_plans` — predecoded source routes;
- :class:`PhastlaneRouter` — electrical buffers + rotating-priority arbiter;
- :class:`OpticalPacket` — a single-flit cache-line packet with its control
  groups.
"""

from repro.core.config import PhastlaneConfig
from repro.core.control import (
    ControlGroup,
    decode_control_bits,
    encode_plan,
)
from repro.core.network import PhastlaneNetwork
from repro.core.nic import PhastlaneNic
from repro.core.packet import OpticalPacket
from repro.core.router import PhastlaneRouter
from repro.core.routing import RouteStep, broadcast_plans, build_plan

__all__ = [
    "ControlGroup",
    "OpticalPacket",
    "PhastlaneConfig",
    "PhastlaneNetwork",
    "PhastlaneNic",
    "PhastlaneRouter",
    "RouteStep",
    "broadcast_plans",
    "build_plan",
    "decode_control_bits",
    "encode_plan",
]
