"""Predecoded source routing for Phastlane (paper sections 2.1.3-2.1.4).

The source computes the full route before transmission and encodes one
five-bit control group (Straight / Left / Right / Local / Multicast) per
router on the path.  :func:`build_plan` produces the route as a sequence
of :class:`RouteStep`, inserting *interim nodes* (Local bit set) every
``max_hops`` hops so no optical transit exceeds the single-cycle hop
budget of Fig 6.

Routes come from a :class:`~repro.topology.policies.RoutingPolicy` over
a :class:`~repro.topology.base.Topology` — the paper's dimension-order
(X-then-Y) routing by default.  Every entry point also accepts a bare
:class:`~repro.util.geometry.MeshGeometry`, which adapts to the
registered ``mesh`` topology.

:func:`broadcast_plans` implements the section 2.1.4 broadcast: one
multicast packet per (column x vertical direction) sweep, as decomposed
by the topology's ``broadcast_sweeps`` — 16 packets on an 8x8 mesh for
an interior-row source (eight for a top/bottom-row source).  Each
packet travels along the source's row to its column, taps the turn
router, then traverses the column tapping every node, terminating with
Local+Multicast at the column end.  The union of the taps covers all
other nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

from repro.topology import (
    GridTopology,
    RoutingPolicy,
    Topology,
    as_topology,
    policy_by_name,
    require_grid,
)
from repro.util.geometry import Direction, MeshGeometry

#: Every routing entry point accepts a topology or a bare mesh geometry.
TopologyLike = Union[Topology, MeshGeometry]


@dataclass(frozen=True)
class RouteStep:
    """One router on a predecoded route.

    ``exit`` is the direction the packet leaves this router (None at the
    route's final router); ``local`` marks a receive (interim node or final
    destination); ``multicast`` marks a broadcast power tap.
    """

    node: int
    exit: Direction | None
    local: bool = False
    multicast: bool = False

    def __post_init__(self) -> None:
        if self.exit is Direction.LOCAL:
            raise ValueError("exit must be a mesh direction or None")


def _resolve_policy(policy: RoutingPolicy | str) -> RoutingPolicy:
    if isinstance(policy, RoutingPolicy):
        return policy
    return policy_by_name(policy)


def build_plan(
    topology: TopologyLike,
    source: int,
    destination: int,
    max_hops: int,
    taps: Iterable[int] = (),
    policy: RoutingPolicy | str = "dor",
) -> tuple[RouteStep, ...]:
    """The route from ``source`` to ``destination`` under ``policy``.

    Interim nodes (Local) are placed every ``max_hops`` hops.  ``taps``
    marks multicast power-tap nodes; each must lie on the route.  The
    final step always has ``local=True``; for multicast packets the caller
    includes the destination in ``taps`` so the final node also delivers.

    >>> mesh = MeshGeometry(8, 8)
    >>> plan = build_plan(mesh, 0, 63, max_hops=5)
    >>> [s.node for s in plan if s.local]
    [5, 31, 63]
    """
    if source == destination:
        raise ValueError("a route needs distinct endpoints")
    if max_hops < 1:
        raise ValueError("max hops must be at least 1")
    topo = topology if isinstance(topology, Topology) else as_topology(topology)
    if policy == "dor" and isinstance(topo, GridTopology):
        # Fast path for the simulators' per-packet planning: skip the
        # policy-registry lookup and the grid re-check on the default
        # dimension-order policy.
        nodes = topo.dor_route(source, destination)
        directions = topo.dor_directions(source, destination)
    else:
        nodes, directions = _resolve_policy(policy).plan(topo, source, destination)
    tap_set = set(taps)
    stray = tap_set - set(nodes)
    if stray:
        raise ValueError(f"taps {sorted(stray)} are not on the DOR path")

    steps: list[RouteStep] = []
    for index, node in enumerate(nodes):
        is_last = index == len(nodes) - 1
        # Local at the destination and at every max_hops-th router, except
        # that a mark one hop before the destination is redundant but
        # harmless; we keep the strict periodic placement of section 2.1.3.
        local = is_last or (index > 0 and index % max_hops == 0)
        steps.append(
            RouteStep(
                node=node,
                exit=None if is_last else directions[index],
                local=local,
                multicast=node in tap_set,
            )
        )
    return tuple(steps)


def replan_from(
    topology: TopologyLike,
    plan: Sequence[RouteStep],
    current_index: int,
    max_hops: int,
    policy: RoutingPolicy | str = "dor",
) -> tuple[RouteStep, ...]:
    """A fresh plan from the router at ``current_index`` to the same target.

    Used when an intermediate router buffers a blocked packet and assumes
    responsibility: it re-picks interim nodes from its own position
    (section 2.1.3 allows bypassing the original interim nodes by modifying
    the Local bits).  Multicast taps not yet passed are preserved.
    """
    if not 0 <= current_index < len(plan) - 1:
        raise ValueError("replan index must be a non-final route position")
    here = plan[current_index].node
    final = plan[-1].node
    remaining_taps = {
        step.node for step in plan[current_index + 1 :] if step.multicast
    }
    return build_plan(
        topology, here, final, max_hops, taps=remaining_taps, policy=policy
    )


def clear_passed_taps(
    plan: Sequence[RouteStep], drop_index: int
) -> tuple[RouteStep, ...]:
    """Clear Multicast bits for routers before ``drop_index`` (section 2.1.4).

    After a drop, the source learns the dropper's node id from the return
    path and clears the Multicast bits of nodes that already received the
    message, then resends.  Nodes strictly before the dropper were tapped;
    the dropper itself and everything after were not.
    """
    if not 0 <= drop_index < len(plan):
        raise ValueError("drop index outside the plan")
    return tuple(
        RouteStep(s.node, s.exit, s.local, s.multicast and i >= drop_index)
        for i, s in enumerate(plan)
    )


def broadcast_plans(
    topology: TopologyLike, source: int, max_hops: int
) -> list[tuple[RouteStep, ...]]:
    """The multicast packet plans implementing one broadcast (section 2.1.4).

    One packet per column sweep whose vertical segment is non-empty (on
    the 8x8 mesh: 16 for an interior-row source, 8 for a top/bottom-row
    source).  Every node other than the source appears in the
    tap/destination set of at least one plan.
    """
    topo = require_grid(as_topology(topology), "broadcast routing")
    plans: list[tuple[RouteStep, ...]] = []
    for final, taps in topo.broadcast_sweeps(source):
        plans.append(build_plan(topo, source, final, max_hops, taps=taps))
    _check_broadcast_coverage(topo, source, plans)
    return plans


def _check_broadcast_coverage(
    topology: Topology, source: int, plans: list[tuple[RouteStep, ...]]
) -> None:
    covered: set[int] = set()
    for plan in plans:
        covered.update(step.node for step in plan if step.multicast)
    expected = set(topology.nodes()) - {source}
    missing = expected - covered
    if missing:
        raise RuntimeError(
            f"broadcast from {source} misses nodes {sorted(missing)}"
        )


def plan_hops(plan: Sequence[RouteStep]) -> int:
    """Total link hops of a plan."""
    return len(plan) - 1


def max_segment_hops(plan: Sequence[RouteStep]) -> int:
    """The longest optical segment (hops between consecutive Local marks)."""
    longest = 0
    last_stop = 0
    for index, step in enumerate(plan):
        if index > 0 and step.local:
            longest = max(longest, index - last_stop)
            last_stop = index
    return longest
