"""Predecoded source routing for Phastlane (paper sections 2.1.3-2.1.4).

The source computes the full dimension-order route before transmission and
encodes one five-bit control group (Straight / Left / Right / Local /
Multicast) per router on the path.  :func:`build_plan` produces the route as
a sequence of :class:`RouteStep`, inserting *interim nodes* (Local bit set)
every ``max_hops`` hops so no optical transit exceeds the single-cycle hop
budget of Fig 6.

:func:`broadcast_plans` implements the section 2.1.4 broadcast: up to 16
multicast packets (eight for a top/bottom-row source), one per
(column x vertical direction).  Each packet travels along the source's row
to its column, taps the turn router, then traverses the column tapping every
node, terminating with Local+Multicast at the column end.  The union of the
taps covers all 63 other nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.util.geometry import Coord, Direction, MeshGeometry


@dataclass(frozen=True)
class RouteStep:
    """One router on a predecoded route.

    ``exit`` is the direction the packet leaves this router (None at the
    route's final router); ``local`` marks a receive (interim node or final
    destination); ``multicast`` marks a broadcast power tap.
    """

    node: int
    exit: Direction | None
    local: bool = False
    multicast: bool = False

    def __post_init__(self) -> None:
        if self.exit is Direction.LOCAL:
            raise ValueError("exit must be a mesh direction or None")


def build_plan(
    mesh: MeshGeometry,
    source: int,
    destination: int,
    max_hops: int,
    taps: Iterable[int] = (),
) -> tuple[RouteStep, ...]:
    """The dimension-order route from ``source`` to ``destination``.

    Interim nodes (Local) are placed every ``max_hops`` hops.  ``taps``
    marks multicast power-tap nodes; each must lie on the DOR path.  The
    final step always has ``local=True``; for multicast packets the caller
    includes the destination in ``taps`` so the final node also delivers.

    >>> mesh = MeshGeometry(8, 8)
    >>> plan = build_plan(mesh, 0, 63, max_hops=5)
    >>> [s.node for s in plan if s.local]
    [5, 31, 63]
    """
    if source == destination:
        raise ValueError("a route needs distinct endpoints")
    if max_hops < 1:
        raise ValueError("max hops must be at least 1")
    nodes = mesh.dor_route(source, destination)
    directions = mesh.dor_directions(source, destination)
    tap_set = set(taps)
    stray = tap_set - set(nodes)
    if stray:
        raise ValueError(f"taps {sorted(stray)} are not on the DOR path")

    steps: list[RouteStep] = []
    for index, node in enumerate(nodes):
        is_last = index == len(nodes) - 1
        # Local at the destination and at every max_hops-th router, except
        # that a mark one hop before the destination is redundant but
        # harmless; we keep the strict periodic placement of section 2.1.3.
        local = is_last or (index > 0 and index % max_hops == 0)
        steps.append(
            RouteStep(
                node=node,
                exit=None if is_last else directions[index],
                local=local,
                multicast=node in tap_set,
            )
        )
    return tuple(steps)


def replan_from(
    mesh: MeshGeometry,
    plan: Sequence[RouteStep],
    current_index: int,
    max_hops: int,
) -> tuple[RouteStep, ...]:
    """A fresh plan from the router at ``current_index`` to the same target.

    Used when an intermediate router buffers a blocked packet and assumes
    responsibility: it re-picks interim nodes from its own position
    (section 2.1.3 allows bypassing the original interim nodes by modifying
    the Local bits).  Multicast taps not yet passed are preserved.
    """
    if not 0 <= current_index < len(plan) - 1:
        raise ValueError("replan index must be a non-final route position")
    here = plan[current_index].node
    final = plan[-1].node
    remaining_taps = {
        step.node for step in plan[current_index + 1 :] if step.multicast
    }
    return build_plan(mesh, here, final, max_hops, taps=remaining_taps)


def clear_passed_taps(
    plan: Sequence[RouteStep], drop_index: int
) -> tuple[RouteStep, ...]:
    """Clear Multicast bits for routers before ``drop_index`` (section 2.1.4).

    After a drop, the source learns the dropper's node id from the return
    path and clears the Multicast bits of nodes that already received the
    message, then resends.  Nodes strictly before the dropper were tapped;
    the dropper itself and everything after were not.
    """
    if not 0 <= drop_index < len(plan):
        raise ValueError("drop index outside the plan")
    return tuple(
        RouteStep(s.node, s.exit, s.local, s.multicast and i >= drop_index)
        for i, s in enumerate(plan)
    )


def broadcast_plans(
    mesh: MeshGeometry, source: int, max_hops: int
) -> list[tuple[RouteStep, ...]]:
    """The multicast packet plans implementing one broadcast (section 2.1.4).

    One packet per (column, vertical direction) whose column segment is
    non-empty: 16 for an interior-row source, 8 for a top/bottom-row source.
    Every node other than the source appears in exactly the tap/destination
    set of at least one plan.
    """
    src = mesh.coord(source)
    plans: list[tuple[RouteStep, ...]] = []
    for column in range(mesh.width):
        turn = Coord(column, src.y)
        for dy, end_y in ((1, mesh.height - 1), (-1, 0)):
            if src.y == end_y:
                continue  # no column segment in this direction
            final = mesh.node(Coord(column, end_y))
            taps = {
                mesh.node(Coord(column, y))
                for y in range(src.y, end_y + dy, dy)
            }
            taps.discard(source)
            if turn == src and len(taps) == 0:  # pragma: no cover - defensive
                continue
            plans.append(build_plan(mesh, source, final, max_hops, taps=taps))
    _check_broadcast_coverage(mesh, source, plans)
    return plans


def _check_broadcast_coverage(
    mesh: MeshGeometry, source: int, plans: list[tuple[RouteStep, ...]]
) -> None:
    covered: set[int] = set()
    for plan in plans:
        covered.update(step.node for step in plan if step.multicast)
    expected = set(mesh.nodes()) - {source}
    missing = expected - covered
    if missing:
        raise RuntimeError(
            f"broadcast from {source} misses nodes {sorted(missing)}"
        )


def plan_hops(plan: Sequence[RouteStep]) -> int:
    """Total link hops of a plan."""
    return len(plan) - 1


def max_segment_hops(plan: Sequence[RouteStep]) -> int:
    """The longest optical segment (hops between consecutive Local marks)."""
    longest = 0
    last_stop = 0
    for index, step in enumerate(plan):
        if index > 0 and step.local:
            longest = max(longest, index - last_stop)
            last_stop = index
    return longest
