"""Phastlane network-interface controller (Table 1: 50 buffer entries).

The NIC turns trace events into :class:`OpticalPacket` instances — expanding
each broadcast into its up-to-16 multicast packets (section 2.1.4) — holds
them in the finite 50-entry NIC buffer (overflow waits in an unbounded
open-loop generation queue, as in the electrical baseline), and feeds the
router's local transmit queue whenever it has space.
"""

from __future__ import annotations

from collections import deque

from repro.core.config import PhastlaneConfig
from repro.core.packet import OpticalPacket
from repro.core.router import LOCAL_QUEUE, PhastlaneRouter
from repro.core.routing import broadcast_plans, build_plan
from repro.obs.events import TraceHub
from repro.sim.stats import NetworkStats
from repro.traffic.trace import TraceEvent


class PhastlaneNic:
    """One node's NIC for the optical network."""

    def __init__(
        self,
        node: int,
        config: PhastlaneConfig,
        stats: NetworkStats,
        trace_hub: TraceHub | None = None,
    ):
        self.node = node
        self.config = config
        self.stats = stats
        self.trace_hub = trace_hub if trace_hub is not None else TraceHub()
        self._generation_queue: deque[OpticalPacket] = deque()
        self._buffer: deque[OpticalPacket] = deque()
        self._next_broadcast_id = node  # strided by node count per broadcast

    def generate(self, events: list[TraceEvent], cycle: int) -> None:
        """Expand trace events into packets on the generation queue."""
        mesh = self.config.mesh
        for event in events:
            if event.source != self.node:
                raise ValueError(
                    f"event for node {event.source} delivered to NIC {self.node}"
                )
            if event.is_broadcast:
                plans = broadcast_plans(mesh, self.node, self.config.max_hops_per_cycle)
                broadcast_id = self._next_broadcast_id
                self._next_broadcast_id += mesh.num_nodes
                self.stats.record_generated(cycle, multicast=True)
                for _ in range(mesh.num_nodes - 2):
                    self.stats.record_generated(cycle)
                for plan in plans:
                    packet = OpticalPacket(
                        origin=self.node,
                        plan=plan,
                        generated_cycle=event.cycle,
                        kind=event.kind,
                        broadcast_id=broadcast_id,
                    )
                    self._generation_queue.append(packet)
                    if self.trace_hub:
                        self.trace_hub.emit(
                            "generated", cycle, self.node, packet.uid,
                            extra={"dst": packet.final_node, "multicast": True},
                        )
            else:
                assert event.destination is not None
                plan = build_plan(
                    mesh, self.node, event.destination, self.config.max_hops_per_cycle
                )
                self.stats.record_generated(cycle)
                packet = OpticalPacket(
                    origin=self.node,
                    plan=plan,
                    generated_cycle=event.cycle,
                    kind=event.kind,
                )
                self._generation_queue.append(packet)
                if self.trace_hub:
                    self.trace_hub.emit(
                        "generated", cycle, self.node, packet.uid,
                        extra={"dst": packet.final_node},
                    )
        self._refill()

    def _refill(self) -> None:
        while (
            self._generation_queue
            and len(self._buffer) < self.config.nic_buffer_entries
        ):
            self._buffer.append(self._generation_queue.popleft())

    def feed_router(self, router: PhastlaneRouter, cycle: int) -> int:
        """Move packets from the NIC into the router's local transmit queue.

        One packet per cycle crosses the NIC-to-router interface (one set
        of modulator drivers per node), space permitting.  Returns the
        number of packets moved.
        """
        moved = 0
        if self._buffer and router.has_space(LOCAL_QUEUE):
            packet = self._buffer.popleft()
            router.enqueue(LOCAL_QUEUE, packet, eligible_cycle=cycle)
            self.stats.record_injected(cycle)
            if self.trace_hub:
                self.trace_hub.emit("injected", cycle, self.node, packet.uid)
            moved += 1
        self._refill()
        return moved

    @property
    def occupancy(self) -> int:
        return len(self._buffer)

    @property
    def backlog(self) -> int:
        return len(self._buffer) + len(self._generation_queue)

    def idle(self) -> bool:
        return not self._buffer and not self._generation_queue
