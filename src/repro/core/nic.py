"""Phastlane network-interface controller (Table 1: 50 buffer entries).

The NIC turns trace events into :class:`OpticalPacket` instances — expanding
each broadcast into its up-to-16 multicast packets (section 2.1.4) — holds
them in the finite 50-entry NIC buffer (overflow waits in an unbounded
open-loop generation queue, as in the electrical baseline), and feeds the
router's local transmit queue whenever it has space.

Queueing, admission and idle detection live in
:class:`~repro.fabric.base.BaseNic`; this class adds the optical-specific
event expansion (route plans, broadcast fan-out) and the one-packet-per-
cycle router feed.
"""

from __future__ import annotations

from repro.core.config import PhastlaneConfig
from repro.core.packet import OpticalPacket
from repro.core.router import LOCAL_QUEUE, PhastlaneRouter
from repro.core.routing import broadcast_plans, build_plan
from repro.fabric.base import BaseNic
from repro.obs.events import TraceHub
from repro.sim.stats import NetworkStats
from repro.topology import topology_of
from repro.traffic.trace import TraceEvent


class PhastlaneNic(BaseNic):
    """One node's NIC for the optical network."""

    def __init__(
        self,
        node: int,
        config: PhastlaneConfig,
        stats: NetworkStats,
        trace_hub: TraceHub | None = None,
    ):
        super().__init__(node, config, stats, trace_hub=trace_hub)
        self.topology = topology_of(config)
        self._next_broadcast_id = node  # strided by node count per broadcast

    def _expand_event(self, event: TraceEvent, cycle: int) -> None:
        """Expand one trace event into route-planned optical packets."""
        topology = self.topology
        if event.is_broadcast:
            plans = broadcast_plans(
                topology, self.node, self.config.max_hops_per_cycle
            )
            broadcast_id = self._next_broadcast_id
            self._next_broadcast_id += topology.num_nodes
            self.stats.record_generated(cycle, multicast=True)
            for _ in range(topology.num_nodes - 2):
                self.stats.record_generated(cycle)
            for plan in plans:
                packet = OpticalPacket(
                    origin=self.node,
                    plan=plan,
                    generated_cycle=event.cycle,
                    kind=event.kind,
                    broadcast_id=broadcast_id,
                )
                self._generation_queue.append(packet)
                if self.trace_hub:
                    self.trace_hub.emit(
                        "generated", cycle, self.node, packet.uid,
                        extra={"dst": packet.final_node, "multicast": True},
                    )
        else:
            assert event.destination is not None
            plan = build_plan(
                topology,
                self.node,
                event.destination,
                self.config.max_hops_per_cycle,
            )
            self.stats.record_generated(cycle)
            packet = OpticalPacket(
                origin=self.node,
                plan=plan,
                generated_cycle=event.cycle,
                kind=event.kind,
            )
            self._generation_queue.append(packet)
            if self.trace_hub:
                self.trace_hub.emit(
                    "generated", cycle, self.node, packet.uid,
                    extra={"dst": packet.final_node},
                )

    def feed_router(self, router: PhastlaneRouter, cycle: int) -> int:
        """Move packets from the NIC into the router's local transmit queue.

        One packet per cycle crosses the NIC-to-router interface (one set
        of modulator drivers per node), space permitting.  Returns the
        number of packets moved.
        """
        moved = 0
        if self._buffer and router.has_space(LOCAL_QUEUE):
            packet = self._buffer.popleft()
            router.enqueue(LOCAL_QUEUE, packet, eligible_cycle=cycle)
            self.stats.record_injected(cycle)
            if self.trace_hub:
                self.trace_hub.emit("injected", cycle, self.node, packet.uid)
            moved += 1
        self._refill()
        return moved
