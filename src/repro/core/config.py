"""Phastlane network configuration (paper Table 1 and section 5 variants)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.photonics.constants import SCALING_SCENARIOS
from repro.util.geometry import MeshGeometry

#: Section 5 maps hop budgets to the scaling scenario that affords them.
HOPS_FOR_SCENARIO = {"pessimistic": 4, "average": 5, "optimistic": 8}


@dataclass(frozen=True)
class PhastlaneConfig:
    """Parameters of a Phastlane network instance.

    The defaults are the paper's preferred configuration: the four-hop
    network (pessimistic component scaling) with 10 electrical buffer
    entries per router input port and local queue, a 50-entry NIC and
    64-way payload WDM.  Section 5 additionally evaluates ``max_hops`` of 5
    and 8 and ``buffer_entries`` of 32, 64 and infinite (``None``).
    """

    mesh: MeshGeometry = field(default_factory=lambda: MeshGeometry(8, 8))
    #: Registered topology family over the mesh's addressable grid
    #: (``"mesh"``, ``"torus"``, ...).  Part of spec identity, but the
    #: default normalises away in serialisation so pre-topology digests
    #: and cache keys stay byte-identical.
    topology: str = "mesh"
    max_hops_per_cycle: int = 4
    buffer_entries: int | None = 10
    nic_buffer_entries: int = 50
    payload_wdm: int = 64
    crossing_efficiency: float = 0.98
    #: Base resend delay after a drop: the drop signal arrives the next
    #: cycle, but the node's protocol engine re-issues the message through
    #: its retry path, and backing off prevents retry storms from
    #: re-colliding at the still-congested router.
    retry_penalty_cycles: int = 4
    #: Maximum exponent for binary exponential backoff after a drop.
    backoff_cap_log2: int = 5
    packet_bits: int = 80 * 8
    seed: int = 1
    #: Optical output-port arbitration among same-wave contenders.
    #: ``"fixed"`` is the paper's choice (straight beats turns, then fixed
    #: input-port order); ``"round_robin"`` is the fairer alternative the
    #: paper's footnote 3 evaluated and rejected (no performance advantage,
    #: higher crossbar latency).
    network_arbitration: str = "fixed"
    #: Selection among the five electrical queues each cycle.
    #: ``"rotating"`` is the paper's rotating-priority arbiter;
    #: ``"oldest_first"`` is an age-based alternative (the paper's stated
    #: future work on buffer arbitration).
    buffer_arbitration: str = "rotating"
    #: What a blocked packet does when its input-port buffer is full.
    #: ``"drop"`` is the paper's design (drop + return-path signal +
    #: retransmit); ``"deflect"`` first tries to escape through any free
    #: output port and buffer at the neighbour (a drop-network alternative
    #: in the spirit of the paper's future work).
    contention_policy: str = "drop"
    #: ``False`` gives each input port a private ``buffer_entries`` queue
    #: (the paper's design); ``True`` lets the five queues share one pool
    #: of ``5 * buffer_entries`` slots (future-work buffer management).
    buffer_sharing: bool = False

    def __post_init__(self) -> None:
        from repro.topology import registered_topologies

        if self.topology not in registered_topologies():
            raise ValueError(
                f"unknown topology {self.topology!r}; registered: "
                f"{', '.join(registered_topologies())}"
            )
        if self.max_hops_per_cycle < 1:
            raise ValueError("max hops per cycle must be at least 1")
        if self.buffer_entries is not None and self.buffer_entries < 1:
            raise ValueError("buffer entries must be at least 1 (or None)")
        if self.nic_buffer_entries < 1:
            raise ValueError("NIC needs at least one buffer entry")
        if self.payload_wdm < 1:
            raise ValueError("payload WDM degree must be positive")
        if not 0.0 < self.crossing_efficiency <= 1.0:
            raise ValueError("crossing efficiency must be in (0, 1]")
        if self.backoff_cap_log2 < 0:
            raise ValueError("backoff cap must be non-negative")
        if self.retry_penalty_cycles < 1:
            raise ValueError("retry penalty must be at least one cycle")
        if self.network_arbitration not in ("fixed", "round_robin"):
            raise ValueError(
                f"unknown network arbitration {self.network_arbitration!r}"
            )
        if self.buffer_arbitration not in ("rotating", "oldest_first"):
            raise ValueError(
                f"unknown buffer arbitration {self.buffer_arbitration!r}"
            )
        if self.contention_policy not in ("drop", "deflect"):
            raise ValueError(
                f"unknown contention policy {self.contention_policy!r}"
            )
        if self.packet_bits < 1:
            raise ValueError("packets must carry at least one bit")

    @property
    def scenario(self) -> str:
        """The scaling scenario that affords this hop budget (section 5)."""
        for scenario, hops in HOPS_FOR_SCENARIO.items():
            if hops == self.max_hops_per_cycle:
                return scenario
        return "average"

    @property
    def label(self) -> str:
        """Figure 10/11 configuration label, e.g. ``Optical4B32``."""
        if self.buffer_entries is None:
            return f"Optical{self.max_hops_per_cycle}IB"
        if self.buffer_entries == 10:
            return f"Optical{self.max_hops_per_cycle}"
        return f"Optical{self.max_hops_per_cycle}B{self.buffer_entries}"

    @classmethod
    def for_scenario(cls, scenario: str, **overrides) -> "PhastlaneConfig":
        """The configuration implied by a scaling scenario (Fig 6 hops)."""
        if scenario not in SCALING_SCENARIOS:
            raise ValueError(f"unknown scaling scenario {scenario!r}")
        return cls(max_hops_per_cycle=HOPS_FOR_SCENARIO[scenario], **overrides)
