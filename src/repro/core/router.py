"""The electrical side of a Phastlane router (paper section 2.1.1).

Each router has five packet queues in the electrical domain — one per mesh
input port (N, E, S, W) holding packets that were blocked here, and one
local queue holding packets the local node wants to send.  A rotating
priority arbiter selects up to four queue heads per cycle, one per output
port, for optical transmission.

A transmitted packet is held in a *pending* slot for one cycle: if a Packet
Dropped signal returns on the drop network (section 2.1.2), the packet goes
back to the head of its queue with exponential backoff; otherwise the slot
simply frees (the packet was delivered or another router took
responsibility).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.config import PhastlaneConfig
from repro.core.packet import OpticalPacket
from repro.sim.rng import DeterministicRng
from repro.util.geometry import Direction

#: Queue ids 0-3 are the mesh input ports (Direction values); 4 is local.
NUM_QUEUES = 5
LOCAL_QUEUE = 4
#: Fixed tie-break order among turning packets (the paper specifies only
#: "fixed priority"; we pick input-port order N > E > S > W).
INPUT_PORT_PRIORITY = (
    Direction.NORTH,
    Direction.EAST,
    Direction.SOUTH,
    Direction.WEST,
)


@dataclass
class _QueueEntry:
    packet: OpticalPacket
    eligible_cycle: int = 0


@dataclass
class PendingTransmission:
    """A packet awaiting its (absence of a) drop signal."""

    packet: OpticalPacket
    queue_id: int
    launched_cycle: int


class PhastlaneRouter:
    """Electrical buffers, arbiter and pending slots of one Phastlane node."""

    def __init__(self, node: int, config: PhastlaneConfig):
        self.node = node
        self.config = config
        self.queues: list[deque[_QueueEntry]] = [deque() for _ in range(NUM_QUEUES)]
        self.pending: list[PendingTransmission] = []
        self._arbiter_pointer = 0
        self._rng = DeterministicRng(config.seed, f"router{node}/backoff")
        #: Packets that exhausted their retry budget (fault-injection runs
        #: only); the network drains this via :meth:`take_abandoned`.
        self._abandoned: list[tuple[OpticalPacket, int]] = []

    # -- buffer space -----------------------------------------------------------

    def has_space(self, queue_id: int) -> bool:
        """Space check; a pending transmission still holds its buffer slot
        until the drop window passes (it may have to be requeued).

        With ``buffer_sharing`` the five queues draw from one pool of
        ``5 * buffer_entries`` slots — except that one slot stays reserved
        for every currently-empty queue.  Without that reservation a
        router's pool can be monopolised by one queue, and two routers
        whose pools are mutually full of packets that must buffer at each
        other livelock on the drop/retransmit path (each retry re-drops
        forever).  Reserving an escape slot per port guarantees every
        input port can always accept at least one blocked packet, which
        keeps the retry loop making progress.
        """
        capacity = self.config.buffer_entries
        if capacity is None:
            return True
        if self.config.buffer_sharing:
            used_by = [len(queue) for queue in self.queues]
            for entry in self.pending:
                used_by[entry.queue_id] += 1
            free = capacity * NUM_QUEUES - sum(used_by)
            if used_by[queue_id] == 0:
                return free >= 1  # my own reserved escape slot
            reserved_others = sum(
                1
                for other in range(NUM_QUEUES)
                if other != queue_id and used_by[other] == 0
            )
            return free > reserved_others
        held = sum(1 for p in self.pending if p.queue_id == queue_id)
        return len(self.queues[queue_id]) + held < capacity

    def occupancy(self) -> int:
        return sum(len(q) for q in self.queues)

    def enqueue(
        self, queue_id: int, packet: OpticalPacket, eligible_cycle: int = 0
    ) -> None:
        """Append a packet (blocked arrival or local injection)."""
        if not 0 <= queue_id < NUM_QUEUES:
            raise ValueError(f"bad queue id {queue_id}")
        if not self.has_space(queue_id):
            raise RuntimeError(f"router {self.node}: queue {queue_id} overflow")
        if packet.current_node != self.node:
            raise ValueError(
                f"packet {packet!r} routed from {packet.current_node}, "
                f"enqueued at {self.node}"
            )
        self.queues[queue_id].append(_QueueEntry(packet, eligible_cycle))

    def requeue_head(self, queue_id: int, packet: OpticalPacket, eligible_cycle: int) -> None:
        """Put a dropped packet back at the head of its queue for resend."""
        self.queues[queue_id].appendleft(_QueueEntry(packet, eligible_cycle))

    # -- drop handling ------------------------------------------------------------

    def backoff_cycles(self, attempts: int) -> int:
        """Binary exponential backoff with jitter after ``attempts`` drops.

        The first retry waits ``retry_penalty_cycles`` (the protocol
        engine's resend path), doubling per further drop up to
        ``2 ** backoff_cap_log2`` base periods, plus uniform jitter of one
        base period to de-synchronise colliding retriers.
        """
        if attempts < 1:
            raise ValueError("backoff needs at least one failed attempt")
        penalty = self.config.retry_penalty_cycles
        window = 1 << min(attempts - 1, self.config.backoff_cap_log2)
        return penalty * window + self._rng.randrange(penalty)

    # -- arbitration -----------------------------------------------------------------

    def select_transmissions(self, cycle: int) -> list[tuple[int, OpticalPacket]]:
        """Select up to four queue heads for transmission (one per output).

        The paper's arbiter visits the five queues in rotating-priority
        order; the ``oldest_first`` alternative (future work on buffer
        arbitration) instead orders the heads by packet age.  Each queue
        offers only its head (one buffer read port), and each output port
        is granted at most once.  Selected packets move to pending slots
        awaiting a possible drop signal.  Returns ``(queue_id, packet)``.
        """
        selections: list[tuple[int, OpticalPacket]] = []
        claimed_outputs: set[Direction] = set()
        first_served: int | None = None
        for queue_id in self._arbitration_order(cycle):
            queue = self.queues[queue_id]
            if not queue or queue[0].eligible_cycle > cycle:
                continue
            packet = queue[0].packet
            output = packet.desired_output
            if output in claimed_outputs:
                continue
            queue.popleft()
            claimed_outputs.add(output)
            selections.append((queue_id, packet))
            self.pending.append(PendingTransmission(packet, queue_id, cycle))
            if first_served is None:
                first_served = queue_id
        if first_served is not None:
            self._arbiter_pointer = (first_served + 1) % NUM_QUEUES
        else:
            self._arbiter_pointer = (self._arbiter_pointer + 1) % NUM_QUEUES
        return selections

    def _arbitration_order(self, cycle: int) -> list[int]:
        if self.config.buffer_arbitration == "rotating":
            return [
                (self._arbiter_pointer + offset) % NUM_QUEUES
                for offset in range(NUM_QUEUES)
            ]
        # oldest_first: eligible heads by generation age, ties by queue id.
        def age_key(queue_id: int) -> tuple[int, int]:
            queue = self.queues[queue_id]
            if not queue or queue[0].eligible_cycle > cycle:
                return (1 << 62, queue_id)
            return (queue[0].packet.generated_cycle, queue_id)

        return sorted(range(NUM_QUEUES), key=age_key)

    # -- pending resolution ------------------------------------------------------------

    def resolve_pending(
        self, cycle: int, dropped: dict[int, int], retry_limit: int | None = None
    ) -> list[tuple[OpticalPacket, int]]:
        """Apply last cycle's drop signals to pending transmissions.

        ``dropped`` maps packet uid -> plan index of the dropping router.
        Dropped packets return to the head of their queue with backoff;
        everything else is confirmed out of this router.  Returns
        ``(packet, drop_index)`` pairs for the retransmissions, so the
        network can clear passed multicast taps.

        ``retry_limit`` (fault-injection runs) bounds the resend loop: a
        packet dropped after that many attempts is abandoned instead of
        requeued — collected via :meth:`take_abandoned` — so runs with
        permanent device faults drain instead of livelocking.
        """
        retries: list[tuple[OpticalPacket, int]] = []
        still_pending: list[PendingTransmission] = []
        for entry in self.pending:
            if entry.launched_cycle >= cycle:
                still_pending.append(entry)  # launched this very cycle
                continue
            drop_index = dropped.get(entry.packet.uid)
            if drop_index is None:
                continue  # delivered or responsibility transferred
            packet = entry.packet
            packet.attempts += 1
            if retry_limit is not None and packet.attempts > retry_limit:
                self._abandoned.append((packet, drop_index))
                continue
            eligible = cycle + self.backoff_cycles(packet.attempts)
            self.requeue_head(entry.queue_id, packet, eligible)
            retries.append((packet, drop_index))
        self.pending = still_pending
        return retries

    def take_abandoned(self) -> list[tuple[OpticalPacket, int]]:
        """Drain the packets that exceeded the retry limit since last call."""
        abandoned, self._abandoned = self._abandoned, []
        return abandoned

    @property
    def busy(self) -> bool:
        return bool(self.pending) or any(self.queues)
