"""Control-bit encoding for the C0/C1 waveguides (paper Fig 3).

A packet carries up to 14 five-bit router-control groups (Straight, Left,
Right, Local, Multicast — 70 bits total) split across the two control
waveguides at 35-way WDM.  Group 1 controls the current router; on exit the
remaining groups are frequency-translated down one group position and the
C1 waveguide physically shifts into the C0 slot, lining the fields up for
the next router.

The network simulator works directly on :class:`~repro.core.routing.RouteStep`
plans for speed; this module provides the faithful bit-level encoding used
to validate that every plan the simulator builds is actually expressible in
the 70-bit control budget, and to model the group-shift pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.routing import RouteStep
from repro.photonics.constants import (
    CONTROL_BITS_PER_ROUTER,
    MAX_CONTROL_GROUPS,
    PACKET_CONTROL_BITS,
)
from repro.util.geometry import TURN_KIND, Direction, TurnKind

#: Bit positions within one control group.
BIT_STRAIGHT = 0
BIT_LEFT = 1
BIT_RIGHT = 2
BIT_LOCAL = 3
BIT_MULTICAST = 4


@dataclass(frozen=True)
class ControlGroup:
    """The five predecoded control bits for one router."""

    straight: bool = False
    left: bool = False
    right: bool = False
    local: bool = False
    multicast: bool = False

    def __post_init__(self) -> None:
        if sum((self.straight, self.left, self.right)) > 1:
            raise ValueError("at most one of straight/left/right may be set")

    def to_bits(self) -> int:
        return (
            (self.straight << BIT_STRAIGHT)
            | (self.left << BIT_LEFT)
            | (self.right << BIT_RIGHT)
            | (self.local << BIT_LOCAL)
            | (self.multicast << BIT_MULTICAST)
        )

    @classmethod
    def from_bits(cls, bits: int) -> "ControlGroup":
        if not 0 <= bits < (1 << CONTROL_BITS_PER_ROUTER):
            raise ValueError(f"control group needs 5 bits, got {bits}")
        return cls(
            straight=bool(bits & (1 << BIT_STRAIGHT)),
            left=bool(bits & (1 << BIT_LEFT)),
            right=bool(bits & (1 << BIT_RIGHT)),
            local=bool(bits & (1 << BIT_LOCAL)),
            multicast=bool(bits & (1 << BIT_MULTICAST)),
        )


def _turn_bits(arrival: Direction, exit: Direction | None) -> dict[str, bool]:
    if exit is None:
        return {}
    kind = TURN_KIND[(arrival, exit)]
    if kind is TurnKind.LOCAL:  # pragma: no cover - excluded by RouteStep
        raise ValueError("exit may not be LOCAL")
    return {
        "straight": kind is TurnKind.STRAIGHT,
        "left": kind is TurnKind.LEFT,
        "right": kind is TurnKind.RIGHT,
    }


def encode_plan(plan: Sequence[RouteStep]) -> list[ControlGroup]:
    """Control groups for every router *after* the transmitter.

    Step 0 of a plan is the transmitting router itself (it needs no control
    group: its output port is chosen by the local arbiter); groups are
    generated for steps 1..N and must fit the 14-group budget.
    """
    if len(plan) < 2:
        raise ValueError("a plan needs at least one hop to encode")
    groups: list[ControlGroup] = []
    for previous, step in zip(plan, plan[1:]):
        assert previous.exit is not None, "non-final steps must have an exit"
        groups.append(
            ControlGroup(
                local=step.local,
                multicast=step.multicast,
                **_turn_bits(previous.exit, step.exit),
            )
        )
    if len(groups) > MAX_CONTROL_GROUPS:
        raise ValueError(
            f"route needs {len(groups)} control groups; the "
            f"{PACKET_CONTROL_BITS}-bit budget holds {MAX_CONTROL_GROUPS}"
        )
    return groups


def pack_control_bits(groups: Sequence[ControlGroup]) -> int:
    """Pack groups into the 70-bit control word (group 1 in the low bits)."""
    word = 0
    for index, group in enumerate(groups):
        word |= group.to_bits() << (index * CONTROL_BITS_PER_ROUTER)
    return word


def decode_control_bits(word: int, count: int) -> list[ControlGroup]:
    """Unpack ``count`` groups from a control word."""
    if count < 0 or count > MAX_CONTROL_GROUPS:
        raise ValueError(f"group count must be in [0, {MAX_CONTROL_GROUPS}]")
    mask = (1 << CONTROL_BITS_PER_ROUTER) - 1
    return [
        ControlGroup.from_bits((word >> (i * CONTROL_BITS_PER_ROUTER)) & mask)
        for i in range(count)
    ]


def shift_groups(word: int) -> int:
    """The C0/C1 group shift a router performs on packet exit (Fig 3).

    Group 1 (consumed by this router) drops off; groups 2..14 translate
    down one position.  Physically this is the frequency translation of the
    remaining C0 wavelengths onto the outgoing C1 waveguide plus the
    physical C1->C0 swap.
    """
    if word < 0:
        raise ValueError("control word must be non-negative")
    return word >> CONTROL_BITS_PER_ROUTER
