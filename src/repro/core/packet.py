"""Optical packets: single-flit cache-line messages with predecoded routes.

A Phastlane packet is one flit: 80 bytes of payload (cache line, address,
operation type, source id, EDC) plus the router-control groups.  The
simulator tracks the packet's *current* plan — rebuilt whenever a router
assumes delivery responsibility — along with retransmission bookkeeping.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.routing import RouteStep, plan_hops
from repro.traffic.coherence import MessageKind

_uid_counter = itertools.count()


@dataclass
class OpticalPacket:
    """One single-flit packet travelling the Phastlane network.

    ``plan`` always starts at the router currently responsible for the
    packet (step 0 = the transmitter).  ``origin`` is the node that first
    generated the message; ``broadcast_id`` groups the multicast packets of
    one broadcast so deliveries can be de-duplicated per node.
    """

    origin: int
    plan: tuple[RouteStep, ...]
    generated_cycle: int
    kind: MessageKind = MessageKind.DATA_RESPONSE
    broadcast_id: int | None = None
    uid: int = field(default_factory=lambda: next(_uid_counter))
    attempts: int = 0

    def __post_init__(self) -> None:
        if len(self.plan) < 2:
            raise ValueError("a packet's plan needs at least one hop")
        if self.generated_cycle < 0:
            raise ValueError("generation cycle must be non-negative")

    @property
    def is_multicast(self) -> bool:
        return self.broadcast_id is not None

    @property
    def final_node(self) -> int:
        return self.plan[-1].node

    @property
    def current_node(self) -> int:
        """The node currently responsible for (and holding) the packet."""
        return self.plan[0].node

    @property
    def remaining_hops(self) -> int:
        return plan_hops(self.plan)

    @property
    def desired_output(self):
        """The output port the current transmitter needs (first exit)."""
        exit_direction = self.plan[0].exit
        assert exit_direction is not None
        return exit_direction

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f"mc{self.broadcast_id}" if self.is_multicast else "uc"
        return (
            f"OpticalPacket#{self.uid}[{tag}]"
            f"({self.current_node}->{self.final_node})"
        )
