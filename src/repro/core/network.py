"""The Phastlane optical network simulator (paper section 2).

Cycle-accurate, flit-level.  Within each 250 ps network cycle a transmitted
packet traverses up to ``max_hops_per_cycle`` routers optically; the
simulator models that same-cycle multi-hop transit as a sequence of *waves*:
wave ``k`` is every in-flight packet attempting its ``k``-th hop of the
cycle.  Output-port contention is resolved exactly as the hardware does:

- ports claimed by a router's own buffered transmission (chosen by the
  rotating-priority arbiter at the start of the cycle) block all incoming
  packets — "buffered packets have priority for output ports over newly
  arriving packets" (section 2.1.1);
- ports claimed in an earlier wave block later waves (the earlier packet's
  light already holds the path);
- among same-wave contenders the straight-through packet beats turns
  (section 2.1: "straightline paths through the router have priority over
  turns"), and turning contenders tie-break by fixed input-port order.

A blocked packet is received into the blocking router's input-port buffer
if there is space — that router then assumes delivery responsibility and
re-plans from its own position — or is dropped, raising a Packet Dropped
signal that reaches the transmitting source on the drop-signal return path
in the next cycle (section 2.1.2).  Multicast packets power-tap every
router whose control group has the Multicast bit set (section 2.1.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PhastlaneConfig
from repro.core.nic import PhastlaneNic
from repro.core.packet import OpticalPacket
from repro.core.router import INPUT_PORT_PRIORITY, PhastlaneRouter
from repro.core.routing import build_plan, clear_passed_taps, replan_from
from repro.fabric.base import MeshNetworkBase
from repro.fabric.registry import register_backend
from repro.faults.schedule import FaultSchedule
from repro.electrical.power import (
    BUFFER_READ_PJ_PER_BIT,
    BUFFER_WRITE_PJ_PER_BIT,
    NIC_LEAKAGE_MW,
)
from repro.photonics import constants
from repro.photonics.power import OpticalPowerModel
from repro.sim.stats import NetworkStats
from repro.topology import require_grid
from repro.traffic.trace import TrafficSource
from repro.util.geometry import TURN_KIND, Direction, TurnKind

#: Static leakage of a Phastlane router's electrical side (buffers, drivers,
#: receiver amplifiers) — no crossbar or allocator logic, so well below the
#: electrical baseline's router leakage.
OPTICAL_ROUTER_LEAKAGE_MW = 3.0
#: Drop-signal payload: Packet Dropped bit + six-bit node id (section 2.1.2).
DROP_SIGNAL_BITS = 7

#: Priority rank of a turn kind at a contended output port (lower wins).
_TURN_RANK = {TurnKind.STRAIGHT: 0, TurnKind.LEFT: 1, TurnKind.RIGHT: 2}


@dataclass
class _Transit:
    """One packet's optical traversal during the current cycle."""

    packet: OpticalPacket
    transmitter: int
    index: int = 0  # position in packet.plan of the router the light is at


class PhastlaneNetwork(MeshNetworkBase):
    """A mesh of Phastlane routers driven by a traffic source."""

    def __init__(
        self,
        config: PhastlaneConfig | None = None,
        source: TrafficSource | None = None,
        stats: NetworkStats | None = None,
        faults: FaultSchedule | None = None,
    ):
        super().__init__(config or PhastlaneConfig(), source, stats, faults)
        require_grid(self.topology, "the Phastlane cycle-accurate pipeline")
        self.power = OpticalPowerModel(mesh_nodes=self.mesh.num_nodes)
        self.routers = [
            PhastlaneRouter(node, self.config) for node in self.mesh.nodes()
        ]
        self.nics = [
            PhastlaneNic(node, self.config, self.stats, trace_hub=self.trace_hub)
            for node in self.mesh.nodes()
        ]
        #: Drop signals raised this cycle, delivered to transmitters next
        #: cycle: packet uid -> plan index of the dropping router.
        self._drop_signals: dict[int, int] = {}
        #: Uids among this cycle's drop signals whose drop was fault-caused
        #: (their retransmission counts as the fault being *masked*).
        self._fault_drop_uids: set[int] = set()
        self._delivered_broadcast: set[tuple[int, int]] = set()
        #: Round-robin pointers for the footnote-3 arbitration alternative.
        self._rr_pointers: dict[tuple[int, Direction], int] = {}
        self.deflections = 0

    # -- per-cycle hooks (MeshNetworkBase) -----------------------------------------

    def _step_cycle(self, cycle: int) -> None:
        self._resolve_drop_signals(cycle)
        self._generate_and_inject(cycle)
        transits = self._launch_transmissions(cycle)
        self._run_waves(transits, cycle)

    def _end_of_cycle(self, cycle: int) -> None:
        self._static_energy()
        self.stats.buffer_occupancy_samples.add(
            sum(router.occupancy() for router in self.routers)
        )

    def _inject_from_nic(self, node: int, nic: PhastlaneNic, cycle: int) -> None:
        nic.feed_router(self.routers[node], cycle)

    # -- cycle phases --------------------------------------------------------------

    def _resolve_drop_signals(self, cycle: int) -> None:
        signals, self._drop_signals = self._drop_signals, {}
        fault_uids, self._fault_drop_uids = self._fault_drop_uids, set()
        retry_limit = (
            self._faults.config.retry_limit if self._faults is not None else None
        )
        for router in self.routers:
            retries = router.resolve_pending(cycle, signals, retry_limit=retry_limit)
            for packet, drop_index in retries:
                self.stats.record_retransmission()
                if self.trace_hub:
                    self.trace_hub.emit(
                        "retransmitted", cycle, router.node, packet.uid,
                        extra={"attempts": packet.attempts},
                    )
                if packet.uid in fault_uids:
                    self.stats.record_fault_masked()
                    if self.trace_hub:
                        self.trace_hub.emit(
                            "fault_masked", cycle, router.node, packet.uid
                        )
                if packet.is_multicast:
                    packet.plan = clear_passed_taps(packet.plan, drop_index)
            if retry_limit is not None:
                for packet, drop_index in router.take_abandoned():
                    lost = (
                        sum(1 for s in packet.plan[drop_index:] if s.multicast)
                        if packet.is_multicast
                        else 1
                    )
                    self.stats.record_fault_loss(lost)
                    if self.trace_hub:
                        self.trace_hub.emit(
                            "fault_dropped", cycle, router.node, packet.uid,
                            extra={"lost": lost, "attempts": packet.attempts},
                        )

    def _launch_transmissions(self, cycle: int) -> list[_Transit]:
        """Arbiter selection at every router; wave-0 output-port claims."""
        self._port_claims: set[tuple[int, Direction]] = set()
        transits: list[_Transit] = []
        for router in self.routers:
            for _queue_id, packet in router.select_transmissions(cycle):
                self._charge_transmit(packet)
                self._port_claims.add((router.node, packet.desired_output))
                transits.append(_Transit(packet, transmitter=router.node))
        return transits

    def _run_waves(self, transits: list[_Transit], cycle: int) -> None:
        active = transits
        for _wave in range(self.config.max_hops_per_cycle):
            if not active:
                return
            active = self._advance_one_wave(active, cycle)
        if active:  # pragma: no cover - plans guarantee termination
            raise RuntimeError(
                f"transits exceeded the {self.config.max_hops_per_cycle}-hop "
                f"budget: {[t.packet for t in active]}"
            )

    def _advance_one_wave(
        self, active: list[_Transit], cycle: int
    ) -> list[_Transit]:
        contenders: dict[tuple[int, Direction], list[_Transit]] = {}
        for transit in active:
            transit.index += 1
            if self._faults is not None and self._fault_crossing(transit, cycle):
                continue
            self.stats.record_hops(1)
            step = transit.packet.plan[transit.index]
            if self.trace_hub:
                self.trace_hub.emit("hop", cycle, step.node, transit.packet.uid)
            self._charge_control_receive()
            if step.multicast:
                self._deliver_tap(transit.packet, step.node, cycle)
            if step.local:
                self._finish_local(transit, cycle)
                continue
            assert step.exit is not None
            contenders.setdefault((step.node, step.exit), []).append(transit)

        continuing: list[_Transit] = []
        for (node, port), group in contenders.items():
            if (node, port) in self._port_claims:
                for transit in group:
                    self._block(transit, cycle)
                continue
            winner, losers = self._arbitrate(node, port, group)
            self._port_claims.add((node, port))
            continuing.append(winner)
            for transit in losers:
                self._block(transit, cycle)
        return continuing

    def _arbitrate(
        self, node: int, port: Direction, group: list[_Transit]
    ) -> tuple[_Transit, list[_Transit]]:
        """Pick the winning same-wave contender for one output port."""
        if self.config.network_arbitration == "fixed":
            group.sort(key=self._priority_key)
            return group[0], group[1:]
        # Round-robin (paper footnote 3's rejected alternative): rotate
        # priority over the input ports per (router, output port).
        pointer = self._rr_pointers.get((node, port), 0)

        def rr_key(transit: _Transit) -> int:
            arrival = transit.packet.plan[transit.index - 1].exit
            assert arrival is not None
            return (INPUT_PORT_PRIORITY.index(arrival) - pointer) % 4

        group.sort(key=rr_key)
        winner = group[0]
        winner_arrival = winner.packet.plan[winner.index - 1].exit
        assert winner_arrival is not None
        self._rr_pointers[(node, port)] = (
            INPUT_PORT_PRIORITY.index(winner_arrival) + 1
        ) % 4
        return winner, group[1:]

    def _priority_key(self, transit: _Transit) -> tuple[int, int]:
        """Fixed-priority rank: straight beats turns, then input-port order."""
        packet = transit.packet
        arrival = packet.plan[transit.index - 1].exit
        exit_direction = packet.plan[transit.index].exit
        assert arrival is not None and exit_direction is not None
        kind = TURN_KIND[(arrival, exit_direction)]
        return (_TURN_RANK[kind], INPUT_PORT_PRIORITY.index(arrival))

    def _fault_crossing(self, transit: _Transit, cycle: int) -> bool:
        """Check the crossing just attempted against the fault schedule.

        The crossing leaves ``plan[index - 1]`` through its exit port.  A
        dead port or transient link fault kills the light mid-crossing; a
        corrupt fault is caught by the CRC-equivalent check at the next
        router, which discards the packet there.  Either way the packet is
        gone from the optical domain and the transmitter's pending copy
        recovers it via the normal drop-signal machinery (the drop index
        points at the router the packet failed to reach, so passed
        multicast taps are cleared exactly as for a contention drop).
        """
        assert self._faults is not None
        packet = transit.packet
        prev = packet.plan[transit.index - 1]
        assert prev.exit is not None
        kind = self._faults.crossing_fault(prev.node, int(prev.exit), cycle)
        if kind is None:
            return False
        fault_node = (
            packet.plan[transit.index].node if kind == "corrupt" else prev.node
        )
        self.stats.record_fault(kind)
        self._fault_hit.add(packet.uid)
        self.stats.record_dropped()
        self._drop_signals[packet.uid] = transit.index
        self._fault_drop_uids.add(packet.uid)
        self._charge_drop_signal()
        if self.trace_hub:
            self.trace_hub.emit(
                "fault_injected", cycle, fault_node, packet.uid,
                extra={
                    "fault": kind,
                    # Label the faulted crossing via the topology so traces
                    # read correctly on wrapped graphs (e.g. "EAST_WRAP").
                    "port": self.topology.port_label(prev.node, int(prev.exit)),
                },
            )
            self.trace_hub.emit("dropped", cycle, fault_node, packet.uid)
        return True

    # -- transit outcomes --------------------------------------------------------------

    def _finish_local(self, transit: _Transit, cycle: int) -> None:
        """Local-bit stop: final delivery or interim-node responsibility."""
        packet = transit.packet
        self._charge_receive(self.config.packet_bits)
        if transit.index == len(packet.plan) - 1:
            if not packet.is_multicast:
                self.stats.record_delivered(packet.generated_cycle, cycle)
                self._note_fault_delivery(packet.uid)
                if self.trace_hub:
                    self.trace_hub.emit(
                        "delivered", cycle, packet.final_node, packet.uid
                    )
            # Multicast finals were recorded by their tap (Local+Multicast).
            return
        self._buffer_or_drop(transit, cycle)

    def _block(self, transit: _Transit, cycle: int) -> None:
        """Output port blocked: receive into the input buffer, or drop."""
        if self.trace_hub:
            self.trace_hub.emit(
                "blocked",
                cycle,
                transit.packet.plan[transit.index].node,
                transit.packet.uid,
            )
        self._charge_receive(self.config.packet_bits)
        self._buffer_or_drop(transit, cycle)

    def _buffer_or_drop(self, transit: _Transit, cycle: int) -> None:
        packet = transit.packet
        node = packet.plan[transit.index].node
        arrival = packet.plan[transit.index - 1].exit
        assert arrival is not None
        router = self.routers[node]
        queue_id = int(arrival)
        if router.has_space(queue_id):
            packet.plan = replan_from(
                self.topology,
                packet.plan,
                transit.index,
                self.config.max_hops_per_cycle,
            )
            router.enqueue(queue_id, packet, eligible_cycle=cycle + 1)
            self.stats.add_energy(
                "buffer_write", self.config.packet_bits * BUFFER_WRITE_PJ_PER_BIT
            )
            if self.trace_hub:
                self.trace_hub.emit("buffered", cycle, node, packet.uid)
            return
        if self.config.contention_policy == "deflect" and self._try_deflect(
            transit, cycle
        ):
            return
        self.stats.record_dropped()
        self._drop_signals[packet.uid] = transit.index
        self._charge_drop_signal()
        if self.trace_hub:
            self.trace_hub.emit("dropped", cycle, node, packet.uid)

    def _try_deflect(self, transit: _Transit, cycle: int) -> bool:
        """Drop-network alternative: escape through a free port and buffer
        at the neighbour.

        Applies to unicast packets only (a deflected multicast's remaining
        taps would no longer lie on its dimension-order path).  The packet
        claims any unclaimed output port whose neighbour has buffer space,
        travels that one extra hop, and the neighbour assumes delivery
        responsibility with a fresh route.
        """
        packet = transit.packet
        if packet.is_multicast:
            return False
        node = packet.plan[transit.index].node
        arrival = packet.plan[transit.index - 1].exit
        assert arrival is not None
        for direction in INPUT_PORT_PRIORITY:
            if (node, direction) in self._port_claims:
                continue
            neighbor = self.topology.neighbor(node, direction)
            if neighbor is None:
                continue
            queue_id = int(direction)
            if neighbor != packet.final_node and not self.routers[
                neighbor
            ].has_space(queue_id):
                continue
            self._port_claims.add((node, direction))
            self.stats.record_hops(1)
            self.deflections += 1
            self._charge_receive(self.config.packet_bits)
            if self.trace_hub:
                self.trace_hub.emit(
                    "hop", cycle, neighbor, packet.uid, extra={"deflected": True}
                )
            if neighbor == packet.final_node:
                self.stats.record_delivered(packet.generated_cycle, cycle)
                self._note_fault_delivery(packet.uid)
                if self.trace_hub:
                    self.trace_hub.emit("delivered", cycle, neighbor, packet.uid)
                return True
            packet.plan = build_plan(
                self.topology,
                neighbor,
                packet.final_node,
                self.config.max_hops_per_cycle,
            )
            self.routers[neighbor].enqueue(queue_id, packet, eligible_cycle=cycle + 1)
            self.stats.add_energy(
                "buffer_write", self.config.packet_bits * BUFFER_WRITE_PJ_PER_BIT
            )
            if self.trace_hub:
                self.trace_hub.emit("buffered", cycle, neighbor, packet.uid)
            return True
        return False

    def _deliver_tap(self, packet: OpticalPacket, node: int, cycle: int) -> None:
        self._charge_receive(self.config.packet_bits)
        key = (packet.broadcast_id if packet.is_multicast else packet.uid, node)
        if key in self._delivered_broadcast:
            return
        self._delivered_broadcast.add(key)
        self.stats.record_delivered(packet.generated_cycle, cycle)
        self._note_fault_delivery(packet.uid)
        if self.trace_hub:
            self.trace_hub.emit("delivered", cycle, node, packet.uid)

    # -- energy accounting ----------------------------------------------------------------

    def _charge_transmit(self, packet: OpticalPacket) -> None:
        bits = self.config.packet_bits + constants.PACKET_CONTROL_BITS
        self.stats.add_energy(
            "modulator", bits * constants.MODULATOR_ENERGY_PJ_PER_BIT
        )
        self.stats.add_energy(
            "buffer_read", self.config.packet_bits * BUFFER_READ_PJ_PER_BIT
        )
        segment, taps = self._first_segment(packet)
        self.stats.add_energy(
            "laser",
            self.power.transmit_laser_energy_pj(
                self.config.payload_wdm,
                segment,
                self.config.crossing_efficiency,
                multicast_taps=taps,
            ),
        )

    @staticmethod
    def _first_segment(packet: OpticalPacket) -> tuple[int, int]:
        """Hop count and broadcast-tap count of the first optical segment."""
        taps = 0
        for index, step in enumerate(packet.plan[1:], start=1):
            taps += step.multicast
            if step.local:
                return index, taps
        return len(packet.plan) - 1, taps  # pragma: no cover - plans end local

    def _charge_receive(self, bits: int) -> None:
        self.stats.add_energy("receiver", bits * constants.RECEIVER_ENERGY_PJ_PER_BIT)

    def _charge_control_receive(self) -> None:
        self.stats.add_energy(
            "receiver",
            constants.PACKET_CONTROL_BITS * constants.RECEIVER_ENERGY_PJ_PER_BIT,
        )

    def _charge_drop_signal(self) -> None:
        self.stats.add_energy(
            "drop_network",
            DROP_SIGNAL_BITS
            * (
                constants.MODULATOR_ENERGY_PJ_PER_BIT
                + constants.RECEIVER_ENERGY_PJ_PER_BIT
            ),
        )

    def _static_energy(self) -> None:
        per_node_mw = (
            OPTICAL_ROUTER_LEAKAGE_MW
            + NIC_LEAKAGE_MW
            + constants.THERMAL_TUNING_MW_PER_ROUTER
        )
        picojoules = per_node_mw * constants.CYCLE_TIME_PS * 1e-3 * self.mesh.num_nodes
        self.stats.add_energy("static", picojoules)

    # -- run control ----------------------------------------------------------------------

    def _pending_work(self) -> bool:
        """Packets awaiting a drop signal block :meth:`idle`."""
        return bool(self._drop_signals)


register_backend("phastlane", PhastlaneConfig, PhastlaneNetwork)
