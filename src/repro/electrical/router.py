"""The baseline electrical virtual-channel router (paper Table 2).

Microarchitecture (Booksim-style input-queued VC router):

- five ports (N, E, S, W, Local), ten single-entry VCs per input port;
- dimension-order route computation on arrival (route lookahead is implicit:
  the output port is known before allocation begins);
- iSLIP VC allocation for output virtual channels, iSLIP switch allocation
  with input speedup 4 / output speedup 1;
- credit-based flow control with wait-for-tail semantics (single-flit
  packets: the buffer frees, and the credit returns, when the flit departs);
- local ejection bypasses the crossbar: a flit destined for this node is
  accepted by the processor one cycle after entering the router;
- VCTM multicast: a flit's destination set is partitioned by output port on
  arrival; each partition departs as an independent replica.

A two- or three-cycle per-hop delay (``router_delay_cycles``) covers the
speculative pipeline plus link traversal: a flit that wins switch
allocation in cycle T enters the downstream router's input buffer in cycle
``T + router_delay_cycles``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.electrical.config import ElectricalConfig
from repro.electrical.flit import Flit
from repro.electrical.islip import Request, SwitchAllocator, VcAllocator
from repro.electrical.vctm import split_by_output
from repro.topology import GridTopology, require_grid, topology_of
from repro.util.geometry import Direction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.electrical.network import ElectricalNetwork

#: Port index order: the four mesh directions then the local port.
NUM_PORTS = 5
LOCAL_PORT = int(Direction.LOCAL)
MESH_PORTS = tuple(
    int(d) for d in (Direction.NORTH, Direction.EAST, Direction.SOUTH, Direction.WEST)
)


@dataclass
class _Group:
    """One output-port partition of a buffered flit's destinations."""

    destinations: set[int]
    out_vc: int | None = None  # downstream VC granted by VC allocation


@dataclass
class _VcState:
    """Occupancy of one input virtual channel."""

    flit: Flit
    arrival_cycle: int
    groups: dict[int, _Group] = field(default_factory=dict)
    local_pending: bool = False


class ElectricalRouter:
    """One mesh router of the electrical baseline."""

    def __init__(
        self,
        node: int,
        config: ElectricalConfig,
        topology: GridTopology | None = None,
    ):
        self.node = node
        self.config = config
        self.mesh = config.mesh
        self.topology = (
            topology
            if topology is not None
            else require_grid(topology_of(config), "the electrical router")
        )
        self.vcs: list[list[_VcState | None]] = [
            [None] * config.num_vcs for _ in range(NUM_PORTS)
        ]
        #: Free downstream VCs per mesh output port (credit state).  An
        #: entry is True when the downstream input VC is available *and*
        #: not yet promised to a local requester.
        self.credits: list[list[bool]] = [
            [True] * config.num_vcs for _ in range(NUM_PORTS)
        ]
        self._vc_allocator = VcAllocator(NUM_PORTS, config.num_vcs)
        self._sw_allocator = SwitchAllocator(
            NUM_PORTS,
            config.num_vcs,
            input_speedup=config.input_speedup,
            output_speedup=config.output_speedup,
            iterations=config.islip_iterations,
        )
        self._active: set[tuple[int, int]] = set()

    @property
    def busy(self) -> bool:
        """True while any input VC holds a flit."""
        return bool(self._active)

    # -- buffer management ----------------------------------------------------

    def free_vc_count(self, port: int) -> int:
        return sum(1 for state in self.vcs[port] if state is None)

    def occupancy(self) -> int:
        """Occupied input VCs across all ports (the buffered-flit count)."""
        return len(self._active)

    def find_free_vc(self, port: int) -> int | None:
        for vc, state in enumerate(self.vcs[port]):
            if state is None:
                return vc
        return None

    def accept_flit(
        self, port: int, vc: int, flit: Flit, cycle: int, network: "ElectricalNetwork"
    ) -> None:
        """Install an arriving (or injected) flit into an input VC."""
        if self.vcs[port][vc] is not None:
            raise RuntimeError(
                f"router {self.node}: VC ({port},{vc}) occupied on arrival"
            )
        partitions = split_by_output(self.node, flit.destinations, self.topology)
        local = partitions.pop(Direction.LOCAL, set())
        state = _VcState(
            flit=flit,
            arrival_cycle=cycle,
            groups={
                int(direction): _Group(destinations=dests)
                for direction, dests in partitions.items()
            },
            local_pending=bool(local),
        )
        self.vcs[port][vc] = state
        self._active.add((port, vc))
        network.charge_buffer_write(self.node)
        if local:
            # Ejection bypasses the crossbar: accepted one cycle later.
            network.schedule_ejection(cycle + 1, self.node, port, vc, frozenset(local))

    def complete_ejection(
        self, port: int, vc: int, cycle: int, network: "ElectricalNetwork"
    ) -> None:
        """Finish the crossbar-bypass local delivery scheduled at arrival."""
        state = self.vcs[port][vc]
        if state is None:
            raise RuntimeError(f"router {self.node}: ejection from empty VC")
        state.local_pending = False
        network.charge_buffer_read(self.node)
        self._release_if_done(port, vc, cycle, network)

    def _release_if_done(
        self, port: int, vc: int, cycle: int, network: "ElectricalNetwork"
    ) -> None:
        state = self.vcs[port][vc]
        if state is None or state.groups or state.local_pending:
            return
        self.vcs[port][vc] = None
        self._active.discard((port, vc))
        if port != LOCAL_PORT:
            # Return the credit to the upstream router that sent this flit.
            network.schedule_credit(
                cycle + self.config.credit_delay_cycles, self.node, port, vc
            )

    def restore_credit(self, output_port: int, vc: int) -> None:
        """A downstream VC we used has drained; its credit returns."""
        if self.credits[output_port][vc]:
            raise RuntimeError(
                f"router {self.node}: double credit on ({output_port},{vc})"
            )
        self.credits[output_port][vc] = True

    # -- per-cycle allocation pipeline ----------------------------------------

    def tick(self, cycle: int, network: "ElectricalNetwork") -> None:
        """Run VC allocation, switch allocation and departures for one cycle."""
        if not self._active:
            return
        self._allocate_vcs()
        self._allocate_switch_and_depart(cycle, network)

    def _allocate_vcs(self) -> None:
        """Grant downstream VCs to every group that lacks one.

        Multicast replication groups request in parallel — the VC allocator
        serves each (VC, output) pair independently, so a branch router can
        set up all its tree edges in one cycle.
        """
        requests: list[tuple[int, int, int]] = []
        for port, vc in self._active:
            state = self.vcs[port][vc]
            if state is None:
                continue
            for output_port, group in sorted(state.groups.items()):
                if group.out_vc is None:
                    requests.append((port, vc, output_port))
        if not requests:
            return
        free = {
            output: [v for v, ok in enumerate(self.credits[output]) if ok]
            for output in {output for _, _, output in requests}
        }
        grants = self._vc_allocator.allocate(requests, free)
        for (port, vc, output_port), out_vc in grants.items():
            state = self.vcs[port][vc]
            assert state is not None
            state.groups[output_port].out_vc = out_vc
            # Reserve: no other requester may be promised this downstream VC.
            self.credits[output_port][out_vc] = False

    def _allocate_switch_and_depart(
        self, cycle: int, network: "ElectricalNetwork"
    ) -> None:
        requests = [
            Request(port, vc, output_port)
            for port, vc in self._active
            if (state := self.vcs[port][vc]) is not None
            for output_port, group in sorted(state.groups.items())
            if group.out_vc is not None
        ]
        if not requests:
            return
        network.charge_allocation(self.node)
        for granted in self._sw_allocator.allocate(requests):
            self._depart(granted, cycle, network)

    def _depart(
        self, granted: Request, cycle: int, network: "ElectricalNetwork"
    ) -> None:
        port, vc, output_port = granted.input_port, granted.vc, granted.output_port
        state = self.vcs[port][vc]
        assert state is not None
        group = state.groups.pop(output_port)
        assert group.out_vc is not None
        if state.groups or state.local_pending:
            flit = state.flit.replica(group.destinations)
        else:
            flit = state.flit
            flit.destinations = group.destinations
        network.charge_buffer_read(self.node)
        network.charge_traversal(self.node)
        neighbor = self.topology.neighbor(self.node, Direction(output_port))
        if neighbor is None:
            raise RuntimeError(
                f"router {self.node}: DOR routed {flit!r} off the mesh edge"
            )
        network.schedule_link_traversal(
            cycle, self.node, neighbor, output_port, group.out_vc, flit
        )
        self._release_if_done(port, vc, cycle, network)
