"""Electrical baseline configuration (paper Table 2)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.geometry import MeshGeometry


@dataclass(frozen=True)
class ElectricalConfig:
    """Parameters of the baseline electrical VC router (Table 2).

    The defaults are exactly the paper's: a one-flit (80-byte) packet, ten
    single-entry VCs per port, iSLIP allocation, a three-cycle per-hop
    router delay (two for the very aggressive variant), input speedup four,
    output speedup one, wait-for-tail credits and a 50-entry NIC buffer.
    """

    mesh: MeshGeometry = field(default_factory=lambda: MeshGeometry(8, 8))
    #: Registered topology family over the mesh's addressable grid.  Part
    #: of spec identity; the default normalises away in serialisation.
    topology: str = "mesh"
    num_vcs: int = 10
    vc_depth: int = 1
    router_delay_cycles: int = 3
    input_speedup: int = 4
    output_speedup: int = 1
    nic_buffer_entries: int = 50
    wait_for_tail_credit: bool = True
    islip_iterations: int = 1
    #: Credit return latency from downstream buffer drain to upstream reuse.
    credit_delay_cycles: int = 1
    packet_bits: int = 80 * 8

    def __post_init__(self) -> None:
        from repro.topology import registered_topologies

        if self.topology not in registered_topologies():
            raise ValueError(
                f"unknown topology {self.topology!r}; registered: "
                f"{', '.join(registered_topologies())}"
            )
        if self.num_vcs < 1:
            raise ValueError(f"need at least one VC, got {self.num_vcs}")
        if self.vc_depth < 1:
            raise ValueError(f"VC depth must be at least 1, got {self.vc_depth}")
        if self.router_delay_cycles < 1:
            raise ValueError("router delay must be at least one cycle")
        if self.input_speedup < 1 or self.output_speedup < 1:
            raise ValueError("speedups must be at least 1")
        if self.nic_buffer_entries < 1:
            raise ValueError("NIC needs at least one buffer entry")
        if self.islip_iterations < 1:
            raise ValueError("iSLIP needs at least one iteration")
        if self.credit_delay_cycles < 0:
            raise ValueError("credit delay must be non-negative")
        if self.packet_bits < 1:
            raise ValueError("packets must carry at least one bit")

    @property
    def label(self) -> str:
        """Figure-style label, e.g. ``Electrical3`` for the 3-cycle router."""
        return f"Electrical{self.router_delay_cycles}"

    def describe(self) -> dict[str, object]:
        """The Table 2 rows."""
        return {
            "flits_per_packet": "1 (80 Bytes)",
            "routing_function": "Dimension-Order",
            "number_of_vcs_per_port": self.num_vcs,
            "number_of_entries_per_vc": self.vc_depth,
            "wait_for_tail_credit": "YES" if self.wait_for_tail_credit else "NO",
            "vc_allocator": "ISLIP",
            "sw_allocator": "ISLIP",
            "total_router_delay": f"{self.router_delay_cycles} cycles",
            "input_speedup": self.input_speedup,
            "output_speedup": self.output_speedup,
            "buffer_entries_in_nic": self.nic_buffer_entries,
        }
