"""Electrical network power model (paper section 4).

The paper augments Booksim with "dynamic power consumption and static
leakage power" using CACTI for the buffers and the Balfour & Dally tiled-CMP
component models for everything else, at 16 nm / 1.0 V / 4 GHz.  We use the
same decomposition with per-operation energies in picojoules for an 80-byte
(640-bit) flit:

- buffer write / read: CACTI-style SRAM access energy, ~0.03 pJ/bit;
- crossbar traversal: ~0.05 pJ/bit through a 5x5 640-bit crossbar with
  4x input speedup;
- allocation: the iSLIP VC + switch allocators, charged per active cycle;
- link traversal: ~0.054 pJ/bit/mm over the 1.87 mm hop with optimally
  repeatered low-swing wires;
- leakage: router static power dominated by the 50 buffer entries and the
  wide crossbar.

Only the *relative* electrical-vs-optical power matters for Fig 11; these
constants sit in the range the cited models give for a 16 nm process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.photonics.constants import CYCLE_TIME_PS, HOP_LENGTH_MM
from repro.sim.stats import NetworkStats

#: Per-bit energies (pJ/bit) at 16 nm, 1.0 V.
BUFFER_WRITE_PJ_PER_BIT = 0.030
BUFFER_READ_PJ_PER_BIT = 0.030
CROSSBAR_PJ_PER_BIT = 0.050
#: Full-swing repeated global wire, including repeater switching energy.
LINK_PJ_PER_BIT_PER_MM = 0.090
#: Allocator energy per router per active cycle (both iSLIP stages).
ALLOCATION_PJ_PER_CYCLE = 4.0
#: Static leakage per router (buffers + crossbar + allocators), in mW.
ROUTER_LEAKAGE_MW = 9.0
#: Static leakage of one 50-entry NIC buffer, in mW.
NIC_LEAKAGE_MW = 1.5


@dataclass(frozen=True)
class ElectricalPowerModel:
    """Charges electrical energy events into a :class:`NetworkStats` ledger."""

    packet_bits: int = 640
    hop_length_mm: float = HOP_LENGTH_MM
    cycle_time_ps: float = CYCLE_TIME_PS

    def __post_init__(self) -> None:
        if self.packet_bits <= 0:
            raise ValueError("packet size must be positive")
        if self.hop_length_mm <= 0 or self.cycle_time_ps <= 0:
            raise ValueError("hop length and cycle time must be positive")

    def buffer_write(self, stats: NetworkStats) -> None:
        stats.add_energy("buffer_write", self.packet_bits * BUFFER_WRITE_PJ_PER_BIT)

    def buffer_read(self, stats: NetworkStats) -> None:
        stats.add_energy("buffer_read", self.packet_bits * BUFFER_READ_PJ_PER_BIT)

    def crossbar(self, stats: NetworkStats) -> None:
        stats.add_energy("crossbar", self.packet_bits * CROSSBAR_PJ_PER_BIT)

    def link(self, stats: NetworkStats) -> None:
        stats.add_energy(
            "link", self.packet_bits * LINK_PJ_PER_BIT_PER_MM * self.hop_length_mm
        )

    def allocation(self, stats: NetworkStats) -> None:
        stats.add_energy("allocation", ALLOCATION_PJ_PER_CYCLE)

    def leakage(self, stats: NetworkStats, num_routers: int, cycles: int = 1) -> None:
        """Static energy of the whole network over ``cycles`` cycles."""
        if num_routers <= 0 or cycles < 0:
            raise ValueError("router count must be positive, cycles non-negative")
        per_router_mw = ROUTER_LEAKAGE_MW + NIC_LEAKAGE_MW
        # mW * ps = 1e-3 J/s * 1e-12 s = 1e-15 J = 1e-3 pJ
        picojoules = per_router_mw * self.cycle_time_ps * 1e-3 * num_routers * cycles
        stats.add_energy("leakage", picojoules)
