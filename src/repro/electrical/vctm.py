"""Virtual Circuit Tree Multicasting (Jerger/Peh/Lipasti, ISCA 2008).

The paper's electrical baseline "integrated ... Virtual Circuit Tree
Multicasting to perform packet broadcasts" (section 4).  VCTM builds a
dimension-order multicast tree per (source, destination-set): the packet is
forwarded once along shared tree edges and replicated at branch routers
instead of sending one unicast per destination.

Functionally, a branch router partitions the flit's remaining destinations
by the output port dimension-order routing would use for each destination;
:func:`split_by_output` implements exactly that partition, and the router
replicates the flit per non-empty partition.  :class:`VirtualCircuitTreeCache`
models the VCT table: the first packet of a (source, destination-set) pair
pays a tree-setup unicast-like pass, subsequent packets reuse the cached
tree id — mirroring the original proposal's table-hit behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Union

from repro.util.geometry import Direction, MeshGeometry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.topology import GridTopology


def split_by_output(
    node: int,
    destinations: set[int],
    mesh: "Union[MeshGeometry, GridTopology]",
) -> dict[Direction, set[int]]:
    """Partition ``destinations`` by the DOR output port at ``node``.

    Destinations equal to ``node`` map to ``Direction.LOCAL``.  The union of
    the partitions is exactly ``destinations`` (the tree covers every leaf).
    """
    partitions: dict[Direction, set[int]] = {}
    for dest in destinations:
        if dest == node:
            direction = Direction.LOCAL
        else:
            direction = mesh.dor_first_direction(node, dest)
        partitions.setdefault(direction, set()).add(dest)
    return partitions


@dataclass
class VirtualCircuitTreeCache:
    """A per-source table of established multicast trees.

    Real VCTM stores tree routing state in the routers; at the fidelity of
    this study what matters is (a) branch replication (handled by
    :func:`split_by_output`) and (b) the setup cost of a new destination
    set.  The cache tracks which sets have trees so the network can charge
    a one-time setup latency for cold trees.
    """

    capacity: int = 64
    _tables: dict[int, dict[frozenset[int], int]] = field(default_factory=dict)
    _next_id: int = 0
    hits: int = 0
    misses: int = 0

    def lookup(self, source: int, destinations: set[int]) -> tuple[int, bool]:
        """Tree id for this multicast and whether it was already set up.

        Returns ``(tree_id, hit)``.  A miss installs the tree, evicting the
        oldest entry when the per-source table is full (FIFO, matching the
        simple replacement of the original proposal's evaluation).
        """
        if self.capacity < 1:
            raise ValueError("VCT cache capacity must be at least 1")
        table = self._tables.setdefault(source, {})
        key = frozenset(destinations)
        if key in table:
            self.hits += 1
            return table[key], True
        self.misses += 1
        if len(table) >= self.capacity:
            oldest = next(iter(table))
            del table[oldest]
        tree_id = self._next_id
        self._next_id += 1
        table[key] = tree_id
        return tree_id, False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
