"""iSLIP allocation (McKeown, ToN 1999) for the baseline router.

Table 2 of the paper specifies iSLIP for both the VC allocator and the
switch allocator.  iSLIP is a separable grant/accept scheme with rotating
priority pointers that advance only when their grant is accepted in the
first iteration, which is what de-synchronises the pointers and gives the
algorithm its 100%-throughput behaviour under uniform traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


class RoundRobinArbiter:
    """A rotating-priority arbiter over a fixed number of request lines."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError(f"arbiter needs at least one line, got {size}")
        self.size = size
        self.pointer = 0

    def choose(self, requests: Iterable[int]) -> int | None:
        """The requesting line at or after the pointer (no pointer update)."""
        active = set(requests)
        if not active:
            return None
        for offset in range(self.size):
            line = (self.pointer + offset) % self.size
            if line in active:
                return line
        return None

    def advance_past(self, line: int) -> None:
        """Move the pointer one past ``line`` (iSLIP accepted-grant rule)."""
        if not 0 <= line < self.size:
            raise ValueError(f"line {line} out of range")
        self.pointer = (line + 1) % self.size


@dataclass(frozen=True)
class Request:
    """One switch-allocation request: input VC ``(port, vc)`` -> output port."""

    input_port: int
    vc: int
    output_port: int


class SwitchAllocator:
    """iSLIP switch allocation with input speedup.

    Grant pointers live per output port over the flattened (input, vc)
    space; accept pointers live per input port over the output space.  An
    input port may accept up to ``input_speedup`` grants per cycle (the
    paper's baseline has a 4x input-speedup crossbar); each output port
    issues at most ``output_speedup`` grants (1 in the baseline).
    """

    def __init__(
        self,
        num_ports: int,
        num_vcs: int,
        input_speedup: int = 1,
        output_speedup: int = 1,
        iterations: int = 1,
    ):
        if num_ports < 1 or num_vcs < 1:
            raise ValueError("ports and VCs must be at least 1")
        self.num_ports = num_ports
        self.num_vcs = num_vcs
        self.input_speedup = input_speedup
        self.output_speedup = output_speedup
        self.iterations = iterations
        self._grant = [RoundRobinArbiter(num_ports * num_vcs) for _ in range(num_ports)]
        self._accept = [RoundRobinArbiter(num_ports) for _ in range(num_ports)]

    def _line(self, input_port: int, vc: int) -> int:
        return input_port * self.num_vcs + vc

    def allocate(self, requests: Sequence[Request]) -> list[Request]:
        """Grant a conflict-free subset of ``requests``."""
        for request in requests:
            if not 0 <= request.input_port < self.num_ports:
                raise ValueError(f"bad input port in {request}")
            if not 0 <= request.output_port < self.num_ports:
                raise ValueError(f"bad output port in {request}")
            if not 0 <= request.vc < self.num_vcs:
                raise ValueError(f"bad vc in {request}")

        pending = list(requests)
        accepted: list[Request] = []
        output_slots = [self.output_speedup] * self.num_ports
        input_slots = [self.input_speedup] * self.num_ports

        for iteration in range(self.iterations):
            granted = self._grant_phase(pending, output_slots)
            newly = self._accept_phase(granted, input_slots, first=iteration == 0)
            if not newly:
                break
            accepted.extend(newly)
            # A VC may win several outputs in one cycle (multicast replication
            # through the speedup-4 crossbar), but each (VC, output) pair at
            # most once.
            taken = {(r.input_port, r.vc, r.output_port) for r in accepted}
            for request in newly:
                output_slots[request.output_port] -= 1
                input_slots[request.input_port] -= 1
            pending = [
                r
                for r in pending
                if (r.input_port, r.vc, r.output_port) not in taken
                and output_slots[r.output_port] > 0
                and input_slots[r.input_port] > 0
            ]
        return accepted

    def _grant_phase(
        self, pending: Sequence[Request], output_slots: list[int]
    ) -> list[Request]:
        granted: list[Request] = []
        by_output: dict[int, list[Request]] = {}
        for request in pending:
            by_output.setdefault(request.output_port, []).append(request)
        for output_port, candidates in by_output.items():
            if output_slots[output_port] <= 0:
                continue
            lines = {self._line(r.input_port, r.vc): r for r in candidates}
            chosen_lines: set[int] = set()
            for _ in range(output_slots[output_port]):
                line = self._grant[output_port].choose(
                    set(lines) - chosen_lines
                )
                if line is None:
                    break
                chosen_lines.add(line)
                granted.append(lines[line])
        return granted

    def _accept_phase(
        self, granted: Sequence[Request], input_slots: list[int], first: bool
    ) -> list[Request]:
        accepted: list[Request] = []
        by_input: dict[int, list[Request]] = {}
        for request in granted:
            by_input.setdefault(request.input_port, []).append(request)
        for input_port, candidates in by_input.items():
            slots = input_slots[input_port]
            if slots <= 0:
                continue
            by_output = {r.output_port: r for r in candidates}
            chosen_outputs: set[int] = set()
            for _ in range(slots):
                output = self._accept[input_port].choose(
                    set(by_output) - chosen_outputs
                )
                if output is None:
                    break
                chosen_outputs.add(output)
                request = by_output[output]
                accepted.append(request)
                if first:
                    # iSLIP: pointers advance only on a first-iteration accept.
                    self._grant[output].advance_past(
                        self._line(request.input_port, request.vc)
                    )
                    self._accept[input_port].advance_past(output)
        return accepted


class VcAllocator:
    """iSLIP-style output-VC allocation.

    Each requesting input VC asks for *any* free VC on one output port; each
    output port hands its free VCs to requesters in rotating-priority order.
    """

    def __init__(self, num_ports: int, num_vcs: int):
        self.num_ports = num_ports
        self.num_vcs = num_vcs
        self._arbiters = [
            RoundRobinArbiter(num_ports * num_vcs) for _ in range(num_ports)
        ]

    def _line(self, input_port: int, vc: int) -> int:
        return input_port * self.num_vcs + vc

    def allocate(
        self,
        requests: list[tuple[int, int, int]],
        free_vcs: dict[int, list[int]],
    ) -> dict[tuple[int, int, int], int]:
        """Assign output VCs.

        ``requests`` is a list of ``(input_port, vc, output_port)`` — one
        entry per multicast replication group, so a VC holding a multicast
        flit may request (and win) VCs on several outputs in one cycle;
        ``free_vcs`` maps output port -> currently free downstream VC ids.
        Returns ``(input_port, vc, output_port) -> granted downstream vc``.
        """
        grants: dict[tuple[int, int, int], int] = {}
        by_output: dict[int, list[tuple[int, int]]] = {}
        for input_port, vc, output_port in requests:
            by_output.setdefault(output_port, []).append((input_port, vc))
        for output_port, requesters in by_output.items():
            available = list(free_vcs.get(output_port, []))
            if not available:
                continue
            arbiter = self._arbiters[output_port]
            lines = {self._line(p, v): (p, v) for p, v in requesters}
            remaining = set(lines)
            while available and remaining:
                line = arbiter.choose(remaining)
                if line is None:
                    break
                remaining.discard(line)
                out_vc = available.pop(0)
                port, vc = lines[line]
                grants[(port, vc, output_port)] = out_vc
                arbiter.advance_past(line)
        return grants
