"""The aggressive electrical baseline network (paper section 4, Table 2).

An input-queued virtual-channel mesh router in the Booksim mould: 10 VCs per
port with one entry each, iSLIP VC and switch allocation, a speculative 2- or
3-cycle per-hop pipeline, input speedup 4, credit-based flow control with
wait-for-tail, direct local ejection, finite NIC buffering and Virtual
Circuit Tree Multicasting for broadcasts.
"""

from repro.electrical.config import ElectricalConfig
from repro.electrical.flit import Flit
from repro.electrical.islip import RoundRobinArbiter, SwitchAllocator, VcAllocator
from repro.electrical.network import ElectricalNetwork
from repro.electrical.power import ElectricalPowerModel
from repro.electrical.router import ElectricalRouter
from repro.electrical.vctm import VirtualCircuitTreeCache, split_by_output

__all__ = [
    "ElectricalConfig",
    "ElectricalNetwork",
    "ElectricalPowerModel",
    "ElectricalRouter",
    "Flit",
    "RoundRobinArbiter",
    "SwitchAllocator",
    "VcAllocator",
    "VirtualCircuitTreeCache",
    "split_by_output",
]
