"""The electrical baseline mesh network: routers, NICs, links and events.

The network is a single :class:`~repro.sim.engine.Clocked` component; all
cross-router effects (flit arrivals, credits, ejections) travel through
cycle-stamped event queues and apply at the *start* of their target cycle,
so per-cycle router evaluation order cannot affect results.

Per-cycle order of operations:

1. apply events due this cycle (arrivals into input VCs, credit returns,
   ejection completions -> deliveries);
2. pull trace/synthetic injections into the NICs;
3. inject up to one flit per node into a free local-port VC;
4. run each router's VC allocation, switch allocation and departures;
5. accrue leakage.
"""

from __future__ import annotations

from collections import defaultdict

from repro.electrical.config import ElectricalConfig
from repro.electrical.flit import Flit
from repro.electrical.nic import ElectricalNic
from repro.electrical.power import ElectricalPowerModel
from repro.electrical.router import LOCAL_PORT, ElectricalRouter
from repro.electrical.vctm import VirtualCircuitTreeCache
from repro.fabric.base import MeshNetworkBase
from repro.fabric.registry import register_backend
from repro.faults.schedule import FaultSchedule
from repro.sim.stats import NetworkStats
from repro.topology import require_grid
from repro.traffic.trace import TrafficSource
from repro.util.geometry import OPPOSITE, Direction


class ElectricalNetwork(MeshNetworkBase):
    """A mesh of :class:`ElectricalRouter` driven by a traffic source."""

    def __init__(
        self,
        config: ElectricalConfig | None = None,
        source: TrafficSource | None = None,
        stats: NetworkStats | None = None,
        faults: FaultSchedule | None = None,
    ):
        super().__init__(config or ElectricalConfig(), source, stats, faults)
        require_grid(self.topology, "the electrical VC router pipeline")
        self.power = ElectricalPowerModel(packet_bits=self.config.packet_bits)
        self.vctm = VirtualCircuitTreeCache()
        self.routers = [
            ElectricalRouter(node, self.config, topology=self.topology)
            for node in self.mesh.nodes()
        ]
        self.nics = [
            ElectricalNic(
                node, self.config, self.stats, self.vctm, trace_hub=self.trace_hub
            )
            for node in self.mesh.nodes()
        ]
        self._arrivals: dict[int, list[tuple[int, int, int, Flit]]] = defaultdict(list)
        self._credits: dict[int, list[tuple[int, int, int]]] = defaultdict(list)
        self._ejections: dict[int, list[tuple[int, int, int, frozenset[int]]]] = (
            defaultdict(list)
        )
        self._in_flight = 0
        #: Link-level retries after a faulted crossing, keyed by the cycle
        #: the nack round trip completes: (sender, neighbor, port, vc,
        #: flit, attempts so far).
        self._link_retries: dict[
            int, list[tuple[int, int, int, int, Flit, int]]
        ] = defaultdict(list)

    # -- event scheduling (called by routers) ---------------------------------

    def schedule_arrival(
        self, cycle: int, node: int, port: int, vc: int, flit: Flit
    ) -> None:
        self._arrivals[cycle].append((node, port, vc, flit))
        self._in_flight += 1
        if self.trace_hub:
            # The hop lands at the downstream router when the link delay
            # elapses; stamp the event with that arrival cycle.
            self.trace_hub.emit("hop", cycle, node, flit.uid)

    def schedule_link_traversal(
        self, cycle: int, sender: int, neighbor: int, port: int, vc: int, flit: Flit
    ) -> None:
        """Send a departing flit across the ``sender -> neighbor`` link.

        The fault-free path is exactly the historical behaviour: the flit
        arrives ``router_delay_cycles`` later.  With fault injection active
        the crossing is first checked against the schedule; a faulted flit
        never reaches the neighbour and instead enters the link-level
        nack/retry loop (see :meth:`_handle_link_fault`).
        """
        if self._faults is not None:
            kind = self._faults.crossing_fault(sender, port, cycle)
            if kind is not None:
                self._handle_link_fault(
                    cycle, sender, neighbor, port, vc, flit, kind, attempts=1
                )
                return
        self.schedule_arrival(
            cycle + self.config.router_delay_cycles, neighbor, port, vc, flit
        )

    def _handle_link_fault(
        self,
        cycle: int,
        sender: int,
        neighbor: int,
        port: int,
        vc: int,
        flit: Flit,
        kind: str,
        attempts: int,
    ) -> None:
        """One faulted crossing: nack/resend, or give up at the retry limit.

        The baseline's recovery is link-level retry: the downstream CRC
        check nacks the corrupted/lost flit and the sender re-drives it
        after a nack round trip (two link delays).  The downstream VC
        reserved at allocation stays reserved across retries — the resent
        flit lands in it — and is explicitly re-credited when the flit is
        abandoned, since no drain-credit will ever come back for a flit
        that never arrived.
        """
        assert self._faults is not None
        self.stats.record_fault(kind)
        self._fault_hit.add(flit.uid)
        fault_node = neighbor if kind == "corrupt" else sender
        if self.trace_hub:
            self.trace_hub.emit(
                "fault_injected", cycle, fault_node, flit.uid,
                extra={
                    "fault": kind,
                    # Topology-derived label of the faulted crossing (the
                    # sender's output port), correct on wrapped graphs.
                    "port": self.topology.port_label(sender, port),
                },
            )
        if attempts > self._faults.config.retry_limit:
            self.stats.record_fault_loss(len(flit.destinations))
            if self.trace_hub:
                self.trace_hub.emit(
                    "fault_dropped", cycle, fault_node, flit.uid,
                    extra={"lost": len(flit.destinations), "attempts": attempts},
                )
            self.routers[sender].restore_credit(port, vc)
            return
        self.stats.record_retransmission()
        if self.trace_hub:
            self.trace_hub.emit(
                "retransmitted", cycle, sender, flit.uid,
                extra={"attempts": attempts},
            )
        retry_cycle = cycle + 2 * self.config.router_delay_cycles
        self._link_retries[retry_cycle].append(
            (sender, neighbor, port, vc, flit, attempts)
        )

    def schedule_credit(self, cycle: int, node: int, input_port: int, vc: int) -> None:
        """A VC at ``node``'s ``input_port`` drained; credit the upstream."""
        self._credits[cycle].append((node, input_port, vc))

    def schedule_ejection(
        self, cycle: int, node: int, port: int, vc: int, destinations: frozenset[int]
    ) -> None:
        self._ejections[cycle].append((node, port, vc, destinations))

    # -- energy hooks ----------------------------------------------------------

    def charge_buffer_write(self, node: int) -> None:
        self.power.buffer_write(self.stats)

    def charge_buffer_read(self, node: int) -> None:
        self.power.buffer_read(self.stats)

    def charge_traversal(self, node: int) -> None:
        self.power.crossbar(self.stats)
        self.power.link(self.stats)
        self.stats.record_hops(1)

    def charge_allocation(self, node: int) -> None:
        self.power.allocation(self.stats)

    # -- per-cycle hooks (MeshNetworkBase) --------------------------------------

    def _step_cycle(self, cycle: int) -> None:
        self._apply_events(cycle)
        self._generate_and_inject(cycle)
        for router in self.routers:
            router.tick(cycle, self)

    def _end_of_cycle(self, cycle: int) -> None:
        self.power.leakage(self.stats, self.mesh.num_nodes)

    # -- internals ---------------------------------------------------------------

    def _apply_events(self, cycle: int) -> None:
        for sender, neighbor, port, vc, flit, attempts in self._link_retries.pop(
            cycle, ()
        ):
            assert self._faults is not None
            kind = self._faults.crossing_fault(sender, port, cycle)
            if kind is not None:
                self._handle_link_fault(
                    cycle, sender, neighbor, port, vc, flit, kind, attempts + 1
                )
                continue
            self.stats.record_fault_masked()
            if self.trace_hub:
                self.trace_hub.emit("fault_masked", cycle, sender, flit.uid)
            self.schedule_arrival(
                cycle + self.config.router_delay_cycles, neighbor, port, vc, flit
            )
        for node, port, vc, flit in self._arrivals.pop(cycle, ()):
            self.routers[node].accept_flit(port, vc, flit, cycle, self)
            self._in_flight -= 1
            if self.trace_hub:
                self.trace_hub.emit("buffered", cycle, node, flit.uid)
        for node, input_port, vc in self._credits.pop(cycle, ()):
            upstream = self.topology.neighbor(node, OPPOSITE[Direction(input_port)])
            if upstream is None:
                raise RuntimeError(
                    f"credit from node {node} port {input_port} has no upstream"
                )
            self.routers[upstream].restore_credit(input_port, vc)
        for node, port, vc, destinations in self._ejections.pop(cycle, ()):
            router = self.routers[node]
            state = router.vcs[port][vc]
            if state is None:
                raise RuntimeError(f"ejection event on empty VC at node {node}")
            for _ in destinations:
                self.stats.record_delivered(state.flit.generated_cycle, cycle)
                self._note_fault_delivery(state.flit.uid)
                if self.trace_hub:
                    self.trace_hub.emit("delivered", cycle, node, state.flit.uid)
            router.complete_ejection(port, vc, cycle, self)

    def _inject_from_nic(self, node: int, nic: ElectricalNic, cycle: int) -> None:
        """Inject the head flit into a free local-port VC, if any."""
        flit = nic.next_injectable(cycle)
        if flit is None:
            return
        router = self.routers[node]
        vc = router.find_free_vc(LOCAL_PORT)
        if vc is None:
            # All local-port VCs busy; retry next cycle.
            if self.trace_hub:
                self.trace_hub.emit("blocked", cycle, node, flit.uid)
            return
        nic.consume_head(cycle)
        router.accept_flit(LOCAL_PORT, vc, flit, cycle, self)

    # -- run control ----------------------------------------------------------------

    def _pending_work(self) -> bool:
        """In-flight link traversals and scheduled events block :meth:`idle`."""
        return bool(
            self._in_flight
            or self._arrivals
            or self._ejections
            or self._credits
            or self._link_retries
        )


register_backend("electrical", ElectricalConfig, ElectricalNetwork)
