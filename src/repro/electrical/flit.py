"""Flits and packets for the electrical network.

Both networks use single-flit packets (an entire 80-byte cache-line message
per flit, Table 1/Table 2), so a :class:`Flit` here *is* a packet.  For
multicasts a flit carries a set of remaining destinations; Virtual Circuit
Tree Multicasting replicates the flit at tree branch points, each replica
taking a disjoint subset of the destinations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.traffic.coherence import MessageKind

_uid_counter = itertools.count()


@dataclass
class Flit:
    """A single-flit packet (possibly a multicast replica).

    ``destinations`` is the set of nodes this copy must still reach; it
    shrinks as VCTM replication splits the set at branch routers.  The
    ``generated_cycle`` is inherited by replicas so every delivery's latency
    is measured from the original injection request.
    """

    source: int
    destinations: set[int]
    generated_cycle: int
    kind: MessageKind = MessageKind.DATA_RESPONSE
    uid: int = field(default_factory=lambda: next(_uid_counter))
    injected_cycle: int = -1

    def __post_init__(self) -> None:
        if not self.destinations:
            raise ValueError("a flit needs at least one destination")
        if self.source in self.destinations:
            raise ValueError("a flit may not target its own source")
        if self.generated_cycle < 0:
            raise ValueError("generation cycle must be non-negative")

    @property
    def is_multicast(self) -> bool:
        return len(self.destinations) > 1

    def replica(self, destinations: set[int]) -> "Flit":
        """A VCTM branch copy covering ``destinations`` (a new uid)."""
        if not destinations <= self.destinations:
            raise ValueError("replica destinations must be a subset")
        return Flit(
            source=self.source,
            destinations=set(destinations),
            generated_cycle=self.generated_cycle,
            kind=self.kind,
            injected_cycle=self.injected_cycle,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dests = ",".join(map(str, sorted(self.destinations)))
        return f"Flit#{self.uid}({self.source}->{dests})"
