"""Router critical-path latency model and hops-per-cycle solver (Figs 5-6).

Section 3.1 of the paper identifies four internal router operations whose
delays bound the network clock:

- **Packet Pass (PP)**: a packet transits to an output port, first forcing
  contending lower-priority packets to be received at their input ports:
  (a) receive the router-control bits, (b) drive the C0 Group-1 resonators
  of the blocked packets, (c) that signal drives the blocked packets'
  receive resonators, (d) traverse the remainder of the switch.
- **Packet Block (PB)**: like PP, but step (d) is replaced by receiving the
  blocked packet itself.
- **Packet Accept (PA)**: receive control bits, drive the receive
  resonators, receive the packet.
- **Packet Interim Accept (PIA)**: PA plus generating the buffer
  write-enable at an interim node.

The longest network path is: drive the source modulators, X Packet Passes,
X+1 inter-router links, one Packet Accept, plus register overhead and clock
skew.  Solving for the largest X that fits in a 250 ps cycle yields the
paper's 8 / 5 / 4 hops for optimistic / average / pessimistic scaling,
independent of the WDM degree (Fig 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.photonics import constants
from repro.photonics.components import OpticalLink, RouterOptics
from repro.photonics.scaling import ScalingScenario, scenario_delays

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.topology import Topology


@dataclass(frozen=True)
class CriticalPathDelays:
    """The four Fig 5 path delays (ps) for one scenario and WDM degree."""

    scenario: str
    payload_wdm: int
    packet_pass_ps: float
    packet_block_ps: float
    packet_accept_ps: float
    packet_interim_accept_ps: float

    def as_dict(self) -> dict[str, float]:
        return {
            "PP": self.packet_pass_ps,
            "PB": self.packet_block_ps,
            "PA": self.packet_accept_ps,
            "PIA": self.packet_interim_accept_ps,
        }


@dataclass(frozen=True)
class PathComponentBreakdown:
    """Component-level breakdown of one critical path (one Fig 5 bar)."""

    receive_control_ps: float
    drive_resonators_ps: float
    finish_ps: float  # traversal (PP), packet receive (PB/PA), etc.

    @property
    def total_ps(self) -> float:
        return self.receive_control_ps + self.drive_resonators_ps + self.finish_ps


class RouterLatencyModel:
    """Critical-path delays through one Phastlane router.

    Parameters
    ----------
    scenario:
        A scaling scenario (or its name) defining the 16 nm component delays.
    payload_wdm:
        WDM degree of the payload waveguides (32/64/128 in the paper).
    """

    def __init__(
        self,
        scenario: ScalingScenario | str,
        payload_wdm: int = 64,
        round_robin_arbitration: bool = False,
    ):
        if isinstance(scenario, str):
            scenario = scenario_delays(scenario)
        self.scenario = scenario
        self.payload_wdm = payload_wdm
        self.round_robin_arbitration = round_robin_arbitration
        self.optics = RouterOptics(scenario)
        self._t_rx = scenario.receive_ps
        self._t_drive = scenario.resonator_drive_ps
        self._t_cross = self.optics.crossbar_traversal_ps(payload_wdm)

    # -- individual paths ---------------------------------------------------

    @property
    def _arbitration_stages(self) -> int:
        """Resonator-drive stages in the blocking path.

        Fixed priority needs two (the Group-1 straight bit drives the
        blocked packets' receive resonators directly).  A round-robin
        arbiter must first resolve the grant before driving, adding a
        stage — the "increasing crossbar latency" of footnote 3.
        """
        return 3 if self.round_robin_arbitration else 2

    def packet_pass_breakdown(self) -> PathComponentBreakdown:
        """PP: receive control, drive the resonator stages, traverse."""
        return PathComponentBreakdown(
            receive_control_ps=self._t_rx,
            drive_resonators_ps=self._arbitration_stages * self._t_drive,
            finish_ps=self._t_cross,
        )

    def packet_block_breakdown(self) -> PathComponentBreakdown:
        """PB: like PP but the traversal is replaced by receiving the packet."""
        return PathComponentBreakdown(
            receive_control_ps=self._t_rx,
            drive_resonators_ps=self._arbitration_stages * self._t_drive,
            finish_ps=self._t_rx,
        )

    def packet_accept_breakdown(self) -> PathComponentBreakdown:
        """PA: receive control, drive the receive resonators, receive packet."""
        return PathComponentBreakdown(
            receive_control_ps=self._t_rx,
            drive_resonators_ps=self._t_drive,
            finish_ps=self._t_rx,
        )

    def packet_interim_accept_breakdown(self) -> PathComponentBreakdown:
        """PIA: PA plus the buffer write-enable at the interim node."""
        accept = self.packet_accept_breakdown()
        return PathComponentBreakdown(
            receive_control_ps=accept.receive_control_ps,
            drive_resonators_ps=accept.drive_resonators_ps,
            finish_ps=accept.finish_ps + constants.WRITE_ENABLE_DELAY_PS,
        )

    def critical_paths(self) -> CriticalPathDelays:
        """All four Fig 5 delays."""
        return CriticalPathDelays(
            scenario=self.scenario.name,
            payload_wdm=self.payload_wdm,
            packet_pass_ps=self.packet_pass_breakdown().total_ps,
            packet_block_ps=self.packet_block_breakdown().total_ps,
            packet_accept_ps=self.packet_accept_breakdown().total_ps,
            packet_interim_accept_ps=self.packet_interim_accept_breakdown().total_ps,
        )

    # -- end-to-end path ----------------------------------------------------

    def network_path_delay_ps(
        self, hops: int, link: OpticalLink | None = None
    ) -> float:
        """Worst-case source-to-acceptance delay over ``hops`` mesh hops.

        ``hops`` counts inter-router links.  Per the paper, X routers
        between source and destination means X Packet Pass delays and X+1
        link delays, i.e. ``hops = X + 1`` links and ``hops - 1``
        intermediate routers to pass through.
        """
        if hops < 1:
            raise ValueError(f"a network path needs at least one hop, got {hops}")
        link = link or OpticalLink()
        transit_routers = hops - 1
        return (
            self.scenario.transmit_ps
            + transit_routers * self.packet_pass_breakdown().total_ps
            + hops * link.delay_ps
            + self.packet_accept_breakdown().total_ps
            + constants.REGISTER_AND_SKEW_PS
        )

    def topology_path_delay_ps(
        self,
        topology: "Topology",
        source: int,
        destination: int,
        hop_length_mm: float = constants.HOP_LENGTH_MM,
    ) -> float:
        """Worst-case delay along a topology's shortest route.

        Like :meth:`network_path_delay_ps`, but the per-link waveguide
        lengths come from the topology's metric (wrap links on a folded
        torus are twice the hop length), so the Fig 5/6 timing analysis
        extends beyond the uniform mesh.
        """
        route = topology.shortest_route(source, destination)
        directions = topology.route_directions(route)
        if not directions:
            raise ValueError(
                f"a network path needs distinct endpoints, got "
                f"{source} -> {destination}"
            )
        links_ps = sum(
            OpticalLink(
                topology.link_length_mm(node, int(direction), hop_length_mm)
            ).delay_ps
            for node, direction in zip(route[:-1], directions)
        )
        transit_routers = len(directions) - 1
        return (
            self.scenario.transmit_ps
            + transit_routers * self.packet_pass_breakdown().total_ps
            + links_ps
            + self.packet_accept_breakdown().total_ps
            + constants.REGISTER_AND_SKEW_PS
        )

    def max_hops_per_cycle(
        self,
        cycle_time_ps: float = constants.CYCLE_TIME_PS,
        link: OpticalLink | None = None,
    ) -> int:
        """Largest hop count whose worst-case delay fits in one cycle (Fig 6)."""
        if cycle_time_ps <= 0:
            raise ValueError("cycle time must be positive")
        hops = 0
        while self.network_path_delay_ps(hops + 1, link) <= cycle_time_ps:
            hops += 1
            if hops > 1024:  # pragma: no cover - defensive
                raise RuntimeError("hop solver failed to terminate")
        return hops


def max_hops_per_cycle(scenario: str, payload_wdm: int = 64) -> int:
    """Convenience wrapper: Fig 6 value for one scenario and WDM degree.

    >>> max_hops_per_cycle("average")
    5
    """
    return RouterLatencyModel(scenario, payload_wdm).max_hops_per_cycle()


def figure5_delays(wdm_degrees: tuple[int, ...] = (32, 64, 128)) -> list[CriticalPathDelays]:
    """All Fig 5 bars: 4 paths x 3 scenarios x the given WDM degrees."""
    return [
        RouterLatencyModel(scenario, wdm).critical_paths()
        for scenario in constants.SCALING_SCENARIOS
        for wdm in wdm_degrees
    ]


def figure6_hops(wdm_degrees: tuple[int, ...] = (32, 64, 128)) -> dict[str, dict[int, int]]:
    """Fig 6: {scenario: {wdm_degree: max hops per 4 GHz cycle}}."""
    return {
        scenario: {wdm: max_hops_per_cycle(scenario, wdm) for wdm in wdm_degrees}
        for scenario in constants.SCALING_SCENARIOS
    }
