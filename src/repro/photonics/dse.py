"""Design-space exploration tying the section-3 models together (Table 1).

The paper sweeps the WDM degree and maximum hops-per-cycle under the three
scaling scenarios, then settles on the Table 1 configuration: 64-way payload
WDM (the area sweet spot that fits a single-core node), a four-hop network
(best performance/peak-power tradeoff) with five- and eight-hop variants for
the average and optimistic scaling assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.photonics import constants
from repro.photonics.area import RouterAreaModel
from repro.photonics.latency import RouterLatencyModel
from repro.photonics.power import REASONABLE_PEAK_W, OpticalPowerModel
from repro.photonics.wdm import PacketLayout

#: Scenario implied by each evaluated hop count (section 5, first paragraph).
HOPS_TO_SCENARIO = {4: "pessimistic", 5: "average", 8: "optimistic"}


@dataclass(frozen=True)
class DesignPoint:
    """One (WDM degree, scaling scenario) design point with derived metrics."""

    payload_wdm: int
    scenario: str
    max_hops_per_cycle: int
    router_area_mm2: float
    peak_power_w_at_98pct: float

    @property
    def feasible(self) -> bool:
        """Fits a single-core node and a reasonable laser budget."""
        return (
            self.router_area_mm2 <= constants.NODE_AREA_SINGLE_CORE_MM2 + 1e-9
            and self.peak_power_w_at_98pct <= REASONABLE_PEAK_W
        )


class DesignSpaceExplorer:
    """Evaluates WDM/scenario design points and picks the Table 1 choice."""

    def __init__(self, crossing_efficiency: float = 0.98):
        self.crossing_efficiency = crossing_efficiency
        self._area = RouterAreaModel()
        self._power = OpticalPowerModel()

    def evaluate(self, payload_wdm: int, scenario: str) -> DesignPoint:
        hops = RouterLatencyModel(scenario, payload_wdm).max_hops_per_cycle()
        return DesignPoint(
            payload_wdm=payload_wdm,
            scenario=scenario,
            max_hops_per_cycle=hops,
            router_area_mm2=self._area.area_mm2(payload_wdm),
            peak_power_w_at_98pct=self._power.peak_power_w(
                payload_wdm, max(1, hops), self.crossing_efficiency
            ),
        )

    def sweep(
        self,
        wdm_degrees: Sequence[int] = (32, 64, 128),
        scenarios: Sequence[str] = constants.SCALING_SCENARIOS,
    ) -> list[DesignPoint]:
        return [
            self.evaluate(wdm, scenario)
            for wdm in wdm_degrees
            for scenario in scenarios
        ]

    def select_wdm(self, wdm_degrees: Sequence[int] = (32, 64, 128)) -> int:
        """The WDM degree the paper selects: the area sweet spot (64)."""
        return self._area.sweet_spot(wdm_degrees)


def table1_configuration() -> dict[str, object]:
    """The paper's Table 1 rows, derived from the models where applicable."""
    explorer = DesignSpaceExplorer()
    wdm = explorer.select_wdm()
    layout = PacketLayout(payload_wdm=wdm)
    hops = sorted(
        RouterLatencyModel(scenario, wdm).max_hops_per_cycle()
        for scenario in constants.SCALING_SCENARIOS
    )
    config: dict[str, object] = {
        "flits_per_packet": "1 (80 Bytes)",
        "packet_payload_wdm": layout.payload_wdm,
        "packet_payload_waveguides": layout.payload_waveguides,
        "routing_function": "Dimension-Order",
        "packet_control_bits": layout.control_bits,
        "packet_control_wdm": layout.control_wdm,
        "packet_control_waveguides": layout.control_waveguides,
        "buffer_entries_in_nic": 50,
        "max_hops_per_cycle": ", ".join(str(h) for h in hops),
        "node_transmit_arbitration": "Rotating Priority",
        "network_path_arbitration": "Fixed Priority",
    }
    return config
