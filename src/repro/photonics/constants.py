"""Calibrated physical and technology constants for the photonic models.

Every number here is either taken directly from the paper, from the
literature the paper cites, or is a *calibrated* constant whose derivation is
documented inline.  Calibrated constants are chosen so the analytical models
reproduce the paper's stated anchor results exactly:

- Fig 6: max hops per 4 GHz cycle = 8 / 5 / 4 under optimistic / average /
  pessimistic scaling, independent of WDM degree (32/64/128);
- Fig 7: peak optical power 32 W for (64λ, 4 hops, 98% crossing efficiency),
  32 W for (128λ, 5 hops, 98%), 15 W for (128λ, 4 hops, 98%);
- Fig 8: router area sweet spot at 64 wavelengths, matching the 3.5 mm²
  single-core node area.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Clocking (paper section 4: 16 nm node, 4 GHz processor and network clock).
# --------------------------------------------------------------------------
NETWORK_FREQUENCY_GHZ = 4.0
CYCLE_TIME_PS = 1e3 / NETWORK_FREQUENCY_GHZ  # 250 ps
#: Register setup/hold plus clock skew budgeted per cycle (section 3.1
#: "register overhead and clock skew"); calibrated.
REGISTER_AND_SKEW_PS = 5.0

# --------------------------------------------------------------------------
# Waveguides (paper section 3.1, citing Kirman et al.).
# --------------------------------------------------------------------------
#: Optical group delay in silicon waveguides; constant across technology.
WAVEGUIDE_DELAY_PS_PER_MM = 10.45

# --------------------------------------------------------------------------
# Die geometry (paper section 3.3, Kumar et al. methodology).
# --------------------------------------------------------------------------
#: Single core + 64KB L1s + 2MB L2 + memory controller.
NODE_AREA_SINGLE_CORE_MM2 = 3.5
#: Two cores sharing an L2.
NODE_AREA_DUAL_CORE_MM2 = 4.5
#: Four cores sharing an L2.
NODE_AREA_QUAD_CORE_MM2 = 6.5
#: Inter-router hop length = pitch of a 3.5 mm² node.
HOP_LENGTH_MM = NODE_AREA_SINGLE_CORE_MM2**0.5  # 1.871 mm

# --------------------------------------------------------------------------
# 16 nm component delays (ps) per scaling scenario (paper Fig 4: transmit
# 8.0-19.4 ps, receive 1.8-3.7 ps at 16 nm).  The resonator drive delay is
# the dominant contributor to the in-router critical paths ("most of the
# delay involves driving the resonators", section 3.1); its per-scenario
# values are calibrated so the hops-per-cycle solver lands on 8/5/4.
# --------------------------------------------------------------------------
TRANSMIT_DELAY_PS = {"optimistic": 8.0, "average": 12.0, "pessimistic": 19.4}
RECEIVE_DELAY_PS = {"optimistic": 1.8, "average": 2.6, "pessimistic": 3.7}
RESONATOR_DRIVE_DELAY_PS = {"optimistic": 1.5, "average": 9.0, "pessimistic": 12.0}
SCALING_SCENARIOS = ("optimistic", "average", "pessimistic")

#: Fixed waveguide length of the straight-line path across a router's
#: internal crossbar (~0.38 mm), expressed as delay.  Chosen above the
#: largest receive delay so that Packet Pass exceeds Packet Block for every
#: scenario, as the paper observes in section 3.1.
ROUTER_TRAVERSAL_BASE_PS = 4.0
#: Extra in-router waveguide length per WDM channel on a port (each
#: wavelength adds one resonator/receiver pair to the input port, paper
#: section 3.3); small enough that Fig 6 is WDM-independent.
ROUTER_TRAVERSAL_PER_WAVELENGTH_PS = 0.0005
#: Buffer write-enable generation on top of a Packet Accept when the packet
#: is latched at an interim node (distinguishes PIA from PA in Fig 5).
WRITE_ENABLE_DELAY_PS = 1.0

# --------------------------------------------------------------------------
# Packet layout (paper Table 1 / Fig 3).
# --------------------------------------------------------------------------
PACKET_PAYLOAD_BITS = 80 * 8  # 640: 64B data + addr/type/source/EDC/misc
PACKET_CONTROL_BITS = 70  # 14 routers x 5 bits (S, L, R, Local, Multicast)
CONTROL_BITS_PER_ROUTER = 5
MAX_CONTROL_GROUPS = 14
PAYLOAD_WAVEGUIDES_AT_64WDM = 10
CONTROL_WAVEGUIDES = 2
CONTROL_WDM = 35

# --------------------------------------------------------------------------
# Area model (paper Fig 8); calibrated as derived in DESIGN.md section 4.
# The router side length is modelled as
#     side(Λ) = 2 * K_WG_UM * W(Λ) + K_PORT_UM * Λ + AREA_BASE_UM   [µm]
# with W(Λ) = payload/control waveguides per direction.  The minimum of the
# waveguide term (∝ 1/Λ) plus the port term (∝ Λ) falls at Λ = 64 and gives
# side = 1.871 mm, i.e. exactly the 3.5 mm² single-core node.
# --------------------------------------------------------------------------
K_WG_UM = 38.4  # channel width per waveguide incl. turn resonator spacing
K_PORT_UM = 12.0  # input-port length per wavelength (resonator/receiver pitch)
AREA_BASE_UM = 180.0  # fixed overhead: bends, couplers, guard rings

# --------------------------------------------------------------------------
# Peak optical power model (paper Fig 7); calibrated to the three anchors.
# Per-router loss exponent e(Λ) = K_CROSS_PER_WG * W(Λ) + K_PORT_LOSS * Λ:
# crossings scale with the perpendicular channel's waveguide count, and
# through-ring/port losses scale with the WDM degree.  Solving the anchor
# equations gives the constants below (see DESIGN.md section 4).
# --------------------------------------------------------------------------
K_CROSS_PER_WG = 3.31
K_PORT_LOSS_PER_WAVELENGTH = 0.1125

# --------------------------------------------------------------------------
# Optical energy/power accounting (section 5 / Fig 11).  Literature-family
# estimates at 16 nm; only relative optical-vs-electrical power matters.
# --------------------------------------------------------------------------
MODULATOR_ENERGY_PJ_PER_BIT = 0.020  # E/O conversion incl. ring driver
RECEIVER_ENERGY_PJ_PER_BIT = 0.015  # O/E conversion incl. amplifier
#: Static ring-resonator thermal tuning per router (all rings).
THERMAL_TUNING_MW_PER_ROUTER = 1.0
#: Receiver sensitivity: optical power that must reach each receiver.
RECEIVER_SENSITIVITY_UW = 10.0
#: Laser wall-plug efficiency (electrical power = optical power / efficiency).
LASER_EFFICIENCY = 0.3
#: Fraction of optical input power tapped by one broadcast resonator pair.
MULTICAST_TAP_FRACTION = 0.10
