"""Technology scaling of optical component delays (paper section 3.1, Fig 4).

The paper starts from the Kirman et al. component-delay dataset (45 nm down
to 22 nm) and extrapolates to 16 nm with three curve fits:

- **logarithmic** fit  -> the *optimistic* scenario (steepest improvement),
- **linear** fit       -> the *average* scenario,
- **exponential** fit  -> the *pessimistic* scenario (improvement levels off).

We do not have the raw Kirman dataset, so :data:`TRANSMIT_ANCHORS_PS` and
:data:`RECEIVE_ANCHORS_PS` are synthetic anchor points chosen so that the
three fits land near the paper's stated 16 nm endpoints (transmit
8.0-19.4 ps, receive 1.8-3.7 ps).  The *canonical* per-scenario 16 nm delays
used by the latency solver are the paper's exact values, stored in
:mod:`repro.photonics.constants`; the fits here regenerate Fig 4's trends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.photonics import constants

#: Feature sizes (nm) of the synthetic Kirman-style anchor dataset.
ANCHOR_NODES_NM = (45.0, 32.0, 22.0)
#: Aggregate transmit-path delay (modulator + driver + serialization), ps.
TRANSMIT_ANCHORS_PS = (42.0, 28.0, 19.0)
#: Aggregate receive-path delay (detector + TIA + deserialization), ps.
RECEIVE_ANCHORS_PS = (8.0, 5.3, 3.6)
#: The paper's extrapolation target.
TARGET_NODE_NM = 16.0

#: Mapping from scaling scenario name to the functional form it uses.
SCENARIO_FIT: dict[str, str] = {
    "optimistic": "logarithmic",
    "average": "linear",
    "pessimistic": "exponential",
}


@dataclass(frozen=True)
class ScalingScenario:
    """Canonical 16 nm component delays for one scaling assumption."""

    name: str
    transmit_ps: float
    receive_ps: float
    resonator_drive_ps: float

    @property
    def fit_kind(self) -> str:
        return SCENARIO_FIT[self.name]


def scenario_delays(name: str) -> ScalingScenario:
    """The canonical 16 nm delays for ``name`` (Fig 4 endpoints).

    >>> scenario_delays("average").transmit_ps
    12.0
    """
    if name not in constants.SCALING_SCENARIOS:
        raise ValueError(
            f"unknown scaling scenario {name!r}; "
            f"expected one of {constants.SCALING_SCENARIOS}"
        )
    return ScalingScenario(
        name=name,
        transmit_ps=constants.TRANSMIT_DELAY_PS[name],
        receive_ps=constants.RECEIVE_DELAY_PS[name],
        resonator_drive_ps=constants.RESONATOR_DRIVE_DELAY_PS[name],
    )


def all_scenarios() -> list[ScalingScenario]:
    """All three scaling scenarios in the paper's order."""
    return [scenario_delays(name) for name in constants.SCALING_SCENARIOS]


def _least_squares_line(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Ordinary least-squares fit ``y = a + b*x``; returns ``(a, b)``."""
    n = len(xs)
    if n < 2 or n != len(ys):
        raise ValueError("need at least two (x, y) pairs of equal length")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("degenerate fit: all x values identical")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    b = sxy / sxx
    return mean_y - b * mean_x, b


class DelayScalingModel:
    """Curve-fit extrapolation of a component delay across technology nodes.

    ``fit_kind`` selects the functional form:

    - ``"linear"``:       d(x) = a + b*x
    - ``"logarithmic"``:  d(x) = a + b*ln(x)
    - ``"exponential"``:  d(x) = a*exp(b*x)

    where ``x`` is the feature size in nm.  All fits are least squares on the
    anchor data (the exponential via a log transform of the delays).
    """

    def __init__(
        self,
        nodes_nm: Sequence[float],
        delays_ps: Sequence[float],
        fit_kind: str,
    ):
        if fit_kind not in ("linear", "logarithmic", "exponential"):
            raise ValueError(f"unknown fit kind {fit_kind!r}")
        if any(d <= 0 for d in delays_ps) or any(x <= 0 for x in nodes_nm):
            raise ValueError("anchor nodes and delays must be positive")
        self.nodes_nm = tuple(nodes_nm)
        self.delays_ps = tuple(delays_ps)
        self.fit_kind = fit_kind
        self._predict = self._build()

    def _build(self) -> Callable[[float], float]:
        if self.fit_kind == "linear":
            a, b = _least_squares_line(self.nodes_nm, self.delays_ps)
            return lambda x: a + b * x
        if self.fit_kind == "logarithmic":
            a, b = _least_squares_line(
                [math.log(x) for x in self.nodes_nm], self.delays_ps
            )
            return lambda x: a + b * math.log(x)
        a, b = _least_squares_line(
            self.nodes_nm, [math.log(d) for d in self.delays_ps]
        )
        return lambda x: math.exp(a + b * x)

    def delay_at(self, node_nm: float) -> float:
        """Fitted delay (ps) at a feature size; clamped to be non-negative."""
        if node_nm <= 0:
            raise ValueError(f"feature size must be positive, got {node_nm}")
        return max(0.0, self._predict(node_nm))

    def trend(self, nodes_nm: Sequence[float]) -> list[float]:
        """Fitted delays over a sweep of feature sizes (one Fig 4 series)."""
        return [self.delay_at(x) for x in nodes_nm]


def transmit_model(fit_kind: str) -> DelayScalingModel:
    """Scaling model for the aggregate transmit delay."""
    return DelayScalingModel(ANCHOR_NODES_NM, TRANSMIT_ANCHORS_PS, fit_kind)


def receive_model(fit_kind: str) -> DelayScalingModel:
    """Scaling model for the aggregate receive delay."""
    return DelayScalingModel(ANCHOR_NODES_NM, RECEIVE_ANCHORS_PS, fit_kind)


def figure4_series(
    nodes_nm: Sequence[float] = (45.0, 40.0, 36.0, 32.0, 28.0, 25.0, 22.0, 19.0, 16.0),
) -> dict[str, dict[str, list[float]]]:
    """The six Fig 4 series: {component: {scenario: delays over nodes}}.

    Component keys are ``"transmit"`` and ``"receive"``; scenario keys are
    the three scaling-scenario names.
    """
    series: dict[str, dict[str, list[float]]] = {"transmit": {}, "receive": {}}
    for scenario, fit_kind in SCENARIO_FIT.items():
        series["transmit"][scenario] = transmit_model(fit_kind).trend(nodes_nm)
        series["receive"][scenario] = receive_model(fit_kind).trend(nodes_nm)
    return series
