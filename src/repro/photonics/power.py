"""Peak optical power model (paper section 3.2, Fig 7).

The peak occurs when every input port of every router simultaneously
receives a multicast packet from its nearest neighbour, all packets turn in
the same direction, every return path is signalling a drop and every buffer
arbitrates — the maximum number of waveguide crossings and activated
components.  The required laser input power then grows exponentially with
the number of lossy crossings each wavelength must survive:

    P_peak(L, H, eta) = P_base * eta ** -(H * e(L))
    e(L) = K_CROSS_PER_WG * W(L) + K_PORT_LOSS * L

where ``L`` is the WDM degree, ``W(L)`` the waveguides per direction
(crossing count scales with the *perpendicular* channel width), ``H`` the
maximum hops per cycle (light traverses H routers' worth of crossings) and
``eta`` the per-crossing power efficiency.  ``P_base`` is calibrated from
the paper's anchor: a 64-wavelength four-hop network at 98% crossing
efficiency requires 32 W peak.  The calibrated model then also reproduces
the paper's other quoted points (128λ/5-hop/98% -> 32 W, 128λ/4-hop/98% ->
15 W) and the 32λ conclusion (needs >=99% efficiency or a 2-3 hop limit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.photonics import constants
from repro.photonics.wdm import PacketLayout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.topology import Topology

#: The paper's calibration anchor for Fig 7.
ANCHOR_WDM = 64
ANCHOR_HOPS = 4
ANCHOR_EFFICIENCY = 0.98
ANCHOR_PEAK_W = 32.0

#: Peak power above this is "impractically high" for an on-chip laser
#: budget; used to classify Fig 7 operating points.
REASONABLE_PEAK_W = 35.0

#: Average-case laser derating versus the Fig 7 peak scenario.  The peak
#: assumes every packet is a multicast whose taps extract power at every
#: router and every return path is simultaneously signalling; an average
#: transmission needs well under half the worst-case input power for the
#: same hop count.
AVERAGE_LASER_DERATING = 0.25
#: Fraction of the worst-case per-router loss exponent an average unicast
#: transmission sees: no broadcast taps are extracting power and the
#: perpendicular channels are not fully lit, so crossings cost less than
#: the Fig 7 peak scenario assumes.
UNICAST_LOSS_EXPONENT_FACTOR = 0.7


@dataclass(frozen=True)
class PeakPowerPoint:
    """One Fig 7 operating point."""

    payload_wdm: int
    max_hops: int
    crossing_efficiency: float
    peak_power_w: float

    @property
    def reasonable(self) -> bool:
        return self.peak_power_w <= REASONABLE_PEAK_W


class OpticalPowerModel:
    """Peak and per-packet optical power for a Phastlane configuration."""

    def __init__(self, mesh_nodes: int = 64, input_ports: int | None = None):
        if mesh_nodes <= 0:
            raise ValueError(f"mesh must have nodes, got {mesh_nodes}")
        self.mesh_nodes = mesh_nodes
        #: Connected input ports the average-power fraction is spread over.
        #: ``None`` keeps the historical four-ports-per-node assumption;
        #: :meth:`for_topology` supplies the topology's real link count.
        if input_ports is None:
            input_ports = 4 * mesh_nodes
        if input_ports <= 0:
            raise ValueError(f"input port count must be positive, got {input_ports}")
        self.input_ports = input_ports
        self._p_base = self._calibrate_base()

    @classmethod
    def for_topology(cls, topology: "Topology") -> "OpticalPowerModel":
        """A power model sized from a topology's actual link enumeration."""
        return cls(
            mesh_nodes=topology.num_nodes,
            input_ports=len(topology.links()),
        )

    @staticmethod
    def loss_exponent(payload_wdm: int) -> float:
        """Per-router loss exponent e(L): crossings + port/through losses."""
        layout = PacketLayout(payload_wdm=payload_wdm)
        return (
            constants.K_CROSS_PER_WG * layout.waveguides_per_direction
            + constants.K_PORT_LOSS_PER_WAVELENGTH * payload_wdm
        )

    def _calibrate_base(self) -> float:
        exponent = ANCHOR_HOPS * self.loss_exponent(ANCHOR_WDM)
        return ANCHOR_PEAK_W * ANCHOR_EFFICIENCY**exponent

    def peak_power_w(
        self, payload_wdm: int, max_hops: int, crossing_efficiency: float
    ) -> float:
        """Peak optical input power (W) for one configuration."""
        if max_hops < 1:
            raise ValueError(f"max hops must be at least 1, got {max_hops}")
        if not 0.0 < crossing_efficiency <= 1.0:
            raise ValueError(
                f"crossing efficiency must be in (0, 1], got {crossing_efficiency}"
            )
        exponent = max_hops * self.loss_exponent(payload_wdm)
        return self._p_base * crossing_efficiency**-exponent

    def peak_point(
        self, payload_wdm: int, max_hops: int, crossing_efficiency: float
    ) -> PeakPowerPoint:
        return PeakPowerPoint(
            payload_wdm=payload_wdm,
            max_hops=max_hops,
            crossing_efficiency=crossing_efficiency,
            peak_power_w=self.peak_power_w(payload_wdm, max_hops, crossing_efficiency),
        )

    def max_reasonable_hops(
        self, payload_wdm: int, crossing_efficiency: float, budget_w: float = REASONABLE_PEAK_W
    ) -> int:
        """Largest hop count whose peak power fits a laser budget (0 if none)."""
        if budget_w <= 0:
            raise ValueError("power budget must be positive")
        if budget_w < self._p_base:
            return 0
        if crossing_efficiency >= 1.0:
            return constants.MAX_CONTROL_GROUPS  # lossless: layout-limited
        per_hop = self.loss_exponent(payload_wdm) * math.log(1.0 / crossing_efficiency)
        return int(math.log(budget_w / self._p_base) / per_hop)

    def contour(
        self,
        wdm_degrees: Sequence[int] = (32, 64, 128),
        hop_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
        efficiencies: Sequence[float] = (0.95, 0.96, 0.97, 0.98, 0.99, 0.995, 1.0),
    ) -> list[PeakPowerPoint]:
        """The full Fig 7 contour grid."""
        return [
            self.peak_point(wdm, hops, eta)
            for wdm in wdm_degrees
            for hops in hop_counts
            for eta in efficiencies
        ]

    # -- average-power helpers used by the network simulator -----------------

    def transmit_laser_energy_pj(
        self,
        payload_wdm: int,
        hops: int,
        crossing_efficiency: float = ANCHOR_EFFICIENCY,
        cycle_time_ps: float = constants.CYCLE_TIME_PS,
        multicast_taps: int = 0,
    ) -> float:
        """Laser (wall-plug) energy for one packet transmission of ``hops``.

        The laser must supply, for one cycle, enough power for every
        wavelength of this one packet to survive ``hops`` routers of loss.
        Peak power above is the worst case of *all* ports active with full
        multicast extraction; one average transmission is 1/(4 * mesh_nodes)
        of that with a reduced loss exponent, while each broadcast tap on
        the segment extracts :data:`~repro.photonics.constants.MULTICAST_TAP_FRACTION`
        of the power and must be compensated at the source.
        """
        if hops < 1:
            raise ValueError("a transmission covers at least one hop")
        if multicast_taps < 0:
            raise ValueError("tap count must be non-negative")
        exponent = (
            hops * self.loss_exponent(payload_wdm) * UNICAST_LOSS_EXPONENT_FACTOR
        )
        tap_compensation = (1.0 / (1.0 - constants.MULTICAST_TAP_FRACTION)) ** (
            multicast_taps
        )
        per_port_fraction = 1.0 / self.input_ports
        optical_w = (
            self._p_base
            * crossing_efficiency**-exponent
            * tap_compensation
            * per_port_fraction
            * AVERAGE_LASER_DERATING
        )
        wall_plug_w = optical_w / constants.LASER_EFFICIENCY
        return wall_plug_w * cycle_time_ps  # W * ps = pJ
