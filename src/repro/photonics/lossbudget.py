"""Bottom-up optical loss budget (cross-validation of the Fig 7 model).

The Fig 7 peak-power model in :mod:`repro.photonics.power` is *calibrated*
to the paper's quoted operating points.  This module builds the same
quantity bottom-up from per-component losses quoted in the device
literature the paper cites (couplers, waveguide propagation, crossings,
ring through/drop losses, bends) and checks that the two approaches agree
to within a small factor — evidence that the calibrated constants are
physically plausible rather than arbitrary.

All losses are in dB; the required laser power per wavelength is the
receiver sensitivity multiplied by the total path loss plus a system
margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.photonics import constants
from repro.photonics.wdm import PacketLayout
from repro.util.units import from_db, to_db

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.topology import Topology


@dataclass(frozen=True)
class ComponentLosses:
    """Per-component optical losses (dB), defaults from the literature.

    - coupler: fibre/laser-to-chip grating coupler;
    - propagation: silicon waveguide loss per millimetre;
    - crossing: one waveguide crossing (0.088 dB ~ 98% efficiency,
      Bogaerts et al. 2007 report 0.1-0.2 dB/crossing);
    - ring_through: passing one off-resonance ring;
    - ring_drop: coupling through an on-resonance ring (a turn);
    - bend: one 90-degree waveguide bend;
    - margin: system margin for laser RIN, temperature and aging.
    """

    coupler_db: float = 1.0
    propagation_db_per_mm: float = 0.1
    crossing_db: float = -10.0 * 0.0  # derived from efficiency, see below
    ring_through_db: float = 0.004
    ring_drop_db: float = 0.5
    bend_db: float = 0.01
    margin_db: float = 3.0


class LossBudget:
    """Required laser power from a physical component chain."""

    def __init__(
        self,
        losses: ComponentLosses | None = None,
        crossing_efficiency: float = 0.98,
        mesh_nodes: int = 64,
        input_ports: int | None = None,
    ):
        if not 0.0 < crossing_efficiency <= 1.0:
            raise ValueError("crossing efficiency must be in (0, 1]")
        if mesh_nodes <= 0:
            raise ValueError("mesh must have nodes")
        self.losses = losses or ComponentLosses()
        self.crossing_efficiency = crossing_efficiency
        self.mesh_nodes = mesh_nodes
        #: Simultaneously-receiving input ports in the Fig 7 worst case.
        #: ``None`` keeps the historical full-mesh assumption (four mesh
        #: ports per node); :meth:`for_topology` supplies the real count
        #: of connected links, which is lower on mesh edges and higher
        #: never (each link is one receiving input port).
        if input_ports is None:
            input_ports = 4 * mesh_nodes
        if input_ports <= 0:
            raise ValueError("the network needs at least one input port")
        self.input_ports = input_ports

    @classmethod
    def for_topology(
        cls,
        topology: "Topology",
        losses: ComponentLosses | None = None,
        crossing_efficiency: float = 0.98,
    ) -> "LossBudget":
        """A budget sized from a topology's actual link enumeration."""
        return cls(
            losses,
            crossing_efficiency,
            mesh_nodes=topology.num_nodes,
            input_ports=len(topology.links()),
        )

    @property
    def crossing_db(self) -> float:
        return to_db(1.0 / self.crossing_efficiency)

    def per_router_loss_db(self, payload_wdm: int) -> float:
        """Loss of one router traversal on the straight-through path.

        A packet's wavelengths cross the perpendicular channel's waveguides
        (one crossing each), pass every resonator/receiver pair parked on
        their own waveguide off-resonance, and take two bends worth of
        routing inside the crossbar.
        """
        layout = PacketLayout(payload_wdm=payload_wdm)
        crossings = layout.waveguides_per_direction * self.crossing_db
        rings = payload_wdm * self.losses.ring_through_db
        bends = 2 * self.losses.bend_db
        return crossings + rings + bends

    def path_loss_db(self, payload_wdm: int, hops: int, turns: int = 1) -> float:
        """End-to-end loss of an ``hops``-hop transmission with ``turns``."""
        if hops < 1:
            raise ValueError("a path has at least one hop")
        if turns < 0:
            raise ValueError("turn count must be non-negative")
        routers = self.per_router_loss_db(payload_wdm) * hops
        links = self.losses.propagation_db_per_mm * constants.HOP_LENGTH_MM * hops
        turns_db = self.losses.ring_drop_db * turns
        return self.losses.coupler_db + routers + links + turns_db

    def required_power_per_wavelength_w(
        self, payload_wdm: int, hops: int, turns: int = 1
    ) -> float:
        """Laser power one wavelength needs at the chip input."""
        sensitivity_w = constants.RECEIVER_SENSITIVITY_UW * 1e-6
        total_db = self.path_loss_db(payload_wdm, hops, turns) + self.losses.margin_db
        return sensitivity_w * from_db(total_db)

    def network_peak_power_w(self, payload_wdm: int, hops: int) -> float:
        """Fig 7's worst case: every input port of every router receiving.

        Each connected input port (four per router on a full mesh; fewer
        at mesh edges when sized via :meth:`for_topology`) carries a full
        packet's wavelengths (payload + control bits); every one of them
        needs its per-wavelength budget simultaneously, and every packet
        is turning (one ring drop on its path).
        """
        signals = self.input_ports * (
            constants.PACKET_PAYLOAD_BITS + constants.PACKET_CONTROL_BITS
        )
        return signals * self.required_power_per_wavelength_w(
            payload_wdm, hops, turns=1
        )


def cross_validate_anchor(tolerance_factor: float = 5.0) -> tuple[float, float]:
    """Compare the physical chain against the calibrated Fig 7 anchor.

    Returns ``(bottom_up_watts, calibrated_watts)`` for the 64-wavelength,
    four-hop, 98%-crossing-efficiency design point; raises if they differ
    by more than ``tolerance_factor``.
    """
    from repro.photonics.power import OpticalPowerModel

    bottom_up = LossBudget().network_peak_power_w(64, 4)
    calibrated = OpticalPowerModel().peak_power_w(64, 4, 0.98)
    ratio = max(bottom_up, calibrated) / min(bottom_up, calibrated)
    if ratio > tolerance_factor:
        raise AssertionError(
            f"loss-budget cross-check failed: bottom-up {bottom_up:.1f} W vs "
            f"calibrated {calibrated:.1f} W (factor {ratio:.1f})"
        )
    return bottom_up, calibrated
