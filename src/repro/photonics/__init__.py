"""Nanophotonic device and router models (paper sections 2-3, Figs 4-8)."""

from repro.photonics.area import AreaBreakdown, RouterAreaModel
from repro.photonics.components import (
    Modulator,
    OpticalLink,
    Receiver,
    RingResonator,
    Waveguide,
)
from repro.photonics.lossbudget import ComponentLosses, LossBudget
from repro.photonics.latency import (
    CriticalPathDelays,
    RouterLatencyModel,
    max_hops_per_cycle,
)
from repro.photonics.power import OpticalPowerModel, PeakPowerPoint
from repro.photonics.scaling import (
    DelayScalingModel,
    ScalingScenario,
    scenario_delays,
)
from repro.photonics.wdm import PacketLayout, WdmChannelPlan

__all__ = [
    "AreaBreakdown",
    "ComponentLosses",
    "CriticalPathDelays",
    "DelayScalingModel",
    "LossBudget",
    "Modulator",
    "OpticalLink",
    "OpticalPowerModel",
    "PacketLayout",
    "PeakPowerPoint",
    "Receiver",
    "RingResonator",
    "RouterAreaModel",
    "RouterLatencyModel",
    "ScalingScenario",
    "Waveguide",
    "WdmChannelPlan",
    "max_hops_per_cycle",
    "scenario_delays",
]
