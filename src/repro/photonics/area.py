"""Router and processor-die area models (paper section 3.3, Fig 8).

The WDM degree trades two area terms against each other:

- more wavelengths -> fewer waveguides and turn resonators, shrinking the
  router's internal crossbar (the waveguide term, proportional to W(L));
- more wavelengths -> more resonator/receiver pairs on each input port,
  lengthening the ports (the port term, proportional to L).

The router side length is modelled as

    side(L) = 2 * K_WG * W(L) + K_PORT * L + BASE      [micrometres]

whose minimum over the swept WDM degrees falls at L = 64, where the router
matches the 3.5 mm^2 single-core processor node (Kumar-style area model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.photonics import constants
from repro.photonics.wdm import PacketLayout

#: Kumar-style node areas (mm^2) per core count sharing one L2 + MC.
NODE_AREA_MM2 = {
    1: constants.NODE_AREA_SINGLE_CORE_MM2,
    2: constants.NODE_AREA_DUAL_CORE_MM2,
    4: constants.NODE_AREA_QUAD_CORE_MM2,
}


@dataclass(frozen=True)
class AreaBreakdown:
    """One Fig 8 data point: router area components at one WDM degree."""

    payload_wdm: int
    waveguide_side_um: float  # internal crossbar contribution (2*K_WG*W)
    port_side_um: float  # input-port contribution (K_PORT * L)
    base_side_um: float  # fixed bends/couplers overhead

    @property
    def side_um(self) -> float:
        return self.waveguide_side_um + self.port_side_um + self.base_side_um

    @property
    def side_mm(self) -> float:
        return self.side_um / 1e3

    @property
    def total_area_mm2(self) -> float:
        return self.side_mm**2


class RouterAreaModel:
    """Area of one Phastlane optical router as a function of WDM degree."""

    def __init__(
        self,
        k_wg_um: float = constants.K_WG_UM,
        k_port_um: float = constants.K_PORT_UM,
        base_um: float = constants.AREA_BASE_UM,
    ):
        if min(k_wg_um, k_port_um) <= 0 or base_um < 0:
            raise ValueError("area coefficients must be positive")
        self.k_wg_um = k_wg_um
        self.k_port_um = k_port_um
        self.base_um = base_um

    def breakdown(self, payload_wdm: int) -> AreaBreakdown:
        layout = PacketLayout(payload_wdm=payload_wdm)
        return AreaBreakdown(
            payload_wdm=payload_wdm,
            waveguide_side_um=2 * self.k_wg_um * layout.waveguides_per_direction,
            port_side_um=self.k_port_um * payload_wdm,
            base_side_um=self.base_um,
        )

    def area_mm2(self, payload_wdm: int) -> float:
        return self.breakdown(payload_wdm).total_area_mm2

    def sweep(self, wdm_degrees: Sequence[int]) -> list[AreaBreakdown]:
        """The Fig 8 series over a set of WDM degrees."""
        return [self.breakdown(wdm) for wdm in wdm_degrees]

    def sweet_spot(self, wdm_degrees: Sequence[int]) -> int:
        """The WDM degree minimizing total router area (64 in the paper)."""
        if not wdm_degrees:
            raise ValueError("need at least one WDM degree to sweep")
        return min(wdm_degrees, key=self.area_mm2)

    def fits_node(self, payload_wdm: int, cores_per_node: int = 1) -> bool:
        """Does the optical router fit under the processor node above it?

        The optical die is 3D-stacked on the processor die (Fig 1), so each
        router should not exceed its node's footprint (section 3.3).
        """
        if cores_per_node not in NODE_AREA_MM2:
            raise ValueError(
                f"no Kumar-style area estimate for {cores_per_node} cores per node"
            )
        return self.area_mm2(payload_wdm) <= NODE_AREA_MM2[cores_per_node] + 1e-9


def figure8_series(
    wdm_degrees: Sequence[int] = (16, 24, 32, 48, 64, 96, 128, 192, 256),
) -> list[AreaBreakdown]:
    """The Fig 8 sweep at its default WDM grid."""
    return RouterAreaModel().sweep(wdm_degrees)
