"""Device-level models of the optical components a Phastlane router uses.

These classes carry the per-device delay, energy and loss figures used by
the analytical models (latency, power, area) and by the network simulator's
energy accounting.  They model behaviour at the fidelity the paper evaluates
at: scalar delays and loss factors, not waveform-level physics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.photonics import constants
from repro.photonics.scaling import ScalingScenario


@dataclass(frozen=True)
class Waveguide:
    """A silicon waveguide segment of a given physical length."""

    length_mm: float

    def __post_init__(self) -> None:
        if self.length_mm < 0:
            raise ValueError(f"waveguide length must be non-negative ({self.length_mm})")

    @property
    def propagation_delay_ps(self) -> float:
        return self.length_mm * constants.WAVEGUIDE_DELAY_PS_PER_MM


@dataclass(frozen=True)
class RingResonator:
    """A ring resonator used for turns, taps and receive coupling.

    ``drive_delay_ps`` is the time for the electrical driver to switch the
    ring on/off resonance — the dominant term in the router critical paths
    (section 3.1).  ``through_loss`` is the fraction of power surviving a
    pass *by* an off-resonance ring; ``drop_loss`` the fraction surviving a
    coupled turn through an on-resonance ring.
    """

    drive_delay_ps: float
    through_loss: float = 0.999
    drop_loss: float = 0.985

    def __post_init__(self) -> None:
        if self.drive_delay_ps < 0:
            raise ValueError("drive delay must be non-negative")
        for name in ("through_loss", "drop_loss"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")

    @classmethod
    def for_scenario(cls, scenario: ScalingScenario) -> "RingResonator":
        return cls(drive_delay_ps=scenario.resonator_drive_ps)


@dataclass(frozen=True)
class Modulator:
    """An E/O modulator plus its driver (the transmit path)."""

    transmit_delay_ps: float
    energy_pj_per_bit: float = constants.MODULATOR_ENERGY_PJ_PER_BIT

    def __post_init__(self) -> None:
        if self.transmit_delay_ps < 0 or self.energy_pj_per_bit < 0:
            raise ValueError("modulator delay and energy must be non-negative")

    @classmethod
    def for_scenario(cls, scenario: ScalingScenario) -> "Modulator":
        return cls(transmit_delay_ps=scenario.transmit_ps)

    def transmit_energy_pj(self, bits: int) -> float:
        if bits < 0:
            raise ValueError("bit count must be non-negative")
        return bits * self.energy_pj_per_bit


@dataclass(frozen=True)
class Receiver:
    """An O/E receiver: photodetector plus amplifier."""

    receive_delay_ps: float
    energy_pj_per_bit: float = constants.RECEIVER_ENERGY_PJ_PER_BIT
    sensitivity_uw: float = constants.RECEIVER_SENSITIVITY_UW

    def __post_init__(self) -> None:
        if self.receive_delay_ps < 0 or self.energy_pj_per_bit < 0:
            raise ValueError("receiver delay and energy must be non-negative")
        if self.sensitivity_uw <= 0:
            raise ValueError("receiver sensitivity must be positive")

    @classmethod
    def for_scenario(cls, scenario: ScalingScenario) -> "Receiver":
        return cls(receive_delay_ps=scenario.receive_ps)

    def receive_energy_pj(self, bits: int) -> float:
        if bits < 0:
            raise ValueError("bit count must be non-negative")
        return bits * self.energy_pj_per_bit


@dataclass(frozen=True)
class OpticalLink:
    """An inter-router waveguide link (one mesh hop)."""

    length_mm: float = constants.HOP_LENGTH_MM

    @property
    def delay_ps(self) -> float:
        return Waveguide(self.length_mm).propagation_delay_ps


@dataclass(frozen=True)
class RouterOptics:
    """The component set of one Phastlane router under one scaling scenario."""

    scenario: ScalingScenario

    @property
    def resonator(self) -> RingResonator:
        return RingResonator.for_scenario(self.scenario)

    @property
    def modulator(self) -> Modulator:
        return Modulator.for_scenario(self.scenario)

    @property
    def receiver(self) -> Receiver:
        return Receiver.for_scenario(self.scenario)

    def crossbar_traversal_ps(self, payload_wdm: int) -> float:
        """Waveguide delay across the router's internal crossbar.

        Grows weakly with the WDM degree because each extra wavelength adds
        one resonator/receiver pair of port length (section 3.3).
        """
        if payload_wdm <= 0:
            raise ValueError(f"WDM degree must be positive, got {payload_wdm}")
        return (
            constants.ROUTER_TRAVERSAL_BASE_PS
            + constants.ROUTER_TRAVERSAL_PER_WAVELENGTH_PS * payload_wdm
        )
