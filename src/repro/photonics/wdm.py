"""WDM channel planning and the Phastlane packet layout (Table 1, Fig 3).

A Phastlane packet is a single flit carrying an 80-byte payload (64 B cache
line + address/type/source/EDC/misc) plus 70 router-control bits (up to 14
routers x 5 bits).  At the paper's design point of 64-way WDM the payload
occupies ten waveguides (D0-D9) and the control bits two waveguides (C0, C1)
at 35-way WDM.  :class:`PacketLayout` generalises that layout to any WDM
degree for the design-space exploration of section 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.photonics import constants


@dataclass(frozen=True)
class WdmChannelPlan:
    """How one logical channel maps onto waveguides at a given WDM degree."""

    bits: int
    wdm_degree: int

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError(f"channel must carry at least one bit, got {self.bits}")
        if self.wdm_degree <= 0:
            raise ValueError(f"WDM degree must be positive, got {self.wdm_degree}")

    @property
    def waveguides(self) -> int:
        """Waveguides needed to carry all bits in one cycle."""
        return math.ceil(self.bits / self.wdm_degree)

    @property
    def wavelengths_used(self) -> int:
        """Total resonator/receiver pairs per port for this channel."""
        return self.bits


@dataclass(frozen=True)
class PacketLayout:
    """The complete per-direction waveguide layout of a Phastlane packet.

    ``payload_wdm`` is the design parameter swept in section 3 (32/64/128);
    the control waveguide count is fixed at two, with the control WDM degree
    chosen to spread the 70 control bits evenly (35-way at the design point).
    """

    payload_bits: int = constants.PACKET_PAYLOAD_BITS
    control_bits: int = constants.PACKET_CONTROL_BITS
    payload_wdm: int = 64

    def __post_init__(self) -> None:
        if self.payload_bits <= 0 or self.control_bits <= 0:
            raise ValueError("payload and control sizes must be positive")
        if self.payload_wdm <= 0:
            raise ValueError(f"WDM degree must be positive, got {self.payload_wdm}")

    @property
    def payload_plan(self) -> WdmChannelPlan:
        return WdmChannelPlan(self.payload_bits, self.payload_wdm)

    @property
    def control_plan(self) -> WdmChannelPlan:
        return WdmChannelPlan(self.control_bits, self.control_wdm)

    @property
    def payload_waveguides(self) -> int:
        """D0..Dn waveguides (10 at the 64-way design point)."""
        return self.payload_plan.waveguides

    @property
    def control_waveguides(self) -> int:
        """Always two (C0 and C1), per Fig 3."""
        return constants.CONTROL_WAVEGUIDES

    @property
    def control_wdm(self) -> int:
        """Control bits split evenly across the two control waveguides."""
        return math.ceil(self.control_bits / constants.CONTROL_WAVEGUIDES)

    @property
    def waveguides_per_direction(self) -> int:
        """Total waveguides per mesh direction: payload + control."""
        return self.payload_waveguides + self.control_waveguides

    @property
    def control_groups(self) -> int:
        """Router-control groups the layout can hold (14 at the design point)."""
        return self.control_bits // constants.CONTROL_BITS_PER_ROUTER

    @property
    def receivers_per_input_port(self) -> int:
        """Resonator/receiver pairs on one input port (payload + control)."""
        return self.payload_bits + self.control_bits

    def describe(self) -> dict[str, int]:
        """The Table 1 rows this layout corresponds to."""
        return {
            "packet_payload_wdm": self.payload_wdm,
            "packet_payload_waveguides": self.payload_waveguides,
            "packet_control_bits": self.control_bits,
            "packet_control_wdm": self.control_wdm,
            "packet_control_waveguides": self.control_waveguides,
        }


def design_point_layout() -> PacketLayout:
    """The paper's Table 1 design point: 64-way WDM, 10+2 waveguides."""
    return PacketLayout(payload_wdm=64)
