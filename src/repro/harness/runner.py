"""Run one network configuration against one workload.

The single entry point is :func:`run`, which executes a frozen
:class:`~repro.harness.exec.RunSpec` and returns a :class:`RunResult` with
wall-time observability attached.  Network construction goes through the
:mod:`repro.fabric` registry — any configuration type with a registered
backend (Phastlane optical, the electrical baseline, the analytic ideal
reference, or an out-of-tree backend) runs through the same paths — so
every experiment treats all implementations uniformly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import TYPE_CHECKING

from repro.fabric import NetworkConfig, make_network
from repro.obs.config import ObsConfig
from repro.obs.session import ObsSession
from repro.obs.timeseries import TimeSeries
from repro.photonics.constants import CYCLE_TIME_PS
from repro.sim.engine import SimulationEngine
from repro.sim.stats import NetworkStats, SaturationError
from repro.traffic.injection import BernoulliInjector
from repro.traffic.patterns import pattern_by_name
from repro.traffic.splash2 import generate_splash2_trace
from repro.traffic.trace import SyntheticSource, Trace, TraceSource
from repro.util.geometry import MeshGeometry

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.faults.config import FaultConfig
    from repro.harness.exec import RunSpec


@dataclass(frozen=True)
class RunResult:
    """Summary of one simulation run.

    ``wall_time_s``, ``timeseries`` and ``profile`` are observability, not
    physics: all three are excluded from equality so a cached or parallel
    run compares equal to a fresh serial one.  Wall time and the profile
    summary belong to the campaign manifest;
    :func:`repro.harness.report.result_to_dict` serialises the time series
    (when present) but omits the other two.
    """

    label: str
    workload: str
    cycles: int
    stats: NetworkStats
    drained: bool
    wall_time_s: float = field(default=0.0, compare=False)
    timeseries: TimeSeries | None = field(default=None, compare=False)
    profile: dict | None = field(default=None, compare=False)

    @property
    def mean_latency(self) -> float:
        return self.stats.mean_latency

    @property
    def power_w(self) -> float:
        return self.stats.average_power_w(CYCLE_TIME_PS)

    @property
    def packets_per_second(self) -> float:
        """Simulation throughput: packets generated per wall-clock second."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.stats.packets_generated / self.wall_time_s

    def throughput(self, num_nodes: int) -> float:
        return self.stats.throughput(num_nodes)

    def summary(self) -> dict[str, float]:
        return {
            "mean_latency_cycles": self.mean_latency,
            "power_w": self.power_w,
            "delivered": self.stats.packets_delivered,
            "dropped": self.stats.packets_dropped,
            "retransmissions": self.stats.retransmissions,
            "delivery_ratio": self.stats.delivery_ratio,
        }


def run(spec: "RunSpec") -> RunResult:
    """Execute one :class:`~repro.harness.exec.RunSpec`.

    The single entry point for all workload kinds; dispatches on the spec's
    workload type and stamps the result with its wall time.
    """
    from repro.harness.exec import (
        Splash2Workload,
        SyntheticWorkload,
        TraceFileWorkload,
    )

    started = time.perf_counter()
    workload = spec.workload
    if isinstance(workload, SyntheticWorkload):
        result = _execute_synthetic(
            spec.config,
            workload.pattern,
            workload.rate,
            cycles=spec.cycles,
            warmup=spec.warmup,
            seed=spec.seed,
            obs=spec.obs,
            faults=spec.faults,
        )
    elif isinstance(workload, Splash2Workload):
        mesh = spec.config.mesh
        trace = _splash2_trace(
            workload.benchmark, mesh.width, mesh.height, spec.seed, spec.cycles
        )
        result = _execute_trace(
            spec.config, trace, spec.max_drain_cycles, spec.obs, spec.faults
        )
    elif isinstance(workload, TraceFileWorkload):
        trace = Trace.load(workload.path)
        result = _execute_trace(
            spec.config, trace, spec.max_drain_cycles, spec.obs, spec.faults
        )
    else:
        raise TypeError(f"unknown workload type {type(workload).__name__}")
    return replace(result, wall_time_s=time.perf_counter() - started)


@lru_cache(maxsize=32)
def _splash2_trace(
    benchmark: str, width: int, height: int, seed: int, duration_cycles: int
) -> Trace:
    """Per-process memo: one generated trace drives many configurations."""
    return generate_splash2_trace(
        benchmark,
        mesh=MeshGeometry(width, height),
        seed=seed,
        duration_cycles=duration_cycles,
    )


def _execute_trace(
    config: NetworkConfig,
    trace: Trace,
    max_drain_cycles: int,
    obs: ObsConfig | None = None,
    faults: "FaultConfig | None" = None,
) -> RunResult:
    """Replay a trace to completion (injection phase plus full drain)."""
    network = make_network(config, TraceSource(trace), faults=faults)
    engine = SimulationEngine()
    engine.register(network)
    session = ObsSession(obs, network, engine)
    engine.run(trace.last_cycle + 1)
    drained = engine.run_until(
        lambda: network.idle(engine.cycle), max_drain_cycles
    )
    timeseries, profile = session.finish()
    if not drained:
        raise SaturationError(
            f"{config.label} failed to drain trace {trace.name!r} "
            f"within {max_drain_cycles} extra cycles"
        )
    return RunResult(
        label=config.label,
        workload=trace.name,
        cycles=engine.cycle,
        stats=network.stats,
        drained=drained,
        timeseries=timeseries,
        profile=profile,
    )


def _execute_synthetic(
    config: NetworkConfig,
    pattern: str,
    rate: float,
    cycles: int,
    warmup: int | None,
    seed: int,
    obs: ObsConfig | None = None,
    faults: "FaultConfig | None" = None,
) -> RunResult:
    """Open-loop synthetic run: Bernoulli injection at ``rate`` per node.

    The network keeps injecting for the full ``cycles`` window (no drain);
    latency is measured only for packets generated after the warm-up, the
    standard interconnection-network measurement methodology.
    """
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    warmup = cycles // 5 if warmup is None else warmup
    source = SyntheticSource(
        pattern_by_name(pattern, config.mesh),
        lambda: BernoulliInjector(rate),
        seed=seed,
        stop_cycle=cycles,
    )
    stats = NetworkStats(measurement_start=warmup)
    network = make_network(config, source, stats, faults=faults)
    engine = SimulationEngine()
    engine.register(network)
    session = ObsSession(obs, network, engine)
    engine.run(cycles)
    timeseries, profile = session.finish()
    return RunResult(
        label=config.label,
        workload=f"{pattern}@{rate:g}",
        cycles=engine.cycle,
        stats=network.stats,
        drained=network.idle(engine.cycle),
        timeseries=timeseries,
        profile=profile,
    )
