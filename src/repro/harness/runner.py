"""Run one network configuration against one workload.

The single entry point is :func:`run`, which executes a frozen
:class:`~repro.harness.exec.RunSpec` and returns a :class:`RunResult` with
wall-time observability attached.  Network construction goes through the
:mod:`repro.fabric` registry — any configuration type with a registered
backend (Phastlane optical, the electrical baseline, the analytic ideal
reference, or an out-of-tree backend) runs through the same paths — so
every experiment treats all implementations uniformly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import TYPE_CHECKING, Any, Callable

from repro.fabric import NetworkConfig, make_network
from repro.obs.config import ObsConfig
from repro.obs.health import HealthReport
from repro.obs.session import ObsSession
from repro.obs.timeseries import TimeSeries
from repro.photonics.constants import CYCLE_TIME_PS
from repro.sim.engine import SimulationEngine
from repro.sim.stats import NetworkStats, SaturationError
from repro.traffic.injection import BernoulliInjector
from repro.traffic.patterns import pattern_by_name
from repro.traffic.splash2 import generate_splash2_trace
from repro.topology import topology_of
from repro.traffic.trace import SyntheticSource, Trace, TraceSource
from repro.util.geometry import MeshGeometry

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.faults.config import FaultConfig
    from repro.harness.exec import RunSpec


@dataclass(frozen=True)
class RunResult:
    """Summary of one simulation run.

    ``wall_time_s``, ``timeseries``, ``profile`` and ``health`` are
    observability, not physics: all are excluded from equality so a cached
    or parallel run compares equal to a fresh serial one.  Wall time and
    the profile summary belong to the campaign manifest;
    :func:`repro.harness.report.result_to_dict` serialises the time series
    and health report (when collected) but omits the other two.
    """

    label: str
    workload: str
    cycles: int
    stats: NetworkStats
    drained: bool
    wall_time_s: float = field(default=0.0, compare=False)
    timeseries: TimeSeries | None = field(default=None, compare=False)
    profile: dict | None = field(default=None, compare=False)
    health: HealthReport | None = field(default=None, compare=False)

    @property
    def mean_latency(self) -> float:
        return self.stats.mean_latency

    @property
    def power_w(self) -> float:
        return self.stats.average_power_w(CYCLE_TIME_PS)

    @property
    def packets_per_second(self) -> float:
        """Simulation throughput: packets generated per wall-clock second."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.stats.packets_generated / self.wall_time_s

    def throughput(self, num_nodes: int) -> float:
        return self.stats.throughput(num_nodes)

    def summary(self) -> dict[str, float]:
        return {
            "mean_latency_cycles": self.mean_latency,
            "power_w": self.power_w,
            "delivered": self.stats.packets_delivered,
            "dropped": self.stats.packets_dropped,
            "retransmissions": self.stats.retransmissions,
            "delivery_ratio": self.stats.delivery_ratio,
        }


@dataclass(frozen=True)
class ProgressSample:
    """A point-in-time snapshot of a running simulation.

    Emitted to a :data:`ProgressSink` at fixed cycle intervals (and once
    more with ``done=True`` when the run completes), read-only over the
    simulator's live state.  ``cycles_total`` is the planned injection
    span; ``cycle`` may exceed it while a trace run drains.
    """

    cycle: int
    cycles_total: int
    generated: int
    delivered: int
    dropped: int
    flits: int
    worst_node: int
    worst_occupancy: int
    health: str | None = None
    done: bool = False


#: Receives intra-run :class:`ProgressSample` snapshots.
ProgressSink = Callable[[ProgressSample], None]


class _ProgressWatcher:
    """Engine watcher feeding :class:`ProgressSample` records to a sink.

    Read-only over network state (the no-perturbation contract): it copies
    stats counters and scans router occupancies, nothing more.
    """

    def __init__(
        self,
        network: Any,
        session: ObsSession,
        sink: ProgressSink,
        interval: int,
        cycles_total: int,
    ) -> None:
        self._network = network
        self._session = session
        self._sink = sink
        self._interval = max(1, interval)
        self._cycles_total = cycles_total

    def __call__(self, cycle: int) -> None:
        if (cycle + 1) % self._interval == 0:
            self.emit(cycle + 1)

    def emit(self, cycle: int, done: bool = False) -> None:
        stats = self._network.stats
        worst_node, worst_occupancy = 0, 0
        for router in self._network.routers:
            occupancy = router.occupancy()
            if occupancy > worst_occupancy:
                worst_node, worst_occupancy = router.node, occupancy
        self._sink(
            ProgressSample(
                cycle=cycle,
                cycles_total=self._cycles_total,
                generated=stats.packets_generated,
                delivered=stats.packets_delivered,
                dropped=stats.packets_dropped,
                flits=stats.flits_processed,
                worst_node=worst_node,
                worst_occupancy=worst_occupancy,
                health=self._session.health_status,
                done=done,
            )
        )


def _attach_progress(
    progress: ProgressSink | None,
    network: Any,
    session: ObsSession,
    engine: SimulationEngine,
    cycles_total: int,
) -> _ProgressWatcher | None:
    if progress is None:
        return None
    interval = session.config.metrics_interval or max(1, cycles_total // 20)
    watcher = _ProgressWatcher(network, session, progress, interval, cycles_total)
    engine.add_watcher(watcher)
    return watcher


def run(spec: "RunSpec", progress: ProgressSink | None = None) -> RunResult:
    """Execute one :class:`~repro.harness.exec.RunSpec`.

    The single entry point for all workload kinds; dispatches on the spec's
    workload type and stamps the result with its wall time.  ``progress``,
    when given, receives intra-run :class:`ProgressSample` snapshots at a
    fixed cycle cadence (plus a final ``done=True`` sample).
    """
    from repro.harness.exec import (
        Splash2Workload,
        SyntheticWorkload,
        TraceFileWorkload,
    )

    started = time.perf_counter()
    workload = spec.workload
    # Only traced runs pay for the digest in the header metadata.
    traced = spec.obs is not None and spec.obs.trace_path is not None
    meta = _trace_meta(spec) if traced else None
    if isinstance(workload, SyntheticWorkload):
        result = _execute_synthetic(
            spec.config,
            workload.pattern,
            workload.rate,
            cycles=spec.cycles,
            warmup=spec.warmup,
            seed=spec.seed,
            obs=spec.obs,
            faults=spec.faults,
            progress=progress,
            meta=meta,
        )
    elif isinstance(workload, Splash2Workload):
        mesh = spec.config.mesh
        trace = _splash2_trace(
            workload.benchmark, mesh.width, mesh.height, spec.seed, spec.cycles
        )
        result = _execute_trace(
            spec.config, trace, spec.max_drain_cycles, spec.obs, spec.faults,
            progress=progress, meta=meta,
        )
    elif isinstance(workload, TraceFileWorkload):
        trace = Trace.load(workload.path)
        result = _execute_trace(
            spec.config, trace, spec.max_drain_cycles, spec.obs, spec.faults,
            progress=progress, meta=meta,
        )
    else:
        raise TypeError(f"unknown workload type {type(workload).__name__}")
    return replace(result, wall_time_s=time.perf_counter() - started)


def _trace_meta(spec: "RunSpec") -> dict[str, Any]:
    """Run identity stamped into the JSONL trace header.

    ``link_delay`` is the backend's per-hop transit cost, which the blame
    analyzer cannot recover from the events alone: Phastlane waves cross
    links within the cycle (0), the electrical baseline pays its
    router/link pipeline per hop.
    """
    return {
        "spec": spec.digest(),
        "label": spec.config.label,
        "workload": spec.workload_name,
        "cycles": spec.cycles,
        "seed": spec.seed,
        "link_delay": getattr(spec.config, "router_delay_cycles", 0),
    }


@lru_cache(maxsize=32)
def _splash2_trace(
    benchmark: str, width: int, height: int, seed: int, duration_cycles: int
) -> Trace:
    """Per-process memo: one generated trace drives many configurations."""
    return generate_splash2_trace(
        benchmark,
        mesh=MeshGeometry(width, height),
        seed=seed,
        duration_cycles=duration_cycles,
    )


def _execute_trace(
    config: NetworkConfig,
    trace: Trace,
    max_drain_cycles: int,
    obs: ObsConfig | None = None,
    faults: "FaultConfig | None" = None,
    progress: ProgressSink | None = None,
    meta: dict[str, Any] | None = None,
) -> RunResult:
    """Replay a trace to completion (injection phase plus full drain)."""
    network = make_network(config, TraceSource(trace), faults=faults)
    engine = SimulationEngine()
    engine.register(network)
    session = ObsSession(obs, network, engine, meta=meta)
    watcher = _attach_progress(
        progress, network, session, engine, trace.last_cycle + 1
    )
    engine.run(trace.last_cycle + 1)
    drained = engine.run_until(
        lambda: network.idle(engine.cycle), max_drain_cycles
    )
    timeseries, profile, health = session.finish()
    if watcher is not None:
        watcher.emit(engine.cycle, done=True)
    if not drained:
        raise SaturationError(
            f"{config.label} failed to drain trace {trace.name!r} "
            f"within {max_drain_cycles} extra cycles"
        )
    return RunResult(
        label=config.label,
        workload=trace.name,
        cycles=engine.cycle,
        stats=network.stats,
        drained=drained,
        timeseries=timeseries,
        profile=profile,
        health=health,
    )


def _execute_synthetic(
    config: NetworkConfig,
    pattern: str,
    rate: float,
    cycles: int,
    warmup: int | None,
    seed: int,
    obs: ObsConfig | None = None,
    faults: "FaultConfig | None" = None,
    progress: ProgressSink | None = None,
    meta: dict[str, Any] | None = None,
) -> RunResult:
    """Open-loop synthetic run: Bernoulli injection at ``rate`` per node.

    The network keeps injecting for the full ``cycles`` window (no drain);
    latency is measured only for packets generated after the warm-up, the
    standard interconnection-network measurement methodology.
    """
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    warmup = cycles // 5 if warmup is None else warmup
    source = SyntheticSource(
        pattern_by_name(pattern, topology_of(config)),
        lambda: BernoulliInjector(rate),
        seed=seed,
        stop_cycle=cycles,
    )
    stats = NetworkStats(measurement_start=warmup)
    network = make_network(config, source, stats, faults=faults)
    engine = SimulationEngine()
    engine.register(network)
    session = ObsSession(obs, network, engine, meta=meta)
    watcher = _attach_progress(progress, network, session, engine, cycles)
    engine.run(cycles)
    timeseries, profile, health = session.finish()
    if watcher is not None:
        watcher.emit(engine.cycle, done=True)
    return RunResult(
        label=config.label,
        workload=f"{pattern}@{rate:g}",
        cycles=engine.cycle,
        stats=network.stats,
        drained=network.idle(engine.cycle),
        timeseries=timeseries,
        profile=profile,
        health=health,
    )
