"""Run one network configuration against one workload.

``make_network`` dispatches on the configuration type — a
:class:`~repro.core.config.PhastlaneConfig` builds the optical network, an
:class:`~repro.electrical.config.ElectricalConfig` builds the electrical
baseline — so every experiment treats the two implementations uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PhastlaneConfig
from repro.core.network import PhastlaneNetwork
from repro.electrical.config import ElectricalConfig
from repro.electrical.network import ElectricalNetwork
from repro.photonics.constants import CYCLE_TIME_PS
from repro.sim.engine import SimulationEngine
from repro.sim.stats import NetworkStats, SaturationError
from repro.traffic.injection import BernoulliInjector
from repro.traffic.patterns import pattern_by_name
from repro.traffic.trace import SyntheticSource, Trace, TraceSource, TrafficSource

NetworkConfig = PhastlaneConfig | ElectricalConfig
Network = PhastlaneNetwork | ElectricalNetwork


def config_label(config: NetworkConfig) -> str:
    """Figure-style label: ``Optical4``, ``Optical4B64``, ``Electrical3``..."""
    if isinstance(config, PhastlaneConfig):
        return config.label
    return f"Electrical{config.router_delay_cycles}"


def make_network(
    config: NetworkConfig,
    source: TrafficSource | None = None,
    stats: NetworkStats | None = None,
) -> Network:
    """Build the simulator matching the configuration type."""
    if isinstance(config, PhastlaneConfig):
        return PhastlaneNetwork(config, source, stats)
    if isinstance(config, ElectricalConfig):
        return ElectricalNetwork(config, source, stats)
    raise TypeError(f"unknown network configuration type {type(config).__name__}")


@dataclass(frozen=True)
class RunResult:
    """Summary of one simulation run."""

    label: str
    workload: str
    cycles: int
    stats: NetworkStats
    drained: bool

    @property
    def mean_latency(self) -> float:
        return self.stats.mean_latency

    @property
    def power_w(self) -> float:
        return self.stats.average_power_w(CYCLE_TIME_PS)

    def throughput(self, num_nodes: int) -> float:
        return self.stats.throughput(num_nodes)

    def summary(self) -> dict[str, float]:
        return {
            "mean_latency_cycles": self.mean_latency,
            "power_w": self.power_w,
            "delivered": self.stats.packets_delivered,
            "dropped": self.stats.packets_dropped,
            "retransmissions": self.stats.retransmissions,
            "delivery_ratio": self.stats.delivery_ratio,
        }


def run_trace(
    config: NetworkConfig,
    trace: Trace,
    max_drain_cycles: int = 200_000,
) -> RunResult:
    """Replay a trace to completion (injection phase plus full drain)."""
    network = make_network(config, TraceSource(trace))
    engine = SimulationEngine()
    engine.register(network)
    engine.run(trace.last_cycle + 1)
    drained = engine.run_until(
        lambda: network.idle(engine.cycle), max_drain_cycles
    )
    if not drained:
        raise SaturationError(
            f"{config_label(config)} failed to drain trace {trace.name!r} "
            f"within {max_drain_cycles} extra cycles"
        )
    return RunResult(
        label=config_label(config),
        workload=trace.name,
        cycles=engine.cycle,
        stats=network.stats,
        drained=drained,
    )


def run_synthetic(
    config: NetworkConfig,
    pattern: str,
    rate: float,
    cycles: int = 1500,
    warmup: int | None = None,
    seed: int = 1,
) -> RunResult:
    """Open-loop synthetic run: Bernoulli injection at ``rate`` per node.

    The network keeps injecting for the full ``cycles`` window (no drain);
    latency is measured only for packets generated after the warm-up, the
    standard interconnection-network measurement methodology.
    """
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    warmup = cycles // 5 if warmup is None else warmup
    source = SyntheticSource(
        pattern_by_name(pattern, config.mesh),
        lambda: BernoulliInjector(rate),
        seed=seed,
        stop_cycle=cycles,
    )
    stats = NetworkStats(measurement_start=warmup)
    network = make_network(config, source, stats)
    engine = SimulationEngine()
    engine.register(network)
    engine.run(cycles)
    return RunResult(
        label=config_label(config),
        workload=f"{pattern}@{rate:g}",
        cycles=engine.cycle,
        stats=network.stats,
        drained=network.idle(engine.cycle),
    )
