"""Static HTML campaign report: one self-contained file, no dependencies.

:func:`render_campaign_html` turns an executor's
:class:`~repro.harness.exec.RunEvent` log into a single HTML document —
inline CSS, inline SVG sparklines, zero external assets — so a finished
campaign can be archived next to its JSON report and opened anywhere
(including as a CI artifact).  Each run row shows identity, timing, cache
provenance, headline counters, the watchdog verdict as a colour badge and
a delivered-per-window sparkline when the run collected a time series.

When runs wrote JSONL packet traces (``ObsConfig(trace_path=...jsonl)``),
the report gains a *latency blame* section per traced run: the
component split (source queue / contention / transit / backoff), tail
percentiles including p99.9, and the hottest routers — the
:mod:`repro.obs.analysis` engine run over each trace file at render time.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.harness.exec import RunEvent
from repro.obs.analysis import BlameReport, analyze_trace_file

_BADGE_COLOURS = {"ok": "#2e7d32", "warn": "#ef6c00", "critical": "#c62828"}

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #222; }
h1 { font-size: 1.4rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td { padding: 0.35rem 0.6rem; text-align: left;
         border-bottom: 1px solid #ddd; white-space: nowrap; }
th { background: #f5f5f5; position: sticky; top: 0; }
tr:hover td { background: #fafafa; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.badge { display: inline-block; padding: 0.05rem 0.5rem; border-radius: 0.6rem;
         color: #fff; font-size: 0.75rem; }
.cache { color: #666; font-style: italic; }
.summary { margin: 0.8rem 0 1.4rem; color: #444; }
svg.spark { vertical-align: middle; }
"""


def _sparkline(values: Sequence[float], width: int = 120, height: int = 22) -> str:
    """An inline SVG polyline of one window series (empty string if flat)."""
    if len(values) < 2:
        return ""
    top = max(values)
    span = top if top > 0 else 1.0
    step = width / (len(values) - 1)
    points = " ".join(
        f"{index * step:.1f},{height - 2 - (value / span) * (height - 4):.1f}"
        for index, value in enumerate(values)
    )
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline fill="none" stroke="#1565c0" stroke-width="1.5" '
        f'points="{points}"/></svg>'
    )


def _badge(status: str | None) -> str:
    if status is None:
        return "&mdash;"
    colour = _BADGE_COLOURS.get(status, "#616161")
    return f'<span class="badge" style="background:{colour}">{html.escape(status)}</span>'


def _blame_report_for(event: RunEvent) -> BlameReport | None:
    """Analyze the run's JSONL trace file, if it wrote one."""
    obs = event.spec.obs
    if obs is None or obs.trace_path is None or obs.trace_format != "jsonl":
        return None
    path = Path(obs.trace_path)
    if not path.exists():
        return None
    try:
        return analyze_trace_file(path, top=3)
    except (OSError, ValueError):
        # A truncated or foreign trace never breaks the report render.
        return None


def _blame_section(entries: list[tuple[RunEvent, Any]]) -> str:
    """The latency-blame block: one sub-table per traced run."""
    blocks = []
    for event, report in entries:
        total = report.total_latency or 1
        components = " &middot; ".join(
            f"{html.escape(name)} {100.0 * cycles / total:.1f}%"
            for name, cycles in report.components.items()
        )
        tail = " &middot; ".join(
            f"{name} {report.tail.get(name)}"
            for name in ("p50", "p95", "p99", "p999")
            if report.tail.get(name) is not None
        )
        rows = "".join(
            "<tr>"
            f'<td class="num">{node}</td>'
            f'<td class="num">{entry["contention"]}</td>'
            f'<td class="num">{entry["backoff"]}</td>'
            f'<td class="num">{entry["source_queue"]}</td>'
            f'<td class="num">{entry["total"]}</td>'
            "</tr>"
            for node, entry in report.top_routers(3)
        )
        blocks.append(
            f"<h3>{html.escape(event.spec.label)} &middot; "
            f"{html.escape(event.spec.workload_name)}</h3>"
            f'<p class="summary">{report.delivered} delivered / '
            f"{report.packets} traced &middot; {components}"
            + (f"<br>tail latency (cycles): {tail}" if tail else "")
            + "</p>"
            "<table><thead><tr><th>router</th><th>contention</th>"
            "<th>backoff</th><th>source queue</th><th>total</th>"
            "</tr></thead><tbody>" + rows + "</tbody></table>"
        )
    return "<h2>Latency blame</h2>" + "".join(blocks)


def render_campaign_html(
    events: Iterable[RunEvent], title: str = "Campaign report"
) -> str:
    """Render a complete HTML document from a campaign's run events."""
    ordered = sorted(events, key=lambda event: event.index)
    total_wall = sum(event.wall_time_s for event in ordered)
    cache_hits = sum(1 for event in ordered if event.cache_hit)
    total_flits = sum(event.result.stats.flits_processed for event in ordered)
    worst = "ok"
    for event in ordered:
        health = event.result.health
        if health is not None:
            if health.status == "critical":
                worst = "critical"
            elif health.status == "warn" and worst == "ok":
                worst = "warn"
    rows = []
    for event in ordered:
        result = event.result
        stats = result.stats
        spark = ""
        if result.timeseries is not None and result.timeseries.windows:
            spark = _sparkline([w.delivered for w in result.timeseries.windows])
        health = result.health.status if result.health is not None else None
        wall = (
            '<span class="cache">cache</span>'
            if event.cache_hit
            else f"{event.wall_time_s:.2f}s"
        )
        rows.append(
            "<tr>"
            f'<td class="num">{event.index}</td>'
            f"<td>{html.escape(event.spec.label)}</td>"
            f"<td>{html.escape(event.spec.workload_name)}</td>"
            f'<td class="num">{result.cycles}</td>'
            f'<td class="num">{wall}</td>'
            f'<td class="num">{stats.packets_delivered}</td>'
            f'<td class="num">{stats.packets_dropped}</td>'
            f'<td class="num">{stats.retransmissions}</td>'
            f"<td>{_badge(health)}</td>"
            f"<td>{spark}</td>"
            "</tr>"
        )
    summary = (
        f"{len(ordered)} runs &middot; {cache_hits} cache hits &middot; "
        f"{total_wall:.1f}s simulated wall time &middot; "
        f"{total_flits:,} flits processed &middot; overall health {_badge(worst)}"
    )
    table = (
        "<table><thead><tr>"
        "<th>#</th><th>config</th><th>workload</th><th>cycles</th>"
        "<th>wall</th><th>delivered</th><th>dropped</th><th>retx</th>"
        "<th>health</th><th>delivered/window</th>"
        "</tr></thead><tbody>" + "".join(rows) + "</tbody></table>"
    )
    blamed = [
        (event, report)
        for event in ordered
        for report in [_blame_report_for(event)]
        if report is not None and report.delivered
    ]
    blame = _blame_section(blamed) if blamed else ""
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title><style>{_STYLE}</style></head>"
        f"<body><h1>{html.escape(title)}</h1>"
        f'<p class="summary">{summary}</p>{table}{blame}</body></html>\n'
    )


def write_campaign_html(
    path: str | Path, events: Iterable[RunEvent], title: str = "Campaign report"
) -> Path:
    """Render and write the report; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_campaign_html(events, title))
    return path
