"""Injection-rate sweeps: latency curves and saturation bandwidth (Fig 9)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.harness.runner import NetworkConfig, config_label, run_synthetic

#: A measured mean latency above this is treated as past saturation.
LATENCY_CAP_CYCLES = 300.0


@dataclass(frozen=True)
class LatencyPoint:
    """One point of a latency-vs-injection-rate curve."""

    rate: float
    mean_latency: float  # inf when saturated
    throughput: float  # delivered packets/node/cycle in the window
    delivered: int

    @property
    def saturated(self) -> bool:
        return self.mean_latency == float("inf")


def latency_vs_injection(
    config: NetworkConfig,
    pattern: str,
    rates: Sequence[float],
    cycles: int = 1500,
    seed: int = 1,
) -> list[LatencyPoint]:
    """One Fig 9 series: average packet latency at each injection rate.

    Past saturation a run's latency diverges with the window length; such
    points are reported as ``inf`` (the figure's vertical asymptote) while
    throughput keeps recording the delivered rate.
    """
    points: list[LatencyPoint] = []
    num_nodes = config.mesh.num_nodes
    for rate in rates:
        result = run_synthetic(config, pattern, rate, cycles=cycles, seed=seed)
        stats = result.stats
        if stats.latency.mean.count == 0:
            latency = float("inf")
        else:
            latency = stats.mean_latency
            backlog_ratio = stats.packets_delivered / max(1, stats.packets_generated)
            if latency > LATENCY_CAP_CYCLES or backlog_ratio < 0.75:
                latency = float("inf")
        points.append(
            LatencyPoint(
                rate=rate,
                mean_latency=latency,
                throughput=result.throughput(num_nodes),
                delivered=stats.packets_delivered,
            )
        )
    return points


def saturation_rate(points: Sequence[LatencyPoint]) -> float:
    """The highest injection rate still under saturation.

    Returns 0.0 when even the lowest swept rate saturates.
    """
    best = 0.0
    for point in points:
        if not point.saturated:
            best = max(best, point.rate)
    return best


def zero_load_latency(points: Sequence[LatencyPoint]) -> float:
    """The latency of the lowest-rate unsaturated point."""
    for point in sorted(points, key=lambda p: p.rate):
        if not point.saturated:
            return point.mean_latency
    raise ValueError("every swept point is saturated")


def sweep_summary(
    config: NetworkConfig,
    pattern: str,
    rates: Sequence[float],
    cycles: int = 1500,
    seed: int = 1,
) -> dict[str, float]:
    """Zero-load latency and saturation bandwidth for one config/pattern."""
    points = latency_vs_injection(config, pattern, rates, cycles, seed)
    return {
        "label": config_label(config),  # type: ignore[dict-item]
        "zero_load_latency": zero_load_latency(points),
        "saturation_rate": saturation_rate(points),
    }
