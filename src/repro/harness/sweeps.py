"""Parameter sweeps: latency-vs-injection (Fig 9) and fault-degradation curves.

Each sweep is expressed as a list of :class:`~repro.harness.exec.RunSpec`
and executed through an :class:`~repro.harness.exec.Executor`, so a sweep
parallelises across worker processes and benefits from the on-disk result
cache while producing exactly the serial result stream.  The
fault-degradation sweep (:func:`throughput_vs_fault_rate`) holds the
workload fixed and sweeps the per-crossing fault probability instead,
measuring how throughput and delivery degrade as devices fail.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.fabric import NetworkConfig
from repro.faults.config import FaultConfig
from repro.harness.exec import Executor, RunSpec, SyntheticWorkload
from repro.harness.runner import RunResult

#: A measured mean latency above this is treated as past saturation.
LATENCY_CAP_CYCLES = 300.0


@dataclass(frozen=True)
class LatencyPoint:
    """One point of a latency-vs-injection-rate curve."""

    rate: float
    mean_latency: float  # inf when saturated
    throughput: float  # delivered packets/node/cycle in the window
    delivered: int

    @property
    def saturated(self) -> bool:
        return self.mean_latency == float("inf")


def point_from_result(
    rate: float, result: RunResult, num_nodes: int
) -> LatencyPoint:
    """Classify one run as a sweep point (saturated points become ``inf``).

    Past saturation a run's latency diverges with the window length; such
    points are reported as ``inf`` (the figure's vertical asymptote) while
    throughput keeps recording the delivered rate.
    """
    stats = result.stats
    if stats.latency.mean.count == 0:
        latency = float("inf")
    else:
        latency = stats.mean_latency
        backlog_ratio = stats.packets_delivered / max(1, stats.packets_generated)
        if latency > LATENCY_CAP_CYCLES or backlog_ratio < 0.75:
            latency = float("inf")
    return LatencyPoint(
        rate=rate,
        mean_latency=latency,
        throughput=result.throughput(num_nodes),
        delivered=stats.packets_delivered,
    )


def sweep_specs(
    config: NetworkConfig,
    pattern: str,
    rates: Sequence[float],
    cycles: int = 1500,
    seed: int = 1,
    faults: FaultConfig | None = None,
) -> list[RunSpec]:
    """The run specs of one Fig 9 series, in rate order."""
    return [
        RunSpec(
            config=config,
            workload=SyntheticWorkload(pattern, rate),
            cycles=cycles,
            seed=seed,
            faults=faults,
        )
        for rate in rates
    ]


def latency_vs_injection(
    config: NetworkConfig,
    pattern: str,
    rates: Sequence[float],
    cycles: int = 1500,
    seed: int = 1,
    executor: Executor | None = None,
    faults: FaultConfig | None = None,
) -> list[LatencyPoint]:
    """One Fig 9 series: average packet latency at each injection rate."""
    executor = executor or Executor()
    results = executor.map(
        sweep_specs(config, pattern, rates, cycles, seed, faults)
    )
    num_nodes = config.mesh.num_nodes
    return [
        point_from_result(rate, result, num_nodes)
        for rate, result in zip(rates, results)
    ]


def saturation_rate(points: Sequence[LatencyPoint]) -> float:
    """The highest injection rate still under saturation.

    Returns 0.0 when even the lowest swept rate saturates.
    """
    best = 0.0
    for point in points:
        if not point.saturated:
            best = max(best, point.rate)
    return best


def zero_load_latency(points: Sequence[LatencyPoint]) -> float:
    """The latency of the lowest-rate unsaturated point."""
    for point in sorted(points, key=lambda p: p.rate):
        if not point.saturated:
            return point.mean_latency
    raise ValueError("every swept point is saturated")


def sweep_summary(
    config: NetworkConfig,
    pattern: str,
    rates: Sequence[float],
    cycles: int = 1500,
    seed: int = 1,
    executor: Executor | None = None,
) -> dict[str, float]:
    """Zero-load latency and saturation bandwidth for one config/pattern."""
    points = latency_vs_injection(
        config, pattern, rates, cycles, seed, executor=executor
    )
    return {
        "label": config.label,  # type: ignore[dict-item]
        "zero_load_latency": zero_load_latency(points),
        "saturation_rate": saturation_rate(points),
    }


# -- fault-degradation sweep ---------------------------------------------------


@dataclass(frozen=True)
class FaultPoint:
    """One point of a throughput-vs-fault-rate degradation curve."""

    fault_rate: float  # per-crossing loss probability swept
    throughput: float  # delivered packets/node/cycle in the window
    delivered: int
    lost: int  # packets abandoned after exhausting retries
    faults_injected: int
    delivery_ratio: float
    mean_latency: float  # inf when nothing was measured

    def to_dict(self) -> dict[str, object]:
        latency = self.mean_latency
        return {
            "fault_rate": self.fault_rate,
            "throughput": self.throughput,
            "delivered": self.delivered,
            "lost": self.lost,
            "faults_injected": self.faults_injected,
            "delivery_ratio": self.delivery_ratio,
            "mean_latency": None if latency == float("inf") else latency,
        }


def fault_sweep_specs(
    config: NetworkConfig,
    pattern: str,
    rate: float,
    fault_rates: Sequence[float],
    cycles: int = 1500,
    seed: int = 1,
    faults: FaultConfig | None = None,
) -> list[RunSpec]:
    """Run specs of one degradation curve, in fault-rate order.

    Each spec fixes the workload (pattern + injection rate) and varies
    ``link_flip_prob`` across ``fault_rates``; every other fault-model knob
    comes from the ``faults`` template (default: a bare
    :class:`~repro.faults.config.FaultConfig`, Bernoulli link faults only).
    With the default template a fault rate of exactly 0.0 produces a
    fault-free spec — the curve's baseline point shares its digest (and
    cached result) with ordinary runs.
    """
    template = faults if faults is not None else FaultConfig()
    return [
        RunSpec(
            config=config,
            workload=SyntheticWorkload(pattern, rate),
            cycles=cycles,
            seed=seed,
            faults=replace(template, link_flip_prob=fault_rate),
        )
        for fault_rate in fault_rates
    ]


def fault_point_from_result(fault_rate: float, result: RunResult, num_nodes: int) -> FaultPoint:
    """Classify one run as a degradation-curve point."""
    stats = result.stats
    if stats.latency.mean.count == 0:
        latency = float("inf")
    else:
        latency = stats.mean_latency
    return FaultPoint(
        fault_rate=fault_rate,
        throughput=result.throughput(num_nodes),
        delivered=stats.packets_delivered,
        lost=stats.packets_lost,
        faults_injected=stats.faults_injected,
        delivery_ratio=stats.delivery_ratio,
        mean_latency=latency,
    )


def throughput_vs_fault_rate(
    config: NetworkConfig,
    pattern: str,
    rate: float,
    fault_rates: Sequence[float],
    cycles: int = 1500,
    seed: int = 1,
    faults: FaultConfig | None = None,
    executor: Executor | None = None,
) -> list[FaultPoint]:
    """One degradation curve: throughput and losses at each fault rate.

    The sweep runs through the standard executor, so it parallelises and
    caches like any campaign (fault configs are part of run-spec identity,
    so every fault rate gets its own cache entry).
    """
    executor = executor or Executor()
    results = executor.map(
        fault_sweep_specs(config, pattern, rate, fault_rates, cycles, seed, faults)
    )
    num_nodes = config.mesh.num_nodes
    return [
        fault_point_from_result(fault_rate, result, num_nodes)
        for fault_rate, result in zip(fault_rates, results)
    ]
