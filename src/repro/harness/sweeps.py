"""Injection-rate sweeps: latency curves and saturation bandwidth (Fig 9).

Each sweep is expressed as a list of :class:`~repro.harness.exec.RunSpec`
and executed through an :class:`~repro.harness.exec.Executor`, so a sweep
parallelises across worker processes and benefits from the on-disk result
cache while producing exactly the serial result stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.fabric import NetworkConfig
from repro.harness.exec import Executor, RunSpec, SyntheticWorkload
from repro.harness.runner import RunResult

#: A measured mean latency above this is treated as past saturation.
LATENCY_CAP_CYCLES = 300.0


@dataclass(frozen=True)
class LatencyPoint:
    """One point of a latency-vs-injection-rate curve."""

    rate: float
    mean_latency: float  # inf when saturated
    throughput: float  # delivered packets/node/cycle in the window
    delivered: int

    @property
    def saturated(self) -> bool:
        return self.mean_latency == float("inf")


def point_from_result(
    rate: float, result: RunResult, num_nodes: int
) -> LatencyPoint:
    """Classify one run as a sweep point (saturated points become ``inf``).

    Past saturation a run's latency diverges with the window length; such
    points are reported as ``inf`` (the figure's vertical asymptote) while
    throughput keeps recording the delivered rate.
    """
    stats = result.stats
    if stats.latency.mean.count == 0:
        latency = float("inf")
    else:
        latency = stats.mean_latency
        backlog_ratio = stats.packets_delivered / max(1, stats.packets_generated)
        if latency > LATENCY_CAP_CYCLES or backlog_ratio < 0.75:
            latency = float("inf")
    return LatencyPoint(
        rate=rate,
        mean_latency=latency,
        throughput=result.throughput(num_nodes),
        delivered=stats.packets_delivered,
    )


def sweep_specs(
    config: NetworkConfig,
    pattern: str,
    rates: Sequence[float],
    cycles: int = 1500,
    seed: int = 1,
) -> list[RunSpec]:
    """The run specs of one Fig 9 series, in rate order."""
    return [
        RunSpec(
            config=config,
            workload=SyntheticWorkload(pattern, rate),
            cycles=cycles,
            seed=seed,
        )
        for rate in rates
    ]


def latency_vs_injection(
    config: NetworkConfig,
    pattern: str,
    rates: Sequence[float],
    cycles: int = 1500,
    seed: int = 1,
    executor: Executor | None = None,
) -> list[LatencyPoint]:
    """One Fig 9 series: average packet latency at each injection rate."""
    executor = executor or Executor()
    results = executor.map(sweep_specs(config, pattern, rates, cycles, seed))
    num_nodes = config.mesh.num_nodes
    return [
        point_from_result(rate, result, num_nodes)
        for rate, result in zip(rates, results)
    ]


def saturation_rate(points: Sequence[LatencyPoint]) -> float:
    """The highest injection rate still under saturation.

    Returns 0.0 when even the lowest swept rate saturates.
    """
    best = 0.0
    for point in points:
        if not point.saturated:
            best = max(best, point.rate)
    return best


def zero_load_latency(points: Sequence[LatencyPoint]) -> float:
    """The latency of the lowest-rate unsaturated point."""
    for point in sorted(points, key=lambda p: p.rate):
        if not point.saturated:
            return point.mean_latency
    raise ValueError("every swept point is saturated")


def sweep_summary(
    config: NetworkConfig,
    pattern: str,
    rates: Sequence[float],
    cycles: int = 1500,
    seed: int = 1,
    executor: Executor | None = None,
) -> dict[str, float]:
    """Zero-load latency and saturation bandwidth for one config/pattern."""
    points = latency_vs_injection(
        config, pattern, rates, cycles, seed, executor=executor
    )
    return {
        "label": config.label,  # type: ignore[dict-item]
        "zero_load_latency": zero_load_latency(points),
        "saturation_rate": saturation_rate(points),
    }
