"""Machine-readable experiment reports (JSON).

Serialises run results and figure data so campaigns can be archived,
diffed across calibrations, or post-processed outside Python.  Everything
is plain-JSON types; no custom decoder is needed to read a report.
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any

from repro.harness.runner import RunResult
from repro.photonics.constants import CYCLE_TIME_PS
from repro.sim.stats import NetworkStats


def stats_to_dict(stats: NetworkStats) -> dict[str, Any]:
    """Flatten a stats ledger to JSON-friendly types."""
    mean = stats.latency.mean
    return {
        "packets_generated": stats.packets_generated,
        "packets_injected": stats.packets_injected,
        "packets_delivered": stats.packets_delivered,
        "packets_dropped": stats.packets_dropped,
        "retransmissions": stats.retransmissions,
        "multicast_packets": stats.multicast_packets,
        "hops_traversed": stats.hops_traversed,
        "delivery_ratio": stats.delivery_ratio,
        "final_cycle": stats.final_cycle,
        "latency": {
            "count": mean.count,
            "mean": mean.mean if mean.count else None,
            "min": mean.min if mean.count else None,
            "max": mean.max if mean.count else None,
        },
        "energy_pj": dict(stats.energy_pj),
        "average_power_w": stats.average_power_w(CYCLE_TIME_PS),
    }


def result_to_dict(result: RunResult) -> dict[str, Any]:
    return {
        "label": result.label,
        "workload": result.workload,
        "cycles": result.cycles,
        "drained": result.drained,
        "stats": stats_to_dict(result.stats),
    }


def figure_to_dict(data: Any) -> dict[str, Any]:
    """Serialise a figure dataclass (Figure4..Figure11) generically."""
    if not is_dataclass(data):
        raise TypeError(f"expected a figure dataclass, got {type(data).__name__}")
    return _jsonify(asdict(data))


def _jsonify(value: Any) -> Any:
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, float) and value in (float("inf"), float("-inf")):
        return None  # JSON has no infinity; saturated points become null
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_report(path: str | Path, payload: dict[str, Any]) -> Path:
    """Write a JSON report; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(_jsonify(payload), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_report(path: str | Path) -> dict[str, Any]:
    with Path(path).open() as handle:
        return json.load(handle)
