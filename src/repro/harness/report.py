"""Machine-readable experiment reports (JSON).

Serialises run results and figure data so campaigns can be archived,
diffed across calibrations, or post-processed outside Python.  Everything
is plain-JSON types; no custom decoder is needed to read a report.

Results round-trip losslessly: ``result_from_dict(result_to_dict(r)) == r``
including the full latency histogram and per-class energy ledger, which is
what lets the on-disk cache in :mod:`repro.harness.exec` serve byte-identical
reports.  Wall-clock timings are deliberately *excluded* from result
payloads (a cached rerun must serialise identically to a fresh one); they
live in the campaign manifest built by :func:`manifest_to_dict`.
"""

from __future__ import annotations

import json
import math
from collections import Counter
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.harness.runner import RunResult
from repro.harness.sweeps import LatencyPoint
from repro.obs.health import HealthReport
from repro.obs.timeseries import TimeSeries
from repro.photonics.constants import CYCLE_TIME_PS
from repro.sim.stats import Histogram, LatencyStats, NetworkStats, RunningMean


def _mean_to_dict(mean: RunningMean) -> dict[str, Any]:
    return {
        "count": mean.count,
        "mean": mean.mean if mean.count else None,
        "min": mean.min if mean.count else None,
        "max": mean.max if mean.count else None,
    }


def _mean_from_dict(payload: dict[str, Any]) -> RunningMean:
    mean = RunningMean()
    count = int(payload.get("count", 0))
    if count:
        # JSON preserves the int/float distinction, so assign verbatim:
        # coercing to float here would break byte-identical re-serialisation
        # of ledgers whose samples were ints (e.g. buffer occupancy).
        mean.count = count
        mean.mean = payload["mean"]
        mean.min = payload["min"]
        mean.max = payload["max"]
    return mean


def stats_to_dict(stats: NetworkStats) -> dict[str, Any]:
    """Flatten a stats ledger to JSON-friendly types (lossless)."""
    latency = _mean_to_dict(stats.latency.mean)
    latency["histogram"] = {
        str(bucket): count for bucket, count in stats.latency.histogram.items()
    }
    payload = {
        "measurement_start": stats.measurement_start,
        "packets_generated": stats.packets_generated,
        "packets_injected": stats.packets_injected,
        "packets_delivered": stats.packets_delivered,
        "packets_dropped": stats.packets_dropped,
        "retransmissions": stats.retransmissions,
        "multicast_packets": stats.multicast_packets,
        "hops_traversed": stats.hops_traversed,
        "delivery_ratio": stats.delivery_ratio,
        "final_cycle": stats.final_cycle,
        "latency": latency,
        "buffer_occupancy": _mean_to_dict(stats.buffer_occupancy_samples),
        "energy_pj": dict(stats.energy_pj),
        "average_power_w": stats.average_power_w(CYCLE_TIME_PS),
    }
    # Present only when fault injection actually fired: fault-free runs
    # keep the exact pre-fault payload shape, so Fig 9/10 sha256 pins and
    # cached reports from older trees stay byte-identical.
    if stats.faults_injected or stats.packets_lost:
        payload["faults"] = {
            "injected": stats.faults_injected,
            "masked": stats.faults_masked,
            "packets_lost": stats.packets_lost,
            "delivered_despite_faults": stats.delivered_despite_faults,
            "kinds": dict(stats.fault_kinds),
        }
    return payload


def stats_from_dict(payload: dict[str, Any]) -> NetworkStats:
    """Rebuild a stats ledger from :func:`stats_to_dict` output.

    Derived quantities (``delivery_ratio``, ``average_power_w``) are
    recomputed from the restored counters, not read back.
    """
    latency = LatencyStats(mean=_mean_from_dict(payload["latency"]))
    histogram = Histogram()
    for bucket, count in payload["latency"].get("histogram", {}).items():
        histogram._buckets[int(bucket)] = int(count)
        histogram.count += int(count)
    latency.histogram = histogram
    stats = NetworkStats(
        measurement_start=int(payload.get("measurement_start", 0)),
        packets_generated=int(payload["packets_generated"]),
        packets_injected=int(payload["packets_injected"]),
        packets_delivered=int(payload["packets_delivered"]),
        packets_dropped=int(payload["packets_dropped"]),
        retransmissions=int(payload["retransmissions"]),
        multicast_packets=int(payload["multicast_packets"]),
        hops_traversed=int(payload["hops_traversed"]),
        latency=latency,
        energy_pj=Counter(
            {str(key): value for key, value in payload["energy_pj"].items()}
        ),
        final_cycle=int(payload["final_cycle"]),
    )
    stats.buffer_occupancy_samples = _mean_from_dict(
        payload.get("buffer_occupancy", {"count": 0})
    )
    faults = payload.get("faults")
    if faults is not None:
        stats.faults_injected = int(faults["injected"])
        stats.faults_masked = int(faults["masked"])
        stats.packets_lost = int(faults["packets_lost"])
        stats.delivered_despite_faults = int(faults["delivered_despite_faults"])
        stats.fault_kinds = Counter(
            {str(kind): int(count) for kind, count in faults["kinds"].items()}
        )
    return stats


def result_to_dict(result: RunResult) -> dict[str, Any]:
    """Serialise a run result (no wall-clock timing: see module docstring).

    The windowed time series and health report, when collected, *are*
    part of the payload — they are deterministic simulation data, unlike
    wall times.  Runs without metrics or watchdogs enabled omit the keys
    entirely, keeping their reports byte-identical to pre-observability
    output.
    """
    payload = {
        "label": result.label,
        "workload": result.workload,
        "cycles": result.cycles,
        "drained": result.drained,
        "stats": stats_to_dict(result.stats),
    }
    if result.timeseries is not None:
        payload["timeseries"] = result.timeseries.to_dict()
    if result.health is not None:
        payload["health"] = result.health.to_dict()
    return payload


def result_from_dict(payload: dict[str, Any]) -> RunResult:
    timeseries = payload.get("timeseries")
    health = payload.get("health")
    return RunResult(
        label=payload["label"],
        workload=payload["workload"],
        cycles=int(payload["cycles"]),
        drained=bool(payload["drained"]),
        stats=stats_from_dict(payload["stats"]),
        timeseries=None if timeseries is None else TimeSeries.from_dict(timeseries),
        health=None if health is None else HealthReport.from_dict(health),
    )


def point_to_dict(point: LatencyPoint) -> dict[str, Any]:
    """Serialise one sweep point; a saturated latency becomes ``null``."""
    return {
        "rate": point.rate,
        "mean_latency": None if math.isinf(point.mean_latency) else point.mean_latency,
        "throughput": point.throughput,
        "delivered": point.delivered,
    }


def point_from_dict(payload: dict[str, Any]) -> LatencyPoint:
    mean_latency = payload["mean_latency"]
    return LatencyPoint(
        rate=float(payload["rate"]),
        mean_latency=float("inf") if mean_latency is None else float(mean_latency),
        throughput=float(payload["throughput"]),
        delivered=int(payload["delivered"]),
    )


def manifest_to_dict(events: Iterable[Any]) -> dict[str, Any]:
    """Campaign manifest from an executor's :class:`RunEvent` log.

    Records per-run specs, digests, cache hits and timings — everything
    needed to audit what a campaign actually executed vs served from cache.
    """
    ordered = sorted(events, key=lambda event: event.index)
    entries = []
    for event in ordered:
        entry = {
            "index": event.index,
            "digest": event.digest,
            "label": event.spec.label,
            "workload": event.spec.workload_name,
            "cycles": event.spec.cycles,
            "seed": event.spec.seed,
            "cache_hit": event.cache_hit,
            "wall_time_s": event.wall_time_s,
            "packets_per_second": event.result.packets_per_second,
            "spec": event.spec.to_dict(),
        }
        # Engine profiles are wall-clock observability, so they belong
        # here (next to timings), not in the result report.
        if event.result.profile is not None:
            entry["profile"] = event.result.profile
        # Additive key: manifests from watchdog-less runs are unchanged.
        if event.result.health is not None:
            entry["health"] = event.result.health.status
        entries.append(entry)
    return {
        "runs": len(entries),
        "cache_hits": sum(1 for entry in entries if entry["cache_hit"]),
        "total_wall_time_s": math.fsum(entry["wall_time_s"] for entry in entries),
        "entries": entries,
    }


def figure_to_dict(data: Any) -> dict[str, Any]:
    """Serialise a figure dataclass (Figure4..Figure11) generically."""
    if not is_dataclass(data):
        raise TypeError(f"expected a figure dataclass, got {type(data).__name__}")
    return _jsonify(asdict(data))


def _jsonify(value: Any) -> Any:
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, float) and value in (float("inf"), float("-inf")):
        return None  # JSON has no infinity; saturated points become null
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_report(path: str | Path, payload: dict[str, Any]) -> Path:
    """Write a JSON report; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(_jsonify(payload), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_report(path: str | Path) -> dict[str, Any]:
    with Path(path).open() as handle:
        return json.load(handle)
