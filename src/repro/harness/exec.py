"""Parallel campaign execution: run specs, a worker pool and a result cache.

Every paper figure is an embarrassingly-parallel set of independent
simulations.  This module provides the substrate the experiment layers run
on:

- :class:`RunSpec` — a frozen, hashable, JSON-serialisable description of
  one simulation (network configuration + workload + cycles + seed) with a
  stable content :meth:`~RunSpec.digest`;
- :class:`Executor` — fans a list of specs across a ``multiprocessing``
  pool (``workers=1`` stays in-process) while preserving input order, so a
  parallel campaign returns the exact result stream of a serial one;
- :class:`ResultCache` — an on-disk cache under ``.repro-cache/`` keyed by
  spec digest plus a code-calibration stamp, so re-running a campaign only
  simulates specs whose inputs (or the simulator itself) changed;
- :class:`RunEvent` — per-run observability (cache hit, wall time,
  packets/second) collected into the executor's event log, from which
  :func:`repro.harness.report.manifest_to_dict` builds a campaign manifest.

Workloads come in three flavours: :class:`SyntheticWorkload` (pattern +
Bernoulli injection rate, the Fig 9 sweeps), :class:`Splash2Workload` (a
generated SPLASH2-like trace, the Fig 10/11 campaigns) and
:class:`TraceFileWorkload` (replay a trace file; its digest covers the file
*content*, so editing the trace invalidates cached results).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import threading
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

from repro.fabric import NetworkConfig, config_kind, config_type_for
from repro.faults.config import FaultConfig
from repro.harness.runner import ProgressSample, RunResult, run
from repro.obs.config import ObsConfig
from repro.util.geometry import MeshGeometry

#: Code-calibration stamp baked into every cache key.  Bump whenever the
#: simulators or calibration constants change in a way that alters results;
#: old cache entries then become invisible rather than silently stale.
CALIBRATION_STAMP = "2026.08.0"

#: Default location of the on-disk result cache.
DEFAULT_CACHE_DIR = ".repro-cache"


def _canonical_json(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _file_sha256(path: str | Path) -> str:
    digest = hashlib.sha256()
    with Path(path).open("rb") as handle:
        for chunk in iter(lambda: handle.read(65536), b""):
            digest.update(chunk)
    return digest.hexdigest()


# -- workloads ---------------------------------------------------------------


@dataclass(frozen=True)
class SyntheticWorkload:
    """Open-loop synthetic traffic: a pattern plus a Bernoulli rate."""

    pattern: str
    rate: float

    @property
    def name(self) -> str:
        return f"{self.pattern}@{self.rate:g}"

    def to_dict(self) -> dict[str, Any]:
        return {"kind": "synthetic", "pattern": self.pattern, "rate": self.rate}


@dataclass(frozen=True)
class Splash2Workload:
    """A generated SPLASH2-like trace (benchmark + the spec's seed/cycles)."""

    benchmark: str

    @property
    def name(self) -> str:
        return self.benchmark

    def to_dict(self) -> dict[str, Any]:
        return {"kind": "splash2", "benchmark": self.benchmark}


@dataclass(frozen=True)
class TraceFileWorkload:
    """Replay a trace file; the digest covers the file's content."""

    path: str

    @property
    def name(self) -> str:
        return Path(self.path).stem

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "trace",
            "path": str(self.path),
            "content_sha256": _file_sha256(self.path),
        }


Workload = SyntheticWorkload | Splash2Workload | TraceFileWorkload

_WORKLOAD_KINDS = {"synthetic", "splash2", "trace"}


def workload_from_dict(payload: dict[str, Any]) -> Workload:
    kind = payload.get("kind")
    if kind == "synthetic":
        return SyntheticWorkload(payload["pattern"], float(payload["rate"]))
    if kind == "splash2":
        return Splash2Workload(payload["benchmark"])
    if kind == "trace":
        return TraceFileWorkload(payload["path"])
    raise ValueError(f"unknown workload kind {kind!r}; expected {_WORKLOAD_KINDS}")


# -- configuration (de)serialisation -----------------------------------------


def config_to_dict(config: NetworkConfig) -> dict[str, Any]:
    """Flatten a network configuration to JSON-friendly types.

    The ``kind`` discriminator comes from the fabric registry, so any
    registered backend's config serialises (and digests) without this
    module knowing its class.  Raises
    :class:`~repro.fabric.FabricError` for unregistered types.

    A ``topology`` field holding the default (``"mesh"``) is omitted —
    mirroring the disabled-``FaultConfig`` normalisation — so every
    pre-topology digest and cache key stays byte-identical; absent keys
    deserialise back to the default.
    """
    payload: dict[str, Any] = {"kind": config_kind(config)}
    for field_ in fields(config):
        value = getattr(config, field_.name)
        if field_.name == "mesh":
            payload["mesh"] = [value.width, value.height]
        elif field_.name == "topology" and value == "mesh":
            continue
        else:
            payload[field_.name] = value
    return payload


def config_from_dict(payload: dict[str, Any]) -> NetworkConfig:
    payload = dict(payload)
    kind = payload.pop("kind", "")
    config_type = config_type_for(kind)
    width, height = payload.pop("mesh")
    return config_type(mesh=MeshGeometry(width, height), **payload)


# -- run specification -------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to reproduce one simulation run.

    ``cycles`` is the injection window for generated workloads (synthetic
    and SPLASH2); trace-file workloads replay the file's own span and run
    to drain.  ``warmup`` applies to synthetic runs only (``None`` means
    ``cycles // 5``, the standard measurement methodology).

    ``faults`` describes injected device faults and — unlike ``obs`` — IS
    part of the spec's identity: faults change simulated physics, so two
    specs differing only in their fault model must hash, compare and cache
    differently.  A disabled fault config is normalised to ``None`` at
    construction, keeping the serialisation (and therefore every pre-fault
    cache key and digest pin) byte-identical to a tree without faults.

    ``obs`` configures observability (tracing / time-series metrics /
    profiling) and is *not* part of the spec's identity: it is excluded
    from equality, ``to_dict`` and the content digest, because it never
    changes simulation results (see :mod:`repro.obs`).
    """

    config: NetworkConfig
    workload: Workload
    cycles: int = 1500
    warmup: int | None = None
    seed: int = 1
    max_drain_cycles: int = 200_000
    faults: FaultConfig | None = None
    obs: ObsConfig | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ValueError("cycles must be positive")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.max_drain_cycles < 0:
            raise ValueError("max drain cycles must be non-negative")
        if self.faults is not None and not self.faults.enabled:
            object.__setattr__(self, "faults", None)

    @property
    def label(self) -> str:
        return self.config.label

    @property
    def workload_name(self) -> str:
        return self.workload.name

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "config": config_to_dict(self.config),
            "workload": self.workload.to_dict(),
            "cycles": self.cycles,
            "warmup": self.warmup,
            "seed": self.seed,
            "max_drain_cycles": self.max_drain_cycles,
        }
        # Key present only for enabled fault models: a fault-free spec
        # serialises exactly as it did before faults existed, so digests
        # (and every cached result) from older trees remain valid.
        if self.faults is not None:
            payload["faults"] = self.faults.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RunSpec":
        faults = payload.get("faults")
        return cls(
            config=config_from_dict(payload["config"]),
            workload=workload_from_dict(payload["workload"]),
            cycles=int(payload["cycles"]),
            warmup=payload.get("warmup"),
            seed=int(payload.get("seed", 1)),
            max_drain_cycles=int(payload.get("max_drain_cycles", 200_000)),
            faults=FaultConfig.from_dict(faults) if faults is not None else None,
        )

    def digest(self) -> str:
        """Stable content digest of the spec (sha256 of canonical JSON)."""
        return hashlib.sha256(_canonical_json(self.to_dict()).encode()).hexdigest()


# -- on-disk result cache ----------------------------------------------------


class ResultCache:
    """Content-addressed result store under ``root/v<calibration>/``.

    A cached entry is served only when both the spec digest *and* the
    calibration stamp match, so bumping :data:`CALIBRATION_STAMP` (or
    changing any spec input) invalidates it.  Corrupt or unreadable entries
    are treated as misses.
    """

    def __init__(
        self,
        root: str | Path = DEFAULT_CACHE_DIR,
        calibration: str = CALIBRATION_STAMP,
    ):
        self.root = Path(root)
        self.calibration = calibration

    def path_for(self, spec: RunSpec) -> Path:
        return self.root / f"v{self.calibration}" / f"{spec.digest()}.json"

    def load(self, spec: RunSpec) -> RunResult | None:
        # Imported here, not at module top: report imports sweeps, which
        # imports this module (the cycle is broken at the last edge).
        from repro.harness.report import result_from_dict

        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("calibration") != self.calibration:
            return None
        try:
            result = result_from_dict(payload["result"])
            wall_time = float(payload.get("wall_time_s", 0.0))
        except (KeyError, TypeError, ValueError):
            return None
        return replace(result, wall_time_s=wall_time)

    def store(self, spec: RunSpec, result: RunResult) -> Path:
        from repro.harness.report import result_to_dict

        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "calibration": self.calibration,
            "digest": spec.digest(),
            "spec": spec.to_dict(),
            "wall_time_s": result.wall_time_s,
            "result": result_to_dict(result),
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        os.replace(tmp, path)  # atomic: concurrent campaigns never see torn files
        return path


# -- executor ----------------------------------------------------------------


@dataclass(frozen=True)
class RunEvent:
    """Observability record for one completed run of a campaign."""

    index: int  # position in the submitted spec list
    total: int
    spec: RunSpec
    digest: str
    cache_hit: bool
    wall_time_s: float
    result: RunResult


ProgressCallback = Callable[[RunEvent], None]


@dataclass(frozen=True)
class RunProgress:
    """Intra-run progress of one campaign run (live telemetry).

    Forwarded to the executor's ``live`` callback while a run executes —
    the per-run complement to the completion-level :class:`RunEvent`.
    ``sample`` carries cycles-completed, counters, the worst router and
    the watchdog verdict (see
    :class:`~repro.harness.runner.ProgressSample`).
    """

    index: int
    total: int
    label: str
    workload: str
    sample: ProgressSample


LiveCallback = Callable[[RunProgress], None]


def _run_spec(spec: RunSpec) -> RunResult:
    """Top-level pool worker (must be picklable by reference)."""
    return run(spec)


#: Worker-global progress queue, installed by the pool initializer.  Plain
#: module state is the only channel a ``Pool`` worker function can reach.
_progress_queue: Any = None


def _init_progress_queue(queue: Any) -> None:
    global _progress_queue
    _progress_queue = queue


def _run_spec_forwarding(task: tuple[int, int, RunSpec]) -> RunResult:
    """Pool worker that forwards progress samples over the shared queue."""
    index, total, spec = task
    queue = _progress_queue
    if queue is None:  # pragma: no cover - defensive (initializer always set)
        return run(spec)

    def sink(sample: ProgressSample) -> None:
        queue.put((index, total, spec.label, spec.workload_name, sample))

    return run(spec, progress=sink)


class Executor:
    """Order-preserving campaign executor with optional pool and cache.

    ``map`` returns results in spec order regardless of worker count, and a
    parallel run is bit-for-bit identical to a serial one (each simulation
    owns its RNG streams; processes share nothing).  Completed runs are
    appended to :attr:`events` for manifest reporting.

    ``obs`` applies one observability configuration to every spec (specs
    carrying their own ``obs`` keep it).  Observability-enabled runs bypass
    the result cache in both directions: a cached result has no trace or
    time series to serve, and storing an instrumented result would leak a
    time series into later uninstrumented reports.  When several runs of a
    campaign trace to the same path, each gets a per-run suffix
    (``trace.json`` → ``trace-0003.json``).
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | None = None,
        progress: ProgressCallback | None = None,
        obs: ObsConfig | None = None,
        live: LiveCallback | None = None,
    ):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = workers
        self.cache = cache
        self.progress = progress
        self.obs = obs
        #: Intra-run telemetry: called with :class:`RunProgress` records
        #: while runs execute.  With a worker pool the records cross a
        #: multiprocessing queue and the callback fires on a drain thread,
        #: so it must be thread-safe.  Cache hits emit no live records
        #: (they never execute); their completion still reaches
        #: ``progress``.
        self.live = live
        self.events: list[RunEvent] = []

    @property
    def cache_hits(self) -> int:
        return sum(1 for event in self.events if event.cache_hit)

    def map(self, specs: Sequence[RunSpec]) -> list[RunResult]:
        """Run every spec, serving cached results, preserving input order."""
        specs = [self._with_obs(spec, index, len(specs))
                 for index, spec in enumerate(specs)]
        total = len(specs)
        digests = [spec.digest() for spec in specs]
        results: list[RunResult | None] = [None] * total

        misses: list[int] = []
        for index, spec in enumerate(specs):
            cached = self.cache.load(spec) if self._cacheable(spec) else None
            if cached is None:
                misses.append(index)
            else:
                results[index] = cached
                self._emit(index, total, spec, digests[index], True, cached)

        if misses:
            miss_specs = [specs[index] for index in misses]
            for index, result in zip(misses, self._compute(miss_specs, misses, total)):
                results[index] = result
                if self._cacheable(specs[index]):
                    self.cache.store(specs[index], result)
                self._emit(index, total, specs[index], digests[index], False, result)

        return results  # type: ignore[return-value]

    def _with_obs(self, spec: RunSpec, index: int, total: int) -> RunSpec:
        """Apply the executor-wide observability config to one spec."""
        if spec.obs is None and self.obs is not None:
            spec = replace(spec, obs=self.obs)
        if spec.obs is not None and total > 1:
            spec = replace(spec, obs=spec.obs.with_run_index(index))
        return spec

    def _cacheable(self, spec: RunSpec) -> bool:
        """Observability-enabled runs never touch the cache (see class doc)."""
        if self.cache is None:
            return False
        return spec.obs is None or not spec.obs.enabled

    def _compute(
        self, specs: list[RunSpec], indices: list[int], total: int
    ) -> Iterator[RunResult]:
        """Yield results for uncached specs in submission order.

        ``indices`` are the specs' positions in the originally submitted
        list, used to label :class:`RunProgress` records.
        """
        if self.workers == 1 or len(specs) == 1:
            for index, spec in zip(indices, specs):
                yield run(spec, progress=self._live_sink(index, total, spec))
            return
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context()
        workers = min(self.workers, len(specs))
        if self.live is None:
            # The historical pool path, untouched when live telemetry is off.
            with context.Pool(processes=workers) as pool:
                yield from pool.imap(_run_spec, specs, chunksize=1)
            return
        yield from self._compute_live(context, workers, specs, indices, total)

    def _live_sink(self, index: int, total: int, spec: RunSpec):
        """An in-process ProgressSink wrapping :attr:`live` (None when off)."""
        if self.live is None:
            return None

        def sink(sample: ProgressSample) -> None:
            assert self.live is not None
            self.live(
                RunProgress(
                    index=index,
                    total=total,
                    label=spec.label,
                    workload=spec.workload_name,
                    sample=sample,
                )
            )

        return sink

    def _compute_live(
        self,
        context: Any,
        workers: int,
        specs: list[RunSpec],
        indices: list[int],
        total: int,
    ) -> Iterator[RunResult]:
        """Pool execution with progress records drained off a shared queue.

        Workers put raw tuples on the queue; a daemon thread rebuilds
        :class:`RunProgress` records and invokes :attr:`live` until the
        ``None`` sentinel arrives.  Results still stream back through
        ``imap`` in submission order, exactly like the plain pool path.
        """
        queue = context.Queue()

        def drain() -> None:
            while True:
                item = queue.get()
                if item is None:
                    return
                index, run_total, label, workload, sample = item
                assert self.live is not None
                self.live(
                    RunProgress(
                        index=index,
                        total=run_total,
                        label=label,
                        workload=workload,
                        sample=sample,
                    )
                )

        thread = threading.Thread(target=drain, daemon=True)
        thread.start()
        tasks = [
            (index, total, spec) for index, spec in zip(indices, specs)
        ]
        try:
            with context.Pool(
                processes=workers,
                initializer=_init_progress_queue,
                initargs=(queue,),
            ) as pool:
                yield from pool.imap(_run_spec_forwarding, tasks, chunksize=1)
        finally:
            queue.put(None)
            thread.join()

    def _emit(
        self,
        index: int,
        total: int,
        spec: RunSpec,
        digest: str,
        cache_hit: bool,
        result: RunResult,
    ) -> None:
        event = RunEvent(
            index=index,
            total=total,
            spec=spec,
            digest=digest,
            cache_hit=cache_hit,
            wall_time_s=result.wall_time_s,
            result=result,
        )
        self.events.append(event)
        if self.progress is not None:
            self.progress(event)
