"""Experiment harness: run specs, parallel campaigns, sweeps and figures."""

from repro.fabric import FabricError, make_network
from repro.faults import FaultConfig, FaultSchedule
from repro.harness.exec import (
    CALIBRATION_STAMP,
    Executor,
    ResultCache,
    RunEvent,
    RunSpec,
    Splash2Workload,
    SyntheticWorkload,
    TraceFileWorkload,
)
from repro.harness.runner import RunResult, run
from repro.harness.sweeps import (
    FaultPoint,
    LatencyPoint,
    latency_vs_injection,
    saturation_rate,
    throughput_vs_fault_rate,
)

__all__ = [
    "CALIBRATION_STAMP",
    "Executor",
    "FabricError",
    "FaultConfig",
    "FaultPoint",
    "FaultSchedule",
    "LatencyPoint",
    "ResultCache",
    "RunEvent",
    "RunResult",
    "RunSpec",
    "Splash2Workload",
    "SyntheticWorkload",
    "TraceFileWorkload",
    "latency_vs_injection",
    "make_network",
    "run",
    "saturation_rate",
    "throughput_vs_fault_rate",
]
