"""Experiment harness: run configurations, sweeps and the paper's figures."""

from repro.harness.runner import RunResult, make_network, run_synthetic, run_trace
from repro.harness.sweeps import LatencyPoint, latency_vs_injection, saturation_rate

__all__ = [
    "LatencyPoint",
    "RunResult",
    "latency_vs_injection",
    "make_network",
    "run_synthetic",
    "run_trace",
    "saturation_rate",
]
