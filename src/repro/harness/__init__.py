"""Experiment harness: run specs, parallel campaigns, sweeps and figures."""

from repro.harness.exec import (
    CALIBRATION_STAMP,
    Executor,
    ResultCache,
    RunEvent,
    RunSpec,
    Splash2Workload,
    SyntheticWorkload,
    TraceFileWorkload,
)
from repro.harness.runner import (
    RunResult,
    config_label,
    make_network,
    run,
    run_synthetic,
    run_trace,
)
from repro.harness.sweeps import LatencyPoint, latency_vs_injection, saturation_rate

__all__ = [
    "CALIBRATION_STAMP",
    "Executor",
    "LatencyPoint",
    "ResultCache",
    "RunEvent",
    "RunResult",
    "RunSpec",
    "Splash2Workload",
    "SyntheticWorkload",
    "TraceFileWorkload",
    "config_label",
    "latency_vs_injection",
    "make_network",
    "run",
    "run_synthetic",
    "run_trace",
    "saturation_rate",
]
