"""Figure 4: optimistic/average/pessimistic scaling of transmit/receive delays."""

from __future__ import annotations

from dataclasses import dataclass

from repro.photonics import constants, scaling
from repro.util.tables import AsciiTable, format_series

#: Technology nodes plotted on the Fig 4 x-axis.
NODES_NM = (45.0, 40.0, 36.0, 32.0, 28.0, 25.0, 22.0, 19.0, 16.0)


@dataclass(frozen=True)
class Figure4:
    """The six Fig 4 series plus the canonical 16 nm endpoints."""

    nodes_nm: tuple[float, ...]
    series: dict[str, dict[str, list[float]]]
    endpoints_16nm: dict[str, dict[str, float]]


def compute(nodes_nm: tuple[float, ...] = NODES_NM) -> Figure4:
    series = scaling.figure4_series(nodes_nm)
    endpoints = {
        "transmit": dict(constants.TRANSMIT_DELAY_PS),
        "receive": dict(constants.RECEIVE_DELAY_PS),
    }
    return Figure4(nodes_nm=tuple(nodes_nm), series=series, endpoints_16nm=endpoints)


def render(data: Figure4 | None = None) -> str:
    data = data or compute()
    lines = ["Figure 4: transmit/receive delay scaling trends (ps)"]
    for component in ("transmit", "receive"):
        for scenario in constants.SCALING_SCENARIOS:
            lines.append(
                format_series(
                    f"{component}/{scenario}",
                    data.nodes_nm,
                    data.series[component][scenario],
                    x_label="nm",
                )
            )
    table = AsciiTable(
        ["component", "optimistic", "average", "pessimistic"],
        title="Canonical 16 nm endpoints (ps):",
    )
    for component, row in data.endpoints_16nm.items():
        table.add_row(
            [component, row["optimistic"], row["average"], row["pessimistic"]]
        )
    lines.append(table.render())
    return "\n".join(lines)
