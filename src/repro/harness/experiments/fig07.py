"""Figure 7: peak optical power contour (crossing efficiency x WDM x hops)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.photonics.power import OpticalPowerModel, PeakPowerPoint
from repro.util.tables import AsciiTable

WDM_DEGREES = (32, 64, 128)
HOP_COUNTS = (1, 2, 3, 4, 5, 6, 7, 8)
EFFICIENCIES = (0.95, 0.96, 0.97, 0.98, 0.99, 0.995, 1.0)

#: The paper's quoted operating points (section 3.2).
PAPER_ANCHORS = {
    (64, 4, 0.98): 32.0,
    (128, 5, 0.98): 32.0,
    (128, 4, 0.98): 15.0,
}


@dataclass(frozen=True)
class Figure7:
    points: list[PeakPowerPoint]

    def at(self, wdm: int, hops: int, efficiency: float) -> PeakPowerPoint:
        for point in self.points:
            if (
                point.payload_wdm == wdm
                and point.max_hops == hops
                and abs(point.crossing_efficiency - efficiency) < 1e-12
            ):
                return point
        raise KeyError(f"no contour point ({wdm}, {hops}, {efficiency})")


def compute(
    wdm_degrees: tuple[int, ...] = WDM_DEGREES,
    hop_counts: tuple[int, ...] = HOP_COUNTS,
    efficiencies: tuple[float, ...] = EFFICIENCIES,
) -> Figure7:
    model = OpticalPowerModel()
    return Figure7(points=model.contour(wdm_degrees, hop_counts, efficiencies))


def render(data: Figure7 | None = None) -> str:
    data = data or compute()
    lines = []
    for wdm in WDM_DEGREES:
        table = AsciiTable(
            ["hops \\ efficiency"] + [f"{eta:g}" for eta in EFFICIENCIES],
            title=f"Figure 7: peak optical power (W) at {wdm} wavelengths",
        )
        for hops in HOP_COUNTS:
            row: list[object] = [hops]
            for eta in EFFICIENCIES:
                power = data.at(wdm, hops, eta).peak_power_w
                row.append(f"{power:.1f}" if power < 1e4 else ">10k")
            table.add_row(row)
        lines.append(table.render())
    anchor_table = AsciiTable(
        ["wdm", "hops", "efficiency", "model (W)", "paper (W)"],
        title="Paper anchor points:",
    )
    for (wdm, hops, eta), paper_w in PAPER_ANCHORS.items():
        anchor_table.add_row(
            [wdm, hops, eta, data.at(wdm, hops, eta).peak_power_w, paper_w]
        )
    lines.append(anchor_table.render())
    return "\n\n".join(lines)
