"""Figure 11: network power of the optical configurations vs electrical."""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.experiments.configs import BASELINE_LABEL
from repro.harness.experiments.splash2_runs import Splash2Matrix, compute_matrix
from repro.util.tables import AsciiTable


@dataclass(frozen=True)
class Figure11:
    """{benchmark: {config label: mean network power in watts}}."""

    benchmarks: tuple[str, ...]
    labels: tuple[str, ...]
    power_w: dict[str, dict[str, float]]

    def savings_vs_baseline(self, benchmark: str, label: str) -> float:
        """Fractional power saving of ``label`` vs the electrical baseline."""
        baseline = self.power_w[benchmark][BASELINE_LABEL]
        return 1.0 - self.power_w[benchmark][label] / baseline

    def mean_savings(self, label: str) -> float:
        return sum(
            self.savings_vs_baseline(benchmark, label)
            for benchmark in self.benchmarks
        ) / len(self.benchmarks)


def from_matrix(matrix: Splash2Matrix) -> Figure11:
    power: dict[str, dict[str, float]] = {}
    for benchmark in matrix.benchmarks:
        power[benchmark] = {
            label: matrix.result(benchmark, label).power_w
            for label in matrix.labels
        }
    return Figure11(
        benchmarks=matrix.benchmarks, labels=matrix.labels, power_w=power
    )


def compute(duration_cycles: int = 4000, seed: int = 1) -> Figure11:
    return from_matrix(compute_matrix(duration_cycles=duration_cycles, seed=seed))


def render(data: Figure11) -> str:
    table = AsciiTable(
        ["benchmark"] + list(data.labels),
        title="Figure 11: mean network power (W)",
    )
    for benchmark in data.benchmarks:
        table.add_row(
            [benchmark]
            + [f"{data.power_w[benchmark][label]:.2f}" for label in data.labels]
        )
    savings = [
        f"{100 * data.mean_savings(label):.0f}%" if label != BASELINE_LABEL else "-"
        for label in data.labels
    ]
    table.add_row(["mean saving vs E3"] + savings)
    return table.render()
