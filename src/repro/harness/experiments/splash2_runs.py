"""Shared SPLASH2 trace-run matrix backing Figures 10 and 11.

Runs every (benchmark, configuration) pair once and caches the results in
the process, so ``fig10.compute`` and ``fig11.compute`` share a single
simulation campaign.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.experiments.configs import standard_configs
from repro.harness.runner import RunResult, run_trace
from repro.sim.stats import SaturationError
from repro.traffic.splash2 import SPLASH2_ORDER, generate_splash2_trace
from repro.util.geometry import MeshGeometry


@dataclass(frozen=True)
class Splash2Matrix:
    """Results of the full benchmark x configuration campaign."""

    benchmarks: tuple[str, ...]
    labels: tuple[str, ...]
    results: dict[tuple[str, str], RunResult]  # (benchmark, label) -> result

    def result(self, benchmark: str, label: str) -> RunResult:
        return self.results[(benchmark, label)]


_CACHE: dict[tuple, Splash2Matrix] = {}


def compute_matrix(
    benchmarks: tuple[str, ...] = SPLASH2_ORDER,
    labels: tuple[str, ...] | None = None,
    duration_cycles: int = 4000,
    seed: int = 1,
    mesh: MeshGeometry | None = None,
) -> Splash2Matrix:
    """Run (or fetch from cache) the benchmark/config matrix."""
    mesh = mesh or MeshGeometry(8, 8)
    configs = standard_configs(mesh)
    labels = labels or tuple(configs)
    key = (benchmarks, labels, duration_cycles, seed, mesh.width, mesh.height)
    if key in _CACHE:
        return _CACHE[key]

    results: dict[tuple[str, str], RunResult] = {}
    for benchmark in benchmarks:
        trace = generate_splash2_trace(
            benchmark, mesh=mesh, seed=seed, duration_cycles=duration_cycles
        )
        for label in labels:
            try:
                results[(benchmark, label)] = run_trace(configs[label], trace)
            except SaturationError as error:
                raise SaturationError(
                    f"{label} on {benchmark}: {error}"
                ) from error
    matrix = Splash2Matrix(benchmarks=benchmarks, labels=labels, results=results)
    _CACHE[key] = matrix
    return matrix


def clear_cache() -> None:
    """Drop cached campaigns (used by tests that vary constants)."""
    _CACHE.clear()
