"""Shared SPLASH2 trace-run matrix backing Figures 10 and 11.

The benchmark x configuration campaign is expressed as a flat list of
:class:`~repro.harness.exec.RunSpec` and executed through an
:class:`~repro.harness.exec.Executor`, so it fans out across worker
processes and is served from the on-disk result cache on reruns.  An
in-process memo additionally lets ``fig10.compute`` and ``fig11.compute``
share a single campaign within one interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.exec import Executor, RunSpec, Splash2Workload
from repro.harness.experiments.configs import standard_configs
from repro.harness.runner import RunResult
from repro.traffic.splash2 import SPLASH2_ORDER
from repro.util.geometry import MeshGeometry


@dataclass(frozen=True)
class Splash2Matrix:
    """Results of the full benchmark x configuration campaign."""

    benchmarks: tuple[str, ...]
    labels: tuple[str, ...]
    results: dict[tuple[str, str], RunResult]  # (benchmark, label) -> result

    def result(self, benchmark: str, label: str) -> RunResult:
        return self.results[(benchmark, label)]


_CACHE: dict[tuple, Splash2Matrix] = {}


def matrix_specs(
    benchmarks: tuple[str, ...] = SPLASH2_ORDER,
    labels: tuple[str, ...] | None = None,
    duration_cycles: int = 4000,
    seed: int = 1,
    mesh: MeshGeometry | None = None,
) -> list[RunSpec]:
    """The campaign's run specs, ordered benchmark-major then by label."""
    mesh = mesh or MeshGeometry(8, 8)
    configs = standard_configs(mesh)
    labels = labels or tuple(configs)
    return [
        RunSpec(
            config=configs[label],
            workload=Splash2Workload(benchmark),
            cycles=duration_cycles,
            seed=seed,
        )
        for benchmark in benchmarks
        for label in labels
    ]


def compute_matrix(
    benchmarks: tuple[str, ...] = SPLASH2_ORDER,
    labels: tuple[str, ...] | None = None,
    duration_cycles: int = 4000,
    seed: int = 1,
    mesh: MeshGeometry | None = None,
    executor: Executor | None = None,
) -> Splash2Matrix:
    """Run (or fetch from the in-process memo) the benchmark/config matrix.

    When an ``executor`` is passed explicitly the memo is bypassed, so the
    executor's event log reflects what this campaign actually did (cache
    hits come from the executor's on-disk cache instead).
    """
    mesh = mesh or MeshGeometry(8, 8)
    configs = standard_configs(mesh)
    labels = labels or tuple(configs)
    key = (benchmarks, labels, duration_cycles, seed, mesh.width, mesh.height)
    if executor is None and key in _CACHE:
        return _CACHE[key]

    specs = matrix_specs(benchmarks, labels, duration_cycles, seed, mesh)
    run_results = (executor or Executor()).map(specs)
    pairs = [(b, l) for b in benchmarks for l in labels]
    results = dict(zip(pairs, run_results))
    matrix = Splash2Matrix(benchmarks=benchmarks, labels=labels, results=results)
    _CACHE[key] = matrix
    return matrix


def clear_cache() -> None:
    """Drop in-process memoised campaigns (used by tests that vary constants)."""
    from repro.harness.runner import _splash2_trace

    _CACHE.clear()
    _splash2_trace.cache_clear()
