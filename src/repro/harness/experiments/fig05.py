"""Figure 5: critical-path component delays (PP, PB, PA, PIA) per scenario."""

from __future__ import annotations

from dataclasses import dataclass

from repro.photonics.latency import CriticalPathDelays, figure5_delays
from repro.util.tables import AsciiTable

WDM_DEGREES = (32, 64, 128)


@dataclass(frozen=True)
class Figure5:
    delays: list[CriticalPathDelays]


def compute(wdm_degrees: tuple[int, ...] = WDM_DEGREES) -> Figure5:
    return Figure5(delays=figure5_delays(wdm_degrees))


def render(data: Figure5 | None = None) -> str:
    data = data or compute()
    table = AsciiTable(
        ["scenario", "wdm", "PP (ps)", "PB (ps)", "PA (ps)", "PIA (ps)"],
        title="Figure 5: Phastlane router critical-path delays",
    )
    for entry in data.delays:
        table.add_row(
            [
                entry.scenario,
                entry.payload_wdm,
                entry.packet_pass_ps,
                entry.packet_block_ps,
                entry.packet_accept_ps,
                entry.packet_interim_accept_ps,
            ]
        )
    return table.render()
