"""Tables 1-4 of the paper, derived from the models/configurations."""

from __future__ import annotations

from repro.core.config import PhastlaneConfig
from repro.electrical.config import ElectricalConfig
from repro.photonics.dse import table1_configuration
from repro.traffic.splash2 import CACHE_CONFIGURATION, SPLASH2_INPUT_SETS
from repro.util.tables import AsciiTable


def table1() -> dict[str, object]:
    """Table 1: optical network configuration (model-derived)."""
    return table1_configuration()


def table2() -> dict[str, object]:
    """Table 2: baseline electrical router parameters."""
    return ElectricalConfig().describe()


def table3() -> dict[str, str]:
    """Table 3: SPLASH2 benchmarks and input data sets."""
    return dict(SPLASH2_INPUT_SETS)


def table4() -> dict[str, str]:
    """Table 4: cache and memory-controller parameters."""
    return dict(CACHE_CONFIGURATION)


def _render_kv(title: str, rows: dict[str, object]) -> str:
    table = AsciiTable(["parameter", "value"], title=title)
    for key, value in rows.items():
        table.add_row([key.replace("_", " "), value])
    return table.render()


def render_all() -> str:
    blocks = [
        _render_kv("Table 1: optical network configuration", table1()),
        _render_kv("Table 2: baseline electrical router parameters", table2()),
        _render_kv("Table 3: SPLASH2 benchmarks and input sets", table3()),
        _render_kv("Table 4: cache and memory parameters", table4()),
    ]
    return "\n\n".join(blocks)


def phastlane_matches_table1(config: PhastlaneConfig | None = None) -> bool:
    """Check a Phastlane config against the Table 1 design point."""
    config = config or PhastlaneConfig()
    derived = table1()
    return (
        config.payload_wdm == derived["packet_payload_wdm"]
        and config.nic_buffer_entries == derived["buffer_entries_in_nic"]
        and str(config.max_hops_per_cycle) in str(derived["max_hops_per_cycle"])
    )
