"""Figure 8: router area components versus the number of wavelengths."""

from __future__ import annotations

from dataclasses import dataclass

from repro.photonics.area import AreaBreakdown, RouterAreaModel
from repro.util.tables import AsciiTable

WDM_DEGREES = (16, 24, 32, 48, 64, 96, 128, 192, 256)


@dataclass(frozen=True)
class Figure8:
    breakdowns: list[AreaBreakdown]
    sweet_spot: int


def compute(wdm_degrees: tuple[int, ...] = WDM_DEGREES) -> Figure8:
    model = RouterAreaModel()
    return Figure8(
        breakdowns=model.sweep(wdm_degrees),
        sweet_spot=model.sweet_spot(wdm_degrees),
    )


def render(data: Figure8 | None = None) -> str:
    data = data or compute()
    table = AsciiTable(
        [
            "wavelengths",
            "waveguide side (um)",
            "port side (um)",
            "total side (mm)",
            "total area (mm^2)",
        ],
        title="Figure 8: router area components vs WDM degree",
    )
    for breakdown in data.breakdowns:
        table.add_row(
            [
                breakdown.payload_wdm,
                breakdown.waveguide_side_um,
                breakdown.port_side_um,
                breakdown.side_mm,
                breakdown.total_area_mm2,
            ]
        )
    return (
        table.render()
        + f"\nArea sweet spot: {data.sweet_spot} wavelengths (paper: 64)"
    )
