"""Figure 6: max hops per 4 GHz cycle vs wavelengths and scaling scenario."""

from __future__ import annotations

from dataclasses import dataclass

from repro.photonics.constants import SCALING_SCENARIOS
from repro.photonics.latency import figure6_hops
from repro.util.tables import AsciiTable

WDM_DEGREES = (32, 64, 128)

#: The paper's result: 8 / 5 / 4 hops, independent of WDM degree.
EXPECTED_HOPS = {"optimistic": 8, "average": 5, "pessimistic": 4}


@dataclass(frozen=True)
class Figure6:
    hops: dict[str, dict[int, int]]

    @property
    def wdm_independent(self) -> bool:
        return all(len(set(per_wdm.values())) == 1 for per_wdm in self.hops.values())


def compute(wdm_degrees: tuple[int, ...] = WDM_DEGREES) -> Figure6:
    return Figure6(hops=figure6_hops(wdm_degrees))


def render(data: Figure6 | None = None) -> str:
    data = data or compute()
    wdm_degrees = sorted(next(iter(data.hops.values())))
    table = AsciiTable(
        ["scenario"] + [f"{wdm} wavelengths" for wdm in wdm_degrees] + ["paper"],
        title="Figure 6: max hops per 4 GHz cycle",
    )
    for scenario in SCALING_SCENARIOS:
        table.add_row(
            [scenario]
            + [data.hops[scenario][wdm] for wdm in wdm_degrees]
            + [EXPECTED_HOPS[scenario]]
        )
    return table.render()
