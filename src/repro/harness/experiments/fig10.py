"""Figure 10: SPLASH2 network speedup relative to the electrical baseline.

Network speedup of a configuration on a benchmark is the ratio of mean
packet latencies, ``Electrical3 / configuration``, on the identical trace
(see DESIGN.md section 6 for why latency ratio is the metric for the
paper's open-loop traces).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.harness.experiments.configs import BASELINE_LABEL
from repro.harness.experiments.splash2_runs import Splash2Matrix, compute_matrix
from repro.util.tables import AsciiTable


@dataclass(frozen=True)
class Figure10:
    """{benchmark: {config label: speedup}} plus geometric means."""

    benchmarks: tuple[str, ...]
    labels: tuple[str, ...]
    speedups: dict[str, dict[str, float]]

    def geomean(self, label: str) -> float:
        values = [self.speedups[b][label] for b in self.benchmarks]
        return math.exp(sum(math.log(v) for v in values) / len(values))


def from_matrix(matrix: Splash2Matrix) -> Figure10:
    speedups: dict[str, dict[str, float]] = {}
    for benchmark in matrix.benchmarks:
        baseline = matrix.result(benchmark, BASELINE_LABEL).mean_latency
        speedups[benchmark] = {
            label: baseline / matrix.result(benchmark, label).mean_latency
            for label in matrix.labels
        }
    return Figure10(
        benchmarks=matrix.benchmarks, labels=matrix.labels, speedups=speedups
    )


def compute(duration_cycles: int = 4000, seed: int = 1) -> Figure10:
    return from_matrix(compute_matrix(duration_cycles=duration_cycles, seed=seed))


def render(data: Figure10) -> str:
    table = AsciiTable(
        ["benchmark"] + list(data.labels),
        title="Figure 10: network speedup vs Electrical3 (= 1.0)",
    )
    for benchmark in data.benchmarks:
        table.add_row(
            [benchmark]
            + [f"{data.speedups[benchmark][label]:.2f}" for label in data.labels]
        )
    table.add_row(
        ["geomean"] + [f"{data.geomean(label):.2f}" for label in data.labels]
    )
    return table.render()
