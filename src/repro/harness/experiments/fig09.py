"""Figure 9: average packet latency vs injection rate on synthetic traffic.

Four panels — Bit Complement, Bit Reverse, Shuffle, Transpose — each
comparing the optical 4/5/8-hop networks against the 2- and 3-cycle
electrical routers on the 8x8 mesh.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.harness.exec import Executor
from repro.harness.experiments.configs import FIG9_LABELS, standard_configs
from repro.harness.sweeps import LatencyPoint, point_from_result, sweep_specs
from repro.traffic.patterns import FIGURE9_PATTERNS
from repro.util.geometry import MeshGeometry
from repro.util.plot import plot_latency_curves
from repro.util.tables import AsciiTable

DEFAULT_RATES = (0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5)


@dataclass(frozen=True)
class Figure9:
    """{pattern: {config label: [LatencyPoint, ...]}}."""

    rates: tuple[float, ...]
    curves: dict[str, dict[str, list[LatencyPoint]]]


def compute(
    patterns: Sequence[str] = FIGURE9_PATTERNS,
    labels: Sequence[str] = FIG9_LABELS,
    rates: Sequence[float] = DEFAULT_RATES,
    cycles: int = 1500,
    mesh: MeshGeometry | None = None,
    seed: int = 1,
    executor: Executor | None = None,
) -> Figure9:
    """All panels as one flat campaign, so every run fans out in parallel."""
    configs = standard_configs(mesh)
    executor = executor or Executor()
    specs = [
        spec
        for pattern in patterns
        for label in labels
        for spec in sweep_specs(configs[label], pattern, rates, cycles, seed)
    ]
    results = iter(executor.map(specs))
    curves: dict[str, dict[str, list[LatencyPoint]]] = {}
    for pattern in patterns:
        curves[pattern] = {
            label: [
                point_from_result(rate, next(results), configs[label].mesh.num_nodes)
                for rate in rates
            ]
            for label in labels
        }
    return Figure9(rates=tuple(rates), curves=curves)


def render(data: Figure9, with_plots: bool = True) -> str:
    blocks = []
    for pattern, by_label in data.curves.items():
        table = AsciiTable(
            ["config"] + [f"{rate:g}" for rate in data.rates],
            title=f"Figure 9 ({pattern}): mean latency (cycles) vs injection rate",
        )
        for label, points in by_label.items():
            table.add_row(
                [label]
                + [
                    "sat" if p.saturated else f"{p.mean_latency:.1f}"
                    for p in points
                ]
            )
        blocks.append(table.render())
        if with_plots:
            blocks.append(
                plot_latency_curves(by_label, title=f"Figure 9 panel: {pattern}")
            )
    return "\n\n".join(blocks)
