"""One module per paper figure/table; each exposes ``compute`` and ``render``."""

from repro.harness.experiments import (
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    tables,
)
from repro.harness.experiments.configs import (
    BASELINE_LABEL,
    optical_configs,
    standard_configs,
)

__all__ = [
    "BASELINE_LABEL",
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "optical_configs",
    "standard_configs",
    "tables",
]
