"""The section-5 configuration matrix shared by the Fig 9-11 experiments."""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import PhastlaneConfig
from repro.electrical.config import ElectricalConfig
from repro.fabric import IdealConfig, NetworkConfig
from repro.util.geometry import MeshGeometry
from repro.vectorized import VectorizedConfig

#: Speedups in Fig 10 are relative to the three-cycle electrical router.
BASELINE_LABEL = "Electrical3"


def optical_configs(mesh: MeshGeometry | None = None) -> dict[str, PhastlaneConfig]:
    """The optical variants of section 5 (hop budgets and buffer sizes)."""
    mesh = mesh or MeshGeometry(8, 8)
    configs = [
        PhastlaneConfig(mesh=mesh, max_hops_per_cycle=4),
        PhastlaneConfig(mesh=mesh, max_hops_per_cycle=5),
        PhastlaneConfig(mesh=mesh, max_hops_per_cycle=8),
        PhastlaneConfig(mesh=mesh, max_hops_per_cycle=4, buffer_entries=32),
        PhastlaneConfig(mesh=mesh, max_hops_per_cycle=4, buffer_entries=64),
        PhastlaneConfig(mesh=mesh, max_hops_per_cycle=4, buffer_entries=None),
    ]
    return {config.label: config for config in configs}


def electrical_configs(mesh: MeshGeometry | None = None) -> dict[str, ElectricalConfig]:
    """The electrical baselines: three- and two-cycle per-hop routers."""
    mesh = mesh or MeshGeometry(8, 8)
    return {
        "Electrical3": ElectricalConfig(mesh=mesh, router_delay_cycles=3),
        "Electrical2": ElectricalConfig(mesh=mesh, router_delay_cycles=2),
    }


def standard_configs(mesh: MeshGeometry | None = None) -> dict[str, NetworkConfig]:
    """Every section-5 configuration, electrical baselines first."""
    mesh = mesh or MeshGeometry(8, 8)
    configs: dict[str, NetworkConfig] = {}
    configs.update(electrical_configs(mesh))
    configs.update(optical_configs(mesh))
    return configs


def reference_configs(mesh: MeshGeometry | None = None) -> dict[str, NetworkConfig]:
    """Alternative engines that are *not* part of the paper's matrix.

    ``Ideal`` (the zero-contention fabric backend) is the
    contention-free floor for one-hop-per-cycle transport;
    ``Vector4``/``Vector4X`` are the vectorized batched engine's fast
    and exact calibrations of ``Optical4``.  All are kept out of
    :func:`standard_configs` so the Fig 9-11 campaigns keep reproducing
    exactly the paper's series.
    """
    mesh = mesh or MeshGeometry(8, 8)
    return {
        "Ideal": IdealConfig(mesh=mesh),
        "Vector4": VectorizedConfig(mesh=mesh),
        "Vector4X": VectorizedConfig(mesh=mesh, mode="exact"),
    }


def cli_configs(
    mesh: MeshGeometry | None = None,
    topology: str | None = None,
) -> dict[str, NetworkConfig]:
    """Every configuration selectable from the CLI (paper + references).

    ``topology`` switches every config onto a registered topology (e.g.
    ``"torus"``); ``None`` keeps the paper's default mesh, leaving run-spec
    digests untouched.
    """
    configs = standard_configs(mesh)
    configs.update(reference_configs(mesh))
    if topology is not None and topology != "mesh":
        configs = {
            label: replace(config, topology=topology)
            for label, config in configs.items()
        }
    return configs


#: The subset of configurations plotted in Fig 9 (synthetic sweeps).
FIG9_LABELS = ("Optical4", "Optical5", "Optical8", "Electrical2", "Electrical3")
