"""Compile a :class:`~repro.faults.config.FaultConfig` into query-able timelines.

A :class:`FaultSchedule` answers two questions the simulators ask in their
hot loops — "does this crossing fail this cycle?" and "is this NIC stalled
this cycle?" — deterministically and independently of traffic.  The key
design constraint is *traffic independence*: whether link ``(node, port)``
is faulty at cycle ``c`` must not depend on how many packets happened to
traverse it earlier, or two backends (or a retry of the same packet) would
see different physics from the same seed.  Two mechanisms deliver that:

- **Stateless draws** (Bernoulli loss, control corruption): each
  ``(node, port, cycle)`` query hashes into its own one-shot
  :class:`~repro.sim.rng.DeterministicRng` stream, so the answer is a pure
  function of the fault seed and the coordinates.
- **Interval chains** (Gilbert–Elliott bursts, NIC stalls): each link/node
  owns a lazily-extended alternating good/bad segment list generated from
  its private stream, looked up by bisection — arbitrary-order queries see
  the same timeline a strictly-forward scan would.

Dead ports are resolved once at compile time: the explicit list plus
``dead_port_count`` extra ports sampled (without replacement, interior
links only) from the ``faults/dead-ports`` stream.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Union

from repro.faults.config import FaultConfig
from repro.sim.rng import DeterministicRng
from repro.topology import Topology, as_topology
from repro.util.geometry import MeshGeometry


class _IntervalChain:
    """A lazily-extended alternating good/bad timeline for one link or node.

    ``boundaries`` holds the start cycles of successive segments, beginning
    with the first *good* segment at cycle 0; even segment indices are good,
    odd are bad.  Segment lengths are drawn from the chain's private rng as
    needed, so a query at cycle ``c`` materialises the timeline up to ``c``
    exactly once regardless of query order.
    """

    __slots__ = ("_rng", "_enter", "_exit", "_fixed_bad", "boundaries")

    def __init__(
        self,
        rng: DeterministicRng,
        enter_prob: float,
        exit_prob: float,
        fixed_bad_cycles: int | None = None,
    ) -> None:
        self._rng = rng
        self._enter = enter_prob
        self._exit = exit_prob
        self._fixed_bad = fixed_bad_cycles
        self.boundaries = [0]

    def in_bad_state(self, cycle: int) -> bool:
        while self.boundaries[-1] <= cycle:
            self._extend()
        segment = bisect_right(self.boundaries, cycle) - 1
        return segment % 2 == 1

    def _extend(self) -> None:
        bad_segment = len(self.boundaries) % 2 == 1
        if bad_segment:
            if self._fixed_bad is not None:
                length = self._fixed_bad
            else:
                length = 1 + self._rng.geometric(self._exit)
        else:
            length = 1 + self._rng.geometric(self._enter)
        self.boundaries.append(self.boundaries[-1] + length)


class FaultSchedule:
    """The compiled, query-able fault timeline of one run.

    Construction is cheap (dead-port sampling only); transient timelines
    materialise lazily per link/node on first query.  All randomness comes
    from ``DeterministicRng(config.seed, ...)`` streams, never from the
    traffic rng — see the module docstring for why.
    """

    def __init__(
        self, config: FaultConfig, topology: Union[Topology, MeshGeometry]
    ) -> None:
        self.config = config
        #: The topology faults are drawn over; a bare ``MeshGeometry``
        #: (the historical signature) adapts to its ``Mesh2D`` topology.
        self.topology = as_topology(topology)
        self.mesh = self.topology.mesh
        self.dead_ports: frozenset[tuple[int, int]] = self._compile_dead_ports()
        self._burst_chains: dict[tuple[int, int], _IntervalChain] = {}
        self._stall_chains: dict[int, _IntervalChain] = {}

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    # -- compile-time resolution ----------------------------------------------

    def _compile_dead_ports(self) -> frozenset[tuple[int, int]]:
        dead = set()
        for node, port in self.config.dead_ports:
            if node >= self.topology.num_nodes:
                raise ValueError(
                    f"dead port names node {node}, but the {self.mesh} "
                    f"has only {self.topology.num_nodes} nodes"
                )
            dead.add((node, port))
        if self.config.dead_port_count:
            # The topology's link enumeration is node-ascending then
            # port-ascending; on the default mesh that is byte-identical
            # to the historical (node x NESW, interior-only) candidate
            # list, so pinned fault schedules are unchanged.
            candidates = [
                link for link in self.topology.links() if link not in dead
            ]
            rng = DeterministicRng(self.config.seed, "faults/dead-ports")
            count = min(self.config.dead_port_count, len(candidates))
            dead.update(rng.sample(candidates, count))
        return frozenset(dead)

    # -- hot-loop queries ------------------------------------------------------

    def crossing_fault(self, node: int, port: int, cycle: int) -> str | None:
        """The fault kind hitting a crossing of ``(node, port)`` at ``cycle``,
        or None when the crossing succeeds.

        ``port`` is the sender's output direction (0-3).  Checks run in
        severity order — a permanently dead port shadows any transient
        model on the same link.
        """
        config = self.config
        if (node, port) in self.dead_ports:
            return "dead_port"
        if config.burst_enter_prob > 0.0:
            chain = self._burst_chains.get((node, port))
            if chain is None:
                chain = _IntervalChain(
                    DeterministicRng(config.seed, f"faults/burst/{node}/{port}"),
                    config.burst_enter_prob,
                    config.burst_exit_prob,
                )
                self._burst_chains[(node, port)] = chain
            if chain.in_bad_state(cycle) and self._draw(
                "burst-loss", node, port, cycle, config.burst_loss_prob
            ):
                return "burst"
        if config.link_flip_prob > 0.0 and self._draw(
            "flip", node, port, cycle, config.link_flip_prob
        ):
            return "link"
        if config.corrupt_prob > 0.0 and self._draw(
            "corrupt", node, port, cycle, config.corrupt_prob
        ):
            return "corrupt"
        return None

    def nic_stalled(self, node: int, cycle: int) -> bool:
        """True while node ``node``'s NIC sits in a stall window at ``cycle``."""
        config = self.config
        if config.nic_stall_prob <= 0.0:
            return False
        chain = self._stall_chains.get(node)
        if chain is None:
            chain = _IntervalChain(
                DeterministicRng(config.seed, f"faults/nic-stall/{node}"),
                config.nic_stall_prob,
                0.0,
                fixed_bad_cycles=config.nic_stall_cycles,
            )
            self._stall_chains[node] = chain
        return chain.in_bad_state(cycle)

    def _draw(
        self, kind: str, node: int, port: int, cycle: int, prob: float
    ) -> bool:
        rng = DeterministicRng(
            self.config.seed, f"faults/{kind}/{node}/{port}/{cycle}"
        )
        return rng.random() < prob
