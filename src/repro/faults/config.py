"""The frozen fault-model description threaded through run specs.

:class:`FaultConfig` is deliberately the *opposite* of
:class:`~repro.obs.config.ObsConfig` in one crucial respect: it is part of
a run spec's identity.  Two specs differing only in their fault config (or
fault seed) simulate different physics, so they hash, compare and digest
differently — which is exactly what keeps the on-disk result cache honest.
A disabled config (the default) is normalised away by the spec, so the
no-fault serialisation — and therefore every pre-existing cache key — is
byte-identical to a tree that predates this module.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any

#: The fault-kind vocabulary a schedule can report for one crossing or
#: node, in rough severity order.  ``dead_port`` is permanent; the rest
#: are transient.  Stats ledgers and trace events carry these strings.
FAULT_KINDS = ("dead_port", "link", "burst", "corrupt", "nic_stall")

_PROBABILITY_FIELDS = (
    "link_flip_prob",
    "burst_enter_prob",
    "burst_exit_prob",
    "burst_loss_prob",
    "corrupt_prob",
    "nic_stall_prob",
)


@dataclass(frozen=True)
class FaultConfig:
    """One experiment's fault models.  Everything defaults to off.

    Permanent device faults
        ``dead_ports`` lists ``(node, port)`` pairs whose output port (a
        ring-resonator group / link driver) is permanently broken;
        ``dead_port_count`` additionally kills that many ports chosen
        uniformly by the fault seed.

    Transient link faults
        ``link_flip_prob`` is a per-crossing Bernoulli loss probability.
        ``burst_enter_prob`` > 0 enables a per-link Gilbert–Elliott chain:
        a link leaves its good state with that per-cycle probability,
        returns with ``burst_exit_prob``, and while bad each crossing is
        lost with ``burst_loss_prob``.

    Control corruption
        ``corrupt_prob`` flips control bits on a crossing; the CRC-
        equivalent check catches the corruption at the next router, so the
        packet is discarded there and the sender's recovery machinery
        (drop signal / link nack) engages exactly as for a loss.

    NIC stalls
        ``nic_stall_prob`` is the per-cycle probability an un-stalled NIC
        freezes for ``nic_stall_cycles`` cycles (it keeps queueing
        generated packets but injects nothing).

    ``retry_limit`` bounds recovery: a packet abandoned after that many
    failed resends is counted as lost (``packets_lost``) instead of
    retrying forever — the escape hatch that lets runs with *permanent*
    faults drain instead of livelocking.
    """

    seed: int = 0
    dead_ports: tuple[tuple[int, int], ...] = ()
    dead_port_count: int = 0
    link_flip_prob: float = 0.0
    burst_enter_prob: float = 0.0
    burst_exit_prob: float = 0.25
    burst_loss_prob: float = 1.0
    corrupt_prob: float = 0.0
    nic_stall_prob: float = 0.0
    nic_stall_cycles: int = 10
    retry_limit: int = 16

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError("fault seed must be non-negative")
        normalised = tuple(
            sorted({(int(node), int(port)) for node, port in self.dead_ports})
        )
        for node, port in normalised:
            if node < 0:
                raise ValueError(f"dead port names negative node {node}")
            if not 0 <= port <= 3:
                raise ValueError(
                    f"dead port {port} for node {node} is not a mesh port (0-3)"
                )
        object.__setattr__(self, "dead_ports", normalised)
        if self.dead_port_count < 0:
            raise ValueError("dead port count must be non-negative")
        for name in _PROBABILITY_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.burst_enter_prob > 0.0 and self.burst_exit_prob <= 0.0:
            raise ValueError("burst faults need burst_exit_prob > 0 to end")
        if self.nic_stall_cycles < 1:
            raise ValueError("NIC stalls must last at least one cycle")
        if self.retry_limit < 1:
            raise ValueError("retry limit must be at least one attempt")

    @property
    def enabled(self) -> bool:
        """True when any fault model is switched on."""
        return bool(
            self.dead_ports
            or self.dead_port_count
            or self.link_flip_prob
            or self.burst_enter_prob
            or self.corrupt_prob
            or self.nic_stall_prob
        )

    def to_dict(self) -> dict[str, Any]:
        """Flatten to JSON-friendly types (feeds the run-spec digest)."""
        payload: dict[str, Any] = {}
        for field_ in fields(self):
            value = getattr(self, field_.name)
            if field_.name == "dead_ports":
                payload["dead_ports"] = [list(pair) for pair in value]
            else:
                payload[field_.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultConfig":
        payload = dict(payload)
        dead_ports = tuple(
            (int(node), int(port)) for node, port in payload.pop("dead_ports", ())
        )
        return cls(dead_ports=dead_ports, **payload)
