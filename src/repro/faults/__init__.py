"""Deterministic fault injection for the network fabric.

Nanophotonic NoCs live or die by device reliability: ring resonators
detune, waveguide crossings degrade, and control bits flip.  This package
models those failure modes as *data*, not code paths: a frozen
:class:`FaultConfig` describes the fault models of one experiment and is
part of a :class:`~repro.harness.exec.RunSpec`'s identity (unlike
observability, faults change simulated physics), and
:class:`FaultSchedule` compiles it — with a dedicated
:class:`~repro.sim.rng.DeterministicRng` stream keyed by the fault seed —
into per-link/per-node fault timelines that are reproducible bit-for-bit
and independent of traffic randomness.

Degradation semantics are the backend's job (see DESIGN.md section 10):
Phastlane absorbs a faulted crossing through the paper's drop-signal +
exponential-backoff machinery, the electrical baseline retries at the
link level (nack/resend), and the analytic ideal reference rejects fault
configs outright with a :class:`~repro.fabric.FabricError`.
"""

from repro.faults.config import FAULT_KINDS, FaultConfig
from repro.faults.schedule import FaultSchedule

__all__ = ["FAULT_KINDS", "FaultConfig", "FaultSchedule"]
