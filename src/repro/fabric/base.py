"""Shared backend machinery: the mesh-network and NIC base classes.

Both cycle-accurate simulators (and the analytic ideal backend) share a
lot of lifecycle scaffolding that used to be duplicated per backend:
finite-buffer NIC admission with an unbounded open-loop generation queue,
the per-cycle source pull, TraceHub plumbing, end-of-cycle stats stamping
and the idle-detection skeleton.  This module hoists all of it.

:class:`MeshNetworkBase` fixes the per-cycle template::

    step(cycle):
        _step_cycle(cycle)        # backend-specific simulation phases
        _end_of_cycle(cycle)      # leakage accrual / occupancy sampling
        stats.final_cycle = cycle + 1
        trace_hub.on_cycle(...)   # when tracers are attached

and the idle skeleton (backend pending work, then source exhaustion, then
NIC queues, then router business).  Subclasses implement ``_step_cycle``
and the :meth:`MeshNetworkBase._pending_work` / ``_inject_from_nic`` hooks.

:class:`BaseNic` fixes event expansion (``generate`` validates the
source-node invariant, delegates each event to ``_expand_event`` and then
refills the finite buffer) plus the occupancy/backlog/idle accessors.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.obs.events import TraceHub
from repro.sim.stats import NetworkStats
from repro.topology import Topology, topology_of

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.schedule import FaultSchedule
    from repro.obs.tracers import Tracer
    from repro.traffic.trace import TraceEvent, TrafficSource
    from repro.util.geometry import MeshGeometry


class BaseNic:
    """Generation queue + finite NIC buffer shared by every backend NIC.

    Trace events enter an unbounded generation queue (the open-loop source
    never blocks, matching Booksim measurement methodology); up to
    ``config.nic_buffer_entries`` of the queued items wait in the NIC
    proper.  Subclasses implement :meth:`_expand_event` to turn one trace
    event into queued packets/flits, and their own injection discipline to
    drain the buffer into the network.
    """

    def __init__(
        self,
        node: int,
        config: Any,
        stats: NetworkStats,
        trace_hub: TraceHub | None = None,
    ) -> None:
        self.node = node
        self.config = config
        self.stats = stats
        self.trace_hub = trace_hub if trace_hub is not None else TraceHub()
        self._generation_queue: deque[Any] = deque()
        self._buffer: deque[Any] = deque()

    def generate(self, events: list["TraceEvent"], cycle: int) -> None:
        """Expand trace events onto the generation queue, then refill."""
        for event in events:
            if event.source != self.node:
                raise ValueError(
                    f"event for node {event.source} delivered to NIC {self.node}"
                )
            self._expand_event(event, cycle)
        self._refill()

    def _expand_event(self, event: "TraceEvent", cycle: int) -> None:
        """Append the packets/flits for one trace event to the queue."""
        raise NotImplementedError

    def _refill(self) -> None:
        """Move queued items into the finite buffer while space remains."""
        while (
            self._generation_queue
            and len(self._buffer) < self.config.nic_buffer_entries
        ):
            self._buffer.append(self._generation_queue.popleft())

    @property
    def occupancy(self) -> int:
        return len(self._buffer)

    @property
    def backlog(self) -> int:
        """Packets still waiting anywhere in this NIC."""
        return len(self._buffer) + len(self._generation_queue)

    def idle(self) -> bool:
        return not self._buffer and not self._generation_queue


class MeshNetworkBase:
    """Common lifecycle of a mesh network backend (see module docstring).

    Subclasses populate :attr:`routers` and :attr:`nics` in their
    constructors (router/NIC types differ per backend) and implement:

    - ``_step_cycle(cycle)`` — the backend's simulation phases;
    - ``_inject_from_nic(node, nic, cycle)`` — drain one NIC into the
      network at the backend's injection discipline;
    - ``_pending_work()`` — backend-private in-flight state that must
      block :meth:`idle` (drop signals, scheduled events, ...);
    - ``_end_of_cycle(cycle)`` — per-cycle accounting accrual (leakage,
      occupancy sampling); defaults to nothing.
    """

    def __init__(
        self,
        config: Any,
        source: "TrafficSource | None" = None,
        stats: NetworkStats | None = None,
        faults: "FaultSchedule | None" = None,
    ) -> None:
        self.config = config
        self.mesh: "MeshGeometry" = config.mesh
        #: The resolved topology instance (the config's ``topology`` name
        #: over its mesh; bare-mesh configs resolve to ``Mesh2D``).  All
        #: port/link enumeration and route computation go through this.
        self.topology: Topology = topology_of(config)
        self.source = source
        self.stats = stats or NetworkStats()
        #: Packet-lifecycle emit hub, shared by reference with the NICs so
        #: tracers attached later see generation/injection events too.
        self.trace_hub = TraceHub()
        self.routers: list[Any] = []
        self.nics: list[Any] = []
        #: Compiled fault timeline, or None for fault-free physics.  NIC
        #: stall windows are honoured here in the shared injection path;
        #: crossing faults are each backend's business.
        self._faults = faults if faults is not None and faults.enabled else None
        self._stalled_nodes: set[int] = set()
        #: Packets hit by at least one fault, for delivered-despite-faults
        #: accounting at the backend's delivery sites.
        self._fault_hit: set[int] = set()

    def add_tracer(self, tracer: "Tracer") -> None:
        """Attach a packet-lifecycle tracer (see :mod:`repro.obs`)."""
        self.trace_hub.add(tracer)

    # -- Clocked protocol ------------------------------------------------------

    def step(self, cycle: int) -> None:
        self._step_cycle(cycle)
        self._end_of_cycle(cycle)
        self.stats.final_cycle = cycle + 1
        if self.trace_hub:
            self.trace_hub.on_cycle(self, cycle)

    def commit(self, cycle: int) -> None:
        """All backends apply effects in step(); events/signals carry any
        cycle split, so the clock edge itself is a no-op."""

    # -- per-cycle hooks -------------------------------------------------------

    def _step_cycle(self, cycle: int) -> None:
        """The backend's simulation phases for one cycle."""
        raise NotImplementedError

    def _end_of_cycle(self, cycle: int) -> None:
        """End-of-cycle accrual (leakage, occupancy sampling)."""

    def _generate_and_inject(self, cycle: int) -> None:
        """Pull this cycle's injections from the source into every NIC,
        then give each NIC its injection opportunity.

        A NIC inside a fault-schedule stall window keeps accepting source
        traffic (the open-loop source never blocks) but injects nothing;
        the stall is counted and traced once per window, on entry.
        """
        faults = self._faults
        for node, nic in enumerate(self.nics):
            if self.source is not None:
                events = self.source.injections(node, cycle)
                if events:
                    nic.generate(events, cycle)
            if faults is not None and faults.nic_stalled(node, cycle):
                if node not in self._stalled_nodes:
                    self._stalled_nodes.add(node)
                    self.stats.record_fault("nic_stall")
                    if self.trace_hub:
                        self.trace_hub.emit(
                            "fault_injected", cycle, node, -1,
                            extra={"fault": "nic_stall"},
                        )
                continue
            self._stalled_nodes.discard(node)
            self._inject_from_nic(node, nic, cycle)

    def _inject_from_nic(self, node: int, nic: Any, cycle: int) -> None:
        """Move work from one NIC into the network, space permitting."""
        raise NotImplementedError

    def _note_fault_delivery(self, uid: int) -> None:
        """Count a delivery of a packet that survived at least one fault.

        Backends call this from every delivery site; it is a no-op unless
        fault injection is active and the packet was actually hit.
        """
        if self._faults is not None and uid in self._fault_hit:
            self.stats.record_fault_survivor()

    # -- run control -----------------------------------------------------------

    def idle(self, cycle: int) -> bool:
        """True when nothing is queued, pending or in flight anywhere."""
        if self._pending_work():
            return False
        if self.source is not None and not self.source.exhausted(cycle):
            return False
        if any(not nic.idle() for nic in self.nics):
            return False
        return all(not router.busy for router in self.routers)

    def _pending_work(self) -> bool:
        """Backend-private in-flight state that must block :meth:`idle`."""
        raise NotImplementedError
