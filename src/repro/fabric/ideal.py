"""An analytic zero-contention backend: the contention-free reference curve.

:class:`IdealNetwork` models a mesh with infinite bandwidth and no
contention: every injected packet is delivered exactly
``hop_count * cycles_per_hop`` cycles later (minimum one cycle), no
matter what else is in flight.  It shares the full backend lifecycle —
finite NIC buffering, one injection per node per cycle, stats, TraceHub
lifecycle events, ``idle()`` drain — so it runs through run specs,
sweeps, campaigns and the observability layer unchanged.

Two jobs:

- a *registry proof*: a third registered backend demonstrates that
  :mod:`repro.fabric.registry` is genuinely open (nothing in the harness
  special-cases two simulators any more);
- a *reference curve*: plotting an Fig 9-style sweep of ``Ideal`` next to
  ``Optical4``/``Electrical3`` separates topology-imposed latency from
  contention, buffering and router pipeline costs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from typing import Any

from repro.fabric.base import BaseNic, MeshNetworkBase
from repro.fabric.protocol import FabricError
from repro.fabric.registry import register_backend
from repro.sim.stats import NetworkStats
from repro.traffic.coherence import MessageKind
from repro.traffic.trace import TraceEvent, TrafficSource
from repro.util.geometry import MeshGeometry

_uid_counter = itertools.count()


@dataclass(frozen=True)
class IdealConfig:
    """Parameters of the analytic ideal network.

    ``cycles_per_hop`` is the only knob.  The default of 1 (a hop per
    network cycle, no router pipeline) is the contention-free floor for
    conventional one-hop-per-cycle transport: it strictly lower-bounds the
    electrical baseline, while Phastlane's same-cycle multi-hop transit
    can legitimately undercut it at low load — exactly the gap the
    reference curve is there to make visible.
    """

    mesh: MeshGeometry = field(default_factory=lambda: MeshGeometry(8, 8))
    #: Registered topology family over the mesh's addressable grid.  The
    #: analytic backend routes on metrics alone, so it accepts *any*
    #: registered topology — including non-grid ones like ``cmesh`` that
    #: the cycle-accurate backends refuse.
    topology: str = "mesh"
    cycles_per_hop: int = 1
    nic_buffer_entries: int = 50
    packet_bits: int = 80 * 8

    def __post_init__(self) -> None:
        from repro.topology import registered_topologies

        if self.topology not in registered_topologies():
            raise ValueError(
                f"unknown topology {self.topology!r}; registered: "
                f"{', '.join(registered_topologies())}"
            )
        if self.cycles_per_hop < 1:
            raise ValueError("cycles per hop must be at least 1")
        if self.nic_buffer_entries < 1:
            raise ValueError("NIC needs at least one buffer entry")
        if self.packet_bits < 1:
            raise ValueError("packets must carry at least one bit")

    @property
    def label(self) -> str:
        """Figure-style label: ``Ideal`` (or ``Ideal2`` for 2-cycle hops)."""
        if self.cycles_per_hop == 1:
            return "Ideal"
        return f"Ideal{self.cycles_per_hop}"


@dataclass
class IdealPacket:
    """One in-flight packet of the analytic network."""

    origin: int
    destination: int
    generated_cycle: int
    kind: MessageKind = MessageKind.DATA_RESPONSE
    multicast: bool = False
    uid: int = field(default_factory=lambda: next(_uid_counter))


class _IdealRouter:
    """A contention-free pass-through node (never buffers, never blocks)."""

    __slots__ = ("node",)

    def __init__(self, node: int) -> None:
        self.node = node

    def occupancy(self) -> int:
        return 0

    @property
    def busy(self) -> bool:
        return False


class IdealNic(BaseNic):
    """One node's NIC: broadcasts expand to one packet per destination."""

    def _expand_event(self, event: TraceEvent, cycle: int) -> None:
        mesh = self.config.mesh
        if event.is_broadcast:
            destinations = [
                node for node in mesh.nodes() if node != self.node
            ]
            self.stats.record_generated(cycle, multicast=True)
            for _ in range(len(destinations) - 1):
                self.stats.record_generated(cycle)
        else:
            assert event.destination is not None
            destinations = [event.destination]
            self.stats.record_generated(cycle)
        for index, destination in enumerate(destinations):
            packet = IdealPacket(
                origin=self.node,
                destination=destination,
                generated_cycle=event.cycle,
                kind=event.kind,
                multicast=event.is_broadcast and index == 0,
            )
            self._generation_queue.append(packet)
            if self.trace_hub:
                self.trace_hub.emit(
                    "generated", cycle, self.node, packet.uid,
                    extra={"dst": destination, "multicast": event.is_broadcast},
                )

    def pop_ready(self) -> IdealPacket | None:
        """The head packet, consumed, or None when the buffer is empty."""
        if not self._buffer:
            return None
        packet = self._buffer.popleft()
        self._refill()
        return packet


class IdealNetwork(MeshNetworkBase):
    """Zero-contention mesh: hop-count latency, one injection/node/cycle."""

    def __init__(
        self,
        config: IdealConfig | None = None,
        source: TrafficSource | None = None,
        stats: NetworkStats | None = None,
        faults: Any = None,
    ) -> None:
        if faults is not None and getattr(faults, "enabled", True):
            raise FabricError(
                "the analytic ideal backend cannot model faults: it has no "
                "contention, buffering or retry machinery to degrade; run "
                "fault experiments on the phastlane or electrical backend"
            )
        super().__init__(config or IdealConfig(), source, stats)
        self.power = None  # the analytic model carries no energy ledger
        self.routers = [_IdealRouter(node) for node in self.mesh.nodes()]
        self.nics = [
            IdealNic(node, self.config, self.stats, trace_hub=self.trace_hub)
            for node in self.mesh.nodes()
        ]
        #: Scheduled deliveries: delivery cycle -> packets landing then.
        self._pending: dict[int, list[IdealPacket]] = {}

    # -- per-cycle hooks -------------------------------------------------------

    def _step_cycle(self, cycle: int) -> None:
        self._deliver_due(cycle)
        self._generate_and_inject(cycle)

    def _inject_from_nic(self, node: int, nic: IdealNic, cycle: int) -> None:
        packet = nic.pop_ready()
        if packet is None:
            return
        self.stats.record_injected(cycle)
        if self.trace_hub:
            self.trace_hub.emit("injected", cycle, node, packet.uid)
        hops = self.topology.hop_count(packet.origin, packet.destination)
        self.stats.record_hops(hops)
        latency = max(1, hops * self.config.cycles_per_hop)
        self._pending.setdefault(cycle + latency, []).append(packet)

    def _deliver_due(self, cycle: int) -> None:
        for packet in self._pending.pop(cycle, ()):
            self.stats.record_delivered(packet.generated_cycle, cycle)
            if self.trace_hub:
                self.trace_hub.emit(
                    "delivered", cycle, packet.destination, packet.uid
                )

    def _pending_work(self) -> bool:
        return bool(self._pending)


register_backend("ideal", IdealConfig, IdealNetwork)
