"""The network-fabric backend layer: protocols, registry, shared bases.

``repro.fabric`` is the seam between the experiment harness and the
network simulators.  The harness constructs every network through
:func:`make_network` and types against the :class:`NetworkBackend` /
:class:`NetworkConfig` protocols; simulators register themselves with
:func:`register_backend` and inherit the shared lifecycle from
:class:`MeshNetworkBase` / :class:`BaseNic`.

Adding a backend (see DESIGN.md section 9):

1. define a frozen dataclass config with a ``mesh`` field and ``label``;
2. implement the network on :class:`MeshNetworkBase` (or satisfy
   :class:`NetworkBackend` structurally);
3. ``register_backend("mykind", MyConfig, MyNetwork)`` at module bottom.

The built-ins — ``phastlane``, ``electrical`` and the analytic ``ideal``
reference — self-register on first registry lookup.
"""

from repro.fabric.base import BaseNic, MeshNetworkBase
from repro.fabric.ideal import IdealConfig, IdealNetwork, IdealNic, IdealPacket
from repro.fabric.protocol import (
    FabricError,
    FabricNic,
    NetworkBackend,
    NetworkConfig,
)
from repro.fabric.registry import (
    BackendEntry,
    config_kind,
    config_type_for,
    entry_for_config,
    entry_for_kind,
    make_network,
    register_backend,
    registered_backends,
    unregister_backend,
)

__all__ = [
    "BackendEntry",
    "BaseNic",
    "FabricError",
    "FabricNic",
    "IdealConfig",
    "IdealNetwork",
    "IdealNic",
    "IdealPacket",
    "MeshNetworkBase",
    "NetworkBackend",
    "NetworkConfig",
    "config_kind",
    "config_type_for",
    "entry_for_config",
    "entry_for_kind",
    "make_network",
    "register_backend",
    "registered_backends",
    "unregister_backend",
]
