"""The network-backend contract shared by every simulator in the repo.

The paper's evaluation hinges on running identical workloads through
interchangeable network implementations (the Phastlane optical network,
the electrical VC baseline, and any future hybrid-NoC design point).  This
module pins down what "a network backend" *is*, as structural protocols:

- :class:`NetworkConfig` — a frozen, dataclass-like description of one
  network design point (a mesh plus a figure label); the registry maps
  config types to backend factories, so the config *is* the selector;
- :class:`FabricNic` — the per-node interface between a traffic source and
  a backend (generation queue, finite NIC buffer, idle detection);
- :class:`NetworkBackend` — the simulator itself: a
  :class:`~repro.sim.engine.Clocked` component with a traffic source, a
  stats ledger, a shared :class:`~repro.obs.events.TraceHub` and an
  ``idle(cycle)`` drain predicate.

Everything in the harness (runner, executor, sweeps, CLI) is written
against these protocols; nothing above :mod:`repro.fabric` names a
concrete simulator class.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.util.errors import FabricError as FabricError  # canonical home

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.events import TraceHub
    from repro.obs.tracers import Tracer
    from repro.sim.stats import NetworkStats
    from repro.traffic.trace import TraceEvent, TrafficSource
    from repro.util.geometry import MeshGeometry


@runtime_checkable
class NetworkConfig(Protocol):
    """A frozen description of one network design point.

    Concrete configs are frozen dataclasses (hashable, ``==`` by value,
    ``dataclasses.fields`` introspectable — the executor's spec
    serialisation relies on that) carrying at least a mesh geometry and
    the figure-style label used throughout the paper's tables.
    """

    mesh: "MeshGeometry"

    @property
    def label(self) -> str:
        """Figure-style configuration label, e.g. ``Optical4``."""
        ...  # pragma: no cover - protocol


class FabricNic(Protocol):
    """One node's interface between the traffic source and the network.

    Every backend NIC owns an unbounded generation queue (the open-loop
    source never blocks) feeding a finite NIC buffer; the backend drains
    the buffer into the network at its own injection discipline.
    """

    node: int
    stats: "NetworkStats"
    trace_hub: "TraceHub"

    def generate(self, events: list["TraceEvent"], cycle: int) -> None:
        """Expand trace events into queued packets/flits."""
        ...  # pragma: no cover - protocol

    @property
    def occupancy(self) -> int:
        """Entries currently held in the finite NIC buffer."""
        ...  # pragma: no cover - protocol

    @property
    def backlog(self) -> int:
        """Entries waiting anywhere in this NIC (buffer + generation)."""
        ...  # pragma: no cover - protocol

    def idle(self) -> bool:
        """True when nothing is queued at this NIC."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class NetworkBackend(Protocol):
    """A cycle-accurate network simulator driven by the engine.

    A backend is a :class:`~repro.sim.engine.Clocked` component (``step``
    then ``commit`` once per cycle) built from a :class:`NetworkConfig`,
    pulling injections from an optional traffic source, accounting into a
    :class:`~repro.sim.stats.NetworkStats` ledger, and emitting packet
    lifecycle events through a :class:`~repro.obs.events.TraceHub` shared
    by reference with its NICs.
    """

    config: "NetworkConfig"
    mesh: "MeshGeometry"
    source: "TrafficSource | None"
    stats: "NetworkStats"
    trace_hub: "TraceHub"

    def step(self, cycle: int) -> None:
        """Advance one cycle (combinational evaluation)."""
        ...  # pragma: no cover - protocol

    def commit(self, cycle: int) -> None:
        """Adopt the computed next state (the clock edge)."""
        ...  # pragma: no cover - protocol

    def idle(self, cycle: int) -> bool:
        """True when no packet is queued, buffered or in flight."""
        ...  # pragma: no cover - protocol

    def add_tracer(self, tracer: "Tracer") -> None:
        """Attach a packet-lifecycle tracer (see :mod:`repro.obs`)."""
        ...  # pragma: no cover - protocol
