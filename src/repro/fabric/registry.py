"""Config-type → backend registry: the one place networks get built.

Every simulator registers itself here (at import time, from its defining
module) as a :class:`BackendEntry` binding a serialisation ``kind`` string,
a config type and a factory.  The harness then constructs networks only
through :func:`make_network` and (de)serialises configs only through
:func:`config_kind` / :func:`config_type_for` — no layer above
:mod:`repro.fabric` dispatches on concrete config classes.

The registry is genuinely open: :func:`register_backend` accepts any
config type / factory pair, so an out-of-tree backend participates in run
specs, campaigns, caching and sweeps without touching the harness.  The
built-in backends (Phastlane optical, electrical baseline, analytic ideal)
are imported lazily on first lookup so importing this module stays cheap
and cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import import_module
from typing import TYPE_CHECKING, Callable, Optional

from repro.fabric.protocol import FabricError, NetworkBackend, NetworkConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.config import FaultConfig
    from repro.sim.stats import NetworkStats
    from repro.traffic.trace import TrafficSource

#: A backend factory: ``(config, source, stats)`` -> backend, optionally
#: accepting a keyword-only ``faults=`` :class:`~repro.faults.schedule.\
#: FaultSchedule`.  Concrete network classes satisfy this directly via
#: their constructors; factories predating fault injection keep working
#: because :func:`make_network` only passes ``faults`` when enabled.
BackendFactory = Callable[..., NetworkBackend]

# Keep the historical three-positional-argument alias importable for
# out-of-tree factories typed against it.
StrictBackendFactory = Callable[
    [NetworkConfig, Optional["TrafficSource"], Optional["NetworkStats"]],
    NetworkBackend,
]


@dataclass(frozen=True)
class BackendEntry:
    """One registered backend: serialisation kind, config type, factory."""

    kind: str
    config_type: type
    factory: BackendFactory


#: Registration order is preserved: exact-type lookups never depend on it,
#: but isinstance fallback (config subclasses) scans in this order.
_REGISTRY: dict[str, BackendEntry] = {}

#: Modules whose import registers the built-in backends.
_BUILTIN_MODULES = (
    "repro.core.network",
    "repro.electrical.network",
    "repro.fabric.ideal",
    "repro.vectorized.network",
)


def _ensure_builtins() -> None:
    """Import the built-in backend modules (each self-registers)."""
    for module in _BUILTIN_MODULES:
        import_module(module)


def register_backend(
    kind: str,
    config_type: type,
    factory: BackendFactory,
) -> BackendEntry:
    """Register (or replace) the backend for one config type.

    ``kind`` is the stable string stored in serialised run specs (it feeds
    cache digests, so renaming a kind invalidates cached results).  Returns
    the new entry.  Registering an already-known kind replaces it, which
    lets tests and experiments shadow a backend; :func:`unregister_backend`
    restores nothing, so shadowing built-ins is on the caller.
    """
    if not kind:
        raise FabricError("backend kind must be a non-empty string")
    if not isinstance(config_type, type):
        raise FabricError(
            f"config_type must be a class, got {config_type!r}"
        )
    for entry in _REGISTRY.values():
        if entry.kind != kind and entry.config_type is config_type:
            raise FabricError(
                f"config type {config_type.__name__} is already registered "
                f"as backend {entry.kind!r}"
            )
    entry = BackendEntry(kind=kind, config_type=config_type, factory=factory)
    _REGISTRY[kind] = entry
    return entry


def unregister_backend(kind: str) -> None:
    """Drop one registered backend (primarily for test cleanup)."""
    _REGISTRY.pop(kind, None)


def registered_backends() -> dict[str, BackendEntry]:
    """A snapshot of every registered backend, keyed by kind."""
    _ensure_builtins()
    return dict(_REGISTRY)


def _known_kinds() -> str:
    kinds = ", ".join(sorted(_REGISTRY)) or "<none>"
    return kinds


def entry_for_config(config: NetworkConfig) -> BackendEntry:
    """The registry entry whose config type matches ``config``.

    Exact type match first; configs subclassing a registered type fall back
    to an ``isinstance`` scan in registration order.  Raises
    :class:`FabricError` naming the config class and every registered
    backend when nothing matches.
    """
    _ensure_builtins()
    for entry in _REGISTRY.values():
        if type(config) is entry.config_type:
            return entry
    for entry in _REGISTRY.values():
        if isinstance(config, entry.config_type):
            return entry
    raise FabricError(
        f"no backend registered for configuration type "
        f"{type(config).__name__}; registered backends: {_known_kinds()} "
        f"(register one with repro.fabric.register_backend)"
    )


def entry_for_kind(kind: str) -> BackendEntry:
    """The registry entry for one serialisation kind string."""
    _ensure_builtins()
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise FabricError(
            f"unknown backend kind {kind!r}; registered backends: "
            f"{_known_kinds()}"
        ) from None


def config_kind(config: NetworkConfig) -> str:
    """The serialisation kind string for a config instance."""
    return entry_for_config(config).kind


def config_type_for(kind: str) -> type:
    """The config class registered under ``kind``."""
    return entry_for_kind(kind).config_type


def make_network(
    config: NetworkConfig,
    source: "TrafficSource | None" = None,
    stats: "NetworkStats | None" = None,
    faults: "FaultConfig | None" = None,
) -> NetworkBackend:
    """Build the simulator registered for the configuration type.

    When ``faults`` is enabled it is compiled to a
    :class:`~repro.faults.schedule.FaultSchedule` on the config's resolved
    topology and passed to the factory as keyword-only ``faults=``; a factory that does
    not model faults (no such parameter) raises :class:`FabricError` rather
    than silently simulating fault-free physics.  Disabled or absent fault
    configs use the historical three-argument call, so factories registered
    before fault injection existed are untouched.
    """
    entry = entry_for_config(config)
    if faults is None or not faults.enabled:
        return entry.factory(config, source, stats)
    from repro.faults.schedule import FaultSchedule
    from repro.topology import topology_of

    schedule = FaultSchedule(faults, topology_of(config))
    try:
        return entry.factory(config, source, stats, faults=schedule)
    except TypeError as exc:
        if "faults" not in str(exc):
            raise
        raise FabricError(
            f"backend {entry.kind!r} does not support fault injection "
            f"(its factory takes no faults= parameter)"
        ) from exc
