"""``Mesh2D`` — the paper's 2D mesh as a registered topology.

A thin adapter over :class:`~repro.util.geometry.MeshGeometry`: every
query delegates to the geometry's cached tables, so routes, neighbour
lookups and link enumeration are bit-identical to the pre-topology
code paths (the RunSpec digest and Fig 9/10 byte-identity pins in
``tests/test_fabric_regression.py`` depend on that).
"""

from __future__ import annotations

from repro.topology.base import GridTopology
from repro.util.geometry import Coord, Direction


class Mesh2D(GridTopology):
    """The paper's ``width x height`` 2D mesh with X-then-Y routing."""

    name = "mesh"

    def neighbor(self, node: int, direction: Direction | int) -> int | None:
        return self.mesh.neighbor(node, Direction(direction))

    def hop_count(self, src: int, dst: int) -> int:
        return self.mesh.hop_count(src, dst)

    def dor_directions(self, src: int, dst: int) -> list[Direction]:
        return self.mesh.dor_directions(src, dst)

    def dor_route(self, src: int, dst: int) -> list[int]:
        return self.mesh.dor_route(src, dst)

    def dor_first_direction(self, src: int, dst: int) -> Direction:
        return self.mesh.dor_first_direction(src, dst)

    def is_edge_row(self, node: int) -> bool:
        return self.mesh.is_edge_row(node)

    def broadcast_sweeps(self, source: int) -> list[tuple[int, set[int]]]:
        src = self.coord(source)
        sweeps: list[tuple[int, set[int]]] = []
        for column in range(self.width):
            for dy, end_y in ((1, self.height - 1), (-1, 0)):
                if src.y == end_y:
                    continue  # no sweep needed toward an edge we sit on
                final = self.node(Coord(column, end_y))
                taps = {
                    self.node(Coord(column, y))
                    for y in range(src.y, end_y + dy, dy)
                }
                taps.discard(source)
                sweeps.append((final, taps))
        return sweeps
