"""The topology abstraction: nodes, ports, links, routes and distances.

Both simulators, the fault scheduler and the photonics models were
written against the paper's 2D mesh (:class:`~repro.util.geometry.
MeshGeometry`).  This module lifts the parts they actually depend on
into an abstract :class:`Topology`:

- **node enumeration** — dense integer ids laid out on the W x H
  addressable grid of the underlying :class:`MeshGeometry` (traffic
  patterns, traces and NIC arrays keep addressing nodes the same way on
  every topology);
- **ports and links** — per-node output ports named by
  :class:`~repro.util.geometry.Direction`, enumerated deterministically
  (node-ascending, then port-ascending) so fault schedules draw the
  same candidate stream the mesh always produced;
- **metrics** — hop counts, deterministic BFS shortest paths and
  physical link lengths for the photonics latency/power models.

:class:`GridTopology` refines it with what the cycle-accurate
simulators additionally require: dimension-order (X-then-Y) routing and
the paper's section-2.1.4 column-sweep broadcast.  Non-grid topologies
(e.g. :class:`~repro.topology.cmesh.ConcentratedMesh`) are only
supported by backends that route on metrics alone, such as
``IdealNetwork``; :func:`require_grid` is the gate the cycle-accurate
paths use to refuse them honestly.

No module here imports :mod:`repro.fabric` — the fabric package init
instantiates the simulators, which sit *above* this layer.
:class:`TopologyError` subclasses the shared
:class:`~repro.util.errors.FabricError` so callers can catch either.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import ClassVar, Iterator, Sequence

from repro.util.errors import FabricError
from repro.util.geometry import Coord, Direction, MeshGeometry


class TopologyError(FabricError):
    """A topology-layer failure: unknown name, undefined operation, etc."""


class Topology(abc.ABC):
    """A network graph over the dense node ids of a ``MeshGeometry``.

    Node ids stay row-major on the underlying ``width x height``
    addressable grid whatever the link structure, so traffic patterns,
    trace files and per-node arrays are topology-agnostic.  Subclasses
    define the connectivity (:meth:`neighbor`) and may override the
    metric methods with closed forms.
    """

    #: Registry name of this topology family (e.g. ``"mesh"``).
    name: ClassVar[str]

    def __init__(self, mesh: MeshGeometry) -> None:
        self.mesh = mesh
        self._distance_cache: dict[int, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # node enumeration (delegated to the addressable grid)
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.mesh.num_nodes

    @property
    def width(self) -> int:
        return self.mesh.width

    @property
    def height(self) -> int:
        return self.mesh.height

    def nodes(self) -> Iterator[int]:
        return self.mesh.nodes()

    def coord(self, node: int) -> Coord:
        return self.mesh.coord(node)

    def node(self, coord: Coord) -> int:
        return self.mesh.node(coord)

    # ------------------------------------------------------------------
    # ports and links
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def neighbor(self, node: int, direction: Direction | int) -> int | None:
        """Neighbour reached from ``node`` through output port ``direction``.

        ``None`` when the port is unconnected (a mesh edge).  ``LOCAL``
        maps to the node itself, matching ``MeshGeometry.neighbor``.
        """

    def ports(self, node: int) -> tuple[int, ...]:
        """Connected (non-Local) output ports of ``node``, ascending."""
        return tuple(
            port
            for port in range(int(Direction.LOCAL))
            if self.neighbor(node, port) is not None
        )

    def port_label(self, node: int, port: int) -> str:
        """Human-readable label for an output port of ``node``.

        Health findings, heatmap legends and CLI fault specs use this
        instead of assuming the compass names are meaningful.
        """
        return Direction(port).name

    def links(self) -> list[tuple[int, int]]:
        """Every directed link as ``(node, output port)``.

        The order is deterministic — node-ascending, then
        port-ascending — and on the default mesh reproduces exactly the
        candidate stream the fault scheduler has always sampled from,
        so pinned fault schedules stay byte-identical.
        """
        return [(node, port) for node in self.nodes() for port in self.ports(node)]

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    def hop_count(self, src: int, dst: int) -> int:
        """Minimum number of link traversals from ``src`` to ``dst``."""
        distance = self._distances(src)[dst]
        if distance < 0:
            raise TopologyError(f"node {dst} unreachable from {src} in {self}")
        return distance

    def shortest_route(self, src: int, dst: int) -> list[int]:
        """A deterministic BFS shortest path, inclusive of both endpoints.

        Ties break toward the lowest port index at every divergence
        (BFS discovery order), so the same pair always yields the same
        route.
        """
        if src == dst:
            return [src]
        self.coord(src), self.coord(dst)  # range-check both endpoints
        parent: dict[int, int] = {src: src}
        queue: deque[int] = deque([src])
        while queue:
            here = queue.popleft()
            if here == dst:
                break
            for port in self.ports(here):
                there = self.neighbor(here, port)
                if there is not None and there not in parent:
                    parent[there] = here
                    queue.append(there)
        if dst not in parent:
            raise TopologyError(f"node {dst} unreachable from {src} in {self}")
        route = [dst]
        while route[-1] != src:
            route.append(parent[route[-1]])
        route.reverse()
        return route

    def route_directions(self, route: Sequence[int]) -> list[Direction]:
        """Travel directions along a route of pairwise-adjacent nodes."""
        directions: list[Direction] = []
        for here, there in zip(route, route[1:]):
            for port in self.ports(here):
                if self.neighbor(here, port) == there:
                    directions.append(Direction(port))
                    break
            else:
                raise TopologyError(
                    f"nodes {here} and {there} are not adjacent in {self}"
                )
        return directions

    def link_length_mm(self, node: int, port: int, hop_length_mm: float) -> float:
        """Physical waveguide length of one link, given the grid pitch."""
        return hop_length_mm

    def _distances(self, src: int) -> tuple[int, ...]:
        cached = self._distance_cache.get(src)
        if cached is not None:
            return cached
        self.coord(src)  # range check
        dist = [-1] * self.num_nodes
        dist[src] = 0
        queue: deque[int] = deque([src])
        while queue:
            here = queue.popleft()
            for port in self.ports(here):
                there = self.neighbor(here, port)
                if there is not None and dist[there] < 0:
                    dist[there] = dist[here] + 1
                    queue.append(there)
        result = tuple(dist)
        self._distance_cache[src] = result
        return result

    def __str__(self) -> str:
        return f"{self.width}x{self.height} {self.name}"


class GridTopology(Topology):
    """A W x H grid (mesh or torus) that supports the paper's routing.

    Adds what the cycle-accurate simulators require beyond the generic
    graph: dimension-order (X-then-Y) routes that the predecoded
    source-routing pipeline can follow hop by hop, and the section
    2.1.4 column-sweep broadcast decomposition.
    """

    @abc.abstractmethod
    def dor_directions(self, src: int, dst: int) -> list[Direction]:
        """Travel directions of the X-then-Y route (empty if src == dst)."""

    @abc.abstractmethod
    def dor_first_direction(self, src: int, dst: int) -> Direction:
        """First travel direction of the X-then-Y route (cached table)."""

    @abc.abstractmethod
    def is_edge_row(self, node: int) -> bool:
        """True when broadcast fan-out halves at this node (section 2.1.4)."""

    @abc.abstractmethod
    def broadcast_sweeps(self, source: int) -> list[tuple[int, set[int]]]:
        """Decompose a broadcast into column sweeps.

        Returns ``(final, taps)`` pairs — one multicast packet per
        column and vertical direction, tapping every node on its DOR
        path — whose taps jointly cover all nodes except ``source``.
        Overlapping taps (the turn row appears in both vertical sweeps)
        are safe: delivery is deduplicated per ``(broadcast, node)``.
        """

    def dor_route(self, src: int, dst: int) -> list[int]:
        """Node ids visited under X-then-Y routing, inclusive of endpoints."""
        route = [src]
        here = src
        for direction in self.dor_directions(src, dst):
            there = self.neighbor(here, direction)
            if there is None:  # pragma: no cover - defensive
                raise TopologyError(
                    f"dor route walks off {self} at node {here} going "
                    f"{direction.name}"
                )
            here = there
            route.append(here)
        return route


def require_grid(topology: Topology, what: str) -> GridTopology:
    """Gate: ``what`` is only defined on grid topologies (mesh/torus)."""
    if not isinstance(topology, GridTopology):
        raise TopologyError(
            f"{what} requires a grid topology (mesh or torus); "
            f"{topology.name!r} does not support it"
        )
    return topology
