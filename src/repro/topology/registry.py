"""Name -> topology registry, mirroring the fabric backend registry.

A topology family is registered under a short name (``"mesh"``,
``"torus"``, ``"cmesh"``) with a factory taking the addressable
:class:`~repro.util.geometry.MeshGeometry`.  Configs carry the name in
their ``topology`` field (``"mesh"`` by default, normalised away in
serialisation so pre-topology digests stay byte-identical);
:func:`topology_of` resolves a config to its shared topology instance.

Instances are cached per ``(name, mesh)`` — topologies are stateless
apart from internal memo tables, so sharing them across networks,
fault schedules and photonics models is safe and keeps the BFS caches
warm.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

from repro.topology.base import Topology, TopologyError
from repro.util.geometry import MeshGeometry

TopologyFactory = Callable[[MeshGeometry], Topology]

_REGISTRY: dict[str, TopologyFactory] = {}

#: The default topology name configs normalise away.
DEFAULT_TOPOLOGY = "mesh"


def register_topology(name: str, factory: TopologyFactory) -> None:
    """Register a topology factory under ``name``."""
    if name in _REGISTRY:
        raise TopologyError(f"topology {name!r} already registered")
    _REGISTRY[name] = factory


def unregister_topology(name: str) -> None:
    """Remove a registration (tests clean up custom topologies with this)."""
    if name not in _REGISTRY:
        raise TopologyError(f"topology {name!r} is not registered")
    del _REGISTRY[name]
    topology_for.cache_clear()


def registered_topologies() -> tuple[str, ...]:
    """Registered topology names, sorted."""
    return tuple(sorted(_REGISTRY))


def topology_from_name(name: str, mesh: MeshGeometry) -> Topology:
    """Instantiate a fresh topology by registry name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise TopologyError(
            f"unknown topology {name!r}; registered topologies: {known}"
        ) from None
    return factory(mesh)


@lru_cache(maxsize=None)
def topology_for(name: str, mesh: MeshGeometry) -> Topology:
    """The shared topology instance for ``(name, mesh)``."""
    return topology_from_name(name, mesh)


def as_topology(obj: "Topology | MeshGeometry") -> Topology:
    """Adapt a bare ``MeshGeometry`` to its ``Mesh2D`` topology.

    Every refactored entry point accepts either, so pre-topology call
    sites (and tests) that pass a ``MeshGeometry`` keep working.
    """
    if isinstance(obj, Topology):
        return obj
    return topology_for(DEFAULT_TOPOLOGY, obj)


def topology_of(config: object) -> Topology:
    """Resolve a network config to its topology instance.

    Reads the config's ``topology`` field when present (configs predating
    the field — or protocol fakes in tests — default to the mesh).
    """
    mesh: MeshGeometry = getattr(config, "mesh")
    return topology_for(str(getattr(config, "topology", DEFAULT_TOPOLOGY)), mesh)
