"""Selectable routing policies over a :class:`~repro.topology.base.Topology`.

A policy turns (topology, source, destination) into a concrete route —
the node sequence plus per-hop travel directions that
:func:`repro.core.routing.build_plan` encodes into a predecoded plan.

Two built-ins:

- ``"dor"`` — the paper's dimension-order (X-then-Y) routing; requires
  a grid topology (mesh or torus);
- ``"shortest"`` — deterministic BFS shortest path over any topology's
  link graph; usable by ``IdealNetwork`` on arbitrary graphs.
"""

from __future__ import annotations

import abc
from typing import ClassVar

from repro.topology.base import Topology, TopologyError, require_grid
from repro.util.geometry import Direction


class RoutingPolicy(abc.ABC):
    """Computes routes over a topology's link graph."""

    name: ClassVar[str]

    @abc.abstractmethod
    def plan(
        self, topology: Topology, src: int, dst: int
    ) -> tuple[list[int], list[Direction]]:
        """The route node sequence and its per-hop travel directions."""


class DorPolicy(RoutingPolicy):
    """The paper's dimension-order (X-then-Y) routing."""

    name = "dor"

    def plan(
        self, topology: Topology, src: int, dst: int
    ) -> tuple[list[int], list[Direction]]:
        grid = require_grid(topology, "dimension-order routing")
        return grid.dor_route(src, dst), grid.dor_directions(src, dst)


class ShortestPathPolicy(RoutingPolicy):
    """Deterministic BFS shortest path over the link graph."""

    name = "shortest"

    def plan(
        self, topology: Topology, src: int, dst: int
    ) -> tuple[list[int], list[Direction]]:
        route = topology.shortest_route(src, dst)
        return route, topology.route_directions(route)


_POLICIES: dict[str, RoutingPolicy] = {}


def register_policy(policy: RoutingPolicy) -> None:
    """Register a routing policy under its ``name``."""
    if policy.name in _POLICIES:
        raise TopologyError(f"routing policy {policy.name!r} already registered")
    _POLICIES[policy.name] = policy


def registered_policies() -> tuple[str, ...]:
    """Registered policy names, sorted."""
    return tuple(sorted(_POLICIES))


def policy_by_name(name: str) -> RoutingPolicy:
    """Look up a routing policy, naming the known ones on a miss."""
    try:
        return _POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise TopologyError(
            f"unknown routing policy {name!r}; registered policies: {known}"
        ) from None


register_policy(DorPolicy())
register_policy(ShortestPathPolicy())
