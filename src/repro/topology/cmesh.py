"""``ConcentratedMesh`` — four terminals sharing each mesh router.

Concentration is the classic radix-reduction move (e.g. CMesh in the
NoC literature): keep the W x H *terminals* of the workload — node ids,
traffic patterns and traces are unchanged — but attach each 2x2 tile of
terminals to one shared router, so the router grid is
``ceil(W/2) x ceil(H/2)`` and the network diameter roughly halves.

The terminal graph (what :meth:`neighbor`/:meth:`links` expose, and
what fault schedules enumerate) is still the addressable grid; the
*metrics* — hop counts and shortest-route lengths used by latency and
power models — are computed on the router grid, where co-located
terminals are zero hops apart.  There is no cycle-accurate Phastlane
pipeline for a concentrated router, so this topology is not a
:class:`~repro.topology.base.GridTopology`: the cycle-accurate
backends refuse it honestly and only metric-driven backends
(``IdealNetwork``) accept it.
"""

from __future__ import annotations

from repro.topology.base import Topology
from repro.util.geometry import Coord, Direction, MeshGeometry


class ConcentratedMesh(Topology):
    """A ``width x height`` terminal grid concentrated 4:1 onto routers."""

    name = "cmesh"

    #: Terminals per router (one 2x2 tile).
    concentration = 4

    def __init__(self, mesh: MeshGeometry) -> None:
        super().__init__(mesh)
        self.routers = MeshGeometry(
            (mesh.width + 1) // 2, (mesh.height + 1) // 2
        )

    def router_of(self, node: int) -> int:
        """The shared router a terminal attaches to."""
        c = self.coord(node)
        return self.routers.node(Coord(c.x // 2, c.y // 2))

    def terminals_of(self, router: int) -> tuple[int, ...]:
        """The terminals attached to a router, ascending."""
        r = self.routers.coord(router)
        return tuple(
            self.node(Coord(x, y))
            for y in range(2 * r.y, min(2 * r.y + 2, self.height))
            for x in range(2 * r.x, min(2 * r.x + 2, self.width))
        )

    def neighbor(self, node: int, direction: Direction | int) -> int | None:
        # The terminal grid keeps mesh adjacency: fault schedules and
        # port enumeration address terminals, not the shared routers.
        return self.mesh.neighbor(node, Direction(direction))

    def hop_count(self, src: int, dst: int) -> int:
        # Router-grid Manhattan distance: zero for co-located terminals
        # (consumers that need a latency floor clamp with max(1, hops)).
        return self.routers.hop_count(self.router_of(src), self.router_of(dst))

    def link_length_mm(self, node: int, port: int, hop_length_mm: float) -> float:
        # Router pitch is twice the terminal pitch.
        return 2.0 * hop_length_mm

    def __str__(self) -> str:
        return (
            f"{self.width}x{self.height} cmesh "
            f"({self.routers.width}x{self.routers.height} routers)"
        )
