"""Pluggable topologies and routing policies (DESIGN.md section 13).

Public surface:

- :class:`Topology` / :class:`GridTopology` — the graph abstraction the
  simulators, fault scheduler and photonics models consume;
- :class:`Mesh2D`, :class:`Torus2D`, :class:`ConcentratedMesh` — the
  built-in families, registered as ``mesh`` / ``torus`` / ``cmesh``;
- :class:`RoutingPolicy` with ``dor`` and ``shortest`` built-ins;
- the registry: :func:`register_topology`, :func:`topology_from_name`,
  :func:`topology_for`, :func:`as_topology`, :func:`topology_of`.
"""

from repro.topology.base import (
    GridTopology,
    Topology,
    TopologyError,
    require_grid,
)
from repro.topology.cmesh import ConcentratedMesh
from repro.topology.mesh import Mesh2D
from repro.topology.policies import (
    DorPolicy,
    RoutingPolicy,
    ShortestPathPolicy,
    policy_by_name,
    register_policy,
    registered_policies,
)
from repro.topology.registry import (
    DEFAULT_TOPOLOGY,
    as_topology,
    register_topology,
    registered_topologies,
    topology_for,
    topology_from_name,
    topology_of,
    unregister_topology,
)
from repro.topology.torus import Torus2D

register_topology("mesh", Mesh2D)
register_topology("torus", Torus2D)
register_topology("cmesh", ConcentratedMesh)

__all__ = [
    "DEFAULT_TOPOLOGY",
    "ConcentratedMesh",
    "DorPolicy",
    "GridTopology",
    "Mesh2D",
    "RoutingPolicy",
    "ShortestPathPolicy",
    "Topology",
    "TopologyError",
    "Torus2D",
    "as_topology",
    "policy_by_name",
    "register_policy",
    "register_topology",
    "registered_policies",
    "registered_topologies",
    "require_grid",
    "topology_for",
    "topology_from_name",
    "topology_of",
    "unregister_topology",
]
