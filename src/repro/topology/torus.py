"""``Torus2D`` — a 2D torus (wraparound mesh) topology.

Same dense row-major node ids as the mesh, plus wrap links joining each
row/column end back to its start, so every router has all four ports
connected (when the dimension size exceeds 1).  Dimension-order routing
takes the minimal wrap distance per axis; ties on an even dimension
break toward the positive direction (EAST / NORTH), which is what lets
the broadcast decomposition reuse DOR paths for its arcs.

The section 2.1.4 broadcast generalises naturally: per column, one arc
of ``ceil((H-1)/2)`` hops north and one of ``floor((H-1)/2)`` hops
south cover every row exactly once (the entry row overlaps between the
two vertical sweeps of a column, as on the mesh — delivery dedups it).

Physically this is a *folded* torus: wrap links do not span the whole
die, but folding doubles the pitch of every link along a dimension, so
:meth:`link_length_mm` reports ``2x`` the mesh hop length whenever a
dimension is large enough to need folding (size > 2).
"""

from __future__ import annotations

from functools import lru_cache

from repro.topology.base import GridTopology
from repro.util.geometry import Coord, Direction, MeshGeometry, _DELTA


@lru_cache(maxsize=None)
def _torus_neighbor_table(
    width: int, height: int
) -> tuple[tuple[int | None, ...], ...]:
    """node -> direction -> wrapped neighbour id (None when the dim is 1)."""
    mesh = MeshGeometry(width, height)
    table = []
    for node in mesh.nodes():
        x, y = mesh.coord(node)
        row: list[int | None] = []
        for direction in Direction:
            dx, dy = _DELTA[direction]
            wrapped = mesh.node(Coord((x + dx) % width, (y + dy) % height))
            if direction is not Direction.LOCAL and wrapped == node:
                row.append(None)  # a dimension of size 1 has no self-link
            else:
                row.append(wrapped)
        table.append(tuple(row))
    return tuple(table)


@lru_cache(maxsize=None)
def _torus_first_direction_table(
    width: int, height: int
) -> tuple[tuple[Direction, ...], ...]:
    """src -> dst -> first minimal-wrap X-then-Y direction."""
    mesh = MeshGeometry(width, height)
    table = []
    for src in mesh.nodes():
        sx, sy = mesh.coord(src)
        row: list[Direction] = []
        for dst in mesh.nodes():
            dx_east = (mesh.coord(dst).x - sx) % width
            dy_north = (mesh.coord(dst).y - sy) % height
            if dx_east:
                if dx_east <= width - dx_east:
                    row.append(Direction.EAST)
                else:
                    row.append(Direction.WEST)
            elif dy_north:
                if dy_north <= height - dy_north:
                    row.append(Direction.NORTH)
                else:
                    row.append(Direction.SOUTH)
            else:
                row.append(Direction.LOCAL)  # src == dst; callers reject
        table.append(tuple(row))
    return tuple(table)


class Torus2D(GridTopology):
    """A ``width x height`` 2D torus with minimal-wrap X-then-Y routing."""

    name = "torus"

    def neighbor(self, node: int, direction: Direction | int) -> int | None:
        if node < 0 or node >= self.num_nodes:
            raise ValueError(f"node {node} out of range for {self}")
        table = _torus_neighbor_table(self.width, self.height)
        return table[node][int(direction)]

    def hop_count(self, src: int, dst: int) -> int:
        a, b = self.coord(src), self.coord(dst)
        dx = abs(a.x - b.x)
        dy = abs(a.y - b.y)
        return min(dx, self.width - dx) + min(dy, self.height - dy)

    def dor_directions(self, src: int, dst: int) -> list[Direction]:
        a, b = self.coord(src), self.coord(dst)
        path: list[Direction] = []
        dx_east = (b.x - a.x) % self.width
        if dx_east:
            if dx_east <= self.width - dx_east:
                path.extend([Direction.EAST] * dx_east)
            else:
                path.extend([Direction.WEST] * (self.width - dx_east))
        dy_north = (b.y - a.y) % self.height
        if dy_north:
            if dy_north <= self.height - dy_north:
                path.extend([Direction.NORTH] * dy_north)
            else:
                path.extend([Direction.SOUTH] * (self.height - dy_north))
        return path

    def dor_first_direction(self, src: int, dst: int) -> Direction:
        if src == dst:
            raise ValueError("no direction from a node to itself")
        return _torus_first_direction_table(self.width, self.height)[src][dst]

    def is_edge_row(self, node: int) -> bool:
        return False  # a torus has no edge rows; broadcast fan-out never halves

    def is_wrap_link(self, node: int, port: int) -> bool:
        """True when this link wraps around the grid boundary."""
        direction = Direction(port)
        there = self.coord(node).step(direction)
        return not self.mesh.contains(there)

    def port_label(self, node: int, port: int) -> str:
        label = Direction(port).name
        return f"{label}_WRAP" if self.is_wrap_link(node, port) else label

    def link_length_mm(self, node: int, port: int, hop_length_mm: float) -> float:
        direction = Direction(port)
        span = self.width if direction in (Direction.EAST, Direction.WEST) else (
            self.height
        )
        # Folded-torus layout: every link along a folded dimension is two
        # mesh pitches long; a 1- or 2-wide dimension needs no folding.
        return 2.0 * hop_length_mm if span > 2 else hop_length_mm

    def broadcast_sweeps(self, source: int) -> list[tuple[int, set[int]]]:
        src = self.coord(source)
        height = self.height
        k_north = height // 2  # == ceil((H - 1) / 2)
        k_south = (height - 1) // 2
        sweeps: list[tuple[int, set[int]]] = []
        for column in range(self.width):
            for dy, length in ((1, k_north), (-1, k_south)):
                if length == 0:
                    continue  # a 1-row torus has no vertical arcs
                end_y = (src.y + dy * length) % height
                final = self.node(Coord(column, end_y))
                taps = {
                    self.node(Coord(column, (src.y + dy * i) % height))
                    for i in range(length + 1)
                }
                taps.discard(source)
                sweeps.append((final, taps))
        return sweeps
